package wimi_test

import (
	"fmt"

	"repro/wimi"
)

// ExampleSimulate shows the deterministic measurement simulation: the same
// scenario and seed always produce the same session.
func ExampleSimulate() {
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.PureWater)
	session, err := wimi.Simulate(sc, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("baseline packets:", session.Baseline.Len())
	fmt.Println("target packets:", session.Target.Len())
	fmt.Println("antennas:", session.Baseline.NumAntennas())
	// Output:
	// baseline packets: 20
	// target packets: 20
	// antennas: 3
}

// ExampleExtractFeatures runs the WiMi pipeline on one measurement and
// inspects the per-antenna-pair material evidence.
func ExampleExtractFeatures() {
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Honey)
	session, err := wimi.Simulate(sc, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	feats, err := wimi.ExtractFeatures(session, wimi.DefaultPipelineConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("antenna pairs:", len(feats.Pairs))
	fmt.Println("feature dims:", len(feats.Vector))
	// Output:
	// antenna pairs: 3
	// feature dims: 12
}

// ExampleTrain is the end-to-end flow: train on labelled measurements,
// identify an unknown one.
func ExampleTrain() {
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.Milk, wimi.Oil} {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 6, int64(li*1000+1))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Oil)
	unknown, err := wimi.Simulate(sc, 4242)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	name, err := id.Identify(unknown)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("identified:", name)
	// Output:
	// identified: oil
}

// ExampleGroundTruthOmega reads the dielectric model's material feature —
// the value a perfect measurement of Eq. 21 would recover.
func ExampleGroundTruthOmega() {
	water, err := wimi.GroundTruthOmega(wimi.PureWater, 5.32e9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	oil, err := wimi.GroundTruthOmega(wimi.Oil, 5.32e9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("water Ω = %.3f\n", water)
	fmt.Printf("oil   Ω = %.3f\n", oil)
	// Output:
	// water Ω = -0.143
	// oil   Ω = -0.021
}
