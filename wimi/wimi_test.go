package wimi_test

import (
	"bytes"
	"math"
	"testing"

	"repro/wimi"
)

func TestLiquidsDatabase(t *testing.T) {
	names := wimi.Liquids()
	if len(names) != 13 {
		t.Fatalf("Liquids() = %d entries, want 13", len(names))
	}
	for _, name := range []string{wimi.PureWater, wimi.Pepsi, wimi.Coke, wimi.Honey} {
		if _, err := wimi.Liquid(name); err != nil {
			t.Errorf("Liquid(%q): %v", name, err)
		}
	}
	if _, err := wimi.Liquid("unobtainium"); err == nil {
		t.Error("unknown liquid should error")
	}
}

func TestMustLiquidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLiquid should panic on unknown name")
		}
	}()
	wimi.MustLiquid("unobtainium")
}

func TestSimulateAndExtract(t *testing.T) {
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.PureWater)
	session, err := wimi.Simulate(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Validate(); err != nil {
		t.Fatal(err)
	}
	feats, err := wimi.ExtractFeatures(session, wimi.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(feats.Vector) == 0 {
		t.Error("empty feature vector")
	}
	for _, v := range feats.Vector {
		if math.IsNaN(v) {
			t.Error("NaN feature")
		}
	}
}

func TestTrainAndIdentifyEndToEnd(t *testing.T) {
	// The full public-API journey on three well-separated liquids.
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey, wimi.Oil} {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 6, int64(li*1000+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fresh held-out session.
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Honey)
	unknown, err := wimi.Simulate(sc, 987654)
	if err != nil {
		t.Fatal(err)
	}
	got, err := id.Identify(unknown)
	if err != nil {
		t.Fatal(err)
	}
	if got != wimi.Honey {
		t.Errorf("identified %q, want honey", got)
	}
}

func TestGroundTruthOmega(t *testing.T) {
	om, err := wimi.GroundTruthOmega(wimi.PureWater, 5.32e9)
	if err != nil {
		t.Fatal(err)
	}
	if om >= 0 || om < -1 {
		t.Errorf("water Ω = %v, want small negative", om)
	}
	if _, err := wimi.GroundTruthOmega("nope", 5.32e9); err == nil {
		t.Error("unknown liquid should error")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	sc := wimi.DefaultScenario()
	a, err := wimi.Simulate(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := wimi.Simulate(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Baseline.Packets[0].CSI.Values[0][0] != b.Baseline.Packets[0].CSI.Values[0][0] {
		t.Error("Simulate not deterministic")
	}
}

func TestMonitorFacade(t *testing.T) {
	det, err := wimi.NewDetector(wimi.MonitorConfig{BaselinePackets: 10})
	if err != nil {
		t.Fatal(err)
	}
	sc := wimi.DefaultScenario()
	sc.Packets = 15
	session, err := wimi.Simulate(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range session.Baseline.Packets {
		if _, err := det.Feed(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if !det.Ready() {
		t.Error("detector should be ready after the baseline window")
	}
	if _, err := wimi.NewSegmenter(wimi.MonitorConfig{}, 5.32e9, 5, 20, 20); err != nil {
		t.Fatal(err)
	}
	if wimi.TargetAppeared.String() != "target-appeared" {
		t.Error("event kinds not re-exported correctly")
	}
}

func TestSaveLoadIdentifierFacade(t *testing.T) {
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey} {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 4, int64(li*1000+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wimi.SaveIdentifier(id, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := wimi.LoadIdentifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Identify(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != labels[0] {
		t.Errorf("loaded identifier says %q, want %q", got, labels[0])
	}
}
