// Package wimi is the public API of the WiMi reproduction: contactless
// target material identification with commodity Wi-Fi CSI (Feng et al.,
// ICDCS 2019).
//
// The typical flow:
//
//	// 1. Obtain measurement sessions (here: simulated; on real hardware,
//	//    from a CSI trace).
//	sc := wimi.DefaultScenario()
//	sc.Liquid = wimi.MustLiquid(wimi.PureWater)
//	session, err := wimi.Simulate(sc, 42)
//
//	// 2. Train an identifier on labelled sessions.
//	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
//
//	// 3. Identify unknown targets.
//	name, err := id.Identify(unknownSession)
//
// Everything below delegates to the internal packages; see DESIGN.md for
// the architecture.
package wimi

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
)

// Re-exported liquid names (the paper's ten evaluation liquids).
const (
	Vinegar    = material.Vinegar
	Honey      = material.Honey
	Soy        = material.Soy
	Milk       = material.Milk
	Pepsi      = material.Pepsi
	Liquor     = material.Liquor
	PureWater  = material.PureWater
	Oil        = material.Oil
	Coke       = material.Coke
	SweetWater = material.SweetWater
)

// Session is a measurement session: baseline CSI (empty container) plus
// target CSI (liquid in place).
type Session = csi.Session

// Capture is one CSI packet capture (a Session holds two).
type Capture = csi.Capture

// Scenario describes a simulated measurement setup.
type Scenario = simulate.Scenario

// PipelineConfig configures the signal-processing pipeline.
type PipelineConfig = core.Config

// TrainingConfig configures identifier training.
type TrainingConfig = core.IdentifierConfig

// Features is the extracted evidence for one session.
type Features = core.Features

// Identifier is a trained material identifier.
type Identifier = core.Identifier

// RobustResult is what Identifier.IdentifyRobust returns for a possibly
// damaged session: the prediction plus a degradation report and a
// confidence downgraded by how much of the capture was usable.
type RobustResult = core.RobustResult

// Degradation details what the degraded-mode pipeline worked around: dead
// antennas and subcarriers, the antenna pairs measured versus imputed, and
// the confidence downgrade factor.
type Degradation = core.Degradation

// CaptureHealth summarises dead antennas/subcarriers in one capture.
type CaptureHealth = core.CaptureHealth

// ErrBelowViability is returned (wrapped) when a session is too damaged to
// identify honestly — fewer than two live antennas, fewer than two live
// calibrated subcarriers, or fewer than four packets per capture.
var ErrBelowViability = core.ErrBelowViability

// DefaultScenario returns the paper's standard setup: lab environment, 2 m
// link at 5 GHz, three receive antennas, the 14.3 cm plastic beaker,
// 20 packets per capture.
func DefaultScenario() Scenario {
	return simulate.Default()
}

// DefaultPipelineConfig returns the calibrated pipeline operating point.
func DefaultPipelineConfig() PipelineConfig {
	return core.DefaultConfig()
}

// DefaultTrainingConfig returns SVM-backed training with the default
// pipeline.
func DefaultTrainingConfig() TrainingConfig {
	return core.IdentifierConfig{Pipeline: core.DefaultConfig()}
}

// Liquids lists every material in the built-in database, sorted by name.
func Liquids() []string {
	return material.PaperDatabase().Names()
}

// Liquid fetches a material from the built-in database by name.
func Liquid(name string) (material.Material, error) {
	return material.PaperDatabase().Get(name)
}

// MustLiquid is Liquid for static names; it panics on unknown names and is
// intended for initialisation paths only.
func MustLiquid(name string) *material.Material {
	m, err := Liquid(name)
	if err != nil {
		panic(fmt.Sprintf("wimi: %v", err))
	}
	return &m
}

// Simulate generates one measurement session for the scenario with the
// given seed. The same (scenario, seed) pair is bit-for-bit reproducible.
func Simulate(sc Scenario, seed int64) (*Session, error) {
	return simulate.Session(sc, seed)
}

// SimulateTrials generates n independent sessions of the same scenario.
func SimulateTrials(sc Scenario, n int, baseSeed int64) ([]*Session, error) {
	return simulate.TrialSet(sc, n, baseSeed)
}

// ExtractFeatures runs the WiMi pipeline (phase calibration, subcarrier
// selection, amplitude denoising, Ω̄ extraction) on a session.
func ExtractFeatures(s *Session, cfg PipelineConfig) (*Features, error) {
	return core.ExtractFeatures(s, cfg)
}

// Train fits an identifier on labelled sessions. Sessions must share the
// antenna configuration; the subcarrier set is calibrated automatically
// from the training data unless cfg pins one.
func Train(sessions []*Session, labels []string, cfg TrainingConfig) (*Identifier, error) {
	return core.TrainIdentifier(sessions, labels, cfg)
}

// SaveIdentifier serialises a trained identifier as JSON so that a model
// trained once per room can be reused without retraining.
func SaveIdentifier(id *Identifier, w io.Writer) error {
	return id.Save(w)
}

// LoadIdentifier reads a model written by SaveIdentifier.
func LoadIdentifier(r io.Reader) (*Identifier, error) {
	return core.LoadIdentifier(r)
}

// DiagnoseCapture scans a capture for dead antennas (silent RF chains) and
// dead subcarriers (notched or unreported bins).
func DiagnoseCapture(c *Capture) CaptureHealth {
	return core.DiagnoseCapture(c)
}

// IdentifyRobust identifies a session that may be damaged (dead antenna,
// dead subcarriers, short capture), falling back to the surviving antenna
// pairs and subcarriers down to a documented minimum-viability floor. The
// result carries the degradation report; sessions below the floor fail with
// an error wrapping ErrBelowViability.
func IdentifyRobust(id *Identifier, s *Session) (*RobustResult, error) {
	return id.IdentifyRobust(s)
}

// GroundTruthOmega returns the dielectric model's material feature Ω for a
// database liquid at the given carrier frequency — what a perfect
// measurement of Eq. 21 would produce.
func GroundTruthOmega(name string, carrier float64) (float64, error) {
	m, err := Liquid(name)
	if err != nil {
		return 0, err
	}
	return m.Omega(carrier), nil
}
