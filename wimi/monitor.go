package wimi

import (
	"repro/internal/csi"
	"repro/internal/monitor"
)

// MonitorConfig configures the passive target detector.
type MonitorConfig = monitor.Config

// MonitorEvent is a detected target appearance or removal.
type MonitorEvent = monitor.Event

// Detected event kinds.
const (
	TargetAppeared = monitor.TargetAppeared
	TargetRemoved  = monitor.TargetRemoved
)

// Detector watches a CSI packet stream for target changes (CUSUM
// changepoint detection on the mean log-amplitude).
type Detector = monitor.Detector

// Segmenter assembles identification-ready sessions from a continuous
// stream automatically — the paper's Fig. 1 vision.
type Segmenter = monitor.Segmenter

// Packet is one received CSI measurement.
type Packet = csi.Packet

// NewDetector builds a passive target detector.
func NewDetector(cfg MonitorConfig) (*Detector, error) {
	return monitor.NewDetector(cfg)
}

// NewSegmenter builds a stream segmenter: settle packets are discarded
// after a target appears, targetLen packets are collected per session, and
// baselineLen recent quiet packets become the paired baseline.
func NewSegmenter(cfg MonitorConfig, carrier float64, settle, targetLen, baselineLen int) (*Segmenter, error) {
	return monitor.NewSegmenter(cfg, carrier, settle, targetLen, baselineLen)
}
