// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: `go test -bench=. -benchmem` reproduces the
// whole of Sec. V (plus the ablations) and prints each result once.
//
// The measured ns/op is the cost of regenerating the experiment — useful
// for tracking the simulator and pipeline performance — while the printed
// tables are the scientific output (recorded in EXPERIMENTS.md).
package bench

import (
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/wimi"
)

// benchOptions is the paper-fidelity operating point: 20 trials per class
// ("we repeat collecting the measurements 20 times"), accuracies averaged
// over 3 train/test splits.
func benchOptions() experiment.Options {
	return experiment.Options{}
}

// runFig runs an experiment b.N times, printing the paper-style result on
// the first iteration.
func runFig[T fmt.Stringer](b *testing.B, name string, f func(experiment.Options) (T, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := f(benchOptions())
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

func BenchmarkFig02PhaseDistributions(b *testing.B)  { runFig(b, "fig2", experiment.Fig2) }
func BenchmarkFig03AmplitudeNoise(b *testing.B)      { runFig(b, "fig3", experiment.Fig3) }
func BenchmarkFig06SubcarrierVariance(b *testing.B)  { runFig(b, "fig6", experiment.Fig6) }
func BenchmarkFig07DenoisingComparison(b *testing.B) { runFig(b, "fig7", experiment.Fig7) }
func BenchmarkFig08AmplitudeVariance(b *testing.B)   { runFig(b, "fig8", experiment.Fig8) }
func BenchmarkFig09MaterialFeatures(b *testing.B)    { runFig(b, "fig9", experiment.Fig9) }
func BenchmarkFig10AntennaCombinations(b *testing.B) { runFig(b, "fig10", experiment.Fig10) }
func BenchmarkFig12PhaseCalibration(b *testing.B)    { runFig(b, "fig12", experiment.Fig12) }
func BenchmarkFig13SubcarrierChoice(b *testing.B)    { runFig(b, "fig13", experiment.Fig13) }
func BenchmarkFig14DenoiseAblation(b *testing.B)     { runFig(b, "fig14", experiment.Fig14) }
func BenchmarkFig15TenLiquids(b *testing.B)          { runFig(b, "fig15", experiment.Fig15) }
func BenchmarkFig16SaltConcentrations(b *testing.B)  { runFig(b, "fig16", experiment.Fig16) }
func BenchmarkFig17DistanceSweep(b *testing.B)       { runFig(b, "fig17", experiment.Fig17) }
func BenchmarkFig18PacketSweep(b *testing.B)         { runFig(b, "fig18", experiment.Fig18) }
func BenchmarkFig19ContainerSizes(b *testing.B)      { runFig(b, "fig19", experiment.Fig19) }
func BenchmarkFig20ContainerMaterials(b *testing.B)  { runFig(b, "fig20", experiment.Fig20) }
func BenchmarkFig21AntennaPairAccuracy(b *testing.B) { runFig(b, "fig21", experiment.Fig21) }

func BenchmarkAblationWavelet(b *testing.B) {
	runFig(b, "ablation-wavelet", experiment.AblationWavelet)
}
func BenchmarkAblationSubcarrierP(b *testing.B) {
	runFig(b, "ablation-p", experiment.AblationSubcarrierCount)
}
func BenchmarkAblationClassifier(b *testing.B) {
	runFig(b, "ablation-classifier", experiment.AblationClassifier)
}
func BenchmarkAblationMetal(b *testing.B) {
	runFig(b, "ablation-metal", experiment.AblationMetalContainer)
}
func BenchmarkAblationSNR(b *testing.B) { runFig(b, "ablation-snr", experiment.AblationSNR) }
func BenchmarkAblationSizeTransfer(b *testing.B) {
	runFig(b, "ablation-size", experiment.AblationSizeTransfer)
}
func BenchmarkAblationAbsoluteFeature(b *testing.B) {
	runFig(b, "ablation-absolute", experiment.AblationAbsoluteFeature)
}
func BenchmarkAblationMovingTarget(b *testing.B) {
	runFig(b, "ablation-motion", experiment.AblationMovingTarget)
}
func BenchmarkExtensionConcentration(b *testing.B) {
	runFig(b, "ext-concentration", experiment.ExtensionConcentration)
}
func BenchmarkExtensionDualBand(b *testing.B) {
	runFig(b, "ext-dualband", experiment.ExtensionDualBand)
}
func BenchmarkAblationPlacement(b *testing.B) {
	runFig(b, "ablation-placement", experiment.AblationPlacement)
}
func BenchmarkAblationAntennaCount(b *testing.B) {
	runFig(b, "ablation-antennas", experiment.AblationAntennaCount)
}
func BenchmarkAblationWaterTemperature(b *testing.B) {
	runFig(b, "ablation-temp", experiment.AblationWaterTemperature)
}
func BenchmarkExtensionMilkQuality(b *testing.B) {
	runFig(b, "ext-milk", experiment.ExtensionMilkQuality)
}
func BenchmarkAblationInterferer(b *testing.B) {
	runFig(b, "ablation-interferer", experiment.AblationInterferer)
}
func BenchmarkExtensionUnknownLiquid(b *testing.B) {
	runFig(b, "ext-unknown", experiment.ExtensionUnknownLiquid)
}
func BenchmarkAblationAutoTune(b *testing.B) {
	runFig(b, "ablation-autotune", experiment.AblationAutoTune)
}

// Component microbenchmarks: the pipeline's hot path.

func BenchmarkPipelineSimulateSession(b *testing.B) {
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Milk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wimi.Simulate(sc, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineExtractFeatures(b *testing.B) {
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Milk)
	session, err := wimi.Simulate(sc, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := wimi.DefaultPipelineConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wimi.ExtractFeatures(session, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineIdentify(b *testing.B) {
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey, wimi.Oil} {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 6, int64(li*1000+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		b.Fatal(err)
	}
	probe := sessions[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := id.Identify(probe); err != nil {
			b.Fatal(err)
		}
	}
}
