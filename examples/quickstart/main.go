// Quickstart: simulate one measurement of milk versus water, run the WiMi
// pipeline, and identify the liquid — the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"
	"os"

	"repro/wimi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build a training set: a few measured trials each of milk and
	//    pure water in the default lab setup.
	fmt.Println("simulating training measurements (milk vs pure water)...")
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.Milk, wimi.PureWater} {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 8, int64(li*1000+1))
		if err != nil {
			return err
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}

	// 2. Train the identifier (material database + SVM).
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		return err
	}

	// 3. A fresh, unseen glass of milk appears on the link.
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Milk)
	unknown, err := wimi.Simulate(sc, 424242)
	if err != nil {
		return err
	}

	// 4. Inspect the pipeline's evidence, then identify.
	feats, err := wimi.ExtractFeatures(unknown, wimi.DefaultPipelineConfig())
	if err != nil {
		return err
	}
	fmt.Printf("good subcarriers: %v\n", feats.GoodSubcarriers)
	for _, pf := range feats.Pairs {
		fmt.Printf("antenna pair %s: ΔΘ=%+.3f rad  ΔΨ=%.3f  Ω̄=%+.3f\n",
			pf.Pair, pf.DeltaTheta, pf.DeltaPsi, pf.Omega)
	}
	truth, err := wimi.GroundTruthOmega(wimi.Milk, 5.32e9)
	if err != nil {
		return err
	}
	fmt.Printf("(dielectric-model ground truth for milk: Ω = %+.3f)\n", truth)

	got, err := id.Identify(unknown)
	if err != nil {
		return err
	}
	fmt.Printf("\nidentified: %s\n", got)
	if got == wimi.Milk {
		fmt.Println("correct — the glass holds milk.")
	} else {
		fmt.Println("misidentified (simulation noise can do that on single trials).")
	}
	return nil
}
