// Liquid screening: the paper's motivating scenario — tell apart ten
// commonly seen liquids without opening the bottle, including the "Pepsi vs
// Coke without a taste" party trick. Trains on the full database, evaluates
// on held-out measurements and prints the confusion matrix (the shape of
// the paper's Fig. 15).
package main

import (
	"fmt"
	"os"

	"repro/internal/classify"
	"repro/wimi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liquid-screening:", err)
		os.Exit(1)
	}
}

func run() error {
	liquids := []string{
		wimi.Vinegar, wimi.Honey, wimi.Soy, wimi.Milk, wimi.Pepsi,
		wimi.Liquor, wimi.PureWater, wimi.Oil, wimi.Coke, wimi.SweetWater,
	}
	const trialsPerLiquid = 24
	const holdout = 6 // per liquid

	fmt.Printf("simulating %d measurements of %d liquids...\n",
		trialsPerLiquid*len(liquids), len(liquids))
	var trainS, testS []*wimi.Session
	var trainL, testL []string
	for li, name := range liquids {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, trialsPerLiquid, int64(li)*1_000_003+7)
		if err != nil {
			return err
		}
		for i, s := range trials {
			if i < trialsPerLiquid-holdout {
				trainS = append(trainS, s)
				trainL = append(trainL, name)
			} else {
				testS = append(testS, s)
				testL = append(testL, name)
			}
		}
	}

	fmt.Println("training the identifier (SVM over Ω̄ features)...")
	id, err := wimi.Train(trainS, trainL, wimi.DefaultTrainingConfig())
	if err != nil {
		return err
	}

	cm, err := classify.NewConfusionMatrix(liquids)
	if err != nil {
		return err
	}
	for i, s := range testS {
		got, err := id.Identify(s)
		if err != nil {
			return err
		}
		if err := cm.Add(testL[i], got); err != nil {
			return err
		}
	}
	fmt.Println()
	fmt.Print(cm)

	// The party trick, called out explicitly.
	pepsiAcc, err := cm.ClassAccuracy(wimi.Pepsi)
	if err != nil {
		return err
	}
	cokeAcc, err := cm.ClassAccuracy(wimi.Coke)
	if err != nil {
		return err
	}
	fmt.Printf("\nPepsi recognised %.0f%% of the time, Coke %.0f%% — without a taste.\n",
		100*pepsiAcc, 100*cokeAcc)
	return nil
}
