// Streaming collection: the distributed end-to-end demo. A simulated
// measurement node streams live CSI over TCP (as a laptop with the NIC
// would); a collector receives the baseline and target captures over the
// wire, assembles a session and identifies the liquid in near-real-time.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/csi"
	"repro/internal/transport"
	"repro/wimi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming-collection:", err)
		os.Exit(1)
	}
}

func run() error {
	// The liquid the remote node is actually measuring (the collector does
	// not know this).
	const secretLiquid = wimi.Vinegar
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(secretLiquid)
	session, err := wimi.Simulate(sc, 31337)
	if err != nil {
		return err
	}

	// Measurement node: two streaming endpoints, baseline then target (in
	// a real deployment one node re-registers between captures; two ports
	// keep the demo simple).
	baseSrv, err := startNode(&session.Baseline, sc)
	if err != nil {
		return err
	}
	defer func() { _ = baseSrv.Close() }()
	tgtSrv, err := startNode(&session.Target, sc)
	if err != nil {
		return err
	}
	defer func() { _ = tgtSrv.Close() }()
	fmt.Printf("measurement node streaming: baseline on %s, target on %s\n",
		baseSrv.Addr(), tgtSrv.Addr())

	// Collector: pull both captures over TCP.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fmt.Println("collecting baseline capture (empty container)...")
	baseline, err := transport.Collect(ctx, baseSrv.Addr().String(), 0)
	if err != nil {
		return err
	}
	fmt.Printf("  %d packets received\n", baseline.Len())
	fmt.Println("collecting target capture (liquid in place)...")
	target, err := transport.Collect(ctx, tgtSrv.Addr().String(), 0)
	if err != nil {
		return err
	}
	fmt.Printf("  %d packets received\n", target.Len())

	remote := &csi.Session{Carrier: sc.Carrier, Baseline: *baseline, Target: *target}
	if err := remote.Validate(); err != nil {
		return err
	}

	// Train locally on the liquid database and identify the remote target.
	fmt.Println("training identifier on the local material database...")
	liquids := []string{wimi.PureWater, wimi.Vinegar, wimi.Milk, wimi.Oil, wimi.Honey}
	var sessions []*wimi.Session
	var labels []string
	for li, name := range liquids {
		trainSc := wimi.DefaultScenario()
		trainSc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(trainSc, 10, int64(li)*1_000_003+11)
		if err != nil {
			return err
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		return err
	}
	got, err := id.Identify(remote)
	if err != nil {
		return err
	}
	fmt.Printf("\nremote target identified as: %s (actually %s)\n", got, secretLiquid)
	return nil
}

// startNode serves one capture at the paper's 10 ms cadence... sped up 10×
// so the demo finishes quickly.
func startNode(capture *csi.Capture, sc wimi.Scenario) (*transport.Server, error) {
	return transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			return transport.NewCaptureSource(capture), nil
		},
		NumAnt:   sc.NumAntennas,
		Carrier:  sc.Carrier,
		Interval: time.Millisecond,
	})
}
