// Passive monitor: the paper's Fig. 1 vision. A Wi-Fi link is watched
// continuously; when somebody places a container on the line of sight the
// CUSUM detector notices, the segmenter carves out a baseline/target
// session automatically, and the identifier names the liquid — no manual
// "capture baseline, pour, capture again" procedure.
//
// This example monitors ONE stream in-process. To monitor a fleet — many
// concurrent streams, TCP sources that reconnect through restarts,
// sliding-window re-identification, swap/removal events with hysteresis,
// and aggregate stats over HTTP — see `cmd/wimi-hub` (README "Monitoring a
// streaming fleet", DESIGN.md §11).
package main

import (
	"fmt"
	"os"

	"repro/wimi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "passive-monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	// Train the identifier once (the material database for this room).
	fmt.Println("training material database...")
	liquids := []string{wimi.PureWater, wimi.Milk, wimi.Honey, wimi.Oil, wimi.Soy}
	var sessions []*wimi.Session
	var labels []string
	for li, name := range liquids {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 10, int64(li)*1_000_003+13)
		if err != nil {
			return err
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		return err
	}

	// The live link: quiet, then someone puts down a glass of milk, walks
	// away, later swaps it for soy sauce.
	fmt.Println("watching the link...")
	stream, boundaries, err := buildStream()
	if err != nil {
		return err
	}
	sg, err := wimi.NewSegmenter(wimi.MonitorConfig{BaselinePackets: 30}, 5.32e9, 5, 20, 20)
	if err != nil {
		return err
	}
	identified := 0
	for i, pkt := range stream {
		session, ev, err := sg.Feed(pkt)
		if err != nil {
			return err
		}
		if ev != nil {
			fmt.Printf("  packet %4d: %s\n", i, ev.Kind)
		}
		if session != nil {
			got, err := id.Identify(session)
			if err != nil {
				return err
			}
			fmt.Printf("  packet %4d: identified → %s (actually %s)\n",
				i, got, boundaries[identified])
			identified++
		}
	}
	if identified == 0 {
		return fmt.Errorf("no target was ever identified")
	}
	fmt.Printf("\n%d container(s) identified passively.\n", identified)
	return nil
}

// buildStream synthesises the continuous link: 60 quiet packets, 60 packets
// of milk, 40 quiet, 60 packets of soy sauce, 40 quiet. Both targets come
// from the same simulated board so the stream is phase-continuous.
func buildStream() ([]wimi.Packet, []string, error) {
	mk := func(liquid string, packets int, seed int64) (*wimi.Session, error) {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(liquid)
		sc.Packets = packets
		return wimi.Simulate(sc, seed)
	}
	milk, err := mk(wimi.Milk, 160, 5)
	if err != nil {
		return nil, nil, err
	}
	soy, err := mk(wimi.Soy, 160, 5)
	if err != nil {
		return nil, nil, err
	}
	var stream []wimi.Packet
	stream = append(stream, milk.Baseline.Packets[:60]...)
	stream = append(stream, milk.Target.Packets[:60]...)
	stream = append(stream, milk.Baseline.Packets[60:100]...)
	stream = append(stream, soy.Target.Packets[:60]...)
	stream = append(stream, soy.Baseline.Packets[100:140]...)
	return stream, []string{wimi.Milk, wimi.Soy}, nil
}
