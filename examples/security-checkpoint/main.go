// Security checkpoint: the paper's airport scenario — screen containers on
// a conveyor for watch-list liquids (here: high-proof alcohol) without
// opening them. Demonstrates rejection thresholds on top of the classifier:
// a container is flagged only when the identifier is confident AND the
// identified class is on the watch list.
package main

import (
	"fmt"
	"os"

	"repro/internal/material"
	"repro/wimi"
)

// watchList are the liquids the checkpoint flags.
var watchList = map[string]bool{
	wimi.Liquor: true,
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "security-checkpoint:", err)
		os.Exit(1)
	}
}

func run() error {
	// Benign liquids travellers actually carry, plus the watch-list one.
	liquids := []string{wimi.PureWater, wimi.SweetWater, wimi.Milk, wimi.Oil, wimi.Liquor}

	fmt.Println("calibrating checkpoint (training on the liquid database)...")
	var sessions []*wimi.Session
	var labels []string
	for li, name := range liquids {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 12, int64(li)*999_983+3)
		if err != nil {
			return err
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		return err
	}

	// The conveyor: a stream of unknown containers.
	conveyor := []struct {
		actual string
		seed   int64
	}{
		{wimi.PureWater, 101}, {wimi.Liquor, 202}, {wimi.Milk, 303},
		{wimi.SweetWater, 404}, {wimi.Oil, 505}, {wimi.Liquor, 606},
		{wimi.PureWater, 707},
	}
	fmt.Printf("\nscreening %d containers:\n", len(conveyor))
	flagged, missed, falseAlarms := 0, 0, 0
	for i, item := range conveyor {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(item.actual)
		session, err := wimi.Simulate(sc, item.seed)
		if err != nil {
			return err
		}
		got, err := id.Identify(session)
		if err != nil {
			return err
		}
		verdict := "PASS"
		if watchList[got] {
			verdict = "FLAG"
			flagged++
			if !watchList[item.actual] {
				falseAlarms++
			}
		} else if watchList[item.actual] {
			missed++
		}
		fmt.Printf("  container %d: identified %-12s (actually %-12s) → %s\n",
			i+1, got, item.actual, verdict)
	}
	fmt.Printf("\nflagged %d, missed %d, false alarms %d\n", flagged, missed, falseAlarms)

	// Open-set rejection: anything whose features sit far from the trained
	// database — an unknown liquid OR a metal container hiding the liquid
	// entirely — gets flagged for manual inspection rather than guessed.
	fmt.Println("\nnovelty screening (unknown liquids and opaque containers):")
	const noveltyThreshold = 3.0
	check := func(desc string, sc wimi.Scenario, seed int64) error {
		session, err := wimi.Simulate(sc, seed)
		if err != nil {
			return err
		}
		score, err := id.NoveltyScore(session)
		if err != nil {
			return err
		}
		verdict := "known liquid"
		if score > noveltyThreshold {
			verdict = "NOT IN DATABASE → manual inspection"
		}
		fmt.Printf("  %-34s novelty %5.1f → %s\n", desc, score, verdict)
		return nil
	}
	// A database liquid scores low.
	known := wimi.DefaultScenario()
	known.Liquid = wimi.MustLiquid(wimi.Milk)
	if err := check("milk (in database)", known, 901); err != nil {
		return err
	}
	// A liquid the checkpoint was never trained on scores high.
	stranger := wimi.DefaultScenario()
	stranger.Liquid = wimi.MustLiquid(wimi.Honey)
	if err := check("honey (not in database)", stranger, 902); err != nil {
		return err
	}
	// Metal container: the liquor leaves no signature; the near-zero
	// features are just as alien to the database (the paper's documented
	// failure mode, caught instead of silently passed).
	metal := wimi.DefaultScenario()
	metal.Liquid = wimi.MustLiquid(wimi.Liquor)
	metal.Container = material.ContainerMetal
	return check("liquor in a METAL container", metal, 903)
}
