.PHONY: check build vet test race bench bench-allocs bench-compare microbench serve-smoke cluster-smoke hub-smoke svm-determinism alloc-guard profile

# The full pre-merge gate: vet, build, the SVM determinism contract, the
# test suite under the race detector (the transport/faults/serve layers are
# concurrent; -race is the point), the steady-state allocation guards and
# the binary smoke tests (single-node serve, the gateway cluster drill with
# a backend killed mid-burst, then the 1000-stream monitor-hub fleet drill).
check: vet build svm-determinism race alloc-guard serve-smoke cluster-smoke hub-smoke

# alloc-guard pins the zero-allocation inference contract: a warmed
# core.Pipeline identifies without allocating (single, batched, and
# baseline-cached batched paths), a warmed segmenter ring strides — push,
# trim, emit, release — without allocating, and a steady-state serve
# request (plus a steady-state gateway relay) stays under its allocation
# budget. Run WITHOUT -race (the guards skip themselves under
# instrumentation).
alloc-guard:
	go test -count=1 -run 'TestIdentifyPZeroAllocSteadyState|TestIdentifyBatchPZeroAllocSteadyState|TestIdentifyBatchCachedPZeroAllocSteadyState' ./internal/core
	go test -count=1 -run 'TestSegmenterStrideAllocSteadyState' ./internal/monitor
	go test -count=1 -run 'TestHandleIdentifyAllocSteadyState' ./internal/serve
	go test -count=1 -run 'TestGatewayRelayAllocSteadyState' ./internal/gateway

# svm-determinism pins the parallel-training contract under the race
# detector: byte-identical multiclass models and identical grid-search
# picks at any worker count, plus the solver's cached-error invariant.
svm-determinism:
	go test -race -count=1 -run 'WorkerCountInvariance|CachedError|BiasRefit' ./internal/svm

# serve-smoke builds the wimi-serve binary, starts it on a random port
# with a freshly trained fixture model, fires a scripted identify request,
# asserts the JSON response, and drains it with SIGTERM.
serve-smoke:
	go test -count=1 -run TestServeSmoke -v ./cmd/wimi-serve | grep -E "serve-smoke|PASS|FAIL|ok "

# cluster-smoke builds wimi-gateway, wimi-serve and wimi-load, brings up a
# 1-gateway/2-backend cluster (the gateway running its batched data plane,
# -batch 8), fires a 2s wimi-load burst while one backend is SIGKILLed
# mid-run, and requires zero failed requests — the failover contract as a
# binary-level drill.
cluster-smoke:
	go test -count=1 -run TestClusterSmoke -v ./cmd/wimi-gateway | grep -E "cluster-smoke|PASS|FAIL|ok "

# hub-smoke builds wimi-hub, drives 1000 simulated streams plus one real
# TCP source through it, requires ≥95% of the fleet to confirm its liquid,
# kills and restarts the TCP source mid-run (the stream must go down and
# recover), and drains the hub with SIGTERM — the fleet-monitoring
# contract as a binary-level drill.
hub-smoke:
	go test -count=1 -run TestHubSmoke -v ./cmd/wimi-hub | grep -E "hub-smoke|PASS|FAIL|ok "

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs the full evaluation harness and writes a dated benchmark record
# (per-experiment wall time + component microbenchmarks) for bench-compare.
bench:
	go run ./cmd/wimi-bench -experiment all -bench-json BENCH_$(shell date +%Y-%m-%d).json > /dev/null

# bench-allocs runs the allocation-focused go test benchmarks with
# -benchmem, then refreshes the dated BENCH record (whose micro entries
# carry allocs/op and bytes/op) so allocation behaviour is tracked over
# time and gated by bench-compare's -alloc-threshold.
bench-allocs:
	go test -bench 'BenchmarkServeIdentify' -benchmem -benchtime 50x -run xxx ./internal/serve
	go run ./cmd/wimi-bench -experiment fig18 -bench-json BENCH_$(shell date +%Y-%m-%d).json > /dev/null
	@echo "wrote BENCH_$(shell date +%Y-%m-%d).json"

# bench-compare diffs two benchmark records and fails on a >15% regression.
# Defaults to the two most recent BENCH_*.json; override with OLD=/NEW=.
OLD ?= $(word 2,$(shell ls -t BENCH_*.json 2>/dev/null))
NEW ?= $(word 1,$(shell ls -t BENCH_*.json 2>/dev/null))
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "need two BENCH_*.json records (or set OLD= and NEW=)"; exit 2; }
	go run ./cmd/benchdiff $(OLD) $(NEW)

# microbench runs the in-tree go test benchmarks (allocation counts included).
microbench:
	go test -bench=. -benchmem ./...

# profile captures CPU and heap profiles of one experiment into the
# (gitignored) profiles/ directory. Override EXPERIMENT= for a different
# figure; inspect with `go tool pprof profiles/$(EXPERIMENT).cpu.pprof`.
EXPERIMENT ?= fig18
profile:
	mkdir -p profiles
	go run ./cmd/wimi-bench -experiment $(EXPERIMENT) \
		-cpuprofile profiles/$(EXPERIMENT).cpu.pprof \
		-memprofile profiles/$(EXPERIMENT).mem.pprof > /dev/null
	@echo "wrote profiles/$(EXPERIMENT).cpu.pprof and profiles/$(EXPERIMENT).mem.pprof"
