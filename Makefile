.PHONY: check build vet test race bench

# The full pre-merge gate: vet, build, and the test suite under the race
# detector (the transport/faults layers are concurrent; -race is the point).
check: vet build race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem
