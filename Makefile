.PHONY: check build vet test race bench bench-compare microbench

# The full pre-merge gate: vet, build, and the test suite under the race
# detector (the transport/faults layers are concurrent; -race is the point).
check: vet build race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs the full evaluation harness and writes a dated benchmark record
# (per-experiment wall time + component microbenchmarks) for bench-compare.
bench:
	go run ./cmd/wimi-bench -experiment all -bench-json BENCH_$(shell date +%Y-%m-%d).json > /dev/null

# bench-compare diffs two benchmark records and fails on a >15% regression.
# Defaults to the two most recent BENCH_*.json; override with OLD=/NEW=.
OLD ?= $(word 2,$(shell ls -t BENCH_*.json 2>/dev/null))
NEW ?= $(word 1,$(shell ls -t BENCH_*.json 2>/dev/null))
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "need two BENCH_*.json records (or set OLD= and NEW=)"; exit 2; }
	go run ./cmd/benchdiff $(OLD) $(NEW)

# microbench runs the in-tree go test benchmarks (allocation counts included).
microbench:
	go test -bench=. -benchmem ./...
