package filter

import (
	"fmt"
	"math"
)

// Biquad is one second-order IIR section in direct form
// (b0 + b1·z⁻¹ + b2·z⁻²) / (1 + a1·z⁻¹ + a2·z⁻²). First-order sections set
// the z⁻² taps to zero.
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
}

// Apply filters x through the section (direct form II transposed), returning
// a new slice.
func (s Biquad) Apply(x []float64) []float64 {
	return s.apply(x, 0, 0)
}

// applySteady filters x with the internal state pre-loaded to the steady
// state it would have reached under a constant input of x[0] — the same
// trick as scipy's lfilter_zi, eliminating the startup step transient.
func (s Biquad) applySteady(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	v := x[0]
	y := v * (s.B0 + s.B1 + s.B2) / (1 + s.A1 + s.A2)
	z2 := s.B2*v - s.A2*y
	z1 := s.B1*v - s.A1*y + z2
	return s.apply(x, z1, z2)
}

func (s Biquad) apply(x []float64, z1, z2 float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		y := s.B0*v + z1
		z1 = s.B1*v - s.A1*y + z2
		z2 = s.B2*v - s.A2*y
		out[i] = y
	}
	return out
}

// Butterworth is a low-pass Butterworth filter realised as a cascade of
// biquad sections, designed with the bilinear transform.
type Butterworth struct {
	order    int
	cutoff   float64 // normalised to Nyquist (0, 1)
	sections []Biquad
}

// NewButterworth designs a low-pass Butterworth filter of the given order
// with cutoff normalised to the Nyquist frequency (0 < cutoff < 1).
func NewButterworth(order int, cutoff float64) (*Butterworth, error) {
	if order < 1 {
		return nil, fmt.Errorf("filter: butterworth order must be >= 1, got %d", order)
	}
	if cutoff <= 0 || cutoff >= 1 {
		return nil, fmt.Errorf("filter: butterworth cutoff must be in (0, 1), got %v", cutoff)
	}
	// Bilinear pre-warp: analog cutoff for a digital cutoff of
	// cutoff·π rad/sample.
	wc := math.Tan(math.Pi * cutoff / 2)
	bw := &Butterworth{order: order, cutoff: cutoff}
	// Conjugate pole pairs of the analog prototype at angles
	// θ_k = π/2 + (2k+1)π/(2n), scaled by wc.
	pairs := order / 2
	for k := 0; k < pairs; k++ {
		theta := math.Pi/2 + float64(2*k+1)*math.Pi/float64(2*order)
		// Analog section s² + a1·s + a0 with poles wc·e^{±jθ}.
		a1 := -2 * wc * math.Cos(theta)
		a0 := wc * wc
		d0 := 1 + a1 + a0
		bw.sections = append(bw.sections, Biquad{
			B0: a0 / d0, B1: 2 * a0 / d0, B2: a0 / d0,
			A1: (2*a0 - 2) / d0, A2: (1 - a1 + a0) / d0,
		})
	}
	if order%2 == 1 {
		// Real pole at -wc.
		d0 := 1 + wc
		bw.sections = append(bw.sections, Biquad{
			B0: wc / d0, B1: wc / d0, B2: 0,
			A1: (wc - 1) / d0, A2: 0,
		})
	}
	return bw, nil
}

// Order returns the filter order.
func (bw *Butterworth) Order() int { return bw.order }

// Cutoff returns the normalised cutoff frequency.
func (bw *Butterworth) Cutoff() float64 { return bw.cutoff }

// Apply runs x through the cascade once (causal, phase-distorting).
func (bw *Butterworth) Apply(x []float64) []float64 {
	out := append([]float64(nil), x...)
	for _, s := range bw.sections {
		out = s.Apply(out)
	}
	return out
}

// applySteadyCascade runs x through every section with steady-state
// initialisation.
func (bw *Butterworth) applySteadyCascade(x []float64) []float64 {
	out := x
	for _, s := range bw.sections {
		out = s.applySteady(out)
	}
	return out
}

// FiltFilt runs the cascade forward and backward for zero phase distortion,
// using odd-symmetric edge extension to suppress startup transients — the
// conventional way the comparison filter of Fig. 7c would be applied to CSI
// amplitude streams.
func (bw *Butterworth) FiltFilt(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	pad := 3 * (2*len(bw.sections) + 1)
	if pad >= n {
		pad = n - 1
	}
	ext := make([]float64, 0, n+2*pad)
	// Odd extension about the first sample.
	for i := pad; i >= 1; i-- {
		ext = append(ext, 2*x[0]-x[i])
	}
	ext = append(ext, x...)
	for i := n - 2; i >= n-1-pad; i-- {
		ext = append(ext, 2*x[n-1]-x[i])
	}
	y := bw.applySteadyCascade(ext)
	reverse(y)
	y = bw.applySteadyCascade(y)
	reverse(y)
	out := make([]float64, n)
	copy(out, y[pad:pad+n])
	return out
}

func reverse(x []float64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// FrequencyResponseMag returns |H(e^{jw})| of the cascade at normalised
// frequency w in [0, 1] (fraction of Nyquist).
func (bw *Butterworth) FrequencyResponseMag(w float64) float64 {
	omega := math.Pi * w
	re, im := 1.0, 0.0
	for _, s := range bw.sections {
		nr, ni := evalSection(s, omega)
		re, im = re*nr-im*ni, re*ni+im*nr
	}
	return math.Hypot(re, im)
}

// evalSection evaluates one biquad at e^{-jω} powers, returning the complex
// response as (re, im).
func evalSection(s Biquad, omega float64) (float64, float64) {
	c1, s1 := math.Cos(omega), math.Sin(omega)
	c2, s2 := math.Cos(2*omega), math.Sin(2*omega)
	numRe := s.B0 + s.B1*c1 + s.B2*c2
	numIm := -s.B1*s1 - s.B2*s2
	denRe := 1 + s.A1*c1 + s.A2*c2
	denIm := -s.A1*s1 - s.A2*s2
	den := denRe*denRe + denIm*denIm
	return (numRe*denRe + numIm*denIm) / den, (numIm*denRe - numRe*denIm) / den
}
