// Package filter implements the classical smoothing filters WiMi is
// compared against in Fig. 7 — median, sliding-window (slide) and
// Butterworth — plus the 3σ outlier rejection of Sec. III-C and a Hampel
// filter used in failure-injection tests.
//
// All filters are pure functions over float64 slices: inputs are never
// mutated and outputs always have the input length.
package filter

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
)

// Median applies a sliding median filter of the given odd window length.
// Edges are handled by shrinking the window symmetrically. window must be
// odd and >= 1; otherwise an error is returned.
func Median(x []float64, window int) ([]float64, error) {
	if window < 1 || window%2 == 0 {
		return nil, fmt.Errorf("filter: median window must be odd and >= 1, got %d", window)
	}
	out := make([]float64, len(x))
	half := window / 2
	buf := make([]float64, 0, window)
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		buf = append(buf[:0], x[lo:hi+1]...)
		sort.Float64s(buf)
		out[i] = buf[len(buf)/2]
	}
	return out, nil
}

// Slide applies a sliding-window moving average ("slide filter" in the
// paper's Fig. 7) of the given window length. Edges shrink the window.
// window must be >= 1.
func Slide(x []float64, window int) ([]float64, error) {
	if window < 1 {
		return nil, fmt.Errorf("filter: slide window must be >= 1, got %d", window)
	}
	out := make([]float64, len(x))
	half := window / 2
	for i := range x {
		lo, hi := i-half, i+half
		if window%2 == 0 {
			hi = i + half - 1
		}
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += x[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out, nil
}

// RejectOutliers3Sigma implements the paper's first denoising step: compute
// the mean and standard deviation of x and replace every sample outside
// [mu-3sigma, mu+3sigma] with the mean of its in-range neighbours (the paper
// "filters out" outliers; replacing rather than deleting keeps the series
// aligned with packet indices). The returned mask reports which samples were
// treated as outliers.
func RejectOutliers3Sigma(x []float64) (cleaned []float64, outliers []bool) {
	return RejectOutliers3SigmaInto(nil, nil, x)
}

// RejectOutliers3SigmaInto is RejectOutliers3Sigma with caller-owned output
// buffers: dst and mask are grown as needed, filled and returned, so the
// per-series denoising hot path reuses them instead of allocating two
// slices per call. Either may be nil; the values are identical to
// RejectOutliers3Sigma. dst must not alias x.
func RejectOutliers3SigmaInto(dst []float64, mask []bool, x []float64) (cleaned []float64, outliers []bool) {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	cleaned = dst[:len(x)]
	copy(cleaned, x)
	if cap(mask) < len(x) {
		mask = make([]bool, len(x))
	}
	outliers = mask[:len(x)]
	for i := range outliers {
		outliers[i] = false
	}
	if len(x) == 0 {
		return cleaned, outliers
	}
	mu := mathx.Mean(x)
	sigma := mathx.StdDev(x)
	lo, hi := mu-3*sigma, mu+3*sigma
	for i, v := range x {
		if v < lo || v > hi {
			outliers[i] = true
		}
	}
	for i := range x {
		if !outliers[i] {
			continue
		}
		cleaned[i] = nearestInlierMean(x, outliers, i)
	}
	return cleaned, outliers
}

// nearestInlierMean averages the closest in-range neighbour on each side of
// index i, falling back to the global mean when no inlier exists.
func nearestInlierMean(x []float64, outliers []bool, i int) float64 {
	var sum float64
	var n int
	for j := i - 1; j >= 0; j-- {
		if !outliers[j] {
			sum += x[j]
			n++
			break
		}
	}
	for j := i + 1; j < len(x); j++ {
		if !outliers[j] {
			sum += x[j]
			n++
			break
		}
	}
	if n == 0 {
		return mathx.Mean(x)
	}
	// Summed in the same order mathx.Mean walked the old slice, so the
	// replacement value is bit-identical.
	return sum / float64(n)
}

// Hampel applies a Hampel identifier: samples deviating from the window
// median by more than nsigma robust standard deviations are replaced by the
// window median. window must be odd and >= 3.
func Hampel(x []float64, window int, nsigma float64) ([]float64, error) {
	if window < 3 || window%2 == 0 {
		return nil, fmt.Errorf("filter: hampel window must be odd and >= 3, got %d", window)
	}
	if nsigma <= 0 {
		return nil, fmt.Errorf("filter: hampel nsigma must be positive, got %v", nsigma)
	}
	out := append([]float64(nil), x...)
	half := window / 2
	scratch := make([]float64, window+1)
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		win := x[lo : hi+1]
		var med, sigma float64
		med, sigma, scratch = mathx.MedianAndMADStdDevBuf(win, scratch)
		if sigma == 0 {
			continue
		}
		if d := x[i] - med; d > nsigma*sigma || d < -nsigma*sigma {
			out[i] = med
		}
	}
	return out, nil
}
