package filter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestMedianRemovesSpike(t *testing.T) {
	x := []float64{1, 1, 1, 10, 1, 1, 1}
	out, err := Median(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 1 {
			t.Errorf("out[%d] = %v, want 1", i, v)
		}
	}
}

func TestMedianWindowValidation(t *testing.T) {
	if _, err := Median([]float64{1}, 2); err == nil {
		t.Error("even window should error")
	}
	if _, err := Median([]float64{1}, 0); err == nil {
		t.Error("zero window should error")
	}
	out, err := Median([]float64{3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{3, 1, 2} {
		if out[i] != v {
			t.Error("window 1 should be identity")
		}
	}
}

func TestMedianPreservesLength(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		out, err := Median(xs, 5)
		return err == nil && len(out) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 9, 2}
	if _, err := Median(x, 3); err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 || x[2] != 9 {
		t.Error("input mutated")
	}
}

func TestSlideAveragesConstant(t *testing.T) {
	x := []float64{2, 2, 2, 2, 2}
	out, err := Slide(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 2 {
			t.Errorf("constant input should survive, got %v", out)
		}
	}
}

func TestSlideKnownValues(t *testing.T) {
	x := []float64{0, 3, 6}
	out, err := Slide(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3, 4.5} // edges shrink the window
	for i := range want {
		if !mathx.AlmostEqual(out[i], want[i], 1e-12) {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestSlideValidation(t *testing.T) {
	if _, err := Slide([]float64{1}, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestSlideReducesGaussianVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	out, err := Slide(x, 9)
	if err != nil {
		t.Fatal(err)
	}
	if vo, vx := mathx.Variance(out), mathx.Variance(x); vo > vx/4 {
		t.Errorf("window-9 average variance %v vs raw %v: expected ≈ 9x reduction", vo, vx)
	}
}

func TestRejectOutliers3Sigma(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 200)
	for i := range x {
		x[i] = 10 + rng.NormFloat64()*0.5
	}
	x[50] = 100 // blatant outlier
	x[120] = -80
	cleaned, mask := RejectOutliers3Sigma(x)
	if !mask[50] || !mask[120] {
		t.Fatal("outliers not flagged")
	}
	if math.Abs(cleaned[50]-10) > 2 || math.Abs(cleaned[120]-10) > 2 {
		t.Errorf("outliers not replaced near baseline: %v, %v", cleaned[50], cleaned[120])
	}
	// Inliers untouched.
	for i := range x {
		if !mask[i] && cleaned[i] != x[i] {
			t.Errorf("inlier %d modified", i)
		}
	}
}

func TestRejectOutliersEmptyAndConstant(t *testing.T) {
	cleaned, mask := RejectOutliers3Sigma(nil)
	if len(cleaned) != 0 || len(mask) != 0 {
		t.Error("empty input should produce empty output")
	}
	// Constant data: sigma 0, nothing outside [mu, mu].
	cleaned, mask = RejectOutliers3Sigma([]float64{4, 4, 4})
	for i := range mask {
		if mask[i] || cleaned[i] != 4 {
			t.Error("constant data should have no outliers")
		}
	}
}

func TestHampelReplacesImpulse(t *testing.T) {
	x := []float64{1, 1.1, 0.9, 9, 1.05, 0.95, 1}
	out, err := Hampel(x, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[3] > 1.2 {
		t.Errorf("impulse survived Hampel: %v", out[3])
	}
}

func TestHampelValidation(t *testing.T) {
	if _, err := Hampel([]float64{1}, 4, 3); err == nil {
		t.Error("even window should error")
	}
	if _, err := Hampel([]float64{1}, 5, 0); err == nil {
		t.Error("nonpositive nsigma should error")
	}
}

func TestHampelConstantRegion(t *testing.T) {
	// Zero MAD regions must not divide by zero or modify anything.
	x := []float64{2, 2, 2, 2, 2}
	out, err := Hampel(x, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != 2 {
			t.Error("constant region modified")
		}
	}
}
