package filter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

func TestNewButterworthValidation(t *testing.T) {
	if _, err := NewButterworth(0, 0.5); err == nil {
		t.Error("order 0 should error")
	}
	if _, err := NewButterworth(4, 0); err == nil {
		t.Error("cutoff 0 should error")
	}
	if _, err := NewButterworth(4, 1); err == nil {
		t.Error("cutoff 1 should error")
	}
}

func TestButterworthDCGainUnity(t *testing.T) {
	for _, order := range []int{1, 2, 3, 4, 5, 8} {
		bw, err := NewButterworth(order, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if g := bw.FrequencyResponseMag(0); !mathx.AlmostEqual(g, 1, 1e-9) {
			t.Errorf("order %d: DC gain = %v, want 1", order, g)
		}
	}
}

func TestButterworthCutoffMinus3dB(t *testing.T) {
	// Butterworth magnitude at the cutoff is exactly 1/√2.
	for _, order := range []int{2, 4, 6} {
		bw, err := NewButterworth(order, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		g := bw.FrequencyResponseMag(0.4)
		if !mathx.AlmostEqual(g, 1/math.Sqrt2, 1e-6) {
			t.Errorf("order %d: |H(cutoff)| = %v, want %v", order, g, 1/math.Sqrt2)
		}
	}
}

func TestButterworthMonotoneMagnitude(t *testing.T) {
	// Butterworth is maximally flat: magnitude decreases monotonically.
	bw, err := NewButterworth(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for w := 0.0; w <= 1.0; w += 0.01 {
		g := bw.FrequencyResponseMag(w)
		if g > prev+1e-9 {
			t.Fatalf("magnitude not monotone at w=%v: %v > %v", w, g, prev)
		}
		prev = g
	}
}

func TestButterworthStopbandAttenuation(t *testing.T) {
	bw, err := NewButterworth(4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// 4th order: 80 dB/decade; at 5x cutoff expect < -50 dB.
	if g := bw.FrequencyResponseMag(0.99); g > 0.003 {
		t.Errorf("stopband gain %v, want < 0.003", g)
	}
}

func TestButterworthApplyAttenuatesHighFreq(t *testing.T) {
	bw, err := NewButterworth(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	low := make([]float64, n)
	high := make([]float64, n)
	for i := range low {
		low[i] = math.Sin(2 * math.Pi * 0.01 * float64(i))  // well below cutoff
		high[i] = math.Sin(2 * math.Pi * 0.45 * float64(i)) // well above
	}
	lo := bw.Apply(low)
	hi := bw.Apply(high)
	// Skip the transient.
	pl := mathx.Power(lo[200:])
	ph := mathx.Power(hi[200:])
	if pl < 0.4 {
		t.Errorf("passband power %v, want ≈ 0.5", pl)
	}
	if ph > 1e-4 {
		t.Errorf("stopband power %v, want ≈ 0", ph)
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	// The peak of a smooth pulse must not shift after FiltFilt.
	bw, err := NewButterworth(4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	x := make([]float64, n)
	for i := range x {
		d := float64(i - 128)
		x[i] = math.Exp(-d * d / 200)
	}
	y := bw.FiltFilt(x)
	if len(y) != n {
		t.Fatalf("length changed: %d", len(y))
	}
	if peak := mathx.ArgMax(y); peak < 126 || peak > 130 {
		t.Errorf("peak moved to %d, want ≈128 (zero phase)", peak)
	}
	// Causal Apply, by contrast, delays the peak.
	yc := bw.Apply(x)
	if peak := mathx.ArgMax(yc); peak <= 128 {
		t.Errorf("causal filter should delay the peak, got %d", peak)
	}
}

func TestFiltFiltEmptyAndShort(t *testing.T) {
	bw, err := NewButterworth(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out := bw.FiltFilt(nil); out != nil {
		t.Error("FiltFilt(nil) should be nil")
	}
	out := bw.FiltFilt([]float64{1, 2})
	if len(out) != 2 {
		t.Errorf("short input length = %d", len(out))
	}
}

func TestFiltFiltConstantSignal(t *testing.T) {
	bw, err := NewButterworth(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 100)
	for i := range x {
		x[i] = 7
	}
	y := bw.FiltFilt(x)
	for i, v := range y {
		if !mathx.AlmostEqual(v, 7, 1e-6) {
			t.Fatalf("constant distorted at %d: %v", i, v)
		}
	}
}

func TestFiltFiltSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 512
	clean := make([]float64, n)
	dirty := make([]float64, n)
	for i := range clean {
		clean[i] = math.Sin(2 * math.Pi * 0.01 * float64(i))
		dirty[i] = clean[i] + rng.NormFloat64()*0.3
	}
	bw, err := NewButterworth(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	y := bw.FiltFilt(dirty)
	var errBefore, errAfter float64
	for i := range clean {
		errBefore += (dirty[i] - clean[i]) * (dirty[i] - clean[i])
		errAfter += (y[i] - clean[i]) * (y[i] - clean[i])
	}
	if errAfter >= errBefore/2 {
		t.Errorf("FiltFilt residual %v, want < half of %v", errAfter, errBefore)
	}
}

func TestBiquadApplyIdentity(t *testing.T) {
	s := Biquad{B0: 1}
	x := []float64{1, -2, 3}
	y := s.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("unity biquad should be identity, got %v", y)
		}
	}
}

func BenchmarkFiltFilt512(b *testing.B) {
	bw, err := NewButterworth(4, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.FiltFilt(x)
	}
}
