// Package linalg provides the dense symmetric eigendecomposition and PCA
// the CARM/WiKey-style denoising baseline needs (paper Related Work:
// "current works such as CARM and WiKey use PCA technology to remove the
// environmental noise ... which is still not stable enough for our
// system"). Implemented from scratch: cyclic Jacobi rotations, which are
// simple, numerically robust and plenty fast for the ≤30×30 matrices CSI
// produces.
package linalg

import (
	"fmt"
	"math"
)

// SymEig computes all eigenvalues and orthonormal eigenvectors of a
// symmetric matrix a (n×n, row-major [][]float64) using the cyclic Jacobi
// method. Returns eigenvalues in DESCENDING order with the matching
// eigenvectors as columns of v (v[i][j] = component i of eigenvector j).
// The input must be square and symmetric within a small tolerance.
func SymEig(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("linalg: empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := math.Abs(a[i][j] - a[j][i]); d > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, nil, fmt.Errorf("linalg: matrix not symmetric at (%d,%d): %v vs %v", i, j, a[i][j], a[j][i])
			}
		}
	}
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				jacobiRotate(m, v, p, q)
			}
		}
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = m[i][i]
	}
	// Sort descending with vectors.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[order[j]] > values[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := make([][]float64, n)
	for i := range sortedVecs {
		sortedVecs[i] = make([]float64, n)
	}
	for newCol, oldCol := range order {
		sortedVals[newCol] = values[oldCol]
		for row := 0; row < n; row++ {
			sortedVecs[row][newCol] = v[row][oldCol]
		}
	}
	return sortedVals, sortedVecs, nil
}

// jacobiRotate zeroes m[p][q] with a Givens rotation, accumulating into v.
func jacobiRotate(m, v [][]float64, p, q int) {
	n := len(m)
	apq := m[p][q]
	theta := (m[q][q] - m[p][p]) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	tau := s / (1 + c)
	mpp := m[p][p]
	mqq := m[q][q]
	m[p][p] = mpp - t*apq
	m[q][q] = mqq + t*apq
	m[p][q] = 0
	m[q][p] = 0
	for i := 0; i < n; i++ {
		if i != p && i != q {
			mip := m[i][p]
			miq := m[i][q]
			m[i][p] = mip - s*(miq+tau*mip)
			m[p][i] = m[i][p]
			m[i][q] = miq + s*(mip-tau*miq)
			m[q][i] = m[i][q]
		}
		vip := v[i][p]
		viq := v[i][q]
		v[i][p] = vip - s*(viq+tau*vip)
		v[i][q] = viq + s*(vip-tau*viq)
	}
}

func identity(n int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	return v
}

func offDiagNorm(m [][]float64) float64 {
	var s float64
	for i := range m {
		for j := range m[i] {
			if i != j {
				s += m[i][j] * m[i][j]
			}
		}
	}
	return math.Sqrt(s)
}

// PCA holds a fitted principal component analysis.
type PCA struct {
	mean       []float64
	components [][]float64 // components[i][j]: dim i of component j
	variances  []float64   // eigenvalues, descending
}

// FitPCA computes principal components of the rows of x (samples × dims).
// At least two samples and one dimension are required.
func FitPCA(x [][]float64) (*PCA, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("linalg: PCA needs at least 2 samples, got %d", n)
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, fmt.Errorf("linalg: PCA needs at least 1 dimension")
	}
	mean := make([]float64, dim)
	for _, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("linalg: ragged PCA input")
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Covariance (dims × dims).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, row := range x {
		for i := 0; i < dim; i++ {
			di := row[i] - mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs, err := SymEig(cov)
	if err != nil {
		return nil, fmt.Errorf("linalg: PCA eigendecomposition: %w", err)
	}
	return &PCA{mean: mean, components: vecs, variances: vals}, nil
}

// Variances returns the per-component variances (eigenvalues), descending.
func (p *PCA) Variances() []float64 {
	return append([]float64(nil), p.variances...)
}

// Project maps a sample onto the first k principal components.
func (p *PCA) Project(row []float64, k int) ([]float64, error) {
	dim := len(p.mean)
	if len(row) != dim {
		return nil, fmt.Errorf("linalg: sample has %d dims, PCA fitted on %d", len(row), dim)
	}
	if k < 1 || k > dim {
		return nil, fmt.Errorf("linalg: k=%d outside [1,%d]", k, dim)
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var s float64
		for i := 0; i < dim; i++ {
			s += (row[i] - p.mean[i]) * p.components[i][c]
		}
		out[c] = s
	}
	return out, nil
}

// Reconstruct maps a sample through the first k components and back — the
// PCA denoising operation (keep dominant structure, discard the rest).
func (p *PCA) Reconstruct(row []float64, k int) ([]float64, error) {
	proj, err := p.Project(row, k)
	if err != nil {
		return nil, err
	}
	dim := len(p.mean)
	out := append([]float64(nil), p.mean...)
	for c := 0; c < k; c++ {
		for i := 0; i < dim; i++ {
			out[i] += proj[c] * p.components[i][c]
		}
	}
	return out, nil
}

// DenoiseSeriesPCA applies CARM/WiKey-style PCA denoising to a multichannel
// series (samples × channels): fit PCA over the samples, keep the top k
// components, reconstruct. Returns a new matrix of the same shape.
func DenoiseSeriesPCA(x [][]float64, k int) ([][]float64, error) {
	p, err := FitPCA(x)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		r, err := p.Reconstruct(row, k)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
