package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

func TestSymEigDiagonal(t *testing.T) {
	a := [][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if !mathx.AlmostEqual(vals[i], want[i], 1e-10) {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit basis vectors.
	for c := 0; c < 3; c++ {
		var norm float64
		for r := 0; r < 3; r++ {
			norm += vecs[r][c] * vecs[r][c]
		}
		if !mathx.AlmostEqual(norm, 1, 1e-10) {
			t.Errorf("eigenvector %d not unit", c)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := SymEig([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(vals[0], 3, 1e-10) || !mathx.AlmostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
	// First eigenvector ∝ (1,1)/√2.
	if !mathx.AlmostEqual(math.Abs(vecs[0][0]), 1/math.Sqrt2, 1e-9) {
		t.Errorf("vecs = %v", vecs)
	}
}

func TestSymEigValidation(t *testing.T) {
	if _, _, err := SymEig(nil); err == nil {
		t.Error("empty matrix should error")
	}
	if _, _, err := SymEig([][]float64{{1, 2}}); err == nil {
		t.Error("non-square should error")
	}
	if _, _, err := SymEig([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("asymmetric should error")
	}
}

func TestSymEigReconstruction(t *testing.T) {
	// A = V Λ Vᵀ must hold for random symmetric matrices.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i][j] = v
				a[j][i] = v
			}
		}
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Eigenvalues descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// Reconstruct and compare.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for c := 0; c < n; c++ {
					s += vecs[i][c] * vals[c] * vecs[j][c]
				}
				if !mathx.AlmostEqual(s, a[i][j], 1e-7) {
					t.Fatalf("trial %d: A[%d][%d] = %v, reconstructed %v", trial, i, j, a[i][j], s)
				}
			}
		}
		// Orthonormal columns.
		for c1 := 0; c1 < n; c1++ {
			for c2 := c1; c2 < n; c2++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += vecs[r][c1] * vecs[r][c2]
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if !mathx.AlmostEqual(dot, want, 1e-8) {
					t.Fatalf("columns %d·%d = %v, want %v", c1, c2, dot, want)
				}
			}
		}
	}
}

func TestFitPCAValidation(t *testing.T) {
	if _, err := FitPCA(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitPCA([][]float64{{1}}); err == nil {
		t.Error("single sample should error")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input should error")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data along (1,1) with small orthogonal noise: the first component
	// must align with (1,1)/√2 and carry almost all the variance.
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	for i := 0; i < 300; i++ {
		tt := rng.NormFloat64() * 3
		noise := rng.NormFloat64() * 0.1
		x = append(x, []float64{tt + noise, tt - noise})
	}
	p, err := FitPCA(x)
	if err != nil {
		t.Fatal(err)
	}
	vars := p.Variances()
	if vars[0] < 50*vars[1] {
		t.Errorf("variance ratio %v/%v too small", vars[0], vars[1])
	}
	// Projection is affine (centred on the data mean), so compare the
	// difference of two projections: Δproj = Δx · v₁ = (1,1)·v₁ = ±√2 when
	// v₁ ∝ (1,1)/√2.
	pa, err := p.Project([]float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := p.Project([]float64{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(pa[0] - pb[0]); math.Abs(d-math.Sqrt2) > 0.05 {
		t.Errorf("Δprojection along (1,1) = %v, want √2", d)
	}
}

func TestPCAProjectValidation(t *testing.T) {
	p, err := FitPCA([][]float64{{1, 2}, {3, 4}, {5, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Project([]float64{1}, 1); err == nil {
		t.Error("wrong dims should error")
	}
	if _, err := p.Project([]float64{1, 2}, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := p.Project([]float64{1, 2}, 3); err == nil {
		t.Error("k too big should error")
	}
}

func TestPCAReconstructFullRankIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	p, err := FitPCA(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x[:10] {
		back, err := p.Reconstruct(row, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range row {
			if !mathx.AlmostEqual(back[j], row[j], 1e-8) {
				t.Fatalf("full-rank reconstruction differs: %v vs %v", back, row)
			}
		}
	}
}

func TestDenoiseSeriesPCARemovesOrthogonalNoise(t *testing.T) {
	// Channels share one latent signal plus independent noise: keeping one
	// component must reduce the per-channel error.
	rng := rand.New(rand.NewSource(4))
	n := 400
	clean := make([][]float64, n)
	dirty := make([][]float64, n)
	for i := 0; i < n; i++ {
		latent := math.Sin(float64(i) * 0.05)
		clean[i] = []float64{latent, 2 * latent, -latent}
		dirty[i] = []float64{
			latent + rng.NormFloat64()*0.3,
			2*latent + rng.NormFloat64()*0.3,
			-latent + rng.NormFloat64()*0.3,
		}
	}
	den, err := DenoiseSeriesPCA(dirty, 1)
	if err != nil {
		t.Fatal(err)
	}
	var errBefore, errAfter float64
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			db := dirty[i][j] - clean[i][j]
			da := den[i][j] - clean[i][j]
			errBefore += db * db
			errAfter += da * da
		}
	}
	if errAfter >= errBefore/1.5 {
		t.Errorf("PCA denoising error %v, want well below %v", errAfter, errBefore)
	}
}

func BenchmarkSymEig30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 30
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i][j] = v
			a[j][i] = v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}
