//go:build !race

// Package raceflag reports at build time whether the race detector is
// enabled, so allocation-guard tests can skip themselves: the race runtime
// instruments allocations and makes testing.AllocsPerRun meaningless.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false
