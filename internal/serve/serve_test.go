package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/registry"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// fixture bundles a served model and sessions to probe it with.
type fixture struct {
	registry *registry.Registry
	path     string
	sessions []*csi.Session
	labels   []string
}

// newFixture trains a small model over liquids, persists it, and opens a
// registry on it.
func newFixture(t testing.TB, liquids []string) *fixture {
	t.Helper()
	model, sessions, labels := trainModel(t, liquids)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{registry: reg, path: path, sessions: sessions, labels: labels}
}

func trainModel(t testing.TB, liquids []string) ([]byte, []*csi.Session, []string) {
	t.Helper()
	db := material.PaperDatabase()
	var sessions []*csi.Session
	var labels []string
	for mi, name := range liquids {
		m, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := simulate.Default()
		sc.Liquid = &m
		for trial := 0; trial < 4; trial++ {
			s, err := simulate.Session(sc, int64(mi*100000+trial*7919))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sessions, labels
}

// encodeRequest renders a session as the wire format: two .csitrace
// streams base64-embedded in JSON.
func encodeRequest(t testing.TB, s *csi.Session) []byte {
	t.Helper()
	req := IdentifyRequest{
		Baseline: encodeTrace(t, &s.Baseline, s.Carrier),
		Target:   encodeTrace(t, &s.Target, s.Carrier),
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func encodeTrace(t testing.TB, c *csi.Capture, carrier float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, c.NumAntennas(), carrier)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCapture(c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postIdentify(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, IdentifyResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var out IdentifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestIdentifyEndToEnd(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey, material.Oil})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	correct := 0
	for i, session := range fx.sessions {
		resp, out := postIdentify(t, ts, encodeRequest(t, session))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %d: status %d", i, resp.StatusCode)
		}
		if out.Material == fx.labels[i] {
			correct++
		}
		if out.Confidence < 0 || out.Confidence > 1 {
			t.Errorf("session %d: confidence %v", i, out.Confidence)
		}
		if !strings.HasPrefix(out.ModelVersion, "sha256:") {
			t.Errorf("session %d: model version %q", i, out.ModelVersion)
		}
		if got := resp.Header.Get(ModelVersionHeader); got != out.ModelVersion {
			t.Errorf("session %d: %s header %q, want body version %q",
				i, ModelVersionHeader, got, out.ModelVersion)
		}
	}
	// Training sessions should identify almost perfectly.
	if correct < len(fx.sessions)-1 {
		t.Errorf("only %d/%d training sessions identified correctly", correct, len(fx.sessions))
	}
	if st := s.Stats(); st.Served != uint64(len(fx.sessions)) {
		t.Errorf("served counter %d, want %d", st.Served, len(fx.sessions))
	}
}

func TestIdentifyConcurrentBatches(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry, MaxBatch: 4, BatchWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := encodeRequest(t, fx.sessions[0])
	var wg sync.WaitGroup
	errs := make([]error, 24)
	status := make([]int, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			status[i] = resp.StatusCode
			_ = resp.Body.Close()
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if status[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, status[i])
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Ready        bool   `json:"ready"`
		ModelVersion string `json:"modelVersion"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !ready.Ready || ready.ModelVersion == "" {
		t.Errorf("readyz before drain: %+v", ready)
	}

	// Draining flips readiness and refuses new identify requests.
	s.Shutdown()
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d", resp.StatusCode)
	}
	body := encodeRequest(t, fx.sessions[0])
	resp, _ = postIdentify(t, ts, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("identify while draining: %d", resp.StatusCode)
	}
}

func TestIdentifyRejectsBadRequests(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"not json", "chaos"},
		{"empty object", "{}"},
		{"missing target", `{"baseline":"QUJD"}`},
		{"garbage traces", `{"baseline":"QUJD","target":"QUJD"}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestHotReloadKeepsInFlightRequests swaps the model while a request is
// mid-batch and asserts the in-flight request completes on the model it
// started with, while later requests see the new version.
func TestHotReloadKeepsInFlightRequests(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry, MaxBatch: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	oldVersion := fx.registry.Active().Version
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.holdBatch = func([]*job) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := encodeRequest(t, fx.sessions[0])
	type result struct {
		status  int
		version string
	}
	first := make(chan result, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			first <- result{}
			return
		}
		var out IdentifyResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		_ = resp.Body.Close()
		first <- result{resp.StatusCode, out.ModelVersion}
	}()
	<-entered // request is now in the pipeline, holding its model snapshot

	// Push a new model file and reload while the request is in flight.
	newModel, _, _ := trainModel(t, []string{material.Milk, material.Oil})
	if err := os.WriteFile(fx.path, newModel, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", resp.StatusCode)
	}
	newVersion := fx.registry.Active().Version
	if newVersion == oldVersion {
		t.Fatal("reload did not change the active version")
	}

	close(release)
	got := <-first
	if got.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d", got.status)
	}
	if got.version != oldVersion {
		t.Errorf("in-flight request answered by %q, want the model it started with %q", got.version, oldVersion)
	}

	// A fresh request is served by the new model.
	s.holdBatch = nil
	resp2, out := postIdentify(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-reload request: status %d", resp2.StatusCode)
	}
	if out.ModelVersion != newVersion {
		t.Errorf("post-reload request answered by %q, want %q", out.ModelVersion, newVersion)
	}
}

// TestShedsWith429WhenSaturated fills the admission queue while the
// pipeline is held and asserts overload is shed with 429 + Retry-After
// instead of queueing unboundedly.
func TestShedsWith429WhenSaturated(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{
		Registry:   fx.registry,
		MaxBatch:   1,
		QueueDepth: 2,
		RetryAfter: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.holdBatch = func([]*job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := encodeRequest(t, fx.sessions[0])

	// Saturate: 1 in the held batch + 2 queued; wait until the queue
	// really holds 2, then the next request must shed.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err == nil {
				_ = resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.batcher.QueueLen() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.batcher.QueueLen() < 2 {
		t.Fatal("queue never filled")
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q, want %q", got, "3")
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Error("shed counter did not move")
	}
	close(release)
	wg.Wait()
	s.Shutdown()
}

// TestComputeRetryAfter pins the load-derived Retry-After hint: queued
// work over drain rate, clamped, with the configured constant as the
// no-data fallback.
func TestComputeRetryAfter(t *testing.T) {
	cases := []struct {
		name     string
		queued   int
		rate     float64
		fallback time.Duration
		want     time.Duration
	}{
		{"no rate falls back", 10, 0, 3 * time.Second, 3 * time.Second},
		{"no rate, no fallback", 10, 0, 0, time.Second},
		{"fast drain clamps to 1s", 4, 100, 3 * time.Second, time.Second},
		{"queue over rate", 20, 2, time.Second, 10 * time.Second},
		{"slow drain clamps to 60s", 500, 0.5, time.Second, time.Minute},
		{"empty queue still waits 1s", 0, 5, time.Second, time.Second},
	}
	for _, tc := range cases {
		if got := computeRetryAfter(tc.queued, tc.rate, tc.fallback); got != tc.want {
			t.Errorf("%s: computeRetryAfter(%d, %v, %v) = %v, want %v",
				tc.name, tc.queued, tc.rate, tc.fallback, got, tc.want)
		}
	}
}

// TestRetryAfterReflectsDrainRate establishes a real drain rate, then
// saturates the queue and asserts the 429 hint is computed from load —
// not the (deliberately large) configured fallback.
func TestRetryAfterReflectsDrainRate(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{
		Registry:   fx.registry,
		MaxBatch:   1,
		QueueDepth: 2,
		RetryAfter: 45 * time.Second, // fallback; computed path must beat it
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := encodeRequest(t, fx.sessions[0])

	// Sequential requests spaced past the drain meter's 50ms sampling
	// window give it a real jobs/sec estimate.
	for i := 0; i < 4; i++ {
		resp, _ := postIdentify(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up request %d: status %d", i, resp.StatusCode)
		}
		time.Sleep(60 * time.Millisecond)
	}
	if rate := s.drain.currentRate(); rate <= 0 {
		t.Fatalf("drain rate not established: %v", rate)
	}

	// Wedge the pipeline and overfill the queue.
	release := make(chan struct{})
	s.holdBatch = func([]*job) { <-release }
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err == nil {
				_ = resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.batcher.QueueLen() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// Identifies run in single-digit milliseconds, so draining a 2-deep
	// queue takes well under the fallback: the hint must be computed.
	if secs < 1 || secs >= 45 {
		t.Errorf("Retry-After %ds: want a computed hint in [1, 45)", secs)
	}
	// Unwedge BEFORE Shutdown: the drain waits on the dispatcher, which
	// is parked in the held batch.
	close(release)
	wg.Wait()
	s.Shutdown()
}

// TestShutdownDrainsAdmittedRequests verifies admitted requests complete
// during drain.
func TestShutdownDrainsAdmittedRequests(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry, MaxBatch: 2, QueueDepth: 16, BatchWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := encodeRequest(t, fx.sessions[0])

	results := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- -1
				return
			}
			_ = resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	// Let requests be admitted, then drain.
	time.Sleep(10 * time.Millisecond)
	s.Shutdown()
	wg.Wait()
	close(results)
	for code := range results {
		// Every admitted request must finish 200; late arrivals may see
		// the draining 503 — but nothing may hang or error out.
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("request finished with %d", code)
		}
	}
}
