package serve

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/material"
	"repro/internal/raceflag"
)

// maxIdentifyAllocs bounds the steady-state allocation count of one whole
// in-process /v1/identify round trip: request/recorder construction, JSON +
// base64 decode of two traces, job submission and the response write. The
// DSP pipeline and CSI decode contribute zero — a warmed run measures ~80;
// the bound leaves headroom for runtime jitter while still catching any
// per-sample allocation sneaking back into the hot path (which costs
// hundreds at once).
const maxIdentifyAllocs = 160

// TestHandleIdentifyAllocSteadyState guards the serve fast path: once pools
// are warm, a request must not pay per-packet or per-subcarrier
// allocations.
func TestHandleIdentifyAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	fx := newFixture(t, []string{material.PureWater, material.Honey, material.Oil})
	s, err := New(Config{Registry: fx.registry, BatchWindow: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	body := encodeRequest(t, fx.sessions[0])
	h := s.Handler()
	do := func() {
		req := httptest.NewRequest("POST", "/v1/identify", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	for i := 0; i < 5; i++ { // warm the scratch, pipeline and encoder pools
		do()
	}
	avg := testing.AllocsPerRun(30, do)
	if avg > maxIdentifyAllocs {
		t.Fatalf("steady-state identify request allocates %.1f times per run, want <= %d", avg, maxIdentifyAllocs)
	}
}
