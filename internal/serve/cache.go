package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// cacheKey identifies one verdict: the SHA-256 of the raw request body
// plus the content hash of the model that answered. Hashing the wire bytes
// — the same bytes the gateway's rendezvous router hashes — lets a hit be
// decided before the JSON/base64 decode, which dominates the replay path.
// Binding the model version into the key makes hot-swap invalidation
// structural — entries written under an old model can never be returned
// for the new one; they simply stop matching and are evicted by LRU
// pressure.
type cacheKey struct {
	digest  [32]byte
	version string
}

// verdictCache is a bounded LRU from capture+model digest to verdict. A
// plain mutex suffices: hits replace the whole pipeline (trace decode, DSP,
// classify), so the lock is never the bottleneck it would be on the miss
// path.
type verdictCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	det core.Detail
}

func newVerdictCache(max int) *verdictCache {
	return &verdictCache{
		max: max,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, max),
	}
}

func (c *verdictCache) get(k cacheKey) (core.Detail, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return core.Detail{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).det, true
}

func (c *verdictCache) put(k cacheKey, det core.Detail) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).det = det
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, det: det})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count (tests).
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
