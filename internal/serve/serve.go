// Package serve implements the online identification service behind
// cmd/wimi-serve: an HTTP/JSON front end over a registry of trained
// models, with request micro-batching, bounded admission (load shedding),
// per-request deadlines and graceful drain.
//
// Request flow:
//
//	POST /v1/identify → decode traces → snapshot active model →
//	  Batcher.Submit (429 when saturated) → batch worker runs the
//	  pipeline → respond {material, omega, confidence, modelVersion}
//
// Batching exists because the pipeline's expensive state — FFT plans and
// DWT workspaces — is pooled: requests that run shoulder-to-shoulder in
// one batch reuse workspaces that are hot in cache instead of each paying
// the pool round-trip and allocation ramp alone. The batch executor also
// gives the service its backpressure story: one bounded queue in front of
// a bounded worker pool, and everything beyond that is shed immediately
// with Retry-After rather than queued into memory.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/trace"
)

// Config parameterises the service. The zero value of every field selects
// a sensible default; Registry is required.
type Config struct {
	// Registry supplies the active model.
	Registry *registry.Registry
	// MaxBatch bounds how many requests one batch coalesces (default 8).
	MaxBatch int
	// BatchWindow is how long a non-full batch waits for company.
	// Zero selects the default of 2ms; to disable waiting set 1ns.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with HTTP 429 (default 64).
	QueueDepth int
	// Workers bounds pipeline concurrency inside a batch
	// (default GOMAXPROCS).
	Workers int
	// RequestTimeout is the per-request deadline covering queueing and
	// pipeline time (default 10s).
	RequestTimeout time.Duration
	// RetryAfter is the fallback Retry-After hint for 429 responses,
	// used until a drain rate has been observed (default 1s). Once the
	// batch executor has completed work, the hint is computed instead:
	// queue depth divided by the measured drain rate, so a deep queue
	// behind a slow pipeline tells clients to stay away longer than a
	// blip does.
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body (default 16 MiB).
	MaxBodyBytes int64
	// VerdictCache, when positive, enables the content-hash verdict cache
	// with that many entries: requests whose raw trace bytes and active
	// model version match a cached verdict are answered without decoding
	// or running the pipeline. Off by default — it only pays when the
	// workload replays identical captures (monitoring probes, load
	// harnesses, gateway retries).
	VerdictCache int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// IdentifyRequest is the POST /v1/identify body: a measurement session as
// the same .csitrace byte streams wimi-sim/wimi-collect write, base64
// inside JSON.
type IdentifyRequest struct {
	Baseline []byte `json:"baseline"`
	Target   []byte `json:"target"`
}

// IdentifyResponse is the identification answer.
type IdentifyResponse struct {
	Material     string  `json:"material"`
	Omega        float64 `json:"omega"`
	Confidence   float64 `json:"confidence"`
	ModelVersion string  `json:"modelVersion"`
}

// Stats are cumulative request counters.
type Stats struct {
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Timeouts uint64 `json:"timeouts"`
	Failed   uint64 `json:"failed"`
	// CacheHits/CacheMisses count verdict-cache outcomes; both stay zero
	// when the cache is disabled.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// BatchSizes[i] counts executed batches that coalesced i+1 requests —
	// the histogram a load run reads to confirm coalescing actually
	// happened (all mass at index 0 means every request ran alone).
	BatchSizes []uint64 `json:"batchSizes"`
}

// job is one admitted request travelling through the batcher.
type job struct {
	ctx     context.Context
	session *csi.Session
	model   *registry.Model
	done    chan jobResult // buffered: the worker never blocks on delivery
}

type jobResult struct {
	detail core.Detail
	err    error
}

// Server is the online identification service.
type Server struct {
	cfg     Config
	batcher *parallel.Batcher[*job]
	mux     *http.ServeMux

	draining atomic.Bool
	served   atomic.Uint64
	shed     atomic.Uint64
	timeouts atomic.Uint64
	failed   atomic.Uint64

	// completed counts jobs the batch executor has finished (any
	// outcome); the drain meter turns it into a jobs/sec rate for the
	// computed Retry-After hint.
	completed atomic.Uint64
	drain     drainMeter

	// modelCache holds the pre-encoded /v1/model body for the currently
	// active model.
	modelCache atomic.Pointer[modelJSON]

	// batchSizes[i] counts executed batches of size i+1 (len == MaxBatch).
	batchSizes []atomic.Uint64

	// batch is the dispatcher-owned scratch of the batched classify path.
	// parallel.Batcher runs all batches from one goroutine, so this state
	// needs no locking and is reused batch to batch.
	batch batchRun

	// vcache is the optional content-hash verdict cache (nil when
	// Config.VerdictCache is 0).
	vcache      *verdictCache
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// holdBatch, when set (tests only), runs before each batch executes —
	// the hook chaos tests use to keep the pipeline busy deterministically.
	holdBatch func(batch []*job)
}

// batchRun is the reusable per-dispatch state of the batched classify
// path: the live (non-expired) jobs, their sessions, one borrowed pipeline
// per job, and the core batch scratch.
type batchRun struct {
	jobs     []*job
	sessions []*csi.Session
	pls      []*core.Pipeline
	bs       core.BatchScratch
}

// New validates the configuration and starts the batch executor.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, batchSizes: make([]atomic.Uint64, cfg.MaxBatch)}
	if cfg.VerdictCache > 0 {
		s.vcache = newVerdictCache(cfg.VerdictCache)
	}
	b, err := parallel.NewBatcher[*job](cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow, s.runBatch)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.batcher = b
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/identify", s.handleIdentify)
	mux.HandleFunc("POST /v1/identify/batch", s.handleBatchIdentify)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns a snapshot of the request counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
		Timeouts:    s.timeouts.Load(),
		Failed:      s.failed.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		BatchSizes:  make([]uint64, len(s.batchSizes)),
	}
	for i := range s.batchSizes {
		st.BatchSizes[i] = s.batchSizes[i].Load()
	}
	return st
}

// Shutdown begins the graceful drain: new requests are refused with 503
// (and /readyz goes not-ready so load balancers stop sending), while
// everything already admitted runs to completion. It returns when the
// batch executor is fully drained.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		return
	}
	s.batcher.Close()
}

// runBatch executes one coalesced batch: expired jobs are answered
// immediately, the rest are grouped by model (a hot-swap mid-batch can mix
// model snapshots) and each group runs batch-native — per-capture DSP on
// the bounded worker pool, then one blocked svm.PredictBatch over the whole
// group. Every job's result lands in its buffered done channel, so an
// abandoned (timed-out) request never blocks the batch.
func (s *Server) runBatch(batch []*job) {
	if s.holdBatch != nil {
		s.holdBatch(batch)
	}
	if n := len(batch); n >= 1 && n <= len(s.batchSizes) {
		s.batchSizes[n-1].Add(1)
	}
	st := &s.batch
	live := st.jobs[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.done <- jobResult{err: err}
			continue
		}
		live = append(live, j)
	}
	st.jobs = live
	// Group runs of jobs sharing a model snapshot. Jobs carry the model
	// pointer they were admitted under, so the scan needs no map; in steady
	// state the whole batch is one group, and a reload mid-batch just
	// splits it.
	for start := 0; start < len(live); {
		m := live[start].model
		end := start + 1
		for end < len(live) && live[end].model == m {
			end++
		}
		s.runModelGroup(m, live[start:end])
		start = end
	}
	// Drop job references so abandoned requests' sessions become
	// collectable before the next dispatch reuses the backing array.
	for i := range st.jobs {
		st.jobs[i] = nil
	}
	s.drain.observe(time.Now(), s.completed.Add(uint64(len(batch))))
}

// runModelGroup identifies one same-model slice of a batch via the batched
// core path: each job borrows a warmed pipeline for its DSP stage and the
// classifier predicts the whole group in one blocked call against the
// dispatcher-owned batch scratch.
func (s *Server) runModelGroup(m *registry.Model, jobs []*job) {
	st := &s.batch
	n := len(jobs)
	if cap(st.sessions) < n {
		st.sessions = make([]*csi.Session, n)
	}
	if cap(st.pls) < n {
		st.pls = make([]*core.Pipeline, n)
	}
	sessions := st.sessions[:n]
	pls := st.pls[:n]
	for i, j := range jobs {
		sessions[i] = j.session
		pls[i] = core.GetPipeline()
	}
	dets, errs := m.Identifier.IdentifyDetailedBatchP(&st.bs, pls, sessions, s.cfg.Workers)
	for i, j := range jobs {
		j.done <- jobResult{detail: dets[i], err: errs[i]}
		core.PutPipeline(pls[i])
		sessions[i] = nil
		pls[i] = nil
	}
}

func (s *Server) handleIdentify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req IdentifyRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// With the verdict cache on, the body is buffered raw so a replayed
	// request can be answered by digest BEFORE paying the JSON/base64
	// decode — which dominates the replay path. Cache off keeps the
	// streaming decoder and buffers nothing.
	var raw *bytes.Buffer
	if s.vcache != nil {
		raw = rawBodyPool.Get().(*bytes.Buffer)
		raw.Reset()
		if _, err := raw.ReadFrom(body); err != nil {
			rawBodyPool.Put(raw)
			httpError(w, http.StatusBadRequest, "reading request: %v", err)
			return
		}
	} else if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	model := s.cfg.Registry.Active()
	if model == nil {
		if raw != nil {
			rawBodyPool.Put(raw)
		}
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	// The content hash of the answering model rides in a header on every
	// outcome from here on, so a gateway can detect a stale backend
	// without parsing bodies.
	w.Header().Set(ModelVersionHeader, model.Version)
	// The verdict cache keys on the raw request bytes plus the answering
	// model's content hash, so a duplicate capture skips request decoding,
	// trace decoding and the whole pipeline — and a hot-swap invalidates
	// by construction: entries under the old version can never match again
	// and age out of the LRU.
	var vkey cacheKey
	if s.vcache != nil {
		vkey = cacheKey{digest: sha256.Sum256(raw.Bytes()), version: model.Version}
		if det, ok := s.vcache.get(vkey); ok {
			rawBodyPool.Put(raw)
			s.cacheHits.Add(1)
			s.served.Add(1)
			writeJSONIntegrity(w, r, http.StatusOK, IdentifyResponse{
				Material:     det.Material,
				Omega:        det.Omega,
				Confidence:   det.Confidence,
				ModelVersion: model.Version,
			})
			return
		}
		s.cacheMisses.Add(1)
		// json.Unmarshal copies the base64 payloads into fresh slices, so
		// the raw buffer can go back to the pool immediately after.
		err := json.Unmarshal(raw.Bytes(), &req)
		rawBodyPool.Put(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	}
	sc := scratchPool.Get().(*decodeScratch)
	session, err := sc.decodeSession(req)
	if err != nil {
		scratchPool.Put(sc)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	j := &job{ctx: ctx, session: session, model: model, done: make(chan jobResult, 1)}
	switch err := s.batcher.Submit(j); {
	case errors.Is(err, parallel.ErrSaturated):
		scratchPool.Put(sc)
		s.shed.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.retryAfterHint()))
		httpError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		return
	case errors.Is(err, parallel.ErrClosed):
		scratchPool.Put(sc)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		scratchPool.Put(sc)
		s.failed.Add(1)
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	select {
	case res := <-j.done:
		// The worker has delivered, so nothing references the session any
		// more; the response below carries no aliases into the scratch.
		scratchPool.Put(sc)
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
				s.timeouts.Add(1)
				httpError(w, http.StatusGatewayTimeout, "request deadline exceeded while queued")
				return
			}
			s.failed.Add(1)
			httpError(w, http.StatusUnprocessableEntity, "identification failed: %v", res.err)
			return
		}
		s.served.Add(1)
		if s.vcache != nil {
			s.vcache.put(vkey, res.detail)
		}
		writeJSONIntegrity(w, r, http.StatusOK, IdentifyResponse{
			Material:     res.detail.Material,
			Omega:        res.detail.Omega,
			Confidence:   res.detail.Confidence,
			ModelVersion: model.Version,
		})
	case <-ctx.Done():
		// The batch worker may still be reading the session: the scratch
		// must NOT go back to the pool. The garbage collector reclaims it
		// once the worker drops its reference.
		s.timeouts.Add(1)
		httpError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	m, err := s.cfg.Registry.Reload()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "reload failed (previous model still active): %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"modelVersion": m.Version,
		"path":         m.Path,
		"loadedAt":     m.LoadedAt.UTC().Format(time.RFC3339),
	})
}

// modelJSON caches the /v1/model happy-path body for one loaded model.
// Registry.Reload always swaps the active *registry.Model pointer (and with
// it the history), so pointer identity is exactly the cache key.
type modelJSON struct {
	m    *registry.Model
	body []byte
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m := s.cfg.Registry.Active()
	if m == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	if c := s.modelCache.Load(); c != nil && c.m == m {
		writeRawJSON(w, http.StatusOK, c.body)
		return
	}
	body, err := json.Marshal(map[string]any{
		"modelVersion": m.Version,
		"path":         m.Path,
		"loadedAt":     m.LoadedAt.UTC().Format(time.RFC3339),
		"history":      s.cfg.Registry.History(),
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding model info: %v", err)
		return
	}
	body = append(body, '\n') // match the Encoder framing of writeJSON
	s.modelCache.Store(&modelJSON{m: m, body: body})
	writeRawJSON(w, http.StatusOK, body)
}

// healthzBody is the static /healthz response.
var healthzBody = []byte("ok\n")

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(healthzBody)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := !s.draining.Load() && s.cfg.Registry.Active() != nil
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	version := ""
	if m := s.cfg.Registry.Active(); m != nil {
		version = m.Version
	}
	writeJSON(w, status, map[string]any{
		"ready":        ready,
		"modelVersion": version,
		"queued":       s.batcher.QueueLen(),
		"stats":        s.Stats(),
	})
}

// decodeScratch owns one request's decode memory: a matrix arena the trace
// records fill, the packet slices of both captures and the session they are
// assembled into. A scratch is recycled through scratchPool once the batch
// worker is provably done with the session — never on the timeout path,
// where the worker may still be reading it.
type decodeScratch struct {
	arena    csi.MatrixArena
	br       bytes.Reader
	baseline csi.Capture
	target   csi.Capture
	session  csi.Session
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

// rawBodyPool recycles the raw-body buffers the verdict-cache path reads
// requests into; each grows to body size once and is then reused.
var rawBodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decodeSession parses the two embedded .csitrace streams into the
// scratch-owned session. The returned session aliases the scratch's arena
// and is valid until the scratch is pooled again.
func (sc *decodeScratch) decodeSession(req IdentifyRequest) (*csi.Session, error) {
	sc.arena.Reset()
	if len(req.Baseline) == 0 || len(req.Target) == 0 {
		return nil, fmt.Errorf("request needs both baseline and target traces")
	}
	carrier, err := sc.decodeTrace(&sc.baseline, req.Baseline)
	if err != nil {
		return nil, fmt.Errorf("baseline trace: %w", err)
	}
	if _, err := sc.decodeTrace(&sc.target, req.Target); err != nil {
		return nil, fmt.Errorf("target trace: %w", err)
	}
	sc.session = csi.Session{Carrier: carrier, Baseline: sc.baseline, Target: sc.target}
	if err := sc.session.Validate(); err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return &sc.session, nil
}

func (sc *decodeScratch) decodeTrace(dst *csi.Capture, data []byte) (float64, error) {
	sc.br.Reset(data)
	r, err := trace.NewReader(&sc.br)
	if err != nil {
		return 0, err
	}
	r.SetMatrixSource(sc.arena.NewMatrix)
	dst.Packets = dst.Packets[:0]
	for {
		p, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return r.Header().Carrier, nil
		}
		if err != nil {
			return 0, err
		}
		dst.Packets = append(dst.Packets, p)
	}
}

// ModelVersionHeader carries the answering model's content hash on
// /v1/identify responses — the signal wimi-gateway uses to detect
// backends serving a stale model.
const ModelVersionHeader = "X-Wimi-Model"

// IntegrityHeader, sent by a client on /v1/identify, asks the server to
// stamp responses with BodyCRCHeader. The only supported value is
// "crc32". The gateway requests it on every forwarded call so a response
// corrupted on the wire (bit flips, silent truncation) is detected and
// retried instead of relayed — the response-path twin of the trace
// reader's record CRCs.
const IntegrityHeader = "X-Wimi-Integrity"

// BodyCRCHeader carries the IEEE CRC32 of the response body (decimal),
// present only when the request opted in via IntegrityHeader.
const BodyCRCHeader = "X-Wimi-Body-Crc32"

func retryAfterSeconds(d time.Duration) string {
	return fmt.Sprintf("%d", retryAfterSecondsInt(d))
}

// drainMeter measures the batch executor's completion rate (jobs/sec) as
// an EWMA over ≥50ms sampling windows, so the Retry-After hint reflects
// actual drain speed rather than one batch's luck.
type drainMeter struct {
	mu    sync.Mutex
	lastT time.Time
	lastC uint64
	rate  float64
}

// observe folds a completion-counter reading into the rate estimate.
func (d *drainMeter) observe(now time.Time, completed uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lastT.IsZero() {
		d.lastT, d.lastC = now, completed
		return
	}
	dt := now.Sub(d.lastT)
	if dt < 50*time.Millisecond {
		return
	}
	inst := float64(completed-d.lastC) / dt.Seconds()
	if d.rate == 0 {
		d.rate = inst
	} else {
		d.rate = 0.5*d.rate + 0.5*inst
	}
	d.lastT, d.lastC = now, completed
}

// currentRate returns the jobs/sec estimate (0 until enough samples).
func (d *drainMeter) currentRate() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rate
}

// retryAfterHint computes the 429 Retry-After from live load: how long
// the current queue takes to drain at the measured rate. Before any rate
// is known it falls back to the configured constant.
func (s *Server) retryAfterHint() time.Duration {
	return computeRetryAfter(s.batcher.QueueLen(), s.drain.currentRate(), s.cfg.RetryAfter)
}

// computeRetryAfter is the pure hint calculation: queued work divided by
// drain rate, clamped to [1s, 60s]; a zero/unknown rate yields the
// fallback.
func computeRetryAfter(queued int, ratePerSec float64, fallback time.Duration) time.Duration {
	if ratePerSec <= 0 {
		if fallback <= 0 {
			return time.Second
		}
		return fallback
	}
	if queued < 1 {
		queued = 1
	}
	hint := time.Duration(float64(queued) / ratePerSec * float64(time.Second))
	if hint < time.Second {
		return time.Second
	}
	if hint > time.Minute {
		return time.Minute
	}
	return hint
}

// jsonEncoder is a pooled buffer + encoder pair: writeJSON marshals into
// the reusable buffer and hands the response to the ResponseWriter in one
// Write, instead of allocating an encoder (and its internal state) per
// response.
type jsonEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := jsonEncPool.Get().(*jsonEncoder)
	e.buf.Reset()
	_ = e.enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	jsonEncPool.Put(e)
}

// writeJSONIntegrity is writeJSON plus the opt-in body checksum: when the
// request carried IntegrityHeader, the encoded body's CRC32 goes into
// BodyCRCHeader before the write. Non-opted requests pay nothing.
func writeJSONIntegrity(w http.ResponseWriter, r *http.Request, status int, v any) {
	e := jsonEncPool.Get().(*jsonEncoder)
	e.buf.Reset()
	_ = e.enc.Encode(v)
	if r.Header.Get(IntegrityHeader) == "crc32" {
		sum := crc32.ChecksumIEEE(e.buf.Bytes())
		w.Header().Set(BodyCRCHeader, strconv.FormatUint(uint64(sum), 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	jsonEncPool.Put(e)
}

// writeRawJSON sends a pre-encoded JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
