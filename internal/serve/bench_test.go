package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/material"
	"repro/internal/registry"
)

// BenchmarkServeIdentify measures the end-to-end serve latency: HTTP
// round-trip, trace decode, pipeline, classification. "single" is the
// sequential floor; "batched" drives concurrent clients so requests
// coalesce through the micro-batching executor.
func BenchmarkServeIdentify(b *testing.B) {
	model, sessions, _ := trainModel(b, []string{material.PureWater, material.Honey, material.Oil})
	path := filepath.Join(b.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		b.Fatal(err)
	}
	reg, err := registry.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Registry: reg, MaxBatch: 8, BatchWindow: time.Millisecond, QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := encodeRequest(b, sessions[0])

	post := func(client *http.Client) error {
		resp, err := client.Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	b.Run("single", func(b *testing.B) {
		client := ts.Client()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := post(client); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batched", func(b *testing.B) {
		b.SetParallelism(8) // 8×GOMAXPROCS client goroutines → real coalescing
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			client := ts.Client()
			for pb.Next() {
				if err := post(client); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	// The replay scenario: identical bodies against a verdict-cache-enabled
	// server answer from the LRU without decoding or running the pipeline.
	b.Run("cached", func(b *testing.B) {
		cs, err := New(Config{Registry: reg, MaxBatch: 8, BatchWindow: time.Millisecond, QueueDepth: 256, VerdictCache: 64})
		if err != nil {
			b.Fatal(err)
		}
		defer cs.Shutdown()
		cts := httptest.NewServer(cs.Handler())
		defer cts.Close()
		client := cts.Client()
		postCached := func() error {
			resp, err := client.Post(cts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer func() { _ = resp.Body.Close() }()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		}
		if err := postCached(); err != nil { // populate the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := postCached(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
