package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/parallel"
)

// MaxBatchSlots bounds how many captures one POST /v1/identify/batch may
// carry. It is deliberately larger than any sane gateway BatchMax and
// exists only so a hostile body cannot queue unbounded work.
const MaxBatchSlots = 64

// BatchIdentifyRequest is the POST /v1/identify/batch body: N independent
// identify requests answered in one HTTP round trip. The slots feed the
// same micro-batching executor the single endpoint uses, so they coalesce
// into blocked batch classification without N clients having to race each
// other through the admission queue.
type BatchIdentifyRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// BatchSlot is one slot of a batch answer. Status and Body are exactly
// the HTTP status and JSON body the single /v1/identify endpoint would
// have produced for the slot's request — minus the trailing newline the
// single path's encoder appends, which the consumer restores when it
// turns a slot back into a standalone response. That convention makes a
// relayed slot byte-identical to a relayed single response.
type BatchSlot struct {
	Status int `json:"status"`
	// ModelVersion mirrors the X-Wimi-Model header of the single path for
	// 200 slots, so a relay can restore the header without parsing Body.
	ModelVersion string `json:"modelVersion,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on 429/503 slots.
	RetryAfterSec int64           `json:"retryAfterSec,omitempty"`
	Body          json.RawMessage `json:"body"`
}

// BatchIdentifyResponse is the POST /v1/identify/batch answer; Results is
// parallel to the request's Requests.
type BatchIdentifyResponse struct {
	Results []BatchSlot `json:"results"`
}

// slotJSON renders a slot body: the same compact encoding the single
// path's pooled encoder produces, without the trailing newline.
func slotJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(map[string]string{"error": err.Error()})
	}
	return b
}

func slotError(status int, format string, args ...any) BatchSlot {
	return BatchSlot{Status: status, Body: slotJSON(map[string]string{"error": fmt.Sprintf(format, args...)})}
}

// batchSlotState tracks one in-flight slot between submission and reply.
type batchSlotState struct {
	job *job
	sc  *decodeScratch
}

// handleBatchIdentify answers POST /v1/identify/batch. Every slot travels
// the exact machinery of the single path — pooled decode scratch, batcher
// admission (shedding per slot, not per request), per-slot deadline and
// error isolation — so slot i's outcome matches what the i-th of N
// sequential /v1/identify calls would have returned, while the transport
// cost (HTTP round trip, headers, connection) is paid once. The verdict
// cache is not consulted here: the batch endpoint exists for gateways,
// which deduplicate upstream via in-flight coalescing before the batch is
// ever assembled.
func (s *Server) handleBatchIdentify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req BatchIdentifyRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding batch request: %v", err)
		return
	}
	n := len(req.Requests)
	if n == 0 {
		httpError(w, http.StatusBadRequest, "batch request needs at least one slot")
		return
	}
	if n > MaxBatchSlots {
		httpError(w, http.StatusBadRequest, "batch of %d slots exceeds the limit of %d", n, MaxBatchSlots)
		return
	}
	model := s.cfg.Registry.Active()
	if model == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	w.Header().Set(ModelVersionHeader, model.Version)

	// Decode every slot first, then submit in one tight loop: the batcher's
	// dispatcher sees all jobs near-simultaneously and coalesces them into
	// as few blocked classifications as its MaxBatch allows.
	results := make([]BatchSlot, n)
	states := make([]batchSlotState, n)
	for i, raw := range req.Requests {
		var ir IdentifyRequest
		if err := json.Unmarshal(raw, &ir); err != nil {
			results[i] = slotError(http.StatusBadRequest, "decoding request: %v", err)
			continue
		}
		sc := scratchPool.Get().(*decodeScratch)
		session, err := sc.decodeSession(ir)
		if err != nil {
			scratchPool.Put(sc)
			results[i] = slotError(http.StatusBadRequest, "%v", err)
			continue
		}
		states[i] = batchSlotState{sc: sc, job: &job{session: session, model: model, done: make(chan jobResult, 1)}}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	for i := range states {
		st := &states[i]
		if st.job == nil {
			continue
		}
		st.job.ctx = ctx
		switch err := s.batcher.Submit(st.job); {
		case errors.Is(err, parallel.ErrSaturated):
			scratchPool.Put(st.sc)
			st.job = nil
			s.shed.Add(1)
			results[i] = slotError(http.StatusTooManyRequests, "admission queue full, retry later")
			results[i].RetryAfterSec = retryAfterSecondsInt(s.retryAfterHint())
		case errors.Is(err, parallel.ErrClosed):
			scratchPool.Put(st.sc)
			st.job = nil
			results[i] = slotError(http.StatusServiceUnavailable, "server is draining")
		case err != nil:
			scratchPool.Put(st.sc)
			st.job = nil
			s.failed.Add(1)
			results[i] = slotError(http.StatusInternalServerError, "%v", err)
		}
	}
	for i := range states {
		st := &states[i]
		if st.job == nil {
			continue
		}
		select {
		case res := <-st.job.done:
			// Worker provably done with the session: the scratch recycles.
			scratchPool.Put(st.sc)
			switch {
			case res.err == nil:
				s.served.Add(1)
				results[i] = BatchSlot{
					Status:       http.StatusOK,
					ModelVersion: model.Version,
					Body: slotJSON(IdentifyResponse{
						Material:     res.detail.Material,
						Omega:        res.detail.Omega,
						Confidence:   res.detail.Confidence,
						ModelVersion: model.Version,
					}),
				}
			case errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled):
				s.timeouts.Add(1)
				results[i] = slotError(http.StatusGatewayTimeout, "request deadline exceeded while queued")
			default:
				s.failed.Add(1)
				results[i] = slotError(http.StatusUnprocessableEntity, "identification failed: %v", res.err)
			}
		case <-ctx.Done():
			// The worker may still be reading the session; the scratch is
			// abandoned to the garbage collector, exactly like the single
			// path's timeout exit.
			s.timeouts.Add(1)
			results[i] = slotError(http.StatusGatewayTimeout, "request deadline exceeded")
		}
	}
	writeJSONIntegrity(w, r, http.StatusOK, BatchIdentifyResponse{Results: results})
}

// retryAfterSecondsInt is retryAfterSeconds for the slot field: ceiling
// seconds, floored at 1.
func retryAfterSecondsInt(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
