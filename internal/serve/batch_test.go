package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/material"
	"repro/internal/registry"
)

// TestRunBatchMatchesSingle drives the dispatcher's batch path directly
// with crafted batches and pins it against per-session IdentifyDetailedP:
// every answer must match exactly, expired jobs must be answered with
// their context error without poisoning neighbours, mixed-model batches
// must split into per-model groups, and the size histogram must record
// each executed batch.
func TestRunBatchMatchesSingle(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey, material.Oil})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	model := fx.registry.Active()
	want := make([]core.Detail, len(fx.sessions))
	for i, sess := range fx.sessions {
		det, err := model.Identifier.IdentifyDetailedP(core.NewPipeline(), sess)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = det
	}
	newJob := func(i int) *job {
		return &job{ctx: context.Background(), session: fx.sessions[i], model: model, done: make(chan jobResult, 1)}
	}
	for size := 1; size <= 8; size++ {
		batch := make([]*job, size)
		for i := range batch {
			batch[i] = newJob(i % len(fx.sessions))
		}
		s.runBatch(batch)
		for i, j := range batch {
			res := <-j.done
			if res.err != nil {
				t.Fatalf("size %d job %d: %v", size, i, res.err)
			}
			if res.detail != want[i%len(fx.sessions)] {
				t.Fatalf("size %d job %d: batched %+v, single %+v", size, i, res.detail, want[i%len(fx.sessions)])
			}
		}
	}
	stats := s.Stats()
	for size := 1; size <= 8; size++ {
		if stats.BatchSizes[size-1] == 0 {
			t.Fatalf("histogram did not record the size-%d batch: %v", size, stats.BatchSizes)
		}
	}

	// An expired job is answered with its context error; its neighbours
	// still classify exactly.
	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	expired := &job{ctx: expiredCtx, session: fx.sessions[0], model: model, done: make(chan jobResult, 1)}
	ok0, ok1 := newJob(0), newJob(1)
	s.runBatch([]*job{ok0, expired, ok1})
	if res := <-expired.done; res.err == nil {
		t.Fatal("expired job was not answered with its context error")
	}
	if res := <-ok0.done; res.err != nil || res.detail != want[0] {
		t.Fatalf("neighbour 0 of expired job: %+v, %v", res.detail, res.err)
	}
	if res := <-ok1.done; res.err != nil || res.detail != want[1] {
		t.Fatalf("neighbour 1 of expired job: %+v, %v", res.detail, res.err)
	}

	// A mid-batch model swap means jobs carry different snapshots; the
	// batch must split into per-model groups and still answer exactly.
	alias := &registry.Model{Version: model.Version, Path: model.Path, LoadedAt: model.LoadedAt, Identifier: model.Identifier}
	jA, jB, jC := newJob(0), newJob(1), newJob(2)
	jB.model = alias
	s.runBatch([]*job{jA, jB, jC})
	for i, j := range []*job{jA, jB, jC} {
		res := <-j.done
		if res.err != nil || res.detail != want[i] {
			t.Fatalf("mixed-model job %d: %+v, %v", i, res.detail, res.err)
		}
	}
}

// TestBatchedIdentifyMatchesSingleHTTP pins the end-to-end contract: for
// identical captures, answers produced by coalesced batches equal the
// answers of lone requests, field for field.
func TestBatchedIdentifyMatchesSingleHTTP(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry, MaxBatch: 8, BatchWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	// Stall the first dispatch once so the remaining posts pile into the
	// admission queue and provably coalesce.
	var stallOnce sync.Once
	s.holdBatch = func([]*job) {
		stallOnce.Do(func() { time.Sleep(100 * time.Millisecond) })
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := make([][]byte, len(fx.sessions))
	single := make([]IdentifyResponse, len(fx.sessions))
	for i, sess := range fx.sessions {
		bodies[i] = encodeRequest(t, sess)
		resp, out := postIdentify(t, ts, bodies[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: status %d", i, resp.StatusCode)
		}
		single[i] = out
	}
	var wg sync.WaitGroup
	results := make([]IdentifyResponse, len(bodies))
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postIdentify(t, ts, bodies[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent %d: status %d", i, resp.StatusCode)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i] != single[i] {
			t.Fatalf("capture %d: batched answer %+v, single answer %+v", i, results[i], single[i])
		}
	}
	stats := s.Stats()
	var coalesced uint64
	for size := 2; size <= len(stats.BatchSizes); size++ {
		coalesced += stats.BatchSizes[size-1]
	}
	if coalesced == 0 {
		t.Fatalf("no batch coalesced more than one request: %v", stats.BatchSizes)
	}
}

// TestVerdictCache covers the opt-in replay cache: identical bodies hit
// after the first miss and return identical answers, distinct bodies miss,
// the LRU stays bounded, and a model hot-swap invalidates every prior
// entry by construction.
func TestVerdictCache(t *testing.T) {
	liquids := []string{material.PureWater, material.Honey, material.Oil}
	fx := newFixture(t, liquids)
	s, err := New(Config{Registry: fx.registry, VerdictCache: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := encodeRequest(t, fx.sessions[0])
	_, first := postIdentify(t, ts, body)
	_, second := postIdentify(t, ts, body)
	if first != second {
		t.Fatalf("cached answer %+v differs from computed %+v", second, first)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("after replaying one body twice: hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}

	// Distinct captures miss; the LRU never exceeds its capacity.
	for i := 1; i < len(fx.sessions); i++ {
		if resp, _ := postIdentify(t, ts, encodeRequest(t, fx.sessions[i])); resp.StatusCode != http.StatusOK {
			t.Fatalf("session %d: status %d", i, resp.StatusCode)
		}
	}
	if got := s.vcache.len(); got > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", got)
	}
	if st = s.Stats(); st.CacheHits != 1 {
		t.Fatalf("distinct captures produced spurious hits: %d", st.CacheHits)
	}

	// A hot-swap changes the model version, so previously-cached bodies
	// miss and are recomputed against the new model.
	model2, _, _ := trainModel(t, []string{material.PureWater, material.Oil})
	if err := os.WriteFile(fx.path, model2, 0o644); err != nil {
		t.Fatal(err)
	}
	oldVersion := fx.registry.Active().Version
	if _, err := fx.registry.Reload(); err != nil {
		t.Fatal(err)
	}
	if fx.registry.Active().Version == oldVersion {
		t.Fatal("reload did not change the model version")
	}
	missesBefore := s.Stats().CacheMisses
	resp, swapped := postIdentify(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap replay: status %d", resp.StatusCode)
	}
	if swapped.ModelVersion == first.ModelVersion {
		t.Fatal("post-swap answer still carries the old model version")
	}
	if got := s.Stats().CacheMisses; got != missesBefore+1 {
		t.Fatalf("post-swap replay was served from the stale cache (misses %d, want %d)", got, missesBefore+1)
	}
}

// TestCacheOffByDefault pins the default: without Config.VerdictCache the
// counters stay zero even under replayed bodies.
func TestCacheOffByDefault(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := encodeRequest(t, fx.sessions[0])
	for i := 0; i < 3; i++ {
		if resp, _ := postIdentify(t, ts, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("post %d: status %d", i, resp.StatusCode)
		}
	}
	if st := s.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("cache counters moved while disabled: %+v", st)
	}
}
