package serve

import (
	"bytes"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/material"
	"repro/internal/testutil"
)

// faultyListener wraps every accepted conn in the faults proxy, so the
// server's response writes suffer stalls, truncation, corruption and
// forced resets — the client side of the link is hostile.
type faultyListener struct {
	net.Listener
	profile faults.Profile
	seed    atomic.Int64
}

func (fl *faultyListener) Accept() (net.Conn, error) {
	c, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc, err := faults.WrapConn(c, fl.profile, fl.seed.Add(1))
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	return fc, nil
}

// chaosProfile injects every stream fault at once, mildly enough that a
// healthy fraction of requests still completes.
func chaosProfile() faults.Profile {
	return faults.Profile{
		Name:           "serve-chaos",
		CorruptProb:    0.05,
		TruncateProb:   0.08,
		StallProb:      0.10,
		StallDuration:  3 * time.Millisecond,
		DisconnectProb: 0.04,
	}
}

// TestChaosClientsNoGoroutineLeak hammers the service through the faults
// proxy with concurrent clients, then drains and asserts the goroutine
// count returns to its baseline — no request, however mangled its
// connection, may strand a worker.
func TestChaosClientsNoGoroutineLeak(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	leakCheck := testutil.LeakCheck(t, 3)

	s, err := New(Config{
		Registry:       fx.registry,
		MaxBatch:       4,
		QueueDepth:     16,
		BatchWindow:    time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &faultyListener{Listener: ln, profile: chaosProfile()}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() {
		_ = httpSrv.Serve(fl)
		close(serveDone)
	}()

	body := encodeRequest(t, fx.sessions[0])
	url := "http://" + ln.Addr().String() + "/v1/identify"

	const clients = 12
	const perClient = 6
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			defer client.CloseIdleConnections()
			for i := 0; i < perClient; i++ {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1) // injected disconnect/corruption — expected
					continue
				}
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
				_ = resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// Even through chaos, a decent fraction must have completed.
	if ok.Load() == 0 {
		t.Errorf("no request survived the chaos profile (%d failed)", failed.Load())
	}

	// Drain: force-close the HTTP server (it owns the faulted conns, some
	// of which are mid-stall), then drain the batch executor.
	_ = httpSrv.Close()
	<-serveDone
	s.Shutdown()

	// Goroutines must return to the baseline.
	leakCheck()
}

// TestChaosSheddingStillSignals429 holds the pipeline while chaos clients
// pile on and asserts saturation surfaces as 429s (shed counter moves)
// instead of unbounded queueing or blocked accepts.
func TestChaosSheddingStillSignals429(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{
		Registry:       fx.registry,
		MaxBatch:       1,
		QueueDepth:     2,
		RequestTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.holdBatch = func([]*job) { <-release }

	// Mild profile: stalls only, so status codes still arrive intact.
	profile := faults.Profile{Name: "stalls", StallProb: 0.2, StallDuration: 2 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &faultyListener{Listener: ln, profile: profile}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(fl) }()
	defer func() {
		close(release)
		_ = httpSrv.Close()
		s.Shutdown()
	}()

	body := encodeRequest(t, fx.sessions[0])
	url := "http://" + ln.Addr().String() + "/v1/identify"

	var saw429 atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: time.Second}
			defer client.CloseIdleConnections()
			for i := 0; i < 5; i++ {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					saw429.Store(true)
				}
				_ = resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if !saw429.Load() {
		t.Error("saturated chaos run never shed with 429")
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Error("shed counter did not move under saturation")
	}
}
