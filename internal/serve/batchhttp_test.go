package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/material"
)

func postBatch(t *testing.T, ts *httptest.Server, payload []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/identify/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestBatchEndpointSlotsMatchSingleResponses is the byte-identity
// contract: slot i of a batch answer, plus the trailing newline the
// single path's encoder appends, must equal the exact bytes (and status,
// and model version) of a sequential POST /v1/identify with the same
// request — for successes AND for per-slot failures.
func TestBatchEndpointSlotsMatchSingleResponses(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry, MaxBatch: 4, BatchWindow: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Mix good sessions with a slot that decodes as JSON but fails session
	// decoding — its error must also match the single path bit for bit.
	raws := []json.RawMessage{
		encodeRequest(t, fx.sessions[0]),
		[]byte(`{"baseline":"bm90IGEgdHJhY2U=","target":"bm90IGEgdHJhY2U="}`),
		encodeRequest(t, fx.sessions[1]),
		encodeRequest(t, fx.sessions[0]),
	}
	payload, err := json.Marshal(BatchIdentifyRequest{Requests: raws})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postBatch(t, ts, payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(ModelVersionHeader); got != fx.registry.Active().Version {
		t.Errorf("batch %s = %q, want active version", ModelVersionHeader, got)
	}
	var out BatchIdentifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(raws) {
		t.Fatalf("%d results for %d slots", len(out.Results), len(raws))
	}

	for i, raw := range raws {
		single, err := ts.Client().Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		singleBody, err := io.ReadAll(single.Body)
		_ = single.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		slot := out.Results[i]
		if slot.Status != single.StatusCode {
			t.Errorf("slot %d status %d, single path %d", i, slot.Status, single.StatusCode)
		}
		relayed := append(append([]byte(nil), slot.Body...), '\n')
		if !bytes.Equal(relayed, singleBody) {
			t.Errorf("slot %d body+newline != single response:\n slot:   %q\n single: %q", i, relayed, singleBody)
		}
		if slot.Status == http.StatusOK && slot.ModelVersion != single.Header.Get(ModelVersionHeader) {
			t.Errorf("slot %d modelVersion %q, single header %q", i, slot.ModelVersion, single.Header.Get(ModelVersionHeader))
		}
	}
}

func TestBatchEndpointRejectsMalformedAndOversize(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postBatch(t, ts, []byte(`{"requests":[]}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d (%s), want 400", resp.StatusCode, body)
	}
	if resp, body := postBatch(t, ts, []byte(`not json`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage batch: status %d (%s), want 400", resp.StatusCode, body)
	}
	over := BatchIdentifyRequest{Requests: make([]json.RawMessage, MaxBatchSlots+1)}
	for i := range over.Requests {
		over.Requests[i] = []byte(`{}`)
	}
	payload, _ := json.Marshal(over)
	if resp, body := postBatch(t, ts, payload); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestBatchEndpointDrainingAnswers503(t *testing.T) {
	fx := newFixture(t, []string{material.PureWater, material.Honey})
	s, err := New(Config{Registry: fx.registry})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Shutdown()
	payload := fmt.Appendf(nil, `{"requests":[%s]}`, encodeRequest(t, fx.sessions[0]))
	if resp, body := postBatch(t, ts, payload); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining batch: status %d (%s), want 503", resp.StatusCode, body)
	}
}
