package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/csi"
)

func randomCapture(t *testing.T, rng *rand.Rand, numAnt, n int) *csi.Capture {
	t.Helper()
	var cap csi.Capture
	for i := 0; i < n; i++ {
		m, err := csi.NewMatrix(numAnt)
		if err != nil {
			t.Fatal(err)
		}
		for ant := 0; ant < numAnt; ant++ {
			for sub := 0; sub < csi.NumSubcarriers; sub++ {
				m.Values[ant][sub] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		cap.Packets = append(cap.Packets, csi.Packet{
			Seq:       uint32(i),
			Timestamp: time.Unix(1000, int64(i)*10_000_000),
			Carrier:   5.32e9,
			CSI:       m,
		})
	}
	return &cap
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := randomCapture(t, rng, 3, 25)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3, 5.32e9)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCapture(orig); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := r.Header(); hdr.NumAnt != 3 || hdr.Carrier != 5.32e9 || hdr.Version != Version {
		t.Fatalf("header = %+v", hdr)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("read %d packets, wrote %d", got.Len(), orig.Len())
	}
	for i := range orig.Packets {
		op, gp := orig.Packets[i], got.Packets[i]
		if gp.Seq != op.Seq {
			t.Errorf("packet %d: seq %d != %d", i, gp.Seq, op.Seq)
		}
		if !gp.Timestamp.Equal(op.Timestamp) {
			t.Errorf("packet %d: timestamp %v != %v", i, gp.Timestamp, op.Timestamp)
		}
		if gp.Carrier != op.Carrier {
			t.Errorf("packet %d: carrier mismatch", i)
		}
		for ant := range op.CSI.Values {
			for sub := range op.CSI.Values[ant] {
				if gp.CSI.Values[ant][sub] != op.CSI.Values[ant][sub] {
					t.Fatalf("packet %d csi[%d][%d] mismatch", i, ant, sub)
				}
			}
		}
	}
}

func TestNewWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(nil, 3, 5e9); err == nil {
		t.Error("nil writer should error")
	}
	if _, err := NewWriter(&buf, 0, 5e9); err == nil {
		t.Error("0 antennas should error")
	}
	if _, err := NewWriter(&buf, 300, 5e9); err == nil {
		t.Error("256+ antennas should error")
	}
	if _, err := NewWriter(&buf, 3, 0); err == nil {
		t.Error("zero carrier should error")
	}
}

func TestWritePacketAntennaMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3, 5e9)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := csi.NewMatrix(2)
	if err := w.WritePacket(csi.Packet{CSI: m}); err == nil {
		t.Error("antenna mismatch should error")
	}
	if err := w.WritePacket(csi.Packet{}); err == nil {
		t.Error("nil CSI should error")
	}
	// No partial header written on failure.
	if buf.Len() != 0 {
		t.Errorf("failed writes left %d bytes", buf.Len())
	}
}

func TestNewReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE00000000000000"))); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := NewReader(nil); err == nil {
		t.Error("nil reader should error")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should error")
	}
}

func TestNewReaderBadVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, 5e9)
	if err := w.WriteCapture(randomCapture(t, rng, 1, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xFF // clobber version
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("bad version should error")
	}
}

func TestReadPacketTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2, 5e9)
	if err := w.WriteCapture(randomCapture(t, rng, 2, 2)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Chop mid-record.
	trunc := raw[:len(raw)-37]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != nil {
		t.Fatalf("first packet should read fine: %v", err)
	}
	_, err = r.ReadPacket()
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record should be an explicit error, got %v", err)
	}
}

func TestReadPacketCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, 5e9)
	if err := w.WriteCapture(randomCapture(t, rng, 1, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-20] ^= 0xFF // flip a payload byte
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadPacket()
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted payload error = %v, want ErrCorrupt", err)
	}
}

func TestEmptyTraceCleanEOF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, 5e9)
	// Force the header by writing one packet, then reading two.
	if err := w.WriteCapture(randomCapture(t, rng, 1, 1)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream = %v, want io.EOF", err)
	}
}

// Property: round trip preserves arbitrary CSI values including extremes.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nAntRaw, nPktRaw uint8) bool {
		numAnt := 1 + int(nAntRaw)%4
		n := 1 + int(nPktRaw)%8
		rng := rand.New(rand.NewSource(seed))
		var cap csi.Capture
		for i := 0; i < n; i++ {
			m, err := csi.NewMatrix(numAnt)
			if err != nil {
				return false
			}
			for ant := 0; ant < numAnt; ant++ {
				for sub := 0; sub < csi.NumSubcarriers; sub++ {
					m.Values[ant][sub] = complex(rng.NormFloat64()*1e6, rng.NormFloat64()*1e-6)
				}
			}
			cap.Packets = append(cap.Packets, csi.Packet{Seq: uint32(i), Timestamp: time.Unix(0, int64(i)), Carrier: 5e9, CSI: m})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, numAnt, 5e9)
		if err != nil {
			return false
		}
		if err := w.WriteCapture(&cap); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || got.Len() != n {
			return false
		}
		for i := range cap.Packets {
			for ant := range cap.Packets[i].CSI.Values {
				for sub := range cap.Packets[i].CSI.Values[ant] {
					if got.Packets[i].CSI.Values[ant][sub] != cap.Packets[i].CSI.Values[ant][sub] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
