// Package trace implements the on-disk .csitrace format: the offline
// equivalent of the Intel 5300 CSI Tool's log files. A trace is a stream of
// framed CSI packets with a versioned header and per-record CRC32, written
// and read with only encoding/binary.
//
// Layout (all little-endian):
//
//	header:  magic "CSIT" | uint16 version | uint8 numAnt | uint8 reserved |
//	         float64 carrier
//	record:  uint32 seq | int64 unixNano | payload | uint32 crc32(payload)
//	payload: numAnt × NumSubcarriers × (float64 re, float64 im)
//
// The CRC covers the payload only, so seek-free streaming reads can detect
// truncation and corruption record by record.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/csi"
)

// Magic identifies a .csitrace stream.
var Magic = [4]byte{'C', 'S', 'I', 'T'}

// Version is the current format version.
const Version uint16 = 1

// ErrCorrupt is returned (wrapped) when a record fails its checksum.
var ErrCorrupt = errors.New("trace: corrupt record")

// Header describes a trace stream.
type Header struct {
	Version uint16
	NumAnt  int
	Carrier float64
}

// Writer streams CSI packets to w.
type Writer struct {
	w      io.Writer
	numAnt int
	wrote  bool
	hdr    Header
}

// NewWriter prepares a writer for packets with numAnt antennas at the given
// carrier. The header is emitted lazily on the first Write so that an
// erroring setup leaves no partial file.
func NewWriter(w io.Writer, numAnt int, carrier float64) (*Writer, error) {
	if w == nil {
		return nil, fmt.Errorf("trace: nil writer")
	}
	if numAnt < 1 || numAnt > 255 {
		return nil, fmt.Errorf("trace: antenna count %d outside [1,255]", numAnt)
	}
	if carrier <= 0 {
		return nil, fmt.Errorf("trace: non-positive carrier %v", carrier)
	}
	return &Writer{
		w:      w,
		numAnt: numAnt,
		hdr:    Header{Version: Version, NumAnt: numAnt, Carrier: carrier},
	}, nil
}

func (tw *Writer) writeHeader() error {
	buf := make([]byte, 0, 16)
	buf = append(buf, Magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = append(buf, byte(tw.numAnt), 0)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tw.hdr.Carrier))
	if _, err := tw.w.Write(buf); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	return nil
}

// WritePacket appends one CSI packet to the stream.
func (tw *Writer) WritePacket(p csi.Packet) error {
	if p.CSI == nil {
		return fmt.Errorf("trace: packet %d has nil CSI", p.Seq)
	}
	if p.CSI.NumAntennas() != tw.numAnt {
		return fmt.Errorf("trace: packet %d has %d antennas, writer expects %d",
			p.Seq, p.CSI.NumAntennas(), tw.numAnt)
	}
	if !tw.wrote {
		if err := tw.writeHeader(); err != nil {
			return err
		}
		tw.wrote = true
	}
	payload := make([]byte, 0, tw.numAnt*csi.NumSubcarriers*16)
	for _, row := range p.CSI.Values {
		for _, v := range row {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(real(v)))
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(imag(v)))
		}
	}
	buf := make([]byte, 0, 12+len(payload)+4)
	buf = binary.LittleEndian.AppendUint32(buf, p.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Timestamp.UnixNano()))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := tw.w.Write(buf); err != nil {
		return fmt.Errorf("trace: writing packet %d: %w", p.Seq, err)
	}
	return nil
}

// WriteCapture writes every packet of a capture.
func (tw *Writer) WriteCapture(c *csi.Capture) error {
	for i := range c.Packets {
		if err := tw.WritePacket(c.Packets[i]); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises what a Reader has seen — the per-record accounting the
// tolerant mode reports instead of aborting.
type Stats struct {
	// Packets is the number of records decoded successfully.
	Packets int
	// Skipped is the number of records dropped (all causes).
	Skipped int
	// CRCErrors is the number of records dropped for checksum failure.
	CRCErrors int
}

// Reader streams CSI packets from r.
type Reader struct {
	r        io.Reader
	hdr      Header
	tolerant bool
	stats    Stats
	payload  []byte // reusable record payload buffer
	// newMatrix, when set via SetMatrixSource, supplies the matrix each
	// decoded record fills — the serving decode path points it at an arena.
	newMatrix func(numAnt int) (*csi.Matrix, error)
}

// NewReader validates the stream header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	if r == nil {
		return nil, fmt.Errorf("trace: nil reader")
	}
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var rest [12]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	hdr := Header{
		Version: binary.LittleEndian.Uint16(rest[0:2]),
		NumAnt:  int(rest[2]),
		Carrier: math.Float64frombits(binary.LittleEndian.Uint64(rest[4:12])),
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	if hdr.NumAnt < 1 {
		return nil, fmt.Errorf("trace: header has %d antennas", hdr.NumAnt)
	}
	if hdr.Carrier <= 0 || math.IsNaN(hdr.Carrier) {
		return nil, fmt.Errorf("trace: header has invalid carrier %v", hdr.Carrier)
	}
	return &Reader{r: r, hdr: hdr}, nil
}

// Header returns the stream header.
func (tr *Reader) Header() Header { return tr.hdr }

// SetTolerant switches the reader between strict mode (the default: any
// checksum failure aborts the read with an ErrCorrupt-wrapping error) and
// tolerant mode, where corrupt records are skipped and counted in Stats —
// the per-record CRC exists exactly so a reader can resynchronise at the
// next record boundary instead of losing the whole trace.
func (tr *Reader) SetTolerant(t bool) { tr.tolerant = t }

// Stats reports the per-record accounting so far.
func (tr *Reader) Stats() Stats { return tr.stats }

// SetMatrixSource overrides where decoded records get their CSI matrices.
// By default every record allocates a fresh csi.NewMatrix; a caller that
// owns the packets' lifetime (e.g. a per-request decode) can point the
// reader at an arena instead. src receives the stream's antenna count and
// must return a zeroed or overwritable matrix; pass nil to restore the
// default.
func (tr *Reader) SetMatrixSource(src func(numAnt int) (*csi.Matrix, error)) {
	tr.newMatrix = src
}

// ReadPacket reads the next packet. It returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF on truncation. On checksum failure a
// strict reader returns an error wrapping ErrCorrupt; a tolerant reader
// (SetTolerant) skips to the next record boundary and keeps going,
// counting the damage in Stats.
func (tr *Reader) ReadPacket() (csi.Packet, error) {
	for {
		pkt, err := tr.readRecord()
		if err != nil && tr.tolerant && errors.Is(err, ErrCorrupt) {
			tr.stats.Skipped++
			tr.stats.CRCErrors++
			continue
		}
		if err != nil && tr.tolerant && errors.Is(err, io.ErrUnexpectedEOF) {
			// A trailing half-record: the writer died mid-record. Count it
			// and report a clean end of stream.
			tr.stats.Skipped++
			return csi.Packet{}, io.EOF
		}
		if err == nil {
			tr.stats.Packets++
		}
		return pkt, err
	}
}

// readRecord decodes exactly one framed record.
func (tr *Reader) readRecord() (csi.Packet, error) {
	var head [12]byte
	if _, err := io.ReadFull(tr.r, head[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return csi.Packet{}, io.EOF
		}
		return csi.Packet{}, fmt.Errorf("trace: reading record head: %w", err)
	}
	seq := binary.LittleEndian.Uint32(head[0:4])
	nanos := int64(binary.LittleEndian.Uint64(head[4:12]))
	if n := tr.hdr.NumAnt * csi.NumSubcarriers * 16; cap(tr.payload) < n {
		tr.payload = make([]byte, n)
	} else {
		tr.payload = tr.payload[:n]
	}
	payload := tr.payload
	if _, err := io.ReadFull(tr.r, payload); err != nil {
		return csi.Packet{}, fmt.Errorf("trace: reading record payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(tr.r, crcBuf[:]); err != nil {
		return csi.Packet{}, fmt.Errorf("trace: reading record crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return csi.Packet{}, fmt.Errorf("trace: record %d crc %08x != %08x: %w", seq, got, want, ErrCorrupt)
	}
	newMatrix := tr.newMatrix
	if newMatrix == nil {
		newMatrix = csi.NewMatrix
	}
	m, err := newMatrix(tr.hdr.NumAnt)
	if err != nil {
		return csi.Packet{}, fmt.Errorf("trace: %w", err)
	}
	off := 0
	for ant := 0; ant < tr.hdr.NumAnt; ant++ {
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
			m.Values[ant][sub] = complex(re, im)
			off += 16
		}
	}
	return csi.Packet{
		Seq:       seq,
		Timestamp: time.Unix(0, nanos),
		Carrier:   tr.hdr.Carrier,
		CSI:       m,
	}, nil
}

// ReadAll reads every remaining packet into a capture.
func (tr *Reader) ReadAll() (*csi.Capture, error) {
	var cap csi.Capture
	for {
		p, err := tr.ReadPacket()
		if errors.Is(err, io.EOF) {
			return &cap, nil
		}
		if err != nil {
			return nil, err
		}
		cap.Packets = append(cap.Packets, p)
	}
}
