package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/csi"
)

// headerSize and recordSize mirror the on-disk layout for a numAnt stream.
const headerSize = 16

func recordSize(numAnt int) int { return 12 + numAnt*csi.NumSubcarriers*16 + 4 }

// writtenTrace serialises n synthetic packets and returns the raw bytes.
func writtenTrace(t *testing.T, n, numAnt int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, numAnt, 5.32e9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := csi.NewMatrix(numAnt)
		if err != nil {
			t.Fatal(err)
		}
		for ant := range m.Values {
			for sub := range m.Values[ant] {
				m.Values[ant][sub] = complex(float64(i+1), float64(ant+sub))
			}
		}
		pkt := csi.Packet{Seq: uint32(i), Timestamp: time.Unix(0, int64(i)), Carrier: 5.32e9, CSI: m}
		if err := w.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// corruptPayloadByte flips one payload byte of record rec.
func corruptPayloadByte(raw []byte, rec, numAnt int) []byte {
	out := append([]byte(nil), raw...)
	off := headerSize + rec*recordSize(numAnt) + 12 // first payload byte
	out[off] ^= 0xFF
	return out
}

func TestTolerantReaderSkipsExactlyDamagedRecords(t *testing.T) {
	const n, numAnt = 20, 3
	raw := writtenTrace(t, n, numAnt)
	damaged := map[int]bool{3: true, 7: true, 15: true}
	for rec := range damaged {
		raw = corruptPayloadByte(raw, rec, numAnt)
	}
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetTolerant(true)
	var got []uint32
	for {
		pkt, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("tolerant reader errored: %v", err)
		}
		got = append(got, pkt.Seq)
	}
	if len(got) != n-len(damaged) {
		t.Fatalf("read %d packets, want %d", len(got), n-len(damaged))
	}
	for _, seq := range got {
		if damaged[int(seq)] {
			t.Errorf("damaged record %d survived", seq)
		}
	}
	st := r.Stats()
	if st.Packets != n-len(damaged) || st.Skipped != len(damaged) || st.CRCErrors != len(damaged) {
		t.Errorf("stats = %+v, want %d read / %d skipped / %d crc", st,
			n-len(damaged), len(damaged), len(damaged))
	}
}

func TestStrictReaderFailsLoudlyOnCorruption(t *testing.T) {
	raw := corruptPayloadByte(writtenTrace(t, 5, 2), 2, 2)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	for {
		_, err := r.ReadPacket()
		if err == nil {
			reads++
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("strict reader error = %v, want ErrCorrupt", err)
		}
		break
	}
	if reads != 2 {
		t.Errorf("strict reader decoded %d records before the corrupt one, want 2", reads)
	}
}

func TestTolerantReaderTruncatedTail(t *testing.T) {
	raw := writtenTrace(t, 6, 2)
	cut := raw[:len(raw)-recordSize(2)/2] // half of the last record gone
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	r.SetTolerant(true)
	n := 0
	for {
		_, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("tolerant reader errored on truncated tail: %v", err)
		}
		n++
	}
	if n != 5 {
		t.Errorf("read %d packets from truncated trace, want 5", n)
	}
	if st := r.Stats(); st.Skipped != 1 {
		t.Errorf("stats = %+v, want 1 skipped", st)
	}
}

func TestTolerantReaderPropertyRandomCorruption(t *testing.T) {
	// Property (testing/quick): flipping any single byte in the record area
	// never makes the tolerant reader error, and costs at most one record.
	const n, numAnt = 12, 2
	raw := writtenTrace(t, n, numAnt)
	body := len(raw) - headerSize
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := headerSize + rng.Intn(body)
		cor := append([]byte(nil), raw...)
		flip := byte(1 + rng.Intn(255))
		cor[off] ^= flip
		r, err := NewReader(bytes.NewReader(cor))
		if err != nil {
			return false
		}
		r.SetTolerant(true)
		read := 0
		for {
			_, err := r.ReadPacket()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Logf("seed %d offset %d: tolerant reader errored: %v", seed, off, err)
				return false
			}
			read++
		}
		st := r.Stats()
		// A flip in a record head (seq/timestamp) is undetectable and loses
		// nothing; a payload or CRC flip costs exactly that one record.
		if read < n-1 || read+st.Skipped != n {
			t.Logf("seed %d offset %d: read %d skipped %d", seed, off, read, st.Skipped)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
