package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/csi"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and must either produce valid packets or a clean error.
func FuzzReader(f *testing.F) {
	// Seed with a valid single-packet trace.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2, 5.32e9)
	if err != nil {
		f.Fatal(err)
	}
	m, err := csi.NewMatrix(2)
	if err != nil {
		f.Fatal(err)
	}
	m.Values[0][0] = 1 + 2i
	if err := w.WritePacket(csi.Packet{Seq: 1, Timestamp: time.Unix(1, 0), CSI: m}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CSIT"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		for i := 0; i < 100; i++ {
			pkt, err := r.ReadPacket()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return
				}
				return // explicit error is fine
			}
			if pkt.CSI == nil {
				t.Fatal("successful read returned nil CSI")
			}
			if pkt.CSI.NumAntennas() != r.Header().NumAnt {
				t.Fatalf("packet has %d antennas, header says %d",
					pkt.CSI.NumAntennas(), r.Header().NumAnt)
			}
		}
	})
}

// FuzzRoundTrip checks that whatever values go in, the write/read cycle is
// loss-free and never panics.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(0), int64(0), 1.0, 2.0)
	f.Add(uint32(4294967295), int64(-1), -1e308, 1e-308)
	f.Fuzz(func(t *testing.T, seq uint32, nanos int64, re, im float64) {
		m, err := csi.NewMatrix(1)
		if err != nil {
			t.Fatal(err)
		}
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			m.Values[0][sub] = complex(re, im)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 1, 5e9)
		if err != nil {
			t.Fatal(err)
		}
		in := csi.Packet{Seq: seq, Timestamp: time.Unix(0, nanos), CSI: m}
		if err := w.WritePacket(in); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if out.Seq != seq || out.Timestamp.UnixNano() != nanos {
			t.Fatalf("metadata mismatch: %v/%v vs %v/%v", out.Seq, out.Timestamp.UnixNano(), seq, nanos)
		}
		got := out.CSI.Values[0][0]
		// NaN != NaN, so compare bit-level semantics: both NaN or equal.
		sameFloat := func(a, b float64) bool {
			return a == b || (a != a && b != b)
		}
		if !sameFloat(real(got), re) || !sameFloat(imag(got), im) {
			t.Fatalf("payload mismatch: %v vs (%v,%v)", got, re, im)
		}
	})
}
