package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrSaturated is returned by Batcher.Submit when the admission queue is
// full — the caller should shed the request (HTTP 429) rather than block.
var ErrSaturated = errors.New("parallel: batch queue saturated")

// ErrClosed is returned by Batcher.Submit after Close has begun draining.
var ErrClosed = errors.New("parallel: batcher closed")

// Batcher coalesces concurrently submitted items into bounded batches and
// hands each batch to a run function on a single dispatcher goroutine.
//
// The shape is the classic micro-batching executor: the first item of a
// batch opens a collection window; items already queued are drained
// greedily; the batch dispatches as soon as it is full or the window
// elapses, whichever is first. Under load, batches fill instantly and the
// window never costs latency; when idle, a lone request waits at most one
// window. Admission is strictly bounded: Submit never blocks, it either
// enqueues or reports ErrSaturated, which keeps the service's memory and
// tail latency finite no matter the offered load.
//
// Close stops admission, drains everything already queued through run, and
// waits for the dispatcher to finish — the graceful-shutdown contract.
type Batcher[T any] struct {
	queue    chan T
	maxBatch int
	window   time.Duration
	run      func(batch []T)

	mu     sync.RWMutex
	closed bool
	done   chan struct{}
}

// NewBatcher starts the dispatcher. queueDepth bounds admission, maxBatch
// bounds batch size, window bounds how long a non-full batch waits for
// company (0 dispatches immediately with whatever is queued). run is
// called with 1..maxBatch items and must not retain the slice.
func NewBatcher[T any](queueDepth, maxBatch int, window time.Duration, run func(batch []T)) (*Batcher[T], error) {
	if queueDepth < 1 {
		return nil, fmt.Errorf("parallel: queue depth %d, need ≥ 1", queueDepth)
	}
	if maxBatch < 1 {
		return nil, fmt.Errorf("parallel: max batch %d, need ≥ 1", maxBatch)
	}
	if window < 0 {
		return nil, fmt.Errorf("parallel: negative batch window %v", window)
	}
	if run == nil {
		return nil, fmt.Errorf("parallel: nil run function")
	}
	b := &Batcher[T]{
		queue:    make(chan T, queueDepth),
		maxBatch: maxBatch,
		window:   window,
		run:      run,
		done:     make(chan struct{}),
	}
	go b.dispatch()
	return b, nil
}

// Submit enqueues one item without blocking. It returns ErrSaturated when
// the admission queue is full and ErrClosed after Close.
func (b *Batcher[T]) Submit(item T) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	select {
	case b.queue <- item:
		return nil
	default:
		return ErrSaturated
	}
}

// QueueLen reports how many submitted items await batching — a readiness /
// backpressure signal, inherently racy and advisory.
func (b *Batcher[T]) QueueLen() int { return len(b.queue) }

// Close stops admission, drains the queue through run, and waits for the
// dispatcher to exit. Safe to call more than once.
func (b *Batcher[T]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.done
}

// dispatch is the single collector goroutine.
func (b *Batcher[T]) dispatch() {
	defer close(b.done)
	batch := make([]T, 0, b.maxBatch)
	var timer *time.Timer
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		open := true // queue still open as far as we know
		// Greedily absorb whatever is already waiting.
	drain:
		for len(batch) < b.maxBatch {
			select {
			case item, ok := <-b.queue:
				if !ok {
					open = false
					break drain
				}
				batch = append(batch, item)
			default:
				break drain
			}
		}
		// Not full and nothing queued: hold the window open for company.
		if open && len(batch) < b.maxBatch && b.window > 0 {
			if timer == nil {
				timer = time.NewTimer(b.window)
			} else {
				timer.Reset(b.window)
			}
		window:
			for len(batch) < b.maxBatch {
				select {
				case item, ok := <-b.queue:
					if !ok {
						break window
					}
					batch = append(batch, item)
				case <-timer.C:
					break window
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		b.run(batch)
	}
}
