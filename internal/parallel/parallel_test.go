package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 37
		hits := make([]int32, n)
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn invoked for non-positive n")
	}
}

func TestForEachReportsLowestFailingIndex(t *testing.T) {
	// Indices 3, 11 and 20 fail; regardless of worker count and scheduling,
	// the reported error must be index 3's.
	fail := map[int]bool{3: true, 11: true, 20: true}
	for _, workers := range []int{1, 2, 7} {
		err := ForEach(25, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("index %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3 failed" {
			t.Errorf("workers=%d: got %v, want index 3's error", workers, err)
		}
	}
}

func TestForEachRunsAllIndicesDespiteErrors(t *testing.T) {
	n := 10
	var ran int32
	err := ForEach(n, 3, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return fmt.Errorf("boom %d", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := atomic.LoadInt32(&ran); got != int32(n) {
		t.Errorf("ran %d of %d indices", got, n)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	err := ForEach(50, workers, func(i int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Errorf("peak concurrency %d exceeds limit %d", p, workers)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(5); got != 5 {
		t.Errorf("DefaultWorkers(5) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := DefaultWorkers(0); got != want {
		t.Errorf("DefaultWorkers(0) = %d, want %d", got, want)
	}
	if got := DefaultWorkers(-1); got != want {
		t.Errorf("DefaultWorkers(-1) = %d, want %d", got, want)
	}
}
