// Package parallel provides the bounded worker pool the evaluation pipeline
// fans out on. The contract is deterministic-by-construction: ForEach runs
// one closure per index, each closure writes only to its own index of a
// caller-owned result slice, and the reported error is always the one of
// the LOWEST failing index — so a run with 1 worker and a run with N
// workers are indistinguishable to the caller.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers resolves a worker-count setting: values ≥ 1 are taken as
// given, anything else (0, negative) selects runtime.GOMAXPROCS(0).
func DefaultWorkers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) on at most workers concurrent
// goroutines (workers <= 0 selects DefaultWorkers). It always runs every
// index to completion and returns the error of the lowest index that
// failed, or nil — NOT the first error observed in wall-clock order, which
// would vary run to run. fn must confine its writes to per-index state.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, same observable behaviour.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
