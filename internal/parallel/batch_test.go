package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBatcherDeliversEverything(t *testing.T) {
	var mu sync.Mutex
	var got []int
	var batches int
	b, err := NewBatcher[int](64, 8, time.Millisecond, func(batch []int) {
		mu.Lock()
		got = append(got, batch...)
		batches++
		if len(batch) == 0 || len(batch) > 8 {
			t.Errorf("batch size %d out of bounds", len(batch))
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := b.Submit(i); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d items, want %d", len(got), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("item %d delivered twice", v)
		}
		seen[v] = true
	}
	if batches >= n {
		t.Errorf("no coalescing happened: %d batches for %d items", batches, n)
	}
}

func TestBatcherCoalescesUnderLoad(t *testing.T) {
	release := make(chan struct{})
	var maxBatch atomic.Int64
	b, err := NewBatcher[int](64, 4, 50*time.Millisecond, func(batch []int) {
		if int64(len(batch)) > maxBatch.Load() {
			maxBatch.Store(int64(len(batch)))
		}
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	// First item occupies the dispatcher (blocked in run); the rest pile
	// into the queue and must come out as full batches of 4.
	for i := 0; i < 13; i++ {
		if err := b.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	b.Close()
	if maxBatch.Load() != 4 {
		t.Errorf("max batch %d, want full batches of 4", maxBatch.Load())
	}
}

func TestBatcherShedsWhenSaturated(t *testing.T) {
	hold := make(chan struct{})
	b, err := NewBatcher[int](2, 1, 0, func(batch []int) { <-hold })
	if err != nil {
		t.Fatal(err)
	}
	// One item blocks in run; two fill the queue; the rest must shed.
	deadline := time.Now().Add(2 * time.Second)
	submitted := 0
	for submitted < 3 && time.Now().Before(deadline) {
		if err := b.Submit(submitted); err == nil {
			submitted++
		}
	}
	if submitted != 3 {
		t.Fatalf("could not stage 3 items")
	}
	// Queue (depth 2) is now full and the dispatcher is held.
	var shed bool
	for i := 0; i < 10; i++ {
		if err := b.Submit(99); err == ErrSaturated {
			shed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !shed {
		t.Error("saturated batcher never returned ErrSaturated")
	}
	close(hold)
	b.Close()
}

func TestBatcherSubmitAfterClose(t *testing.T) {
	b, err := NewBatcher[int](4, 2, 0, func([]int) {})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := b.Submit(1); err != ErrClosed {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestBatcherCloseDrains(t *testing.T) {
	var delivered atomic.Int64
	b, err := NewBatcher[int](128, 16, time.Hour, func(batch []int) {
		delivered.Add(int64(len(batch)))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	// Close must deliver all 100 without waiting out the 1h window.
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain within 5s")
	}
	if delivered.Load() != 100 {
		t.Errorf("drained %d items, want 100", delivered.Load())
	}
}

func TestBatcherConcurrentSubmitters(t *testing.T) {
	var delivered atomic.Int64
	b, err := NewBatcher[int](256, 8, time.Millisecond, func(batch []int) {
		delivered.Add(int64(len(batch)))
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Submit(i) == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	b.Close()
	if delivered.Load() != accepted.Load() {
		t.Errorf("accepted %d but delivered %d", accepted.Load(), delivered.Load())
	}
}

func TestBatcherRejectsBadConfig(t *testing.T) {
	if _, err := NewBatcher[int](0, 1, 0, func([]int) {}); err == nil {
		t.Error("zero queue depth should error")
	}
	if _, err := NewBatcher[int](1, 0, 0, func([]int) {}); err == nil {
		t.Error("zero max batch should error")
	}
	if _, err := NewBatcher[int](1, 1, -time.Second, func([]int) {}); err == nil {
		t.Error("negative window should error")
	}
	if _, err := NewBatcher[int](1, 1, 0, nil); err == nil {
		t.Error("nil run should error")
	}
}
