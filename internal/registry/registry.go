// Package registry manages trained identifier models for the online
// serving path: it resolves a model source (a file, or a directory of
// versioned model files), loads and validates models, names each loaded
// model by its content hash, and hot-swaps the active model atomically so
// readers never observe a half-loaded state.
//
// The concurrency contract mirrors every production model server: readers
// call Active and get an immutable *Model snapshot they keep for the whole
// request — a concurrent Reload swaps the pointer for future readers but
// never mutates a loaded model, so in-flight requests finish on the model
// they started with.
package registry

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Model is one immutable loaded model version.
type Model struct {
	// Version names the model by content: "sha256:" plus the first 12 hex
	// digits of the model file's hash. Two files with identical bytes are
	// the same version no matter their path or mtime.
	Version string
	// Path is the file the model was loaded from.
	Path string
	// LoadedAt is when this process loaded it.
	LoadedAt time.Time
	// Identifier is the trained identifier. It is never mutated after
	// load; share it freely across goroutines.
	Identifier *core.Identifier
}

// Registry resolves, loads and atomically publishes models.
type Registry struct {
	source string

	mu      sync.Mutex // serialises Reload; Active is lock-free
	active  atomic.Pointer[Model]
	history []string // versions in activation order
}

// Open creates a registry over source — either a model file or a
// directory holding model files (*.json / *.wimimodel; the
// lexicographically last name wins, so "model-v2.json" shadows
// "model-v1.json") — and loads the initial model.
func Open(source string) (*Registry, error) {
	r := &Registry{source: source}
	if _, err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// Active returns the current model. It never blocks and never returns a
// partially loaded model; nil only before the first successful load
// (impossible through Open).
func (r *Registry) Active() *Model {
	return r.active.Load()
}

// Source returns the file or directory the registry resolves models from.
func (r *Registry) Source() string { return r.source }

// History returns the versions activated so far, oldest first.
func (r *Registry) History() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.history...)
}

// Reload re-resolves the source, loads the model it names, and activates
// it. If the resolved file's content hash equals the active version the
// active model is kept (no churn); on any load error the previous model
// stays active — a bad push never takes the service down.
func (r *Registry) Reload() (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	path, err := resolve(r.source)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: reading model: %w", err)
	}
	version := digestOf(data)
	if cur := r.active.Load(); cur != nil && cur.Version == version {
		return cur, nil
	}
	id, err := core.LoadIdentifier(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("registry: loading %s: %w", path, err)
	}
	m := &Model{
		Version:    version,
		Path:       path,
		LoadedAt:   time.Now(),
		Identifier: id,
	}
	r.active.Store(m)
	r.history = append(r.history, version)
	return m, nil
}

// digestOf names model bytes by content: "sha256:" plus the first 12 hex
// digits.
func digestOf(data []byte) string {
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data))[:7+12]
}

// SourceDigest resolves a model source (file or directory, same rules as
// Open) and returns the content-hash version its bytes would load as —
// WITHOUT deserialising the model. The gateway uses it to learn the
// expected cluster-wide digest cheaply and spot backends serving a stale
// sha256.
func SourceDigest(source string) (string, error) {
	path, err := resolve(source)
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("registry: reading model: %w", err)
	}
	return digestOf(data), nil
}

// modelExts are the file extensions directory resolution considers.
var modelExts = map[string]bool{".json": true, ".wimimodel": true}

// resolve maps the source to a concrete model file.
func resolve(source string) (string, error) {
	info, err := os.Stat(source)
	if err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	if !info.IsDir() {
		return source, nil
	}
	entries, err := os.ReadDir(source)
	if err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !modelExts[filepath.Ext(e.Name())] {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return "", fmt.Errorf("registry: no model files (*.json, *.wimimodel) in %s", source)
	}
	sort.Strings(names)
	return filepath.Join(source, names[len(names)-1]), nil
}
