package registry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
)

// trainFixture trains a tiny identifier and returns its serialised bytes
// plus one session per class for probing.
func trainFixture(t *testing.T, liquids []string) ([]byte, []*csi.Session, []string) {
	t.Helper()
	db := material.PaperDatabase()
	var sessions []*csi.Session
	var labels []string
	for mi, name := range liquids {
		m, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := simulate.Default()
		sc.Liquid = &m
		for trial := 0; trial < 4; trial++ {
			s, err := simulate.Session(sc, int64(mi*100000+trial*7919))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sessions, labels
}

func TestOpenFileAndIdentify(t *testing.T) {
	model, sessions, labels := trainFixture(t, []string{material.PureWater, material.Honey})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Active()
	if m == nil {
		t.Fatal("no active model after Open")
	}
	if !strings.HasPrefix(m.Version, "sha256:") || len(m.Version) != 7+12 {
		t.Errorf("version %q is not a sha256 content name", m.Version)
	}
	if m.Path != path {
		t.Errorf("path %q, want %q", m.Path, path)
	}
	det, err := m.Identifier.IdentifyDetailed(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if det.Material != labels[0] {
		t.Errorf("identified %q, want %q", det.Material, labels[0])
	}
	if det.Confidence < 0 || det.Confidence > 1 {
		t.Errorf("confidence %v out of [0,1]", det.Confidence)
	}
}

func TestOpenDirectoryPicksLatest(t *testing.T) {
	modelA, _, _ := trainFixture(t, []string{material.PureWater, material.Honey})
	modelB, _, _ := trainFixture(t, []string{material.Milk, material.Oil})
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "model-v1.json"), modelA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model-v2.json"), modelB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(r.Active().Path); got != "model-v2.json" {
		t.Errorf("resolved %q, want the lexicographically last model-v2.json", got)
	}
}

func TestReloadSwapsAndKeepsOldModelUsable(t *testing.T) {
	modelA, sessions, labels := trainFixture(t, []string{material.PureWater, material.Honey})
	modelB, _, _ := trainFixture(t, []string{material.Milk, material.Oil})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, modelA, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := r.Active()

	// Unchanged content: reload is a no-op returning the same model.
	same, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if same != old {
		t.Error("reload of identical content should keep the active model")
	}

	// New content: reload activates a new version...
	if err := os.WriteFile(path, modelB, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Version == old.Version {
		t.Error("new content should produce a new version")
	}
	if r.Active() != fresh {
		t.Error("reload did not activate the new model")
	}
	// ...while a holder of the old snapshot (an in-flight request) still
	// identifies with the old model.
	det, err := old.Identifier.IdentifyDetailed(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if det.Material != labels[0] {
		t.Errorf("old snapshot identified %q, want %q", det.Material, labels[0])
	}
	if h := r.History(); len(h) != 2 || h[0] != old.Version || h[1] != fresh.Version {
		t.Errorf("history %v, want [%s %s]", h, old.Version, fresh.Version)
	}
}

func TestReloadKeepsActiveOnBadPush(t *testing.T) {
	model, _, _ := trainFixture(t, []string{material.PureWater, material.Honey})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := r.Active()
	if err := os.WriteFile(path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(); err == nil {
		t.Fatal("corrupt model should fail to reload")
	}
	if r.Active() != old {
		t.Error("failed reload must keep the previous model active")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing source should error")
	}
	empty := t.TempDir()
	if _, err := Open(empty); err == nil {
		t.Error("directory without model files should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("unparseable model should error")
	}
}
