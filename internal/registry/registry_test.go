package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
)

// trainFixture trains a tiny identifier and returns its serialised bytes
// plus one session per class for probing.
func trainFixture(t *testing.T, liquids []string) ([]byte, []*csi.Session, []string) {
	t.Helper()
	db := material.PaperDatabase()
	var sessions []*csi.Session
	var labels []string
	for mi, name := range liquids {
		m, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := simulate.Default()
		sc.Liquid = &m
		for trial := 0; trial < 4; trial++ {
			s, err := simulate.Session(sc, int64(mi*100000+trial*7919))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sessions, labels
}

func TestOpenFileAndIdentify(t *testing.T) {
	model, sessions, labels := trainFixture(t, []string{material.PureWater, material.Honey})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Active()
	if m == nil {
		t.Fatal("no active model after Open")
	}
	if !strings.HasPrefix(m.Version, "sha256:") || len(m.Version) != 7+12 {
		t.Errorf("version %q is not a sha256 content name", m.Version)
	}
	if m.Path != path {
		t.Errorf("path %q, want %q", m.Path, path)
	}
	det, err := m.Identifier.IdentifyDetailed(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if det.Material != labels[0] {
		t.Errorf("identified %q, want %q", det.Material, labels[0])
	}
	if det.Confidence < 0 || det.Confidence > 1 {
		t.Errorf("confidence %v out of [0,1]", det.Confidence)
	}
}

func TestOpenDirectoryPicksLatest(t *testing.T) {
	modelA, _, _ := trainFixture(t, []string{material.PureWater, material.Honey})
	modelB, _, _ := trainFixture(t, []string{material.Milk, material.Oil})
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "model-v1.json"), modelA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model-v2.json"), modelB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(r.Active().Path); got != "model-v2.json" {
		t.Errorf("resolved %q, want the lexicographically last model-v2.json", got)
	}
}

func TestReloadSwapsAndKeepsOldModelUsable(t *testing.T) {
	modelA, sessions, labels := trainFixture(t, []string{material.PureWater, material.Honey})
	modelB, _, _ := trainFixture(t, []string{material.Milk, material.Oil})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, modelA, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := r.Active()

	// Unchanged content: reload is a no-op returning the same model.
	same, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if same != old {
		t.Error("reload of identical content should keep the active model")
	}

	// New content: reload activates a new version...
	if err := os.WriteFile(path, modelB, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Version == old.Version {
		t.Error("new content should produce a new version")
	}
	if r.Active() != fresh {
		t.Error("reload did not activate the new model")
	}
	// ...while a holder of the old snapshot (an in-flight request) still
	// identifies with the old model.
	det, err := old.Identifier.IdentifyDetailed(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if det.Material != labels[0] {
		t.Errorf("old snapshot identified %q, want %q", det.Material, labels[0])
	}
	if h := r.History(); len(h) != 2 || h[0] != old.Version || h[1] != fresh.Version {
		t.Errorf("history %v, want [%s %s]", h, old.Version, fresh.Version)
	}
}

func TestReloadKeepsActiveOnBadPush(t *testing.T) {
	model, _, _ := trainFixture(t, []string{material.PureWater, material.Honey})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := r.Active()
	if err := os.WriteFile(path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(); err == nil {
		t.Fatal("corrupt model should fail to reload")
	}
	if r.Active() != old {
		t.Error("failed reload must keep the previous model active")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing source should error")
	}
	empty := t.TempDir()
	if _, err := Open(empty); err == nil {
		t.Error("directory without model files should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("unparseable model should error")
	}
}

func TestSourceDigestMatchesLoadedVersion(t *testing.T) {
	model, _, _ := trainFixture(t, []string{material.PureWater, material.Honey})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, model, 0o644); err != nil {
		t.Fatal(err)
	}
	digest, err := SourceDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if digest != r.Active().Version {
		t.Errorf("SourceDigest %q != loaded version %q", digest, r.Active().Version)
	}
	// Directory resolution follows the same lexicographically-last rule.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "model-v1.json"), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model-v2.json"), model, 0o644); err != nil {
		t.Fatal(err)
	}
	dirDigest, err := SourceDigest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dirDigest != digest {
		t.Errorf("directory digest %q, want the v2 file's %q", dirDigest, digest)
	}
	if _, err := SourceDigest(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing source should error")
	}
}

// TestReloadStormNoTornReads is the hot-swap race audit: N goroutines
// identify continuously while the model file is swapped back and forth M
// times. Under -race this proves the atomic-pointer publication protocol;
// the assertions prove no reader ever observes a half-loaded model (every
// answer comes from a complete identifier citing one of the two valid
// content-hash versions).
func TestReloadStormNoTornReads(t *testing.T) {
	if testing.Short() {
		t.Skip("reload storm")
	}
	modelA, sessionsA, labelsA := trainFixture(t, []string{material.PureWater, material.Honey})
	modelB, _, _ := trainFixture(t, []string{material.Milk, material.Oil})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, modelA, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	versionA := r.Active().Version
	if err := os.WriteFile(path, modelB, 0o644); err != nil {
		t.Fatal(err)
	}
	mB, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	versionB := mB.Version
	valid := map[string]bool{versionA: true, versionB: true}

	const (
		readers = 8
		swaps   = 20
	)
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := sessionsA[g%len(sessionsA)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := r.Active()
				if m == nil || m.Identifier == nil {
					errCh <- fmt.Errorf("reader %d: torn read: %+v", g, m)
					return
				}
				if !valid[m.Version] {
					errCh <- fmt.Errorf("reader %d: version %q is neither %q nor %q",
						g, m.Version, versionA, versionB)
					return
				}
				label, err := m.Identifier.Identify(session)
				if err != nil {
					errCh <- fmt.Errorf("reader %d iter %d on %s: %v", g, i, m.Version, err)
					return
				}
				// A complete model always answers from its own label set; the
				// session's true label is only guaranteed under model A.
				if m.Version == versionA && label != labelsA[g%len(labelsA)] {
					// Misclassification under concurrency would mean state was
					// torn mid-read.
					errCh <- fmt.Errorf("reader %d: model A answered %q, want %q",
						g, label, labelsA[g%len(labelsA)])
					return
				}
			}
		}(g)
	}

	// The storm: swap the file contents back and forth, reloading each
	// time. B is active now, so the alternation starts at A — every swap
	// is a real activation.
	contents := [2][]byte{modelA, modelB}
	want := [2]string{versionA, versionB}
	for i := 0; i < swaps; i++ {
		if err := os.WriteFile(path, contents[i%2], 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := r.Reload()
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		if m.Version != want[i%2] {
			t.Fatalf("swap %d activated %q, want %q", i, m.Version, want[i%2])
		}
		time.Sleep(2 * time.Millisecond) // let readers interleave
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	hist := r.History()
	if len(hist) != swaps+2 {
		t.Errorf("history has %d activations, want %d", len(hist), swaps+2)
	}
}
