package gateway

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/testutil"
)

// fakeBackend is a scriptable wimi-serve stand-in: it answers /readyz
// and /v1/identify from mutable state and counts what it saw.
type fakeBackend struct {
	t  *testing.T
	ts *httptest.Server

	mu        sync.Mutex
	version   string
	material  string
	identify  func(w http.ResponseWriter, r *http.Request) bool // optional override; true = handled
	reloadsTo string                                            // version adopted when /v1/reload lands

	identifies atomic.Int64
	reloads    atomic.Int64
}

func newFakeBackend(t *testing.T, version, mat string) *fakeBackend {
	f := &fakeBackend{t: t, version: version, material: mat}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		v := f.version
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "modelVersion": v})
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		f.reloads.Add(1)
		f.mu.Lock()
		if f.reloadsTo != "" {
			f.version = f.reloadsTo
		}
		v := f.version
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"modelVersion": v})
	})
	mux.HandleFunc("POST /v1/identify", func(w http.ResponseWriter, r *http.Request) {
		f.identifies.Add(1)
		f.mu.Lock()
		override := f.identify
		v, mat := f.version, f.material
		f.mu.Unlock()
		if override != nil && override(w, r) {
			return
		}
		w.Header().Set(serve.ModelVersionHeader, v)
		writeIdentifyOK(w, mat, v)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeBackend) setIdentify(fn func(w http.ResponseWriter, r *http.Request) bool) {
	f.mu.Lock()
	f.identify = fn
	f.mu.Unlock()
}

func (f *fakeBackend) setReloadsTo(v string) {
	f.mu.Lock()
	f.reloadsTo = v
	f.mu.Unlock()
}

func (f *fakeBackend) url() string { return f.ts.URL }

// writeIdentifyOK emits a CRC-stamped success body the way the serve
// tier does when the gateway opts into integrity.
func writeIdentifyOK(w http.ResponseWriter, material, version string) {
	body, _ := json.Marshal(serve.IdentifyResponse{
		Material: material, Omega: 1.5, Confidence: 0.9, ModelVersion: version,
	})
	body = append(body, '\n')
	w.Header().Set(serve.BodyCRCHeader, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// newTestGateway builds a gateway over the fakes with fast probes and a
// tight budget, serving on an httptest server.
func newTestGateway(t *testing.T, cfg Config, fakes ...*fakeBackend) (*Gateway, *httptest.Server) {
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, f.url())
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.Backoff.Initial == 0 {
		cfg.Backoff.Initial = time.Millisecond
	}
	if cfg.Backoff.Max == 0 {
		cfg.Backoff.Max = 5 * time.Millisecond
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	waitRoutable(t, g, 1)
	return g, ts
}

// waitRoutable blocks until at least n backends are routable.
func waitRoutable(t *testing.T, g *Gateway, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		routable := 0
		for _, b := range g.backends {
			if b.routable(g.clock.Now()) {
				routable++
			}
		}
		if routable >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never saw %d routable backends", n)
}

func postIdentify(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/identify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestProxiesVerifiedAnswer(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	f := newFakeBackend(t, "sha256:aaa", "water")
	_, ts := newTestGateway(t, Config{}, f)
	resp, body := postIdentify(t, ts, `{"x":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var out serve.IdentifyResponse
	if err := json.Unmarshal(body, &out); err != nil || out.Material != "water" {
		t.Fatalf("body %s (err %v)", body, err)
	}
	if got := resp.Header.Get(BackendHeader); got != f.url() {
		t.Errorf("%s = %q, want %q", BackendHeader, got, f.url())
	}
	if got := resp.Header.Get(serve.ModelVersionHeader); got != "sha256:aaa" {
		t.Errorf("%s = %q, want sha256:aaa", serve.ModelVersionHeader, got)
	}
}

func TestFailoverToHealthyBackend(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	bad := newFakeBackend(t, "sha256:aaa", "water")
	bad.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
		w.WriteHeader(http.StatusInternalServerError)
		return true
	})
	good := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{MaxAttempts: 4}, bad, good)
	waitRoutable(t, g, 2)
	for i := 0; i < 10; i++ {
		resp, body := postIdentify(t, ts, fmt.Sprintf(`{"i":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	if good.identifies.Load() < 10 {
		t.Errorf("good backend served %d identifies, want ≥10", good.identifies.Load())
	}
	if g.Stats().Retried == 0 {
		t.Error("expected at least one retry while the bad backend was failing")
	}
	// The bad backend's breaker must have tripped: after 10 requests its
	// identify count stays well below the request count.
	if n := bad.identifies.Load(); n >= 10 {
		t.Errorf("bad backend saw %d identifies; breaker never tripped", n)
	}
}

func TestSpilloverOn429HonoursPenalty(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	full := newFakeBackend(t, "sha256:aaa", "water")
	full.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		return true
	})
	calm := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{}, full, calm)
	waitRoutable(t, g, 2)
	for i := 0; i < 20; i++ {
		resp, body := postIdentify(t, ts, fmt.Sprintf(`{"i":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	// The full backend is penalised for 30s after its first 429: it may
	// see at most one identify (whichever request hashed to it first).
	if n := full.identifies.Load(); n > 1 {
		t.Errorf("penalised backend saw %d identifies, want ≤1", n)
	}
	if g.Stats().Spilled == 0 && full.identifies.Load() > 0 {
		t.Error("a 429 answer should count as a spill")
	}
}

func TestAllBackendsFullAnswers429(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	mk := func() *fakeBackend {
		f := newFakeBackend(t, "sha256:aaa", "water")
		f.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return true
		})
		return f
	}
	g, ts := newTestGateway(t, Config{}, mk(), mk())
	waitRoutable(t, g, 2)
	resp, body := postIdentify(t, ts, `{"x":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, body %s; want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 7 {
		t.Errorf("Retry-After %q, want an int in [1,7]", resp.Header.Get("Retry-After"))
	}
	if g.Stats().Shed == 0 {
		t.Error("gateway shed counter not incremented")
	}
}

func TestNoBackendsAnswers503WithRetryAfter(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	f := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{}, f)
	f.ts.Close() // backend gone; next probe marks it down
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && g.backends[0].healthy.Load() {
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := postIdentify(t, ts, `{"x":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s; want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 must carry Retry-After")
	}
	// readyz reflects the dead cluster.
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz status %d with all backends down, want 503", rz.StatusCode)
	}
}

func TestPermanentErrorRelayedVerbatim(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	a := newFakeBackend(t, "sha256:aaa", "water")
	reject := func(w http.ResponseWriter, r *http.Request) bool {
		httpError(w, http.StatusUnprocessableEntity, "identification failed: out of manifold")
		return true
	}
	a.setIdentify(reject)
	b := newFakeBackend(t, "sha256:aaa", "water")
	b.setIdentify(reject)
	g, ts := newTestGateway(t, Config{}, a, b)
	waitRoutable(t, g, 2)
	resp, body := postIdentify(t, ts, `{"x":1}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 relayed", resp.StatusCode)
	}
	if !strings.Contains(string(body), "out of manifold") {
		t.Errorf("backend error body not relayed: %s", body)
	}
	// Exactly one backend consulted: a 4xx is not retried.
	if n := a.identifies.Load() + b.identifies.Load(); n != 1 {
		t.Errorf("%d identifies for one permanent error, want 1", n)
	}
}

func TestCorruptedResponseRetriedNotRelayed(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	liar := newFakeBackend(t, "sha256:aaa", "water")
	liar.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
		// Declares one CRC, sends different bytes — a corrupted link.
		w.Header().Set(serve.BodyCRCHeader, "12345")
		w.Header().Set(serve.ModelVersionHeader, "sha256:aaa")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"material":"plutonium","omega":1,"confidence":1,"modelVersion":"sha256:aaa"}`))
		return true
	})
	honest := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{MaxAttempts: 4}, liar, honest)
	waitRoutable(t, g, 2)
	for i := 0; i < 10; i++ {
		resp, body := postIdentify(t, ts, fmt.Sprintf(`{"i":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var out serve.IdentifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Material != "water" {
			t.Fatalf("request %d: corrupted answer %q relayed to client", i, out.Material)
		}
	}
}

func TestStaleBackendExcludedAndConverges(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	// The stale fake ignores reload pushes at first, so it stays on the
	// old digest while we prove it gets no traffic.
	stale := newFakeBackend(t, "sha256:old0000", "water")
	fresh := newFakeBackend(t, "sha256:new0000", "water")
	g, ts := newTestGateway(t, Config{ExpectedVersion: "sha256:new0000"}, stale, fresh)
	waitRoutable(t, g, 1)

	// While stale, the stale backend serves no traffic.
	before := stale.identifies.Load()
	for i := 0; i < 6; i++ {
		resp, body := postIdentify(t, ts, fmt.Sprintf(`{"i":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(serve.ModelVersionHeader); got != "sha256:new0000" {
			t.Fatalf("request %d answered from model %q, want sha256:new0000", i, got)
		}
	}
	if n := stale.identifies.Load() - before; n != 0 {
		t.Errorf("stale backend served %d identifies while excluded", n)
	}

	if stale.reloads.Load() == 0 {
		t.Error("gateway never pushed a reload at the stale backend")
	}

	// Now let the fake adopt the push: the next reload lands the expected
	// digest and the backend must become routable again.
	stale.setReloadsTo("sha256:new0000")
	waitRoutable(t, g, 2)
}

func TestAffinitySameBodySameBackend(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	a := newFakeBackend(t, "sha256:aaa", "water")
	b := newFakeBackend(t, "sha256:aaa", "water")
	c := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{LoadSlack: 100}, a, b, c)
	waitRoutable(t, g, 3)
	owners := map[string]string{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			body := fmt.Sprintf(`{"session":%d}`, i)
			resp, respBody := postIdentify(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d, body %s", resp.StatusCode, respBody)
			}
			owner := resp.Header.Get(BackendHeader)
			if prev, ok := owners[body]; ok && prev != owner {
				t.Fatalf("body %s moved from %s to %s with stable cluster", body, prev, owner)
			}
			owners[body] = owner
		}
	}
	// 8 distinct sessions over 3 backends: placement should use >1 backend.
	distinct := map[string]bool{}
	for _, o := range owners {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d sessions landed on one backend; rendezvous not spreading", len(owners))
	}
}

func TestHedgeCuresSlowBackend(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	slow := newFakeBackend(t, "sha256:aaa", "water")
	slow.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return true
		}
		writeIdentifyOK(w, "water", "sha256:aaa")
		return true
	})
	fast := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{HedgeDelay: 20 * time.Millisecond, LoadSlack: 100}, slow, fast)
	waitRoutable(t, g, 2)
	start := time.Now()
	for i := 0; i < 8; i++ {
		resp, body := postIdentify(t, ts, fmt.Sprintf(`{"i":%d}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Errorf("8 hedged requests took %v; hedging is not firing", elapsed)
	}
	if g.Stats().Hedged == 0 {
		t.Error("no hedges launched despite a slow backend")
	}
}

func TestClusterEndpointReportsState(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	f := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{ExpectedVersion: "sha256:aaa"}, f)
	postIdentify(t, ts, `{"x":1}`)
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		ExpectedModel string          `json:"expectedModel"`
		Backends      []backendStatus `json:"backends"`
		Stats         Stats           `json:"stats"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	if out.ExpectedModel != "sha256:aaa" || len(out.Backends) != 1 {
		t.Fatalf("cluster answer %s", body)
	}
	b := out.Backends[0]
	if !b.Healthy || !b.Ready || b.Stale || b.ModelVersion != "sha256:aaa" || b.Served != 1 {
		t.Errorf("backend row %+v", b)
	}
	if out.Stats.Proxied != 1 {
		t.Errorf("stats %+v, want proxied=1", out.Stats)
	}
	_ = g
}
