package gateway

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/internal/raceflag"
)

// maxRelayAllocs bounds the steady-state allocation count of one whole
// in-process gateway relay: request/recorder construction, the pooled
// client-body read, one upstream HTTP round trip (net/http client
// machinery dominates), the pooled streaming-CRC response read and the
// answer write. A warmed run measures ~143; the bound leaves headroom
// for runtime jitter while catching a per-request buffer regression,
// which costs dozens at once.
const maxRelayAllocs = 220

// TestGatewayRelayAllocSteadyState guards the relay fast path: once the
// buffer pools and the upstream connection are warm, a relay must not
// pay per-body-byte allocations.
func TestGatewayRelayAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	f := newFakeBackend(t, "sha256:aaa", "water")
	g, _ := newTestGateway(t, Config{}, f)
	h := g.Handler()
	body := []byte(`{"baseline":"aGVsbG8=","target":"d29ybGQ=","padding":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`)
	do := func() {
		req := httptest.NewRequest("POST", "/v1/identify", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	for i := 0; i < 10; i++ { // warm the pools and the upstream connection
		do()
	}
	avg := testing.AllocsPerRun(50, do)
	if avg > maxRelayAllocs {
		t.Fatalf("steady-state relay allocates %.1f times per run, want <= %d", avg, maxRelayAllocs)
	}
}
