// Gateway data plane, batched mode (Config.BatchMax > 1). Two mechanisms
// stack on top of the routing core in proxy.go:
//
//   - In-flight coalescing: client requests with byte-identical bodies
//     (the common case under retry storms and periodic re-measurement)
//     elect a leader; followers wait for the leader's answer and share
//     its bytes. One upstream call amortises across N clients.
//   - Upstream micro-batching: distinct concurrent requests routed to
//     the same backend aggregate — bounded by BatchMax, lingering at
//     most BatchLinger — into one POST /v1/identify/batch, so the
//     backend admits and classifies them as one blocked batch instead
//     of N racing singles.
//
// Failure stays per-slot: a batch-level error or a retryable slot answer
// is delivered to that slot's own routing loop, which carries on with
// single relays under its own remaining deadline budget.
package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// batchRespLimit bounds one upstream batch response read. Slots are small
// (an identification verdict or an error line), so this is generous.
const batchRespLimit = 8 << 20

// errNoBatchEndpoint reports a backend without /v1/identify/batch — an
// older serve build. The caller falls back to the single relay path and
// the backend is remembered as batch-incapable.
var errNoBatchEndpoint = errors.New("gateway: backend has no batch endpoint")

// upstreamCall is one request riding an upstream micro-batch. body holds
// a reference taken at submit time and released by the flush once the
// bytes can no longer be read on the call's behalf.
type upstreamCall struct {
	ctx  context.Context
	body *pooledBody
	done chan upstreamResult // buffered 1; flush always delivers
}

type upstreamResult struct {
	res *proxyResult
	err error
}

// startBatcher wires b's upstream micro-batcher. The dispatcher hands
// each drained batch to a flush goroutine so a slow backend only stalls
// its own flushes, never the collection of the next batch.
func (g *Gateway) startBatcher(b *backend) {
	batcher, err := parallel.NewBatcher(g.cfg.BatchMax*8, g.cfg.BatchMax, g.cfg.BatchLinger,
		func(batch []*upstreamCall) {
			calls := make([]*upstreamCall, len(batch))
			copy(calls, batch)
			g.flushWG.Add(1)
			go g.flushBatch(b, calls)
		})
	if err != nil {
		// Config was defaulted to sane values; this cannot happen.
		panic(err)
	}
	b.batcher = batcher
}

// sendBatched routes one request through b's upstream micro-batcher when
// one is running, falling back to a plain send when it is not (no
// batcher, batch-incapable backend, saturated or closed queue). An
// abandoned wait (context expiry) leaves the flush holding its own
// reference on body, so the backing buffer stays live until the flush
// is provably done with it.
func (g *Gateway) sendBatched(ctx context.Context, b *backend, body *pooledBody) (*proxyResult, error) {
	if b.batcher == nil || b.noBatch.Load() {
		return g.send(ctx, b, body)
	}
	call := &upstreamCall{ctx: ctx, body: body, done: make(chan upstreamResult, 1)}
	body.retain() // the flush's reference; released by flushBatch
	if b.batcher.Submit(call) != nil {
		// Saturated or draining: the single path still works.
		body.release()
		return g.send(ctx, b, body)
	}
	select {
	case r := <-call.done:
		if errors.Is(r.err, errNoBatchEndpoint) {
			return g.send(ctx, b, body)
		}
		return r.res, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flushBatch delivers one drained batch: expired riders are answered
// their context error immediately (a deadline that passed while queued
// must not consume backend work), survivors are partitioned into
// envelope-sized chunks, a chunk of one travels the plain single-relay
// path, and two or more go upstream as one batch call.
func (g *Gateway) flushBatch(b *backend, calls []*upstreamCall) {
	defer g.flushWG.Done()
	defer func() {
		// The submit-time references: past this point the flush can no
		// longer read any rider's body.
		for _, c := range calls {
			c.body.release()
		}
	}()
	live := make([]*upstreamCall, 0, len(calls))
	for _, c := range calls {
		if err := c.ctx.Err(); err != nil {
			c.done <- upstreamResult{err: err}
			continue
		}
		live = append(live, c)
	}
	// Partition into chunks the backend is willing to read: serve bounds
	// the whole envelope at its MaxBodyBytes (assumed to match ours — both
	// default 16 MiB) and the slot count at MaxBatchSlots, so several
	// individually-legal large captures must not be glued into one doomed
	// 400. A body too big to share an envelope forms a chunk of one and
	// rides the single path, whose raw body the backend does accept.
	maxSlots := g.cfg.BatchMax
	if maxSlots > serve.MaxBatchSlots {
		maxSlots = serve.MaxBatchSlots
	}
	budget := g.cfg.MaxBodyBytes - int64(len(`{"requests":[]}`))
	for start := 0; start < len(live); {
		end, size := start, int64(0)
		for end < len(live) && end-start < maxSlots {
			cost := int64(len(live[end].body.bytes())) + 1 // slot plus its comma
			if end > start && size+cost > budget {
				break
			}
			size += cost
			end++
		}
		chunk := live[start:end]
		start = end
		if n := len(chunk); n <= len(g.batchSizes) {
			g.batchSizes[n-1].Add(1)
		}
		if len(chunk) == 1 {
			c := chunk[0]
			res, err := g.send(c.ctx, b, c.body)
			c.done <- upstreamResult{res: res, err: err}
			continue
		}
		g.batchesSent.Add(1)
		g.sendBatchUpstream(b, chunk)
	}
}

// sendBatchUpstream performs one POST /v1/identify/batch and classifies
// every slot with the same vocabulary the single path uses, so the
// routing loop upstairs cannot tell how its attempt travelled.
func (g *Gateway) sendBatchUpstream(b *backend, calls []*upstreamCall) {
	deliverAll := func(err error) {
		for _, c := range calls {
			c.done <- upstreamResult{err: err}
		}
	}
	if err := b.breaker.Allow(); err != nil {
		deliverAll(err)
		return
	}
	b.inflight.Add(int64(len(calls)))
	defer b.inflight.Add(int64(-len(calls)))

	// Assemble {"requests":[...]} by splicing the raw client bodies —
	// they are relayed verbatim, never re-encoded. Ingress admitted each
	// one to the batched plane only after validBatchBody, so the splice
	// cannot produce a malformed envelope or smuggle extra slots.
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"requests":[`)
	for i, c := range calls {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(c.body.bytes())
	}
	buf.WriteString(`]}`)
	env := newPooledBody(buf)

	// The wire call may run as long as the most patient rider.
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	var latest time.Time
	for _, c := range calls {
		if dl, ok := c.ctx.Deadline(); ok && dl.After(latest) {
			latest = dl
		}
	}
	if !latest.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, latest)
	}
	defer cancel()

	fail := func(err error) {
		b.breaker.Record(false)
		b.failures.Add(1)
		b.noteErr(err)
		deliverAll(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/identify/batch", bytes.NewReader(buf.Bytes()))
	if err != nil {
		env.release()
		fail(err)
		return
	}
	env.attach(req)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.IntegrityHeader, "crc32")
	resp, err := g.do(req)
	// Drop the assembly reference only after Do returns: a backend that
	// answers before draining the request (or a broken connection) leaves
	// the transport holding its own reference, and the buffer repools
	// when the transport Closes it — never while it may still be read.
	env.release()
	if err != nil {
		fail(err)
		return
	}

	rbuf := bufPool.Get().(*bytes.Buffer)
	rbuf.Reset()
	crc, rerr := readBodyCRC(rbuf, resp.Body, batchRespLimit)
	_ = resp.Body.Close()
	if rerr != nil {
		bufPool.Put(rbuf)
		fail(rerr)
		return
	}
	switch {
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed:
		// Alive, just an older build without the batch route. Remember and
		// let every rider retry down the single path.
		bufPool.Put(rbuf)
		b.breaker.Record(true)
		if !b.noBatch.Swap(true) {
			g.cfg.Logf("gateway: backend %s has no /v1/identify/batch; falling back to single relays", b.url)
		}
		deliverAll(errNoBatchEndpoint)
		return

	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Whole-batch shed: penalise once, spill every rider.
		bufPool.Put(rbuf)
		b.breaker.Record(true)
		after := resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), g.clock.Now())
		b.penalise(g.clock.Now(), after)
		res := &proxyResult{backend: b, status: resp.StatusCode, header: resp.Header}
		for _, c := range calls {
			c.done <- upstreamResult{err: &spillError{res: res, after: after}}
		}
		return

	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The backend judged the envelope itself bad (an undersized limit
		// on its side, or a slot that slipped past ingress validation): a
		// request problem, not backend health — the single path records a
		// 4xx as breaker success too. Each rider retries down the single
		// path for its own per-body verdict instead of sharing the blame.
		bufPool.Put(rbuf)
		b.breaker.Record(true)
		deliverAll(fmt.Errorf("gateway: backend %s rejected a %d-slot batch with HTTP %d", b.url, len(calls), resp.StatusCode))
		return

	case resp.StatusCode != http.StatusOK:
		bufPool.Put(rbuf)
		fail(fmt.Errorf("gateway: backend %s answered HTTP %d to a batch", b.url, resp.StatusCode))
		return
	}

	// 200: the body CRC covers every slot at once.
	if err := verifyBatchBody(resp.Header, crc); err != nil {
		bufPool.Put(rbuf)
		fail(err)
		return
	}
	var out serve.BatchIdentifyResponse
	if err := json.Unmarshal(rbuf.Bytes(), &out); err != nil {
		bufPool.Put(rbuf)
		fail(fmt.Errorf("%w: unparseable batch body: %v", errIntegrity, err))
		return
	}
	bufPool.Put(rbuf) // Unmarshal copied the slot bodies out
	if len(out.Results) != len(calls) {
		fail(fmt.Errorf("%w: %d slots answered for %d sent", errIntegrity, len(out.Results), len(calls)))
		return
	}
	b.breaker.Record(true)
	expected := g.ExpectedVersion()
	for i, c := range calls {
		c.done <- g.classifySlot(b, out.Results[i], expected)
	}
}

// verifyBatchBody checks the whole-response CRC of a batch 200.
func verifyBatchBody(h http.Header, got uint32) error {
	crcHeader := h.Get(serve.BodyCRCHeader)
	if crcHeader == "" {
		return fmt.Errorf("%w: no %s header on batch 200", errIntegrity, serve.BodyCRCHeader)
	}
	want, err := strconv.ParseUint(crcHeader, 10, 32)
	if err != nil {
		return fmt.Errorf("%w: bad %s %q", errIntegrity, serve.BodyCRCHeader, crcHeader)
	}
	if uint64(got) != want {
		return fmt.Errorf("%w: batch body crc %d, header says %d", errIntegrity, got, want)
	}
	return nil
}

// classifySlot maps one batch slot onto the single-path outcome
// vocabulary. The slot body plus the trailing newline the single path's
// encoder would have appended is byte-identical to a single relay.
func (g *Gateway) classifySlot(b *backend, slot serve.BatchSlot, expected string) upstreamResult {
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	if slot.ModelVersion != "" {
		hdr.Set(serve.ModelVersionHeader, slot.ModelVersion)
	}
	if slot.RetryAfterSec > 0 {
		hdr.Set("Retry-After", strconv.FormatInt(slot.RetryAfterSec, 10))
	}
	body := make([]byte, 0, len(slot.Body)+1)
	body = append(append(body, slot.Body...), '\n')
	res := &proxyResult{backend: b, status: slot.Status, header: hdr, body: body}

	switch {
	case slot.Status == http.StatusOK:
		var out serve.IdentifyResponse
		if err := json.Unmarshal(slot.Body, &out); err != nil || out.Material == "" {
			b.failures.Add(1)
			return upstreamResult{err: fmt.Errorf("%w: bad batch slot body", errIntegrity)}
		}
		if expected != "" && slot.ModelVersion != "" && slot.ModelVersion != expected {
			b.stale.Store(true)
			return upstreamResult{err: &staleError{url: b.url, got: slot.ModelVersion}}
		}
		b.served.Add(1)
		return upstreamResult{res: res}

	case slot.Status == http.StatusTooManyRequests || slot.Status == http.StatusServiceUnavailable:
		after := time.Duration(slot.RetryAfterSec) * time.Second
		if after <= 0 {
			after = time.Second
		}
		b.penalise(g.clock.Now(), after)
		return upstreamResult{err: &spillError{res: res, after: after}}

	case slot.Status >= 400 && slot.Status < 500:
		return upstreamResult{res: res, err: &permanentError{res: res}}

	default: // slot-level 5xx (e.g. a per-slot queue timeout)
		b.failures.Add(1)
		err := fmt.Errorf("gateway: backend %s answered HTTP %d in a batch slot", b.url, slot.Status)
		b.noteErr(err)
		return upstreamResult{err: err}
	}
}

// coalesceKey identifies an in-flight answer: the request bytes plus the
// model generation they would be answered from. Including the expected
// version means a follower can never be handed an answer computed from a
// model the cluster has since moved off.
type coalesceKey struct {
	digest  [sha256.Size]byte
	version string
}

// inflightCall is one leader's pending answer; done closes once ans is
// immutable. Follower handlers block on done, then share ans verbatim.
type inflightCall struct {
	done chan struct{}
	ans  clientAnswer
}

// identifyCoalesced is the batched data plane's client entry: dedup
// identical in-flight requests, then route the survivors through the
// batching relay. The leader runs detached from its own client's context
// — followers that joined are owed the answer even if the leading client
// hangs up — but still bounded by the request deadline budget. The
// handler's own reference on body is released by handleIdentify's defer.
func (g *Gateway) identifyCoalesced(w http.ResponseWriter, r *http.Request, body *pooledBody) {
	digest := sha256.Sum256(body.bytes())
	ck := coalesceKey{digest: digest, version: g.ExpectedVersion()}

	g.cmu.Lock()
	if c := g.inflight[ck]; c != nil {
		g.cmu.Unlock()
		// Follower: the digest replaces any need for the bytes.
		g.coalesced.Add(1)
		select {
		case <-c.done:
			g.deliver(w, c.ans)
		case <-r.Context().Done():
			// Client gone before the leader answered; nothing to write.
		}
		return
	}
	c := &inflightCall{done: make(chan struct{})}
	g.inflight[ck] = c
	g.cmu.Unlock()

	// Only a single well-formed JSON value may ride an upstream batch
	// envelope: a malformed body spliced in would poison the whole batch
	// with a backend 400, and a crafted one ("{},{}") could smuggle extra
	// slots. Anything else relays singly (batched=false), where serve
	// answers its own clean per-request 400. The leader scans alone —
	// followers are byte-identical, so one validation pass covers the
	// whole coalesced set instead of costing every rider a body scan.
	batched := validBatchBody(body.bytes())
	// The routing key reuses the digest already paid for, keeping the
	// rendezvous affinity property (same body → same backend).
	key := binary.LittleEndian.Uint64(digest[:8])
	ans := g.identify(context.Background(), body, key, batched)

	g.cmu.Lock()
	delete(g.inflight, ck)
	g.cmu.Unlock()
	c.ans = ans
	close(c.done)

	g.deliver(w, ans)
}
