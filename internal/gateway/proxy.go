package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/serve"
)

// proxyResult is one backend answer, read fully so it can be verified
// before anything reaches the client.
type proxyResult struct {
	backend *backend
	status  int
	header  http.Header
	body    []byte
}

// spillError classifies an alive-but-full backend answer (429, or 503
// while draining): the request should immediately try another backend,
// and the answering one sits out Retry-After.
type spillError struct {
	res   *proxyResult
	after time.Duration
}

func (e *spillError) Error() string {
	return fmt.Sprintf("backend %s shed the request (HTTP %d, retry after %v)",
		e.res.backend.url, e.res.status, e.after)
}

// permanentError classifies a backend 4xx that retrying elsewhere cannot
// fix (malformed body, oversized request, identification failure): the
// backend's answer is relayed verbatim.
type permanentError struct{ res *proxyResult }

func (e *permanentError) Error() string {
	return fmt.Sprintf("backend %s rejected the request (HTTP %d)", e.res.backend.url, e.res.status)
}

// staleError classifies a verified answer from the wrong model version:
// never relayed, retried on a converged backend instead.
type staleError struct {
	url string
	got string
}

func (e *staleError) Error() string {
	return fmt.Sprintf("backend %s answered from stale model %s", e.url, e.got)
}

// errIntegrity reports a response whose body failed CRC verification —
// corrupted or truncated on the wire.
var errIntegrity = errors.New("gateway: response failed integrity check")

// bufPool recycles the data plane's large scratch buffers: client request
// bodies, upstream batch assemblies and upstream response reads. Final
// answer bodies are small exact-size copies so they can be shared across
// coalesced clients; only the big transient scratch cycles through here.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// pooledBody is a refcounted pooled buffer serving as an upstream request
// body. Request-side scratch can be aliased by readers that outlive the
// function that launched them — a hedge loser still writing when the
// winner answers, a batch flush holding an abandoned slot, and net/http
// itself when a backend answers 4xx/429 before draining the request
// (the transport's write loop may still be reading the bytes as the
// response returns). Every reader holds a reference; the buffer returns
// to bufPool only when the last reference drops, so no status-based
// guessing about whether the body was consumed is ever needed.
type pooledBody struct {
	buf  *bytes.Buffer
	refs atomic.Int64
}

// newPooledBody wraps buf with one reference owned by the caller.
func newPooledBody(buf *bytes.Buffer) *pooledBody {
	pb := &pooledBody{buf: buf}
	pb.refs.Store(1)
	return pb
}

func (p *pooledBody) bytes() []byte { return p.buf.Bytes() }

// retain takes a reference. Callers must already hold one — retaining a
// fully released body would resurrect a buffer another handler may own.
func (p *pooledBody) retain() { p.refs.Add(1) }

// tryRetain takes a reference only if the body is still live; it is the
// safe form for callbacks (GetBody) that may fire after release.
func (p *pooledBody) tryRetain() bool {
	for {
		n := p.refs.Load()
		if n <= 0 {
			return false
		}
		if p.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference, repooling the buffer on the last.
func (p *pooledBody) release() {
	if p.refs.Add(-1) == 0 {
		bufPool.Put(p.buf)
	}
}

// attach mounts p as req's body. The transport closes a request body
// exactly once — on success, on error, and on context cancellation — so
// tying the reference to Close releases at the earliest provably safe
// moment. GetBody hands replays (transport retries on stale reused
// connections) their own reference. The caller must hold a reference
// across the attach.
func (p *pooledBody) attach(req *http.Request) {
	p.retain()
	req.Body = &releaseReader{Reader: bytes.NewReader(p.bytes()), pb: p}
	req.GetBody = func() (io.ReadCloser, error) {
		if !p.tryRetain() {
			return nil, errors.New("gateway: pooled request body already recycled")
		}
		return &releaseReader{Reader: bytes.NewReader(p.bytes()), pb: p}, nil
	}
}

// releaseReader is a pooledBody view whose Close drops the reference.
type releaseReader struct {
	*bytes.Reader
	pb   *pooledBody
	once sync.Once
}

func (r *releaseReader) Close() error {
	r.once.Do(func() { r.pb.release() })
	return nil
}

// readBodyCRC drains r (bounded at limit) into dst while folding the
// bytes through an IEEE CRC32 in the same pass — the relay path computes
// its integrity check while the body streams in, instead of rescanning
// the buffer afterwards.
func readBodyCRC(dst *bytes.Buffer, r io.Reader, limit int64) (uint32, error) {
	h := crc32.NewIEEE()
	_, err := dst.ReadFrom(io.TeeReader(io.LimitReader(r, limit), h))
	return h.Sum32(), err
}

// send performs one verified request to one backend. A nil error means
// res is a CRC-checked, parseable 200 from the expected model version;
// every other outcome comes back as a classified error. Breaker
// admission and outcome recording, penalty setting and stale marking all
// happen here so the hedged path behaves identically to the primary.
func (g *Gateway) send(ctx context.Context, b *backend, body *pooledBody) (*proxyResult, error) {
	if err := b.breaker.Allow(); err != nil {
		return nil, err
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/identify", bytes.NewReader(body.bytes()))
	if err != nil {
		b.breaker.Record(false)
		return nil, err
	}
	body.attach(req)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.IntegrityHeader, "crc32")
	resp, err := g.do(req)
	if err != nil {
		b.breaker.Record(false)
		b.failures.Add(1)
		b.noteErr(err)
		return nil, err
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	crc, err := readBodyCRC(buf, resp.Body, 1<<20)
	_ = resp.Body.Close()
	if err != nil {
		bufPool.Put(buf)
		b.breaker.Record(false)
		b.failures.Add(1)
		b.noteErr(err)
		return nil, err
	}
	// The exact-size copy frees the pooled scratch immediately and makes
	// the result body safe to hand to any number of coalesced clients.
	respBody := append([]byte(nil), buf.Bytes()...)
	bufPool.Put(buf)
	res := &proxyResult{backend: b, status: resp.StatusCode, header: resp.Header, body: respBody}

	switch {
	case resp.StatusCode == http.StatusOK:
		if err := verifyIdentifyBody(resp.Header, respBody, crc); err != nil {
			// A corrupted answer is a failed attempt: the link (or the
			// backend) is mangling bytes.
			b.breaker.Record(false)
			b.failures.Add(1)
			b.noteErr(err)
			return nil, err
		}
		if exp := g.ExpectedVersion(); exp != "" {
			if got := resp.Header.Get(serve.ModelVersionHeader); got != "" && got != exp {
				// Alive and answering — from the wrong model. Exclude from
				// routing until the probe loop converges it.
				b.breaker.Record(true)
				b.stale.Store(true)
				return nil, &staleError{url: b.url, got: got}
			}
		}
		b.breaker.Record(true)
		b.served.Add(1)
		return res, nil

	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Alive but refusing load: honour Retry-After as a routing
		// penalty, not as a breaker failure.
		b.breaker.Record(true)
		after := resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), g.clock.Now())
		b.penalise(g.clock.Now(), after)
		return res, &spillError{res: res, after: after}

	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		b.breaker.Record(true)
		return res, &permanentError{res: res}

	default: // 5xx and anything unexpected
		b.breaker.Record(false)
		b.failures.Add(1)
		err := fmt.Errorf("gateway: backend %s answered HTTP %d", b.url, resp.StatusCode)
		b.noteErr(err)
		return res, err
	}
}

// do runs one upstream data-plane request with the connection-reuse trace
// attached, so /v1/cluster can report how warm the idle pool runs.
func (g *Gateway) do(req *http.Request) (*http.Response, error) {
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), g.connTrace))
	return g.client.Do(req)
}

// verifyIdentifyBody is the never-wrong gate on a 200: the CRC the
// backend stamped before the bytes hit the wire must match the streaming
// CRC computed while the body arrived (its absence is itself a failure —
// the gateway always requests it), and the body must parse as a complete
// identification.
func verifyIdentifyBody(h http.Header, body []byte, got uint32) error {
	crcHeader := h.Get(serve.BodyCRCHeader)
	if crcHeader == "" {
		return fmt.Errorf("%w: no %s header on 200", errIntegrity, serve.BodyCRCHeader)
	}
	want, err := strconv.ParseUint(crcHeader, 10, 32)
	if err != nil {
		return fmt.Errorf("%w: bad %s %q", errIntegrity, serve.BodyCRCHeader, crcHeader)
	}
	if uint64(got) != want {
		return fmt.Errorf("%w: body crc %d, header says %d", errIntegrity, got, want)
	}
	var out serve.IdentifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("%w: unparseable body: %v", errIntegrity, err)
	}
	if out.Material == "" {
		return fmt.Errorf("%w: empty material", errIntegrity)
	}
	return nil
}

// forward sends the request to primary, hedging onto next when the
// gateway is configured to and a distinct candidate exists. The hedge
// launches only if the primary has not answered within HedgeDelay — a
// duplicate racing a slow backend, with the loser's context cancelled as
// soon as either produces a verified answer.
func (g *Gateway) forward(ctx context.Context, primary, next *backend, body *pooledBody) (*proxyResult, error) {
	if g.cfg.HedgeDelay <= 0 || next == nil {
		return g.send(ctx, primary, body)
	}
	return resilience.Hedge(ctx, resilience.HedgeConfig{Delay: g.cfg.HedgeDelay, Clock: g.clock},
		func(ctx context.Context, attempt int) (*proxyResult, error) {
			b := primary
			if attempt == 1 {
				b = next
				g.hedged.Add(1)
			}
			return g.send(ctx, b, body)
		})
}

// outcomeKind labels how one client request ended, for the Stats
// counters; deliver increments exactly one per answered request.
type outcomeKind int

const (
	outcomeProxied   outcomeKind = iota // verified backend 200
	outcomeRelayed                      // backend 4xx passed through
	outcomeShed                         // gateway 429: every backend full
	outcomeFailed                       // gateway 503: no verified answer
	outcomeAbandoned                    // client gone; nothing written
)

// clientAnswer is a fully rendered reply to one client request — status,
// the headers that matter and the body bytes. Rendering answers into a
// value instead of writing them straight to the ResponseWriter is what
// lets coalesced followers share the leader's answer verbatim.
type clientAnswer struct {
	outcome      outcomeKind
	status       int
	backendURL   string
	contentType  string
	modelVersion string
	retryAfter   string
	body         []byte
}

func answerFromResult(res *proxyResult, outcome outcomeKind) clientAnswer {
	return clientAnswer{
		outcome:      outcome,
		status:       res.status,
		backendURL:   res.backend.url,
		contentType:  res.header.Get("Content-Type"),
		modelVersion: res.header.Get(serve.ModelVersionHeader),
		retryAfter:   res.header.Get("Retry-After"),
		body:         res.body,
	}
}

func errorAnswer(outcome outcomeKind, status int, retryAfter string, format string, args ...any) clientAnswer {
	buf, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	return clientAnswer{
		outcome:     outcome,
		status:      status,
		contentType: "application/json",
		retryAfter:  retryAfter,
		body:        append(buf, '\n'),
	}
}

// deliver writes one rendered answer and settles its Stats counter. It is
// the single exit for every answered client request — leaders, followers
// and the unbatched path all come through here, so each client request
// counts exactly once no matter how it was satisfied upstream.
func (g *Gateway) deliver(w http.ResponseWriter, ans clientAnswer) {
	switch ans.outcome {
	case outcomeAbandoned:
		return
	case outcomeProxied:
		g.proxied.Add(1)
	case outcomeRelayed:
		g.relayed.Add(1)
	case outcomeShed:
		g.shed.Add(1)
	case outcomeFailed:
		g.failed.Add(1)
	}
	if ans.contentType != "" {
		w.Header().Set("Content-Type", ans.contentType)
	}
	if ans.modelVersion != "" {
		w.Header().Set(serve.ModelVersionHeader, ans.modelVersion)
	}
	if ans.retryAfter != "" {
		w.Header().Set("Retry-After", ans.retryAfter)
	}
	if ans.backendURL != "" {
		w.Header().Set(BackendHeader, ans.backendURL)
	}
	w.WriteHeader(ans.status)
	_, _ = w.Write(ans.body)
}

// identify is the routing core: pick → forward → classify under one
// shrinking deadline budget, rendered as a clientAnswer. ctx is the
// client's own context on the unbatched path and a detached one for a
// coalescing leader (followers are owed the answer even if the leading
// client hangs up). When batched, the first attempt rides the upstream
// micro-batch; any failure there splits back to per-slot single relays,
// each retrying under this request's own remaining budget.
func (g *Gateway) identify(ctx context.Context, body *pooledBody, key uint64, batched bool) clientAnswer {
	budget := resilience.NewBudget(g.clock, g.cfg.RequestTimeout)
	// The jitter stream is seeded per request content: deterministic for
	// a given request, decorrelated across a burst of different ones.
	boCfg := g.cfg.Backoff
	boCfg.Seed ^= int64(key)
	if boCfg.Seed == 0 {
		boCfg.Seed = 1
	}
	bo := resilience.NewBackoff(boCfg)

	tried := map[*backend]bool{}
	sawSpill := false
	var lastErr error
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		if budget.Remaining() < g.cfg.MinAttempt {
			break
		}
		primary, next := g.pick(key, tried)
		if primary == nil && len(tried) > 0 {
			// Every routable backend has been tried once: open the field
			// for revisits rather than giving up with budget left.
			tried = map[*backend]bool{}
			primary, next = g.pick(key, tried)
		}
		if primary == nil {
			break
		}
		tried[primary] = true
		if attempt > 0 {
			g.retried.Add(1)
		}
		attemptCtx, cancel := budget.Context(ctx)
		var res *proxyResult
		var err error
		if batched && attempt == 0 {
			res, err = g.sendBatched(attemptCtx, primary, body)
		} else {
			res, err = g.forward(attemptCtx, primary, next, body)
		}
		cancel()
		if err == nil {
			return answerFromResult(res, outcomeProxied)
		}
		lastErr = err
		if ctx.Err() != nil {
			return clientAnswer{outcome: outcomeAbandoned}
		}
		var perm *permanentError
		var spill *spillError
		var stale *staleError
		switch {
		case errors.As(err, &perm):
			// The request itself is the problem; the backend's verdict
			// stands no matter who we'd ask.
			return answerFromResult(perm.res, outcomeRelayed)
		case errors.As(err, &spill):
			sawSpill = true
			g.spilled.Add(1)
			continue // immediate spillover: another backend may have room
		case errors.As(err, &stale), errors.Is(err, resilience.ErrBreakerOpen):
			continue // not a load signal; move on without sleeping
		}
		// Hard failure (network error, 5xx, integrity): back off before
		// the next try, but never sleep past the budget.
		if attempt == g.cfg.MaxAttempts-1 {
			break
		}
		wait := bo.Delay(attempt)
		if wait+g.cfg.MinAttempt > budget.Remaining() {
			break
		}
		if g.clock.Sleep(ctx, wait) != nil {
			return clientAnswer{outcome: outcomeAbandoned}
		}
	}

	// Degraded exit: no verified answer in budget. Honest shed when the
	// cluster told us it is full, 503 otherwise — always with a
	// Retry-After so well-behaved clients pace themselves.
	ra := retryAfterSeconds(g.retryAfterHint())
	if sawSpill {
		return errorAnswer(outcomeShed, http.StatusTooManyRequests, ra,
			"all backends at capacity, retry later")
	}
	if lastErr == nil {
		lastErr = errors.New("no routable backend")
	}
	return errorAnswer(outcomeFailed, http.StatusServiceUnavailable, ra,
		"no backend could answer: %v", lastErr)
}

func (g *Gateway) handleIdentify(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)); err != nil {
		bufPool.Put(buf)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "reading request: %v", err)
		return
	}
	pb := newPooledBody(buf)
	defer pb.release()
	if g.cfg.BatchMax > 1 {
		g.identifyCoalesced(w, r, pb)
		return
	}
	ans := g.identify(r.Context(), pb, bodyKey(pb.bytes()), false)
	g.deliver(w, ans)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, _ := json.Marshal(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
