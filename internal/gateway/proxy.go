package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/resilience"
	"repro/internal/serve"
)

// proxyResult is one backend answer, read fully so it can be verified
// before anything reaches the client.
type proxyResult struct {
	backend *backend
	status  int
	header  http.Header
	body    []byte
}

// spillError classifies an alive-but-full backend answer (429, or 503
// while draining): the request should immediately try another backend,
// and the answering one sits out Retry-After.
type spillError struct {
	res   *proxyResult
	after time.Duration
}

func (e *spillError) Error() string {
	return fmt.Sprintf("backend %s shed the request (HTTP %d, retry after %v)",
		e.res.backend.url, e.res.status, e.after)
}

// permanentError classifies a backend 4xx that retrying elsewhere cannot
// fix (malformed body, oversized request, identification failure): the
// backend's answer is relayed verbatim.
type permanentError struct{ res *proxyResult }

func (e *permanentError) Error() string {
	return fmt.Sprintf("backend %s rejected the request (HTTP %d)", e.res.backend.url, e.res.status)
}

// staleError classifies a verified answer from the wrong model version:
// never relayed, retried on a converged backend instead.
type staleError struct {
	url string
	got string
}

func (e *staleError) Error() string {
	return fmt.Sprintf("backend %s answered from stale model %s", e.url, e.got)
}

// errIntegrity reports a response whose body failed CRC verification —
// corrupted or truncated on the wire.
var errIntegrity = errors.New("gateway: response failed integrity check")

// send performs one verified request to one backend. A nil error means
// res is a CRC-checked, parseable 200 from the expected model version;
// every other outcome comes back as a classified error. Breaker
// admission and outcome recording, penalty setting and stale marking all
// happen here so the hedged path behaves identically to the primary.
func (g *Gateway) send(ctx context.Context, b *backend, body []byte) (*proxyResult, error) {
	if err := b.breaker.Allow(); err != nil {
		return nil, err
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/identify", bytes.NewReader(body))
	if err != nil {
		b.breaker.Record(false)
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.IntegrityHeader, "crc32")
	resp, err := g.client.Do(req)
	if err != nil {
		b.breaker.Record(false)
		b.failures.Add(1)
		b.noteErr(err)
		return nil, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	if err != nil {
		b.breaker.Record(false)
		b.failures.Add(1)
		b.noteErr(err)
		return nil, err
	}
	res := &proxyResult{backend: b, status: resp.StatusCode, header: resp.Header, body: respBody}

	switch {
	case resp.StatusCode == http.StatusOK:
		if err := verifyIdentifyBody(resp.Header, respBody); err != nil {
			// A corrupted answer is a failed attempt: the link (or the
			// backend) is mangling bytes.
			b.breaker.Record(false)
			b.failures.Add(1)
			b.noteErr(err)
			return nil, err
		}
		if exp := g.ExpectedVersion(); exp != "" {
			if got := resp.Header.Get(serve.ModelVersionHeader); got != "" && got != exp {
				// Alive and answering — from the wrong model. Exclude from
				// routing until the probe loop converges it.
				b.breaker.Record(true)
				b.stale.Store(true)
				return nil, &staleError{url: b.url, got: got}
			}
		}
		b.breaker.Record(true)
		b.served.Add(1)
		return res, nil

	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Alive but refusing load: honour Retry-After as a routing
		// penalty, not as a breaker failure.
		b.breaker.Record(true)
		after := parseRetryAfter(resp.Header.Get("Retry-After"))
		b.penalise(g.clock.Now(), after)
		return res, &spillError{res: res, after: after}

	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		b.breaker.Record(true)
		return res, &permanentError{res: res}

	default: // 5xx and anything unexpected
		b.breaker.Record(false)
		b.failures.Add(1)
		err := fmt.Errorf("gateway: backend %s answered HTTP %d", b.url, resp.StatusCode)
		b.noteErr(err)
		return res, err
	}
}

// verifyIdentifyBody is the never-wrong gate on a 200: the CRC the
// backend stamped before the bytes hit the wire must match what arrived
// (its absence is itself a failure — the gateway always requests it),
// and the body must parse as a complete identification.
func verifyIdentifyBody(h http.Header, body []byte) error {
	crcHeader := h.Get(serve.BodyCRCHeader)
	if crcHeader == "" {
		return fmt.Errorf("%w: no %s header on 200", errIntegrity, serve.BodyCRCHeader)
	}
	want, err := strconv.ParseUint(crcHeader, 10, 32)
	if err != nil {
		return fmt.Errorf("%w: bad %s %q", errIntegrity, serve.BodyCRCHeader, crcHeader)
	}
	if got := crc32.ChecksumIEEE(body); uint64(got) != want {
		return fmt.Errorf("%w: body crc %d, header says %d", errIntegrity, got, want)
	}
	var out serve.IdentifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("%w: unparseable body: %v", errIntegrity, err)
	}
	if out.Material == "" {
		return fmt.Errorf("%w: empty material", errIntegrity)
	}
	return nil
}

// forward sends the request to primary, hedging onto next when the
// gateway is configured to and a distinct candidate exists. The hedge
// launches only if the primary has not answered within HedgeDelay — a
// duplicate racing a slow backend, with the loser's context cancelled as
// soon as either produces a verified answer.
func (g *Gateway) forward(ctx context.Context, primary, next *backend, body []byte) (*proxyResult, error) {
	if g.cfg.HedgeDelay <= 0 || next == nil {
		return g.send(ctx, primary, body)
	}
	return resilience.Hedge(ctx, resilience.HedgeConfig{Delay: g.cfg.HedgeDelay, Clock: g.clock},
		func(ctx context.Context, attempt int) (*proxyResult, error) {
			b := primary
			if attempt == 1 {
				b = next
				g.hedged.Add(1)
			}
			return g.send(ctx, b, body)
		})
}

func (g *Gateway) handleIdentify(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "reading request: %v", err)
		return
	}
	key := bodyKey(body)
	budget := resilience.NewBudget(g.clock, g.cfg.RequestTimeout)
	// The jitter stream is seeded per request content: deterministic for
	// a given request, decorrelated across a burst of different ones.
	boCfg := g.cfg.Backoff
	boCfg.Seed ^= int64(key)
	if boCfg.Seed == 0 {
		boCfg.Seed = 1
	}
	bo := resilience.NewBackoff(boCfg)

	tried := map[*backend]bool{}
	sawSpill := false
	var lastErr error
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		if budget.Remaining() < g.cfg.MinAttempt {
			break
		}
		primary, next := g.pick(key, tried)
		if primary == nil && len(tried) > 0 {
			// Every routable backend has been tried once: open the field
			// for revisits rather than giving up with budget left.
			tried = map[*backend]bool{}
			primary, next = g.pick(key, tried)
		}
		if primary == nil {
			break
		}
		tried[primary] = true
		if attempt > 0 {
			g.retried.Add(1)
		}
		attemptCtx, cancel := budget.Context(r.Context())
		res, err := g.forward(attemptCtx, primary, next, body)
		cancel()
		if err == nil {
			g.proxied.Add(1)
			relay(w, res)
			return
		}
		lastErr = err
		if r.Context().Err() != nil {
			return // client gone; nothing to answer
		}
		var perm *permanentError
		var spill *spillError
		var stale *staleError
		switch {
		case errors.As(err, &perm):
			// The request itself is the problem; the backend's verdict
			// stands no matter who we'd ask.
			g.relayed.Add(1)
			relay(w, perm.res)
			return
		case errors.As(err, &spill):
			sawSpill = true
			g.spilled.Add(1)
			continue // immediate spillover: another backend may have room
		case errors.As(err, &stale), errors.Is(err, resilience.ErrBreakerOpen):
			continue // not a load signal; move on without sleeping
		}
		// Hard failure (network error, 5xx, integrity): back off before
		// the next try, but never sleep past the budget.
		if attempt == g.cfg.MaxAttempts-1 {
			break
		}
		wait := bo.Delay(attempt)
		if wait+g.cfg.MinAttempt > budget.Remaining() {
			break
		}
		if g.clock.Sleep(r.Context(), wait) != nil {
			return
		}
	}

	// Degraded exit: no verified answer in budget. Honest shed when the
	// cluster told us it is full, 503 otherwise — always with a
	// Retry-After so well-behaved clients pace themselves.
	w.Header().Set("Retry-After", retryAfterSeconds(g.retryAfterHint()))
	if sawSpill {
		g.shed.Add(1)
		httpError(w, http.StatusTooManyRequests, "all backends at capacity, retry later")
		return
	}
	g.failed.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no routable backend")
	}
	httpError(w, http.StatusServiceUnavailable, "no backend could answer: %v", lastErr)
}

// relay copies a backend answer to the client: body verbatim plus the
// headers that matter (content type, model version, retry hints) and the
// answering backend's identity.
func relay(w http.ResponseWriter, res *proxyResult) {
	for _, h := range []string{"Content-Type", serve.ModelVersionHeader, "Retry-After"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(BackendHeader, res.backend.url)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// parseRetryAfter reads a Retry-After header (seconds form; the serve
// tier never sends HTTP dates), defaulting to 1s.
func parseRetryAfter(v string) time.Duration {
	if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, _ := json.Marshal(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
