package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/testutil"
)

// startServeBackend runs a real serve.Server (batch endpoint included)
// on an httptest listener — the clean-link counterpart of chaosBackend.
func startServeBackend(t *testing.T, fx *clusterFixture) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		Registry:       fx.registry,
		MaxBatch:       8,
		QueueDepth:     64,
		BatchWindow:    time.Millisecond,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestBatchedRelayBitIdentical is the tentpole's correctness contract:
// whatever combination of upstream micro-batching and in-flight
// coalescing a request travels through, the client must receive the
// exact bytes (status, body, model version) the unbatched relay path
// would have produced.
func TestBatchedRelayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full relay matrix")
	}
	fx := newClusterFixture(t)
	backends := []*httptest.Server{
		startServeBackend(t, fx),
		startServeBackend(t, fx),
		startServeBackend(t, fx),
	}
	urls := []string{backends[0].URL, backends[1].URL, backends[2].URL}

	newGW := func(batchMax int) (*Gateway, *httptest.Server) {
		g, err := New(Config{
			Backends:        urls,
			ExpectedVersion: fx.version,
			ProbeInterval:   20 * time.Millisecond,
			RequestTimeout:  5 * time.Second,
			BatchMax:        batchMax,
			BatchLinger:     2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(g.Close)
		ts := httptest.NewServer(g.Handler())
		t.Cleanup(ts.Close)
		waitRoutable(t, g, 3)
		return g, ts
	}

	type reference struct {
		status int
		model  string
		body   []byte
	}
	_, refTS := newGW(1)
	refs := make([]reference, len(fx.bodies))
	for i, body := range fx.bodies {
		resp, err := http.Post(refTS.URL+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference request %d: status %d, body %s", i, resp.StatusCode, b)
		}
		refs[i] = reference{status: resp.StatusCode, model: resp.Header.Get(serve.ModelVersionHeader), body: b}
	}

	for _, workers := range []int{1, 4} {
		for _, size := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, size), func(t *testing.T) {
				_, ts := newGW(size)
				// 3 rounds over every body: duplicates within a burst
				// exercise coalescing, distinct bodies exercise batching.
				total := 3 * len(fx.bodies)
				jobs := make(chan int, total)
				for i := 0; i < total; i++ {
					jobs <- i % len(fx.bodies)
				}
				close(jobs)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						client := &http.Client{Timeout: 10 * time.Second}
						defer client.CloseIdleConnections()
						for n := range jobs {
							resp, err := client.Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(fx.bodies[n]))
							if err != nil {
								t.Errorf("body %d: %v", n, err)
								continue
							}
							b, rerr := io.ReadAll(resp.Body)
							_ = resp.Body.Close()
							if rerr != nil {
								t.Errorf("body %d: reading response: %v", n, rerr)
								continue
							}
							ref := refs[n]
							if resp.StatusCode != ref.status {
								t.Errorf("body %d: status %d, unbatched path gave %d (%s)", n, resp.StatusCode, ref.status, b)
							}
							if got := resp.Header.Get(serve.ModelVersionHeader); got != ref.model {
								t.Errorf("body %d: model %q, unbatched path gave %q", n, got, ref.model)
							}
							if !bytes.Equal(b, ref.body) {
								t.Errorf("body %d: batched response differs from unbatched:\n got:  %q\n want: %q", n, b, ref.body)
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// TestCoalescingSharesOneUpstream pins the dedup contract: identical
// bodies in flight together produce one upstream call; followers share
// the leader's bytes and count as coalesced.
func TestCoalescingSharesOneUpstream(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	slow := newFakeBackend(t, "sha256:aaa", "water")
	slow.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
		time.Sleep(100 * time.Millisecond)
		writeIdentifyOK(w, "water", "sha256:aaa")
		return true
	})
	g, ts := newTestGateway(t, Config{BatchMax: 8, BatchLinger: time.Millisecond}, slow)

	const clients = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, body := postIdentify(t, ts, `{"same":"capture"}`)
			statuses[c] = resp.StatusCode
			bodies[c] = body
		}(c)
	}
	wg.Wait()

	for c := 0; c < clients; c++ {
		if statuses[c] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", c, statuses[c], bodies[c])
		}
		if !bytes.Equal(bodies[c], bodies[0]) {
			t.Errorf("client %d received different bytes than client 0", c)
		}
	}
	st := g.Stats()
	if st.Coalesced == 0 {
		t.Error("no requests coalesced despite identical in-flight bodies")
	}
	if n := slow.identifies.Load(); n >= clients {
		t.Errorf("backend saw %d identifies for %d identical requests; coalescing not working", n, clients)
	}
	if st.Proxied != clients {
		t.Errorf("proxied=%d, want %d (every client answered once)", st.Proxied, clients)
	}
}

// TestBatchFallbackWhenBackendHasNoBatchRoute pins backward
// compatibility: a backend without /v1/identify/batch (an older serve
// build — the fake's mux simply lacks the route) answers every request
// via single relays, and the gateway remembers not to batch at it again.
func TestBatchFallbackWhenBackendHasNoBatchRoute(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	f := newFakeBackend(t, "sha256:aaa", "water")
	f.setIdentify(func(w http.ResponseWriter, r *http.Request) bool {
		time.Sleep(20 * time.Millisecond) // hold requests in flight so they batch
		writeIdentifyOK(w, "water", "sha256:aaa")
		return true
	})
	g, ts := newTestGateway(t, Config{BatchMax: 4, BatchLinger: 20 * time.Millisecond}, f)

	const clients = 8
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, body := postIdentify(t, ts, fmt.Sprintf(`{"distinct":%d}`, c))
			if resp.StatusCode == http.StatusOK {
				okCount.Add(1)
			} else {
				t.Errorf("client %d: status %d, body %s", c, resp.StatusCode, body)
			}
		}(c)
	}
	wg.Wait()
	if okCount.Load() != clients {
		t.Fatalf("%d/%d requests succeeded", okCount.Load(), clients)
	}
	if !g.backends[0].noBatch.Load() {
		t.Error("gateway never marked the batchless backend noBatch")
	}
	// A second burst must go straight down the single path — still fine.
	resp, body := postIdentify(t, ts, `{"after":"fallback"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fallback request: status %d, body %s", resp.StatusCode, body)
	}
}

// writeBatchOK stamps a whole-response CRC over a batch answer the way
// the serve tier does.
func writeBatchOK(w http.ResponseWriter, out serve.BatchIdentifyResponse) {
	body, _ := json.Marshal(out)
	body = append(body, '\n')
	w.Header().Set(serve.BodyCRCHeader, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// TestBatchPartialFailureSplitsPerSlot pins per-slot retry isolation: a
// batch where one slot fails 5xx must not poison its co-riders, and the
// failed slot's request retries on another backend down the single path.
func TestBatchPartialFailureSplitsPerSlot(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))

	okBody, _ := json.Marshal(serve.IdentifyResponse{
		Material: "water", Omega: 1.5, Confidence: 0.9, ModelVersion: "sha256:aaa",
	})
	flaky := newFakeBackend(t, "sha256:aaa", "water")
	var batchCalls atomic.Int64
	flakyMux := http.NewServeMux()
	flakyMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "modelVersion": "sha256:aaa"})
	})
	flakyMux.HandleFunc("POST /v1/identify", func(w http.ResponseWriter, r *http.Request) {
		flaky.identifies.Add(1)
		time.Sleep(20 * time.Millisecond)
		writeIdentifyOK(w, "water", "sha256:aaa")
	})
	flakyMux.HandleFunc("POST /v1/identify/batch", func(w http.ResponseWriter, r *http.Request) {
		batchCalls.Add(1)
		var req serve.BatchIdentifyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding: %v", err)
			return
		}
		out := serve.BatchIdentifyResponse{Results: make([]serve.BatchSlot, len(req.Requests))}
		for i, raw := range req.Requests {
			if bytes.Contains(raw, []byte("poison")) {
				body, _ := json.Marshal(map[string]string{"error": "worker crashed"})
				out.Results[i] = serve.BatchSlot{Status: http.StatusInternalServerError, Body: body}
				continue
			}
			out.Results[i] = serve.BatchSlot{Status: http.StatusOK, ModelVersion: "sha256:aaa", Body: okBody}
		}
		writeBatchOK(w, out)
	})
	flaky.ts.Config.Handler = flakyMux

	healthy := newFakeBackend(t, "sha256:aaa", "water")
	g, ts := newTestGateway(t, Config{
		BatchMax:    4,
		BatchLinger: 25 * time.Millisecond,
		LoadSlack:   100,
		MaxAttempts: 4,
	}, flaky, healthy)
	waitRoutable(t, g, 2)

	// Fire a burst that lands on the flaky backend together: one poisoned
	// slot among clean ones. Every request must still end 200.
	const clients = 4
	bodies := []string{`{"clean":1}`, `{"poison":true}`, `{"clean":2}`, `{"clean":3}`}
	// Pin all bodies to the flaky backend by making it the only routable
	// one for the first attempt: penalise the healthy backend briefly.
	healthyBackend := g.backends[0]
	if healthyBackend.url == flaky.url() {
		healthyBackend = g.backends[1]
	}
	healthyBackend.penalise(g.clock.Now(), 150*time.Millisecond)

	var wg sync.WaitGroup
	results := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, body := postIdentify(t, ts, bodies[c])
			results[c] = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d (%s): status %d, body %s", c, bodies[c], resp.StatusCode, body)
			}
		}(c)
	}
	wg.Wait()
	if batchCalls.Load() == 0 {
		t.Error("no upstream batch call happened; the burst never batched")
	}
	// The poisoned slot retried somewhere: either the healthy backend's
	// single path (after its penalty lapsed) or the flaky one's.
	if g.Stats().Retried == 0 {
		t.Error("poisoned slot never retried")
	}
}

// TestMalformedBodyDoesNotPoisonBatch pins the ingress-validation
// contract: a body that is not one well-formed JSON value must never be
// spliced into an upstream batch envelope (where it would 400 the whole
// batch and charge the breaker), but relay singly for its own clean 4xx
// — while co-batched valid requests succeed untouched.
func TestMalformedBodyDoesNotPoisonBatch(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))

	okBody, _ := json.Marshal(serve.IdentifyResponse{
		Material: "water", Omega: 1.5, Confidence: 0.9, ModelVersion: "sha256:aaa",
	})
	f := newFakeBackend(t, "sha256:aaa", "water")
	var batchCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "modelVersion": "sha256:aaa"})
	})
	mux.HandleFunc("POST /v1/identify", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		time.Sleep(20 * time.Millisecond) // hold singles in flight so valid bodies batch
		if !json.Valid(body) {
			httpError(w, http.StatusBadRequest, "malformed request body")
			return
		}
		writeIdentifyOK(w, "water", "sha256:aaa")
	})
	mux.HandleFunc("POST /v1/identify/batch", func(w http.ResponseWriter, r *http.Request) {
		batchCalls.Add(1)
		var req serve.BatchIdentifyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("malformed client body reached a batch envelope: %v", err)
			httpError(w, http.StatusBadRequest, "decoding: %v", err)
			return
		}
		out := serve.BatchIdentifyResponse{Results: make([]serve.BatchSlot, len(req.Requests))}
		for i := range req.Requests {
			out.Results[i] = serve.BatchSlot{Status: http.StatusOK, ModelVersion: "sha256:aaa", Body: okBody}
		}
		writeBatchOK(w, out)
	})
	f.ts.Config.Handler = mux

	g, ts := newTestGateway(t, Config{BatchMax: 8, BatchLinger: 25 * time.Millisecond}, f)

	// "{},{}" would smuggle an extra slot into the envelope; the truncated
	// object would make the whole envelope unparseable.
	bodies := []string{
		`{"clean":1}`, `{},{}`, `{"clean":2}`, `{"unterminated":`, `{"clean":3}`, `{"clean":4}`,
	}
	statuses := make([]int, len(bodies))
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, _ := postIdentify(t, ts, body)
			statuses[i] = resp.StatusCode
		}(i, body)
	}
	wg.Wait()

	for i, body := range bodies {
		want := http.StatusOK
		if !json.Valid([]byte(body)) {
			want = http.StatusBadRequest
		}
		if statuses[i] != want {
			t.Errorf("body %q: status %d, want %d", body, statuses[i], want)
		}
	}
	if batchCalls.Load() == 0 {
		t.Error("no upstream batch call happened; the valid bodies never batched")
	}
	st := g.Stats()
	if st.Failed != 0 {
		t.Errorf("failed=%d: malformed bodies turned into backend failures", st.Failed)
	}
	if st.Retried != 0 {
		t.Errorf("retried=%d: co-batched valid requests were forced onto the retry path", st.Retried)
	}
	if !g.backends[0].routable(g.clock.Now()) {
		t.Error("backend no longer routable: malformed bodies tripped its breaker")
	}
}

// TestOversizedBatchSplitsEnvelope pins the envelope budget: bodies that
// are individually legal but together outgrow MaxBodyBytes (which the
// backend enforces on the whole envelope) must be split across several
// batch calls — or ride the single path alone — instead of being glued
// into one envelope the backend is guaranteed to 400.
func TestOversizedBatchSplitsEnvelope(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t, 3))
	const maxBody = 4096

	okBody, _ := json.Marshal(serve.IdentifyResponse{
		Material: "water", Omega: 1.5, Confidence: 0.9, ModelVersion: "sha256:aaa",
	})
	f := newFakeBackend(t, "sha256:aaa", "water")
	var batchCalls, oversized atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "modelVersion": "sha256:aaa"})
	})
	mux.HandleFunc("POST /v1/identify", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		writeIdentifyOK(w, "water", "sha256:aaa")
	})
	mux.HandleFunc("POST /v1/identify/batch", func(w http.ResponseWriter, r *http.Request) {
		batchCalls.Add(1)
		env, _ := io.ReadAll(r.Body)
		if len(env) > maxBody {
			oversized.Add(1)
			httpError(w, http.StatusBadRequest, "envelope of %d bytes exceeds the limit", len(env))
			return
		}
		var req serve.BatchIdentifyRequest
		if err := json.Unmarshal(env, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding: %v", err)
			return
		}
		out := serve.BatchIdentifyResponse{Results: make([]serve.BatchSlot, len(req.Requests))}
		for i := range req.Requests {
			out.Results[i] = serve.BatchSlot{Status: http.StatusOK, ModelVersion: "sha256:aaa", Body: okBody}
		}
		writeBatchOK(w, out)
	})
	f.ts.Config.Handler = mux

	g, ts := newTestGateway(t, Config{
		BatchMax:     8,
		BatchLinger:  25 * time.Millisecond,
		MaxBodyBytes: maxBody,
	}, f)

	// Six ~1.5 KiB bodies (at most two share a 4 KiB envelope) plus one
	// near the ingress limit (fits no envelope at all: single path).
	pad := strings.Repeat("x", 1500)
	bodies := make([]string, 0, 7)
	for i := 0; i < 6; i++ {
		bodies = append(bodies, fmt.Sprintf(`{"id":%d,"pad":%q}`, i, pad))
	}
	bodies = append(bodies, fmt.Sprintf(`{"id":6,"pad":%q}`, strings.Repeat("y", maxBody-100)))

	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, b := postIdentify(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("body %d: status %d, body %s", i, resp.StatusCode, b)
			}
		}(i, body)
	}
	wg.Wait()

	if oversized.Load() != 0 {
		t.Errorf("%d envelopes exceeded the backend limit", oversized.Load())
	}
	if st := g.Stats(); st.Failed != 0 || st.Retried != 0 {
		t.Errorf("failed=%d retried=%d: oversized envelopes forced retries", st.Failed, st.Retried)
	}
}

// TestGatewayShutdownMidBatchAnswers503NoLeak drives batches into a
// stalled backend (faults.WrapConn stalling every conn op), closes the
// gateway with slots mid-flight, and requires every client to get an
// answer (503 — the deadline expired, never a hang) with zero goroutines
// left behind.
func TestGatewayShutdownMidBatchAnswers503NoLeak(t *testing.T) {
	leakCheck := testutil.LeakCheck(t, 3)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "modelVersion": "sha256:aaa"})
	})
	mux.HandleFunc("POST /v1/identify", func(w http.ResponseWriter, r *http.Request) {
		writeIdentifyOK(w, "water", "sha256:aaa")
	})
	mux.HandleFunc("POST /v1/identify/batch", func(w http.ResponseWriter, r *http.Request) {
		writeBatchOK(w, serve.BatchIdentifyResponse{})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &faultyListener{Listener: ln, profile: faults.Profile{
		Name:          "stall-everything",
		StallProb:     1,
		StallDuration: 250 * time.Millisecond,
	}}
	backendSrv := &http.Server{Handler: mux}
	backendDone := make(chan struct{})
	go func() {
		_ = backendSrv.Serve(fl)
		close(backendDone)
	}()

	g, err := New(Config{
		Backends:       []string{"http://" + ln.Addr().String()},
		ProbeInterval:  25 * time.Millisecond,
		ProbeTimeout:   5 * time.Second, // probes survive the stalls
		RequestTimeout: 300 * time.Millisecond,
		MaxAttempts:    2,
		BatchMax:       4,
		BatchLinger:    10 * time.Millisecond,
		Backoff:        resilience.BackoffConfig{Initial: time.Millisecond, Max: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	waitRoutable(t, g, 1)

	const clients = 6
	var wg sync.WaitGroup
	var answered, hung atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			resp, err := client.Post(ts.URL+"/v1/identify", "application/json",
				bytes.NewReader([]byte(fmt.Sprintf(`{"stalled":%d}`, c))))
			if err != nil {
				hung.Add(1)
				t.Errorf("client %d: transport error through clean link: %v", c, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			answered.Add(1)
			if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("client %d: status %d (%s), want 503/429 from the stalled cluster", c, resp.StatusCode, body)
			}
		}(c)
	}

	// Begin the shutdown while slots are mid-flight.
	time.Sleep(50 * time.Millisecond)
	g.Close()
	wg.Wait()
	if answered.Load() != clients {
		t.Errorf("%d/%d clients answered (hung=%d)", answered.Load(), clients, hung.Load())
	}

	ts.Close()
	_ = backendSrv.Close()
	<-backendDone
	leakCheck()
}
