// Package gateway implements wimi-gateway: a cluster front end that
// routes /v1/identify across N wimi-serve backends. Its job is to keep
// answering while individual backends fail — degraded if it must, wrong
// never:
//
//   - Placement is rendezvous hashing on the request body with a
//     bounded-load escape hatch: the same measurement session lands on
//     the same backend (warm pipeline pools, reproducible answers) until
//     that backend is meaningfully busier than its peers, then the
//     request spills to the next backend in hash order.
//   - Health comes from the backends' own /readyz probes plus a circuit
//     breaker per backend; failed requests retry on other backends under
//     one shrinking deadline budget (internal/resilience), so retries
//     can never push a request past its deadline.
//   - A backend answering 429/503 is alive-but-full: the gateway honours
//     its Retry-After as a routing penalty and spills over immediately
//     instead of sleeping — and only when every backend is penalised does
//     the client see the 429.
//   - Model convergence: the gateway knows the content hash the cluster
//     is supposed to serve (registry.SourceDigest of the model source)
//     and routes away from backends reporting any other sha256, pushing
//     /v1/reload at them until they converge.
//   - Responses are verified end to end: forwarded requests opt into the
//     serve tier's body CRC, so a response corrupted on the backend link
//     is retried elsewhere, not relayed.
package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// BackendHeader names the backend that answered a relayed response —
// observability for operators, affinity assertions for tests.
const BackendHeader = "X-Wimi-Backend"

// Config parameterises the gateway. Backends is required; the zero value
// of every other field selects a sensible default.
type Config struct {
	// Backends are the wimi-serve base URLs ("http://host:port").
	Backends []string
	// ExpectedVersion, when non-empty, is the model content hash
	// ("sha256:…") every backend must serve. Backends reporting any other
	// version are excluded from routing and pushed a /v1/reload until
	// they converge. Use registry.SourceDigest to compute it from the
	// model file without loading the model.
	ExpectedVersion string
	// ProbeInterval is the /readyz health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 2s).
	ProbeTimeout time.Duration
	// RequestTimeout is the per-request deadline budget shared by every
	// retry attempt (default 10s).
	RequestTimeout time.Duration
	// MaxAttempts bounds tries per request across backends (default 3).
	MaxAttempts int
	// MinAttempt is the smallest budget slice worth starting an attempt
	// with (default 5ms).
	MinAttempt time.Duration
	// Backoff shapes the inter-attempt delays after hard failures
	// (defaults: 25ms initial, 250ms max, full jitter).
	Backoff resilience.BackoffConfig
	// HedgeDelay, when positive, fires a duplicate request at the
	// next-ranked backend if the primary has not answered within the
	// delay — the tail-latency cure for slow-but-alive backends.
	HedgeDelay time.Duration
	// Breaker parameterises the per-backend circuit breakers (defaults:
	// 3 consecutive failures trip, 2s cool-down, 1 half-open probe).
	Breaker resilience.BreakerConfig
	// LoadSlack is how many in-flight requests above the least-loaded
	// backend the hash-preferred backend may carry before the request
	// spills to the next in hash order (default 2).
	LoadSlack int
	// BatchMax, when > 1, turns on the batched data plane: concurrent
	// client requests routed to the same backend aggregate into one
	// upstream POST /v1/identify/batch of up to BatchMax slots, and
	// identical in-flight requests coalesce into a single upstream slot.
	// Default 1 (off): every request relays individually, exactly the
	// pre-batching data plane.
	BatchMax int
	// BatchLinger is how long a non-full upstream batch waits for company
	// (0 = dispatch immediately with whatever is queued). Only meaningful
	// with BatchMax > 1.
	BatchLinger time.Duration
	// MaxBodyBytes bounds the request body (default 16 MiB).
	MaxBodyBytes int64
	// Client overrides the backend HTTP client (tests).
	Client *http.Client
	// Clock supplies time for budgets, breakers and hedging (default
	// RealClock).
	Clock resilience.Clock
	// Logf, when set, receives operational log lines (probe transitions,
	// reload pushes). Default: discard.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MinAttempt <= 0 {
		c.MinAttempt = 5 * time.Millisecond
	}
	if c.Backoff.Initial <= 0 {
		c.Backoff.Initial = 25 * time.Millisecond
	}
	if c.Backoff.Max <= 0 {
		c.Backoff.Max = 250 * time.Millisecond
	}
	if c.Backoff.Jitter == resilience.JitterNone {
		c.Backoff.Jitter = resilience.JitterFull
	}
	if c.Breaker.FailureThreshold <= 0 {
		c.Breaker.FailureThreshold = 3
	}
	if c.Breaker.OpenFor <= 0 {
		c.Breaker.OpenFor = 2 * time.Second
	}
	if c.LoadSlack <= 0 {
		c.LoadSlack = 2
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 1
	}
	if c.BatchLinger < 0 {
		c.BatchLinger = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Clock == nil {
		c.Clock = resilience.RealClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats are cumulative gateway counters.
type Stats struct {
	// Proxied counts client requests answered from a backend 200.
	Proxied uint64 `json:"proxied"`
	// Retried counts extra attempts beyond each request's first.
	Retried uint64 `json:"retried"`
	// Hedged counts duplicate (tail-latency) requests launched.
	Hedged uint64 `json:"hedged"`
	// Spilled counts 429/503 backend answers converted into an immediate
	// try elsewhere.
	Spilled uint64 `json:"spilled"`
	// Relayed counts backend client-errors (4xx) passed through.
	Relayed uint64 `json:"relayed"`
	// Shed counts client requests the gateway answered 429 (every
	// backend penalised).
	Shed uint64 `json:"shed"`
	// Failed counts client requests the gateway answered 503 (no
	// backend could produce a verified answer in budget).
	Failed uint64 `json:"failed"`
	// Coalesced counts client requests answered by joining an identical
	// in-flight request instead of going upstream (BatchMax > 1 only).
	Coalesced uint64 `json:"coalesced"`
	// BatchesSent counts multi-slot POSTs to /v1/identify/batch.
	BatchesSent uint64 `json:"batchesSent"`
	// BatchSizes[i] counts upstream flushes that carried i+1 slots
	// (single-slot flushes travel the plain relay path but still count
	// here — mass at index 0 means the linger window never coalesced).
	BatchSizes []uint64 `json:"batchSizes,omitempty"`
	// UpstreamConns counts connections obtained for upstream data-plane
	// calls; UpstreamConnsReused is how many of those came warm from the
	// idle pool rather than a fresh dial.
	UpstreamConns       uint64 `json:"upstreamConns"`
	UpstreamConnsReused uint64 `json:"upstreamConnsReused"`
}

// Gateway is the cluster front end.
type Gateway struct {
	cfg    Config
	clock  resilience.Clock
	client *http.Client
	mux    *http.ServeMux

	backends []*backend
	expected atomic.Pointer[string]

	draining atomic.Bool
	stop     chan struct{}
	probeWG  sync.WaitGroup

	proxied atomic.Uint64
	retried atomic.Uint64
	hedged  atomic.Uint64
	spilled atomic.Uint64
	relayed atomic.Uint64
	shed    atomic.Uint64
	failed  atomic.Uint64

	// Batched data plane (BatchMax > 1).
	coalesced      atomic.Uint64
	batchesSent    atomic.Uint64
	batchSizes     []atomic.Uint64 // index i = flushes carrying i+1 slots
	upstreamConns  atomic.Uint64
	upstreamReused atomic.Uint64
	connTrace      *httptrace.ClientTrace
	flushWG        sync.WaitGroup

	cmu      sync.Mutex
	inflight map[coalesceKey]*inflightCall
}

// New validates the configuration, probes nothing yet, and starts the
// background health-probe loop. Call Close to stop it.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends")
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:      cfg,
		clock:    cfg.Clock,
		stop:     make(chan struct{}),
		inflight: map[coalesceKey]*inflightCall{},
	}
	g.batchSizes = make([]atomic.Uint64, cfg.BatchMax)
	g.connTrace = &httptrace.ClientTrace{GotConn: func(ci httptrace.GotConnInfo) {
		g.upstreamConns.Add(1)
		if ci.Reused {
			g.upstreamReused.Add(1)
		}
	}}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		base := strings.TrimSuffix(raw, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q is not an absolute URL", raw)
		}
		if seen[base] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", base)
		}
		seen[base] = true
		g.backends = append(g.backends, newBackend(base, cfg))
	}
	g.client = cfg.Client
	if g.client == nil {
		// Data-plane transport: a deep idle pool (relays are short and
		// bursty, so warm connections are the latency win), compression
		// off (bodies are float-heavy JSON relayed verbatim; gzip would
		// burn CPU on both hops), and big socket buffers for the multi-
		// hundred-KiB capture payloads.
		g.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			DisableCompression:  true,
			WriteBufferSize:     64 << 10,
			ReadBufferSize:      64 << 10,
		}}
	}
	g.SetExpectedVersion(cfg.ExpectedVersion)
	if cfg.BatchMax > 1 {
		for _, b := range g.backends {
			g.startBatcher(b)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/identify", g.handleIdentify)
	mux.HandleFunc("GET /v1/cluster", g.handleCluster)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux = mux

	g.probeWG.Add(1)
	go g.probeLoop()
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// SetExpectedVersion replaces the cluster-wide expected model digest
// (empty disables staleness checks). Safe to call while serving — the
// cmd wires it to SIGHUP so a model push converges without restarts.
func (g *Gateway) SetExpectedVersion(v string) {
	g.expected.Store(&v)
}

// ExpectedVersion returns the digest backends are expected to serve.
func (g *Gateway) ExpectedVersion() string { return *g.expected.Load() }

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Proxied:             g.proxied.Load(),
		Retried:             g.retried.Load(),
		Hedged:              g.hedged.Load(),
		Spilled:             g.spilled.Load(),
		Relayed:             g.relayed.Load(),
		Shed:                g.shed.Load(),
		Failed:              g.failed.Load(),
		Coalesced:           g.coalesced.Load(),
		BatchesSent:         g.batchesSent.Load(),
		UpstreamConns:       g.upstreamConns.Load(),
		UpstreamConnsReused: g.upstreamReused.Load(),
	}
	if g.cfg.BatchMax > 1 {
		st.BatchSizes = make([]uint64, len(g.batchSizes))
		for i := range g.batchSizes {
			st.BatchSizes[i] = g.batchSizes[i].Load()
		}
	}
	return st
}

// Close begins the drain (readyz goes not-ready, new identifies are
// refused) and stops the probe loop. Queued upstream batches flush —
// their riders are answered, not stranded — and the flush goroutines are
// waited for; in-flight single relays finish under their own budgets.
func (g *Gateway) Close() {
	if g.draining.Swap(true) {
		return
	}
	close(g.stop)
	g.probeWG.Wait()
	for _, b := range g.backends {
		if b.batcher != nil {
			b.batcher.Close()
		}
	}
	g.flushWG.Wait()
	g.client.CloseIdleConnections()
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	routable := 0
	for _, b := range g.backends {
		if b.routable(g.clock.Now()) {
			routable++
		}
	}
	ready := !g.draining.Load() && routable > 0
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":    ready,
		"backends": len(g.backends),
		"routable": routable,
	})
}

// backendStatus is one backend's row in the /v1/cluster answer.
type backendStatus struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	Ready        bool   `json:"ready"`
	Stale        bool   `json:"stale"`
	Breaker      string `json:"breaker"`
	Inflight     int64  `json:"inflight"`
	PenaltyForMS int64  `json:"penaltyForMs,omitempty"`
	ModelVersion string `json:"modelVersion,omitempty"`
	Served       uint64 `json:"served"`
	Failures     uint64 `json:"failures"`
	LastError    string `json:"lastError,omitempty"`
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	now := g.clock.Now()
	rows := make([]backendStatus, 0, len(g.backends))
	for _, b := range g.backends {
		rows = append(rows, b.status(now))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"expectedModel": g.ExpectedVersion(),
		"backends":      rows,
		"stats":         g.Stats(),
	})
}
