package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/faults"
	"repro/internal/material"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/simulate"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// faultyListener wraps every accepted conn in the faults proxy: the
// backends' response writes suffer corruption, truncation, stalls and
// forced disconnects, so every backend→gateway link in the cluster is
// hostile.
type faultyListener struct {
	net.Listener
	profile faults.Profile
	seed    atomic.Int64
}

func (fl *faultyListener) Accept() (net.Conn, error) {
	c, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc, err := faults.WrapConn(c, fl.profile, fl.seed.Add(1))
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	return fc, nil
}

// clusterFixture trains one model, persists it, and knows how to encode
// identify requests for its sessions.
type clusterFixture struct {
	registry *registry.Registry
	version  string
	bodies   [][]byte
	labels   []string
}

func newClusterFixture(t testing.TB) *clusterFixture {
	t.Helper()
	liquids := []string{material.PureWater, material.Honey}
	db := material.PaperDatabase()
	var sessions []*csi.Session
	var labels []string
	for mi, name := range liquids {
		m, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := simulate.Default()
		sc.Liquid = &m
		for trial := 0; trial < 3; trial++ {
			s, err := simulate.Session(sc, int64(mi*100000+trial*7919))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fx := &clusterFixture{registry: reg, version: reg.Active().Version, labels: labels}
	for _, s := range sessions {
		fx.bodies = append(fx.bodies, encodeIdentify(t, s))
	}
	return fx
}

func encodeIdentify(t testing.TB, s *csi.Session) []byte {
	t.Helper()
	enc := func(c *csi.Capture) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, c.NumAntennas(), s.Carrier)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCapture(c); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	data, err := json.Marshal(serve.IdentifyRequest{Baseline: enc(&s.Baseline), Target: enc(&s.Target)})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// chaosBackend is one real serve.Server listening behind a faulty link,
// stoppable and restartable on the same address mid-test.
type chaosBackend struct {
	t       testing.TB
	reg     *registry.Registry
	profile faults.Profile
	addr    string

	mu      sync.Mutex
	srv     *serve.Server
	httpSrv *http.Server
	done    chan struct{}
}

func startChaosBackend(t testing.TB, reg *registry.Registry, profile faults.Profile) *chaosBackend {
	cb := &chaosBackend{t: t, reg: reg, profile: profile}
	cb.start("127.0.0.1:0")
	return cb
}

func (cb *chaosBackend) start(addr string) {
	cb.t.Helper()
	s, err := serve.New(serve.Config{
		Registry:       cb.reg,
		MaxBatch:       4,
		QueueDepth:     32,
		BatchWindow:    time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		cb.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cb.t.Fatal(err)
	}
	fl := &faultyListener{Listener: ln, profile: cb.profile}
	httpSrv := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		_ = httpSrv.Serve(fl)
		close(done)
	}()
	cb.mu.Lock()
	cb.srv, cb.httpSrv, cb.done = s, httpSrv, done
	cb.addr = ln.Addr().String()
	cb.mu.Unlock()
}

func (cb *chaosBackend) stop() {
	cb.mu.Lock()
	httpSrv, done, srv := cb.httpSrv, cb.done, cb.srv
	cb.httpSrv, cb.done, cb.srv = nil, nil, nil
	cb.mu.Unlock()
	if httpSrv == nil {
		return
	}
	_ = httpSrv.Close()
	<-done
	srv.Shutdown()
}

// restart brings the backend back on the SAME address it had before.
func (cb *chaosBackend) restart() {
	cb.mu.Lock()
	addr := cb.addr
	cb.mu.Unlock()
	cb.start(addr)
}

// TestChaosClusterKeepsAnswering is the tentpole's acceptance test: a
// gateway over three real backends, every backend link injecting
// corruption/truncation/stalls/disconnects, one backend killed and
// restarted mid-burst. The contract under all of that:
//
//   - zero hung requests: every client call completes with 200, 429 or
//     503 well inside its budget (the gateway link itself is clean);
//   - never wrong: every 200 carries the session's true material and the
//     expected model version — corrupted backend answers are retried,
//     not relayed;
//   - zero goroutine leaks once the cluster drains.
func TestChaosClusterKeepsAnswering(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos burst")
	}
	fx := newClusterFixture(t)
	leakCheck := testutil.LeakCheck(t, 3)

	profile := faults.Profile{
		Name:           "gateway-chaos",
		CorruptProb:    0.04,
		TruncateProb:   0.05,
		StallProb:      0.08,
		StallDuration:  3 * time.Millisecond,
		DisconnectProb: 0.03,
	}
	backends := []*chaosBackend{
		startChaosBackend(t, fx.registry, profile),
		startChaosBackend(t, fx.registry, profile),
		startChaosBackend(t, fx.registry, profile),
	}

	g, err := New(Config{
		Backends: []string{
			"http://" + backends[0].addr,
			"http://" + backends[1].addr,
			"http://" + backends[2].addr,
		},
		ExpectedVersion: fx.version,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    time.Second,
		RequestTimeout:  3 * time.Second,
		MaxAttempts:     4,
		Backoff:         resilience.BackoffConfig{Initial: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		HedgeDelay:      150 * time.Millisecond,
		LoadSlack:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwServer := httptest.NewServer(g.Handler())

	const clients = 10
	const perClient = 8
	var ok, shed, unavailable atomic.Int64
	var slowest atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			defer client.CloseIdleConnections()
			for i := 0; i < perClient; i++ {
				n := (c*perClient + i) % len(fx.bodies)
				start := time.Now()
				resp, err := client.Post(gwServer.URL+"/v1/identify", "application/json",
					bytes.NewReader(fx.bodies[n]))
				elapsed := time.Since(start)
				for {
					prev := slowest.Load()
					if int64(elapsed) <= prev || slowest.CompareAndSwap(prev, int64(elapsed)) {
						break
					}
				}
				if err != nil {
					// The client→gateway link has no injected faults: a
					// transport error here means the gateway hung or died.
					t.Errorf("client %d req %d: transport error through clean link: %v", c, i, err)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if rerr != nil {
					t.Errorf("client %d req %d: reading gateway response: %v", c, i, rerr)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					var out serve.IdentifyResponse
					if err := json.Unmarshal(body, &out); err != nil {
						t.Errorf("client %d req %d: 200 with unparseable body %q: %v", c, i, body, err)
						continue
					}
					if out.Material != fx.labels[n] {
						t.Errorf("client %d req %d: wrong answer %q, want %q", c, i, out.Material, fx.labels[n])
					}
					if out.ModelVersion != fx.version {
						t.Errorf("client %d req %d: answered from model %q, want %q", c, i, out.ModelVersion, fx.version)
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d req %d: 429 without Retry-After", c, i)
					}
				case http.StatusServiceUnavailable:
					unavailable.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d req %d: 503 without Retry-After", c, i)
					}
				default:
					t.Errorf("client %d req %d: unexpected status %d: %s", c, i, resp.StatusCode, body)
				}
			}
		}(c)
	}

	// Mid-burst, kill backend 0 outright, leave it dead through several
	// probe rounds, then restart it on the same address.
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		time.Sleep(150 * time.Millisecond)
		backends[0].stop()
		time.Sleep(400 * time.Millisecond)
		backends[0].restart()
	}()

	wg.Wait()
	<-killerDone

	total := int64(clients * perClient)
	if got := ok.Load() + shed.Load() + unavailable.Load(); got != total {
		t.Errorf("%d of %d requests unaccounted for", total-got, total)
	}
	if ok.Load() < total/2 {
		t.Errorf("only %d/%d requests got answers (shed=%d unavailable=%d); cluster barely alive",
			ok.Load(), total, shed.Load(), unavailable.Load())
	}
	// The budget contract: no request may outlive its deadline budget by
	// more than scheduling slack, chaos or not.
	if d := time.Duration(slowest.Load()); d > 4*time.Second {
		t.Errorf("slowest request took %v; retries escaped the 3s budget", d)
	}
	t.Logf("chaos burst: ok=%d shed=%d unavailable=%d slowest=%v stats=%+v",
		ok.Load(), shed.Load(), unavailable.Load(), time.Duration(slowest.Load()), g.Stats())

	// Drain everything, then the goroutine count must return to baseline.
	gwServer.Close()
	g.Close()
	for _, cb := range backends {
		cb.stop()
	}
	leakCheck()
}
