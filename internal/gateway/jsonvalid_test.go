package gateway

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The admission scanner's contract is one-directional: it may refuse
// bodies json.Valid would accept (they just relay singly), but it must
// never admit a body Go's decoder rejects — an admitted body is spliced
// verbatim into a batch envelope and a false positive would poison the
// whole batch. Both directions are pinned here: exact parity on every
// shallow case, and the safety direction under random mutation.
func TestValidBatchBodyMatchesStdlib(t *testing.T) {
	cases := []string{
		// Valid values of every kind.
		`{}`, `[]`, `""`, `"abc"`, `0`, `-0`, `42`, `-17`, `3.25`, `1e9`,
		`1.5E-10`, `2e+3`, `true`, `false`, `null`,
		`{"baseline":"QUJD","target":"REVG","format":"v2"}`,
		`[1,2,3]`, `[[],{}]`, `{"a":{"b":[1,"x",null]}}`,
		"  {\n\t\"a\" : 1 ,\r \"b\" : [ true ] }  ",
		`"esc \" \\ \/ \b \f \n \r \t A done"`,
		`"non-ascii é and raw é bytes"`,
		// Invalid: structure.
		``, ` `, `{`, `}`, `[1,2`, `{"a":1`, `{},{}`, `{}[]`, `1 2`,
		`{"a" 1}`, `{"a":}`, `{:1}`, `{1:2}`, `[1,]`, `{"a":1,}`, `[,1]`,
		`{"unterminated":`, `nul`, `tru`, `falsee`, `truex`,
		// Invalid: numbers.
		`-`, `01`, `1.`, `.5`, `1e`, `1e+`, `+1`, `1.2.3`, `0x10`, `NaN`,
		// Invalid: strings.
		`"unterminated`, `"bad \q escape"`, `"bad \u12g4 hex"`, `"bad \u12"`,
		"\"raw\ttab\"", "\"raw\nnewline\"", `"trailing \`,
		// Valid but easy to fumble.
		`[0]`, `{"":""}`, `[null,null]`, `-0.0e0`,
		// Escape-dense strings exercise the cached-quote fast path.
		`"` + strings.Repeat(`\"\\x\u00e9`, 64) + `"`,
		`"` + strings.Repeat(`\"`, 63) + `\q"`,
		`"plain prefix then \"` + strings.Repeat("A", 512) + `\u123"`,
	}
	for _, c := range cases {
		got, want := validBatchBody([]byte(c)), json.Valid([]byte(c))
		if got != want {
			t.Errorf("validBatchBody(%q) = %v, json.Valid = %v", c, got, want)
		}
	}
}

func TestValidBatchBodyDepthCapIsConservative(t *testing.T) {
	deep := strings.Repeat("[", maxValidateDepth+1) + strings.Repeat("]", maxValidateDepth+1)
	if !json.Valid([]byte(deep)) {
		t.Fatalf("stdlib rejected the deep probe; test construction is wrong")
	}
	// Refusing is the documented conservative outcome: the body still
	// relays singly, it just never rides a batch envelope.
	if validBatchBody([]byte(deep)) {
		t.Errorf("validBatchBody admitted nesting beyond maxValidateDepth")
	}
	shallow := strings.Repeat("[", maxValidateDepth) + strings.Repeat("]", maxValidateDepth)
	if !validBatchBody([]byte(shallow)) {
		t.Errorf("validBatchBody refused nesting at maxValidateDepth")
	}
}

func TestValidBatchBodyNeverAdmitsWhatStdlibRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	body := []byte(fmt.Sprintf(`{"baseline":%q,"target":%q,"format":"v2","count":17}`,
		base64.StdEncoding.EncodeToString(randBytes(rng, 2048)),
		base64.StdEncoding.EncodeToString(randBytes(rng, 2048))))
	if !validBatchBody(body) || !json.Valid(body) {
		t.Fatalf("pristine body should be valid under both scanners")
	}
	for trial := 0; trial < 5000; trial++ {
		mut := append([]byte(nil), body...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			switch pos := rng.Intn(len(mut)); rng.Intn(3) {
			case 0:
				mut[pos] = byte(rng.Intn(256))
			case 1:
				mut = append(mut[:pos], mut[pos+1:]...)
			case 2:
				mut = append(mut[:pos], append([]byte{byte(rng.Intn(256))}, mut[pos:]...)...)
			}
		}
		if validBatchBody(mut) && !json.Valid(mut) {
			t.Fatalf("trial %d: admitted a body stdlib rejects: %q", trial, mut)
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// The scanner earns its keep on the capture-body shape: two huge base64
// strings. Compare against the stdlib scanner on the same body.
func benchmarkBody() []byte {
	rng := rand.New(rand.NewSource(2))
	return []byte(fmt.Sprintf(`{"baseline":%q,"target":%q,"format":"v2"}`,
		base64.StdEncoding.EncodeToString(randBytes(rng, 160<<10)),
		base64.StdEncoding.EncodeToString(randBytes(rng, 160<<10))))
}

func BenchmarkValidBatchBody(b *testing.B) {
	body := benchmarkBody()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !validBatchBody(body) {
			b.Fatal("rejected valid body")
		}
	}
}

func BenchmarkJSONValidStdlib(b *testing.B) {
	body := benchmarkBody()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !json.Valid(body) {
			b.Fatal("rejected valid body")
		}
	}
}
