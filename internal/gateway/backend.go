package gateway

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/resilience"
)

// backend is the gateway's view of one wimi-serve instance. All fields
// are written by the probe loop and the relay path concurrently, so
// everything mutable is atomic; the breaker has its own lock.
type backend struct {
	url     string
	urlHash uint64
	breaker *resilience.Breaker

	inflight atomic.Int64
	healthy  atomic.Bool
	ready    atomic.Bool
	stale    atomic.Bool
	// penaltyUntil is the clock time (UnixNano) until which a 429/503
	// Retry-After keeps routing away from this backend.
	penaltyUntil atomic.Int64
	version      atomic.Pointer[string]
	lastErr      atomic.Pointer[string]

	served   atomic.Uint64
	failures atomic.Uint64

	// batcher aggregates concurrent relays to this backend into upstream
	// batch calls (nil when the data plane runs unbatched). noBatch flips
	// permanently when the backend 404s /v1/identify/batch — an older
	// serve build — and routes this backend's traffic back to single
	// relays without giving up on batching elsewhere.
	batcher *parallel.Batcher[*upstreamCall]
	noBatch atomic.Bool
}

func newBackend(base string, cfg Config) *backend {
	h := fnv.New64a()
	_, _ = io.WriteString(h, base)
	br := cfg.Breaker
	br.Clock = cfg.Clock
	b := &backend{url: base, urlHash: h.Sum64(), breaker: resilience.NewBreaker(br)}
	empty := ""
	b.version.Store(&empty)
	b.lastErr.Store(&empty)
	return b
}

// score ranks this backend for a request key: rendezvous (highest random
// weight) hashing via a splitmix64 finaliser over key⊕urlHash. Every
// gateway computes the same ranking, and removing a backend only moves
// the keys that backend owned.
func (b *backend) score(key uint64) uint64 {
	x := key ^ b.urlHash
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// penalised reports whether a Retry-After routing penalty is active.
func (b *backend) penalised(now time.Time) bool {
	return now.UnixNano() < b.penaltyUntil.Load()
}

// penalise routes traffic away from the backend for d.
func (b *backend) penalise(now time.Time, d time.Duration) {
	until := now.Add(d).UnixNano()
	for {
		cur := b.penaltyUntil.Load()
		if cur >= until || b.penaltyUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// routable reports whether the router may consider this backend: probes
// say alive and ready, the model digest matches the cluster's expected
// version, and no Retry-After penalty is running. The circuit breaker is
// deliberately NOT consulted here — admission through Allow happens at
// send time, because Allow is also the transition that half-opens a
// cooled-down breaker.
func (b *backend) routable(now time.Time) bool {
	return b.healthy.Load() && b.ready.Load() && !b.stale.Load() && !b.penalised(now)
}

func (b *backend) setVersion(v string) { b.version.Store(&v) }

func (b *backend) noteErr(err error) {
	s := err.Error()
	b.lastErr.Store(&s)
}

func (b *backend) status(now time.Time) backendStatus {
	st := backendStatus{
		URL:          b.url,
		Healthy:      b.healthy.Load(),
		Ready:        b.ready.Load(),
		Stale:        b.stale.Load(),
		Breaker:      b.breaker.State().String(),
		Inflight:     b.inflight.Load(),
		ModelVersion: *b.version.Load(),
		Served:       b.served.Load(),
		Failures:     b.failures.Load(),
		LastError:    *b.lastErr.Load(),
	}
	if until := b.penaltyUntil.Load(); until > now.UnixNano() {
		st.PenaltyForMS = (until - now.UnixNano()) / int64(time.Millisecond)
	}
	return st
}

// probeLoop keeps backend health fresh: one /readyz round per interval,
// all backends probed concurrently, first round immediately so a fresh
// gateway is routable as soon as its backends are.
func (g *Gateway) probeLoop() {
	defer g.probeWG.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	g.probeAll()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(b)
		}(b)
	}
	wg.Wait()
}

// readyzBody is the subset of the serve tier's /readyz answer the
// gateway reads.
type readyzBody struct {
	Ready        bool   `json:"ready"`
	ModelVersion string `json:"modelVersion"`
}

func (g *Gateway) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		g.markDown(b, err)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.markDown(b, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	_ = resp.Body.Close()
	if err != nil {
		g.markDown(b, err)
		return
	}
	if !b.healthy.Swap(true) {
		g.cfg.Logf("gateway: backend %s is reachable again", b.url)
	}
	var rz readyzBody
	// A readyz answer that fails to parse still proves liveness; treat it
	// as not-ready rather than down.
	_ = json.Unmarshal(body, &rz)
	b.ready.Store(rz.Ready && resp.StatusCode == http.StatusOK)
	if rz.ModelVersion != "" {
		b.setVersion(rz.ModelVersion)
	}
	g.checkConvergence(b, rz.ModelVersion)
}

func (g *Gateway) markDown(b *backend, err error) {
	if b.healthy.Swap(false) {
		g.cfg.Logf("gateway: backend %s unreachable: %v", b.url, err)
	}
	b.ready.Store(false)
	b.noteErr(err)
}

// checkConvergence compares the backend's reported model digest with the
// cluster's expected one. A mismatch excludes the backend from routing
// and pushes a /v1/reload at it — the backend re-resolves its model
// source, and if the push landed the new digest the backend is routable
// again without waiting for the next probe round.
func (g *Gateway) checkConvergence(b *backend, reported string) {
	expected := g.ExpectedVersion()
	if expected == "" || reported == "" || reported == expected {
		if b.stale.Swap(false) {
			g.cfg.Logf("gateway: backend %s converged to %s", b.url, reported)
		}
		return
	}
	if !b.stale.Swap(true) {
		g.cfg.Logf("gateway: backend %s serves %s, want %s — pushing reload", b.url, reported, expected)
	}
	g.pushReload(b, expected)
}

func (g *Gateway) pushReload(b *backend, expected string) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/reload", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.noteErr(err)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var out struct {
		ModelVersion string `json:"modelVersion"`
	}
	if json.Unmarshal(body, &out) == nil && out.ModelVersion == expected {
		b.setVersion(out.ModelVersion)
		b.stale.Store(false)
		g.cfg.Logf("gateway: backend %s converged to %s after reload push", b.url, expected)
	}
}
