package gateway

import (
	"bytes"
	"encoding/binary"
)

// maxValidateDepth caps container nesting the batch-admission scanner
// will prove. Real capture bodies nest two or three levels; anything
// deeper is conservatively refused batching (not rejected — it relays
// singly and the backend renders its own verdict).
const maxValidateDepth = 64

// validBatchBody reports whether b is exactly one well-formed JSON value
// (surrounding whitespace allowed) — the admission predicate for
// splicing a client body into a {"requests":[...]} batch envelope.
//
// The contract is strictly conservative: true is returned only for
// bodies Go's own decoder accepts, so an envelope assembled from
// admitted bodies can never be rejected on their account; false may
// also mean "too exotic to prove cheaply" (nesting beyond
// maxValidateDepth), and such bodies simply ride the single relay path.
//
// It exists instead of json.Valid because the scan sits on the batched
// ingress hot path and capture bodies are dominated by multi-hundred-KiB
// base64 strings: the tight string-span loop below runs several times
// faster than encoding/json's per-byte state machine on that shape.
func validBatchBody(b []byte) bool {
	s := jsonScanner{b: b}
	if !s.value(0) {
		return false
	}
	s.ws()
	return s.i == len(s.b)
}

type jsonScanner struct {
	b []byte
	i int
}

func (s *jsonScanner) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

func (s *jsonScanner) value(depth int) bool {
	s.ws()
	if s.i >= len(s.b) {
		return false
	}
	switch c := s.b[s.i]; {
	case c == '{':
		return s.object(depth)
	case c == '[':
		return s.array(depth)
	case c == '"':
		return s.str()
	case c == 't':
		return s.lit("true")
	case c == 'f':
		return s.lit("false")
	case c == 'n':
		return s.lit("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return s.number()
	default:
		return false
	}
}

// str scans a string starting at the opening quote. This is the hot
// path: capture bodies are almost entirely base64 string payload, so the
// scan leaps over plain spans with bytes.IndexByte (vectorized) and
// vets them eight bytes at a time rather than walking a per-byte state
// machine. Raw control characters are rejected exactly as encoding/json
// does — accepting one would break the "admitted implies
// envelope-parseable" guarantee. Invalid UTF-8 is accepted, matching
// json.Valid.
//
// qpos caches the next known quote so escape-dense bodies don't rescan
// the tail per escape: every IndexByte walks a region the cursor then
// permanently advances past, keeping the whole scan O(len).
func (s *jsonScanner) str() bool {
	b := s.b
	i := s.i + 1
	qpos := i - 1 // next known '"' at or past the cursor; stale once i passes it
	for {
		if qpos < i {
			j := bytes.IndexByte(b[i:], '"')
			if j < 0 {
				return false
			}
			qpos = i + j
		}
		span := b[i:qpos]
		k := bytes.IndexByte(span, '\\')
		if k < 0 {
			if hasControlByte(span) {
				return false
			}
			s.i = qpos + 1
			return true
		}
		if hasControlByte(span[:k]) {
			return false
		}
		i += k + 1 // consume the backslash
		if i >= len(b) {
			return false
		}
		switch b[i] {
		case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
			i++
		case 'u':
			if i+4 >= len(b) || !ishex(b[i+1]) || !ishex(b[i+2]) || !ishex(b[i+3]) || !ishex(b[i+4]) {
				return false
			}
			i += 5
		default:
			return false
		}
	}
}

// hasControlByte reports whether b contains a byte below 0x20, eight
// bytes per step: in (x-0x20…)&^x&0x80…, the subtraction borrows into a
// byte's high bit only when that byte is below 0x20, and &^x masks the
// false fire from bytes with their own high bit set (≥ 0x80).
func hasControlByte(b []byte) bool {
	const lows, highs = 0x2020202020202020, 0x8080808080808080
	i := 0
	for ; i+8 <= len(b); i += 8 {
		x := binary.LittleEndian.Uint64(b[i:])
		if (x-lows)&^x&highs != 0 {
			return true
		}
	}
	for ; i < len(b); i++ {
		if b[i] < 0x20 {
			return true
		}
	}
	return false
}

func ishex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isdigit(c byte) bool { return c >= '0' && c <= '9' }

func (s *jsonScanner) lit(want string) bool {
	if len(s.b)-s.i < len(want) || string(s.b[s.i:s.i+len(want)]) != want {
		return false
	}
	s.i += len(want)
	return true
}

func (s *jsonScanner) number() bool {
	b := s.b
	i := s.i
	if b[i] == '-' {
		i++
	}
	switch {
	case i >= len(b):
		return false
	case b[i] == '0':
		i++
	case b[i] >= '1' && b[i] <= '9':
		for i < len(b) && isdigit(b[i]) {
			i++
		}
	default:
		return false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || !isdigit(b[i]) {
			return false
		}
		for i < len(b) && isdigit(b[i]) {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || !isdigit(b[i]) {
			return false
		}
		for i < len(b) && isdigit(b[i]) {
			i++
		}
	}
	s.i = i
	return true
}

func (s *jsonScanner) object(depth int) bool {
	if depth >= maxValidateDepth {
		return false
	}
	s.i++ // consume '{'
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == '}' {
		s.i++
		return true
	}
	for {
		s.ws()
		if s.i >= len(s.b) || s.b[s.i] != '"' || !s.str() {
			return false
		}
		s.ws()
		if s.i >= len(s.b) || s.b[s.i] != ':' {
			return false
		}
		s.i++
		if !s.value(depth + 1) {
			return false
		}
		s.ws()
		if s.i >= len(s.b) {
			return false
		}
		switch s.b[s.i] {
		case ',':
			s.i++
		case '}':
			s.i++
			return true
		default:
			return false
		}
	}
}

func (s *jsonScanner) array(depth int) bool {
	if depth >= maxValidateDepth {
		return false
	}
	s.i++ // consume '['
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == ']' {
		s.i++
		return true
	}
	for {
		if !s.value(depth + 1) {
			return false
		}
		s.ws()
		if s.i >= len(s.b) {
			return false
		}
		switch s.b[s.i] {
		case ',':
			s.i++
		case ']':
			s.i++
			return true
		default:
			return false
		}
	}
}
