package gateway

import (
	"hash/fnv"
	"sort"
	"time"
)

// bodyKey names a request by content: identical measurement sessions
// hash to the same key and therefore prefer the same backend, keeping
// that backend's pipeline pools warm for the session's shape.
func bodyKey(body []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return h.Sum64()
}

// pick chooses the primary backend for key, and the next-ranked distinct
// backend as the hedge candidate. Selection is rendezvous order filtered
// to routable backends not yet tried this request, with a bounded-load
// escape: the hash-preferred backend is skipped while it carries more
// than LoadSlack requests above the least-loaded candidate, so affinity
// never turns into a hot spot. Returns (nil, nil) when no candidate is
// routable.
func (g *Gateway) pick(key uint64, tried map[*backend]bool) (primary, hedge *backend) {
	now := g.clock.Now()
	candidates := make([]*backend, 0, len(g.backends))
	minInflight := int64(1<<63 - 1)
	for _, b := range g.backends {
		if tried[b] || !b.routable(now) {
			continue
		}
		candidates = append(candidates, b)
		if n := b.inflight.Load(); n < minInflight {
			minInflight = n
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].score(key) > candidates[j].score(key)
	})
	for _, b := range candidates {
		if b.inflight.Load() <= minInflight+int64(g.cfg.LoadSlack) {
			primary = b
			break
		}
	}
	if primary == nil {
		// Every candidate is above the load bound relative to a now-stale
		// minimum (loads move while we rank); fall back to hash order.
		primary = candidates[0]
	}
	for _, b := range candidates {
		if b != primary {
			hedge = b
			break
		}
	}
	return primary, hedge
}

// retryAfterHint is the Retry-After the gateway reports when it sheds a
// request itself: the soonest moment any backend's penalty expires (they
// are all penalised when this is called), floored at one second, or the
// probe interval when no penalty is running (the soonest health can
// change).
func (g *Gateway) retryAfterHint() time.Duration {
	now := g.clock.Now()
	var soonest time.Duration
	for _, b := range g.backends {
		if until := b.penaltyUntil.Load(); until > now.UnixNano() {
			d := time.Duration(until - now.UnixNano())
			if soonest == 0 || d < soonest {
				soonest = d
			}
		}
	}
	if soonest == 0 {
		soonest = g.cfg.ProbeInterval
	}
	if soonest < time.Second {
		soonest = time.Second
	}
	return soonest
}
