package csi

import "testing"

// ringPkt builds a distinguishable packet: Seq carries the identity the
// tests assert on, the matrix stays nil (the ring never looks inside).
func ringPkt(seq uint32) Packet {
	return Packet{Seq: seq}
}

func windowSeqs(s *Session) []uint32 {
	seqs := make([]uint32, len(s.Target.Packets))
	for i, p := range s.Target.Packets {
		seqs[i] = p.Seq
	}
	return seqs
}

func TestPacketRingRejectsBadWindow(t *testing.T) {
	if _, err := NewPacketRing(0); err == nil {
		t.Fatal("window 0 should error")
	}
	if _, err := NewPacketRing(-3); err == nil {
		t.Fatal("negative window should error")
	}
}

// TestPacketRingSlidesWindow drives push/trim/emit through enough strides to
// force several block turnovers and checks every emitted window holds exactly
// the most recent `window` packets in order.
func TestPacketRingSlidesWindow(t *testing.T) {
	const window, stride, total = 16, 4, 400
	r, err := NewPacketRing(window)
	if err != nil {
		t.Fatal(err)
	}
	var seq uint32
	for seq < window {
		r.Push(ringPkt(seq))
		seq++
	}
	for ; seq < total; seq++ {
		r.Push(ringPkt(seq))
		r.TrimTo(window)
		if r.Len() != window {
			t.Fatalf("after trim: Len=%d, want %d", r.Len(), window)
		}
		if seq%stride != 0 {
			continue
		}
		s := r.Emit(5.32e9, nil)
		if s == nil {
			t.Fatal("Emit returned nil for non-empty window")
		}
		got := windowSeqs(s)
		for i, g := range got {
			if want := seq - window + 1 + uint32(i); g != want {
				t.Fatalf("emit @%d: window[%d]=%d, want %d", seq, i, g, want)
			}
		}
		s.Release()
	}
}

// TestPacketRingTurnoverPreservesAliasedWindows holds an emitted session
// across block turnovers: its window must stay intact while the writer keeps
// pushing, because the writer moved to a fresh block instead of overwriting.
func TestPacketRingTurnoverPreservesAliasedWindows(t *testing.T) {
	const window = 8
	r, err := NewPacketRing(window)
	if err != nil {
		t.Fatal(err)
	}
	var seq uint32
	for ; seq < window; seq++ {
		r.Push(ringPkt(seq))
	}
	held := r.Emit(5.32e9, nil)
	want := windowSeqs(held)

	// Push far past several block capacities (2*window+2 each).
	for ; seq < 20*window; seq++ {
		r.Push(ringPkt(seq))
		r.TrimTo(window)
	}
	got := windowSeqs(held)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("held window corrupted at %d: got %d, want %d", i, got[i], want[i])
		}
	}
	held.Release()
}

// TestPacketRingRecyclesBlocksAndHeaders checks steady-state striding with
// prompt Release settles into recycled blocks and pooled session headers —
// the free lists stop growing and emitted headers repeat.
func TestPacketRingRecyclesBlocksAndHeaders(t *testing.T) {
	const window, stride = 16, 4
	r, err := NewPacketRing(window)
	if err != nil {
		t.Fatal(err)
	}
	var seq uint32
	headers := map[*Session]bool{}
	for ; seq < 600; seq++ {
		r.Push(ringPkt(seq))
		r.TrimTo(window)
		if seq >= window && seq%stride == 0 {
			s := r.Emit(5.32e9, nil)
			headers[s] = true
			s.Release()
		}
	}
	if len(headers) > 2 {
		t.Errorf("prompt-release striding used %d session headers, want <=2 (pooled)", len(headers))
	}
	if len(r.free) > 2 {
		t.Errorf("free list holds %d blocks, want <=2 (steady-state alternation)", len(r.free))
	}
}

// TestPacketRingReleaseIdempotent double-releases one session and then checks
// the ring still behaves: the second Release must be a no-op, not a double
// refcount decrement that frees a block under a later session.
func TestPacketRingReleaseIdempotent(t *testing.T) {
	r, err := NewPacketRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		r.Push(ringPkt(i))
	}
	s := r.Emit(5.32e9, nil)
	s.Release()
	s.Release() // must be a no-op

	// The writer still holds the block; its refcount must be exactly 1, so
	// DropWindow recycles it onto the free list.
	if got := r.cur.refs; got != 1 {
		t.Fatalf("block refs after double release: %d, want 1", got)
	}
	r.DropWindow()
	if len(r.free) != 1 {
		t.Fatalf("free list after drop: %d blocks, want 1", len(r.free))
	}
}

// TestPacketRingPlainSessionReleaseNoop: Release on a session the ring never
// emitted must do nothing (plain sessions are built by literals everywhere
// else in the codebase).
func TestPacketRingPlainSessionReleaseNoop(t *testing.T) {
	s := &Session{Carrier: 5.32e9}
	s.Release()
	if s.Carrier != 5.32e9 {
		t.Fatal("Release zeroed a plain session")
	}
}

// TestPacketRingDropWindowIsolatesAppearances: abandoning a window and
// starting a new one must not leak old packets into the next appearance.
func TestPacketRingDropWindowIsolatesAppearances(t *testing.T) {
	r, err := NewPacketRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		r.Push(ringPkt(100 + i))
	}
	r.DropWindow()
	if r.Len() != 0 {
		t.Fatalf("Len after DropWindow: %d, want 0", r.Len())
	}
	if s := r.Emit(5.32e9, nil); s != nil {
		t.Fatal("Emit on empty window should return nil")
	}
	for i := uint32(0); i < 3; i++ {
		r.Push(ringPkt(200 + i))
	}
	s := r.Emit(5.32e9, nil)
	got := windowSeqs(s)
	if len(got) != 3 || got[0] != 200 || got[2] != 202 {
		t.Fatalf("new appearance window = %v, want [200 201 202]", got)
	}
	s.Release()
}
