// Package csi defines the channel-state-information data model the rest of
// WiMi consumes: per-packet complex CSI matrices shaped like the Intel 5300
// NIC's CSI Tool export (reference [20] of the paper) — one transmit
// stream, up to three receive antennas, 30 grouped subcarriers of a 20 MHz
// 802.11n channel.
package csi

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"
)

// NumSubcarriers is the number of subcarriers the Intel 5300 reports for a
// 20 MHz channel (a grouped subset of the 56 data/pilot subcarriers).
const NumSubcarriers = 30

// SubcarrierSpacing is the 802.11n OFDM subcarrier spacing in Hz.
const SubcarrierSpacing = 312.5e3

// intel5300Indices are the 802.11n subcarrier indices (of the -28..28 grid)
// the 5300's grouping reports, per the CSI Tool documentation.
var intel5300Indices = [NumSubcarriers]int{
	-28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
	1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
}

// SubcarrierIndex returns the 802.11n grid index of reported subcarrier k
// (0 ≤ k < NumSubcarriers).
func SubcarrierIndex(k int) (int, error) {
	if k < 0 || k >= NumSubcarriers {
		return 0, fmt.Errorf("csi: subcarrier %d out of range [0,%d)", k, NumSubcarriers)
	}
	return intel5300Indices[k], nil
}

// SubcarrierFreq returns the absolute RF frequency of reported subcarrier k
// for a channel centred at carrier Hz.
func SubcarrierFreq(carrier float64, k int) (float64, error) {
	idx, err := SubcarrierIndex(k)
	if err != nil {
		return 0, err
	}
	return carrier + float64(idx)*SubcarrierSpacing, nil
}

// Matrix is the CSI of one received packet: Values[ant][sub] is the complex
// channel response at receive antenna ant and reported subcarrier sub.
// (One transmit stream, as in the paper's router→laptop setup.)
type Matrix struct {
	Values [][]complex128
}

// NewMatrix allocates a zeroed CSI matrix for numAnt antennas. All rows
// share one backing array: a capture holds thousands of matrices, and the
// flat layout costs two heap objects instead of numAnt+1.
func NewMatrix(numAnt int) (*Matrix, error) {
	if numAnt < 1 {
		return nil, fmt.Errorf("csi: need at least one antenna, got %d", numAnt)
	}
	backing := make([]complex128, numAnt*NumSubcarriers)
	vals := make([][]complex128, numAnt)
	for i := range vals {
		vals[i] = backing[i*NumSubcarriers : (i+1)*NumSubcarriers : (i+1)*NumSubcarriers]
	}
	return &Matrix{Values: vals}, nil
}

// NumAntennas returns the number of receive antennas in the matrix.
func (m *Matrix) NumAntennas() int { return len(m.Values) }

// At returns the complex CSI at antenna ant, subcarrier sub.
func (m *Matrix) At(ant, sub int) (complex128, error) {
	if ant < 0 || ant >= len(m.Values) {
		return 0, fmt.Errorf("csi: antenna %d out of range [0,%d)", ant, len(m.Values))
	}
	if sub < 0 || sub >= NumSubcarriers {
		return 0, fmt.Errorf("csi: subcarrier %d out of range [0,%d)", sub, NumSubcarriers)
	}
	return m.Values[ant][sub], nil
}

// Amplitude returns |H| at antenna ant, subcarrier sub.
func (m *Matrix) Amplitude(ant, sub int) (float64, error) {
	v, err := m.At(ant, sub)
	if err != nil {
		return 0, err
	}
	return cmplx.Abs(v), nil
}

// Phase returns ∠H in radians at antenna ant, subcarrier sub.
func (m *Matrix) Phase(ant, sub int) (float64, error) {
	v, err := m.At(ant, sub)
	if err != nil {
		return 0, err
	}
	return cmplx.Phase(v), nil
}

// PhaseDiff returns the inter-antenna phase difference
// ∠H[antA][sub] − ∠H[antB][sub] wrapped to [-π, π) — the quantity phase
// calibration is built on (paper Eq. 6).
func (m *Matrix) PhaseDiff(antA, antB, sub int) (float64, error) {
	a, err := m.At(antA, sub)
	if err != nil {
		return 0, err
	}
	b, err := m.At(antB, sub)
	if err != nil {
		return 0, err
	}
	d := cmplx.Phase(a) - cmplx.Phase(b)
	// Wrap to [-π, π).
	for d >= math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d, nil
}

// AmplitudeRatio returns |H[antA][sub]| / |H[antB][sub]| — the stable
// amplitude quantity of Sec. III-C. A zero denominator is an error.
func (m *Matrix) AmplitudeRatio(antA, antB, sub int) (float64, error) {
	a, err := m.Amplitude(antA, sub)
	if err != nil {
		return 0, err
	}
	b, err := m.Amplitude(antB, sub)
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 0, fmt.Errorf("csi: zero amplitude at antenna %d subcarrier %d", antB, sub)
	}
	return a / b, nil
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	vals := make([][]complex128, len(m.Values))
	for i, row := range m.Values {
		vals[i] = append([]complex128(nil), row...)
	}
	return &Matrix{Values: vals}
}

// NewMatrixSlab allocates n zeroed CSI matrices for numAnt antennas whose
// rows all slice ONE shared backing array — three heap objects for a whole
// capture instead of two per packet. The matrices are independent views:
// writing one never touches another.
func NewMatrixSlab(numAnt, n int) ([]Matrix, error) {
	if numAnt < 1 {
		return nil, fmt.Errorf("csi: need at least one antenna, got %d", numAnt)
	}
	if n < 0 {
		return nil, fmt.Errorf("csi: negative matrix count %d", n)
	}
	backing := make([]complex128, n*numAnt*NumSubcarriers)
	rows := make([][]complex128, n*numAnt)
	for i := range rows {
		rows[i] = backing[i*NumSubcarriers : (i+1)*NumSubcarriers : (i+1)*NumSubcarriers]
	}
	mats := make([]Matrix, n)
	for i := range mats {
		mats[i].Values = rows[i*numAnt : (i+1)*numAnt : (i+1)*numAnt]
	}
	return mats, nil
}

// MatrixArena hands out CSI matrices carved from large reusable slabs — the
// allocation discipline of the serving decode path, where a request's whole
// session is decoded, identified and discarded. Reset recycles every slab
// for the next request, so a warmed arena allocates nothing in steady state.
//
// Matrices obtained from an arena are valid only until Reset; an arena is
// not safe for concurrent use.
type MatrixArena struct {
	vals    []complex128   // current value slab
	valOff  int            // used prefix of vals
	rows    [][]complex128 // current row-header slab
	rowOff  int
	mats    []Matrix // current matrix-header slab
	matOff  int
	retired [][]complex128 // full value slabs kept alive until Reset
}

// arenaMinMatrices sizes fresh arena slabs: enough for a typical two-capture
// session (2 × 20 packets) before any growth.
const arenaMinMatrices = 48

// NewMatrix returns a zeroed matrix carved from the arena, equivalent to
// the package-level NewMatrix but amortised across the arena's slab.
func (a *MatrixArena) NewMatrix(numAnt int) (*Matrix, error) {
	if numAnt < 1 {
		return nil, fmt.Errorf("csi: need at least one antenna, got %d", numAnt)
	}
	need := numAnt * NumSubcarriers
	if len(a.vals)-a.valOff < need {
		// The exhausted slab stays referenced by earlier matrices; keep it
		// for the next Reset so the arena converges on zero allocation.
		if a.vals != nil {
			a.retired = append(a.retired, a.vals)
		}
		size := 2 * len(a.vals)
		if min := arenaMinMatrices * need; size < min {
			size = min
		}
		a.vals = make([]complex128, size)
		a.valOff = 0
	}
	vals := a.vals[a.valOff : a.valOff+need]
	for i := range vals {
		vals[i] = 0
	}
	a.valOff += need
	if len(a.rows)-a.rowOff < numAnt {
		size := 2 * len(a.rows)
		if min := arenaMinMatrices * numAnt; size < min {
			size = min
		}
		a.rows = make([][]complex128, size)
		a.rowOff = 0
	}
	rows := a.rows[a.rowOff : a.rowOff+numAnt : a.rowOff+numAnt]
	a.rowOff += numAnt
	for i := range rows {
		rows[i] = vals[i*NumSubcarriers : (i+1)*NumSubcarriers : (i+1)*NumSubcarriers]
	}
	if a.matOff == len(a.mats) {
		size := 2 * len(a.mats)
		if size < arenaMinMatrices {
			size = arenaMinMatrices
		}
		a.mats = make([]Matrix, size)
		a.matOff = 0
	}
	m := &a.mats[a.matOff]
	a.matOff++
	m.Values = rows
	return m, nil
}

// Reset recycles the arena's slabs. Every matrix previously handed out
// becomes invalid: the caller must be done with them (and everything
// derived from their storage) before resetting.
func (a *MatrixArena) Reset() {
	// Keep only the largest value slab: growth doubles, so after one warm-up
	// request the single surviving slab fits the whole workload.
	for _, s := range a.retired {
		if len(s) > len(a.vals) {
			a.vals = s
		}
	}
	a.retired = a.retired[:0]
	a.valOff, a.rowOff, a.matOff = 0, 0, 0
	// Drop row references into the old slab so stale matrices cannot pin it.
	for i := range a.rows {
		a.rows[i] = nil
	}
	for i := range a.mats {
		a.mats[i].Values = nil
	}
}

// Packet is one received CSI measurement.
type Packet struct {
	// Seq is the packet sequence number within its capture.
	Seq uint32
	// Timestamp is the receive time.
	Timestamp time.Time
	// Carrier is the channel centre frequency in Hz.
	Carrier float64
	// CSI is the measured channel matrix.
	CSI *Matrix
}

// Capture is an ordered series of packets from one measurement episode
// (e.g. "baseline, no target" or "target present").
type Capture struct {
	Packets []Packet
}

// Len returns the number of packets in the capture.
func (c *Capture) Len() int { return len(c.Packets) }

// NumAntennas returns the antenna count of the first packet, or 0 for an
// empty capture.
func (c *Capture) NumAntennas() int {
	if len(c.Packets) == 0 {
		return 0
	}
	return c.Packets[0].CSI.NumAntennas()
}

// The series extractors below are the inner loop of calibration and feature
// extraction: they run once per (antenna pair, subcarrier) per capture, every
// trial. Each keeps a fast path that indexes Values directly after a cheap
// combined bounds test; anything unusual (out-of-range argument, zero
// denominator) falls back to the checked per-packet accessor so error text
// and semantics stay identical to calling it in a loop.

// growSeries returns buf resized to n, reallocating only when capacity is
// insufficient — the backing-reuse idiom of the pipeline scratch buffers.
func growSeries(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// PhaseDiffSeries extracts the per-packet inter-antenna phase difference at
// one subcarrier across the whole capture.
func (c *Capture) PhaseDiffSeries(antA, antB, sub int) ([]float64, error) {
	return c.PhaseDiffSeriesInto(nil, antA, antB, sub)
}

// PhaseDiffSeriesInto is PhaseDiffSeries writing into dst (grown as needed
// and returned), so per-(pair, subcarrier) extraction loops reuse one
// buffer instead of allocating a series per call. dst may be nil.
func (c *Capture) PhaseDiffSeriesInto(dst []float64, antA, antB, sub int) ([]float64, error) {
	out := growSeries(dst, len(c.Packets))
	for i := range c.Packets {
		v := c.Packets[i].CSI.Values
		if uint(antA) >= uint(len(v)) || uint(antB) >= uint(len(v)) || uint(sub) >= NumSubcarriers {
			d, err := c.Packets[i].CSI.PhaseDiff(antA, antB, sub)
			if err != nil {
				return nil, fmt.Errorf("csi: packet %d: %w", i, err)
			}
			out[i] = d
			continue
		}
		// ∠a − ∠b = ∠(a·conj(b)) up to float round-off: one atan2 instead of
		// two, and Phase already lands in (-π, π] so only the π endpoint
		// needs folding to keep the documented [-π, π) range.
		d := cmplx.Phase(v[antA][sub] * cmplx.Conj(v[antB][sub]))
		if d >= math.Pi {
			d = -math.Pi
		}
		out[i] = d
	}
	return out, nil
}

// AmplitudeSeries extracts per-packet |H| at one antenna and subcarrier.
func (c *Capture) AmplitudeSeries(ant, sub int) ([]float64, error) {
	return c.AmplitudeSeriesInto(nil, ant, sub)
}

// AmplitudeSeriesInto is AmplitudeSeries writing into dst (grown as needed
// and returned). dst may be nil.
func (c *Capture) AmplitudeSeriesInto(dst []float64, ant, sub int) ([]float64, error) {
	out := growSeries(dst, len(c.Packets))
	for i := range c.Packets {
		v := c.Packets[i].CSI.Values
		if uint(ant) >= uint(len(v)) || uint(sub) >= NumSubcarriers {
			a, err := c.Packets[i].CSI.Amplitude(ant, sub)
			if err != nil {
				return nil, fmt.Errorf("csi: packet %d: %w", i, err)
			}
			out[i] = a
			continue
		}
		out[i] = cmplx.Abs(v[ant][sub])
	}
	return out, nil
}

// AmplitudeRatioSeries extracts the per-packet inter-antenna amplitude ratio
// at one subcarrier.
func (c *Capture) AmplitudeRatioSeries(antA, antB, sub int) ([]float64, error) {
	out := make([]float64, len(c.Packets))
	for i := range c.Packets {
		v := c.Packets[i].CSI.Values
		var a, b float64
		if uint(antA) < uint(len(v)) && uint(antB) < uint(len(v)) && uint(sub) < NumSubcarriers {
			a = cmplx.Abs(v[antA][sub])
			b = cmplx.Abs(v[antB][sub])
		}
		if b == 0 {
			// Out-of-range argument or genuine zero amplitude: take the
			// checked path for its error reporting.
			r, err := c.Packets[i].CSI.AmplitudeRatio(antA, antB, sub)
			if err != nil {
				return nil, fmt.Errorf("csi: packet %d: %w", i, err)
			}
			out[i] = r
			continue
		}
		out[i] = a / b
	}
	return out, nil
}

// PhaseSeries extracts per-packet raw phase at one antenna and subcarrier
// (the noisy quantity of Fig. 2).
func (c *Capture) PhaseSeries(ant, sub int) ([]float64, error) {
	out := make([]float64, len(c.Packets))
	for i := range c.Packets {
		v := c.Packets[i].CSI.Values
		if uint(ant) >= uint(len(v)) || uint(sub) >= NumSubcarriers {
			p, err := c.Packets[i].CSI.Phase(ant, sub)
			if err != nil {
				return nil, fmt.Errorf("csi: packet %d: %w", i, err)
			}
			out[i] = p
			continue
		}
		out[i] = cmplx.Phase(v[ant][sub])
	}
	return out, nil
}

// Session pairs the two captures the identification pipeline needs: the
// baseline (empty container on the LoS) and the measurement with the target
// liquid present (paper Sec. IV: "we first extract a set ... as the baseline
// data").
type Session struct {
	// Carrier is the channel centre frequency in Hz.
	Carrier float64
	// Baseline holds CSI with no target liquid (empty container).
	Baseline Capture
	// Target holds CSI with the liquid in place.
	Target Capture

	// ring/block tie a PacketRing-emitted session to the refcounted block
	// its target window aliases; Release hands both back. Nil for plain
	// sessions, for which Release is a no-op.
	ring  *PacketRing
	block *packetBlock
}

// Validate checks the session is usable: non-empty captures with matching
// antenna counts.
func (s *Session) Validate() error {
	if s.Baseline.Len() == 0 {
		return fmt.Errorf("csi: session has no baseline packets")
	}
	if s.Target.Len() == 0 {
		return fmt.Errorf("csi: session has no target packets")
	}
	if a, b := s.Baseline.NumAntennas(), s.Target.NumAntennas(); a != b {
		return fmt.Errorf("csi: antenna count mismatch: baseline %d vs target %d", a, b)
	}
	if s.Baseline.NumAntennas() < 2 {
		return fmt.Errorf("csi: need at least 2 antennas for phase difference, got %d", s.Baseline.NumAntennas())
	}
	if s.Carrier <= 0 {
		return fmt.Errorf("csi: invalid carrier frequency %v", s.Carrier)
	}
	return nil
}
