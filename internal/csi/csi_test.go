package csi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"repro/internal/mathx"
)

func TestSubcarrierIndexMapping(t *testing.T) {
	// Endpoints and the DC gap of the Intel 5300 grouping.
	first, err := SubcarrierIndex(0)
	if err != nil || first != -28 {
		t.Errorf("index 0 = %d (%v), want -28", first, err)
	}
	last, err := SubcarrierIndex(29)
	if err != nil || last != 28 {
		t.Errorf("index 29 = %d (%v), want 28", last, err)
	}
	// No DC subcarrier.
	for k := 0; k < NumSubcarriers; k++ {
		idx, err := SubcarrierIndex(k)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			t.Error("DC subcarrier should not be reported")
		}
	}
	if _, err := SubcarrierIndex(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := SubcarrierIndex(30); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestSubcarrierIndicesStrictlyIncreasing(t *testing.T) {
	prev := math.Inf(-1)
	for k := 0; k < NumSubcarriers; k++ {
		idx, _ := SubcarrierIndex(k)
		if float64(idx) <= prev {
			t.Fatalf("indices not strictly increasing at %d", k)
		}
		prev = float64(idx)
	}
}

func TestSubcarrierFreq(t *testing.T) {
	carrier := 5.32e9
	f0, err := SubcarrierFreq(carrier, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := carrier - 28*SubcarrierSpacing
	if !mathx.AlmostEqual(f0, want, 1e-3) {
		t.Errorf("subcarrier 0 freq = %v, want %v", f0, want)
	}
	// Span of the reported band is 56 × 312.5 kHz = 17.5 MHz.
	f29, _ := SubcarrierFreq(carrier, 29)
	if !mathx.AlmostEqual(f29-f0, 56*SubcarrierSpacing, 1e-3) {
		t.Errorf("band span = %v", f29-f0)
	}
}

func TestNewMatrix(t *testing.T) {
	m, err := NewMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAntennas() != 3 {
		t.Errorf("NumAntennas = %d", m.NumAntennas())
	}
	if len(m.Values[0]) != NumSubcarriers {
		t.Errorf("subcarriers = %d", len(m.Values[0]))
	}
	if _, err := NewMatrix(0); err == nil {
		t.Error("0 antennas should error")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m, _ := NewMatrix(2)
	m.Values[0][5] = cmplx.Rect(2, 0.7)
	m.Values[1][5] = cmplx.Rect(4, 0.2)

	if amp, err := m.Amplitude(0, 5); err != nil || !mathx.AlmostEqual(amp, 2, 1e-12) {
		t.Errorf("Amplitude = %v (%v)", amp, err)
	}
	if ph, err := m.Phase(0, 5); err != nil || !mathx.AlmostEqual(ph, 0.7, 1e-12) {
		t.Errorf("Phase = %v (%v)", ph, err)
	}
	if d, err := m.PhaseDiff(0, 1, 5); err != nil || !mathx.AlmostEqual(d, 0.5, 1e-12) {
		t.Errorf("PhaseDiff = %v (%v)", d, err)
	}
	if r, err := m.AmplitudeRatio(0, 1, 5); err != nil || !mathx.AlmostEqual(r, 0.5, 1e-12) {
		t.Errorf("AmplitudeRatio = %v (%v)", r, err)
	}
}

func TestMatrixBoundsErrors(t *testing.T) {
	m, _ := NewMatrix(2)
	if _, err := m.At(2, 0); err == nil {
		t.Error("antenna out of range should error")
	}
	if _, err := m.At(0, NumSubcarriers); err == nil {
		t.Error("subcarrier out of range should error")
	}
	if _, err := m.AmplitudeRatio(0, 1, 3); err == nil {
		t.Error("zero denominator should error")
	}
}

func TestPhaseDiffWraps(t *testing.T) {
	m, _ := NewMatrix(2)
	m.Values[0][0] = cmplx.Rect(1, 3.0)
	m.Values[1][0] = cmplx.Rect(1, -3.0)
	d, err := m.PhaseDiff(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 − (−3) = 6 → wraps to 6 − 2π ≈ −0.283.
	if !mathx.AlmostEqual(d, 6-2*math.Pi, 1e-9) {
		t.Errorf("wrapped phase diff = %v, want %v", d, 6-2*math.Pi)
	}
	if d < -math.Pi || d >= math.Pi {
		t.Errorf("phase diff %v outside [-π, π)", d)
	}
}

func TestMatrixClone(t *testing.T) {
	m, _ := NewMatrix(2)
	m.Values[0][0] = 1 + 2i
	c := m.Clone()
	c.Values[0][0] = 9
	if m.Values[0][0] != 1+2i {
		t.Error("Clone aliases the original")
	}
}

func makeCapture(t *testing.T, n int, phase0, phase1 float64) Capture {
	t.Helper()
	var cap Capture
	for i := 0; i < n; i++ {
		m, err := NewMatrix(2)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < NumSubcarriers; s++ {
			m.Values[0][s] = cmplx.Rect(2, phase0)
			m.Values[1][s] = cmplx.Rect(1, phase1)
		}
		cap.Packets = append(cap.Packets, Packet{
			Seq:       uint32(i),
			Timestamp: time.Unix(0, int64(i)*10_000_000), // 10 ms apart
			Carrier:   5.32e9,
			CSI:       m,
		})
	}
	return cap
}

func TestCaptureSeries(t *testing.T) {
	cap := makeCapture(t, 5, 1.0, 0.25)
	pd, err := cap.PhaseDiffSeries(0, 1, 7)
	if err != nil || len(pd) != 5 {
		t.Fatalf("PhaseDiffSeries: %v len %d", err, len(pd))
	}
	for _, v := range pd {
		if !mathx.AlmostEqual(v, 0.75, 1e-12) {
			t.Errorf("phase diff = %v, want 0.75", v)
		}
	}
	amps, err := cap.AmplitudeSeries(0, 7)
	if err != nil || len(amps) != 5 {
		t.Fatalf("AmplitudeSeries: %v", err)
	}
	for _, v := range amps {
		if v != 2 {
			t.Errorf("amplitude = %v", v)
		}
	}
	ratios, err := cap.AmplitudeRatioSeries(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ratios {
		if v != 2 {
			t.Errorf("ratio = %v", v)
		}
	}
	phases, err := cap.PhaseSeries(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range phases {
		if !mathx.AlmostEqual(v, 0.25, 1e-12) {
			t.Errorf("phase = %v", v)
		}
	}
}

func TestCaptureNumAntennas(t *testing.T) {
	var empty Capture
	if empty.NumAntennas() != 0 {
		t.Error("empty capture should report 0 antennas")
	}
	cap := makeCapture(t, 1, 0, 0)
	if cap.NumAntennas() != 2 {
		t.Errorf("NumAntennas = %d", cap.NumAntennas())
	}
}

func TestSessionValidate(t *testing.T) {
	good := &Session{
		Carrier:  5.32e9,
		Baseline: makeCapture(t, 3, 0, 0),
		Target:   makeCapture(t, 3, 1, 1),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid session rejected: %v", err)
	}

	noBase := &Session{Carrier: 5.32e9, Target: makeCapture(t, 3, 0, 0)}
	if err := noBase.Validate(); err == nil {
		t.Error("missing baseline should error")
	}
	noTarget := &Session{Carrier: 5.32e9, Baseline: makeCapture(t, 3, 0, 0)}
	if err := noTarget.Validate(); err == nil {
		t.Error("missing target should error")
	}
	badCarrier := &Session{Baseline: makeCapture(t, 1, 0, 0), Target: makeCapture(t, 1, 0, 0)}
	if err := badCarrier.Validate(); err == nil {
		t.Error("zero carrier should error")
	}
}

func TestSessionValidateSingleAntenna(t *testing.T) {
	one := func(n int) Capture {
		var cap Capture
		for i := 0; i < n; i++ {
			m, _ := NewMatrix(1)
			cap.Packets = append(cap.Packets, Packet{CSI: m, Carrier: 5.32e9})
		}
		return cap
	}
	s := &Session{Carrier: 5.32e9, Baseline: one(2), Target: one(2)}
	if err := s.Validate(); err == nil {
		t.Error("single-antenna session should be rejected (phase difference needs 2)")
	}
}

func TestPhaseDiffAntisymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, err := NewMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	for ant := 0; ant < 3; ant++ {
		for sub := 0; sub < NumSubcarriers; sub++ {
			m.Values[ant][sub] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	for sub := 0; sub < NumSubcarriers; sub++ {
		ab, err := m.PhaseDiff(0, 1, sub)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := m.PhaseDiff(1, 0, sub)
		if err != nil {
			t.Fatal(err)
		}
		// ab = -ba modulo 2π.
		sum := math.Mod(ab+ba, 2*math.Pi)
		if math.Abs(sum) > 1e-9 && math.Abs(math.Abs(sum)-2*math.Pi) > 1e-9 {
			t.Fatalf("sub %d: PhaseDiff not antisymmetric: %v + %v", sub, ab, ba)
		}
		rab, err := m.AmplitudeRatio(0, 1, sub)
		if err != nil {
			t.Fatal(err)
		}
		rba, err := m.AmplitudeRatio(1, 0, sub)
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.AlmostEqual(rab*rba, 1, 1e-9) {
			t.Fatalf("sub %d: ratio reciprocity violated: %v · %v", sub, rab, rba)
		}
	}
}
