package csi

import "fmt"

// PacketRing backs sliding-window session emission with refcounted
// fixed-capacity packet blocks, so emitting a window that overlaps the
// previous one costs O(new packets) instead of O(window): the writer appends
// packets into the current block and every emitted Session aliases a
// three-index subslice of it. A block is recycled onto a free list once the
// writer has moved past it AND every session cut from it has been Released;
// sessions that are never Released simply pin their block until the GC
// collects it, which is exactly the allocation behaviour of the historical
// copy-per-emission path.
//
// A PacketRing and every Session emitted from it share one synchronization
// domain: the caller must guard Push/TrimTo/DropWindow/Emit AND
// Session.Release with the same lock (the monitor hub uses the stream
// mutex). Within that contract the aliasing is race-free even while the
// writer keeps appending: an emitted window is capped at its end index, and
// later appends only touch indexes past it.
type PacketRing struct {
	blockCap int
	cur      *packetBlock
	start    int // live window = cur.pkts[start:len(cur.pkts)]

	free     []*packetBlock
	sessions []*Session // pool of released Session headers
}

// packetBlock is one refcounted backing array. refs counts the writer's hold
// (1 while the block is current) plus one per live emitted session.
type packetBlock struct {
	pkts []Packet
	refs int
}

// NewPacketRing sizes a ring for sliding windows of at most window packets.
// Each block holds 2*window+2 packets, so steady-state striding alternates
// between two blocks and block turnover (the only copy left) moves at most
// window+1 packets — amortised O(stride) per emission.
func NewPacketRing(window int) (*PacketRing, error) {
	if window < 1 {
		return nil, fmt.Errorf("csi: packet ring window %d < 1", window)
	}
	return &PacketRing{blockCap: 2*window + 2}, nil
}

func (r *PacketRing) take() *packetBlock {
	for n := len(r.free); n > 0; n = len(r.free) {
		b := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		if cap(b.pkts) >= r.blockCap {
			return b
		}
		// Undersized leftover from before a blockCap growth: drop it.
	}
	return &packetBlock{pkts: make([]Packet, 0, r.blockCap)}
}

func (r *PacketRing) releaseBlock(b *packetBlock) {
	b.refs--
	if b.refs == 0 {
		clearPackets(b.pkts)
		b.pkts = b.pkts[:0]
		r.free = append(r.free, b)
	}
}

// clearPackets drops matrix pointers so a parked block does not pin CSI
// payloads owned by the feeder.
func clearPackets(pkts []Packet) {
	for i := range pkts {
		pkts[i] = Packet{}
	}
}

// Len reports the live window length.
func (r *PacketRing) Len() int {
	if r.cur == nil {
		return 0
	}
	return len(r.cur.pkts) - r.start
}

// Push appends one packet to the live window. When the current block is
// full, the live window (at most blockCap/2 packets per TrimTo contract) is
// copied into a fresh or recycled block — emitted sessions keep aliasing the
// old block, which they alone now keep alive.
func (r *PacketRing) Push(pkt Packet) {
	if r.cur == nil {
		r.cur = r.take()
		r.cur.refs = 1 // the writer's hold
		r.start = 0
	}
	if len(r.cur.pkts) == cap(r.cur.pkts) {
		if live := len(r.cur.pkts) - r.start; live*2 >= r.blockCap {
			// The live window outgrew the sizing hint (an untrimmed caller):
			// double the block size so Push stays amortised O(1).
			r.blockCap = 2*live + 2
		}
		nb := r.take()
		nb.refs = 1
		nb.pkts = append(nb.pkts, r.cur.pkts[r.start:]...)
		r.releaseBlock(r.cur)
		r.cur = nb
		r.start = 0
	}
	r.cur.pkts = append(r.cur.pkts, pkt)
}

// TrimTo drops the oldest packets so the live window holds at most n. The
// dropped prefix stays in the block for any session still aliasing it.
func (r *PacketRing) TrimTo(n int) {
	if r.Len() > n {
		r.start = len(r.cur.pkts) - n
	}
}

// DropWindow abandons the live window (target removed, stream reset): the
// writer's hold on the current block is released and the next Push starts a
// fresh window. Outstanding sessions keep their block alive.
func (r *PacketRing) DropWindow() {
	if r.cur != nil {
		r.releaseBlock(r.cur)
		r.cur = nil
	}
	r.start = 0
}

// Emit cuts a Session over the live window without copying: Target aliases
// the block (capped at the window end, so subsequent Pushes never alias into
// it) and Baseline shares the caller's frozen per-appearance slice. The
// session header comes from the ring's pool; hand it back with
// Session.Release under the ring's lock once the verdict is delivered.
func (r *PacketRing) Emit(carrier float64, baseline []Packet) *Session {
	if r.Len() == 0 {
		return nil
	}
	end := len(r.cur.pkts)
	window := r.cur.pkts[r.start:end:end]
	r.cur.refs++
	var s *Session
	if n := len(r.sessions); n > 0 {
		s = r.sessions[n-1]
		r.sessions[n-1] = nil
		r.sessions = r.sessions[:n-1]
	} else {
		s = &Session{}
	}
	*s = Session{
		Carrier:  carrier,
		Baseline: Capture{Packets: baseline},
		Target:   Capture{Packets: window},
		ring:     r,
		block:    r.cur,
	}
	return s
}

// Release hands a ring-emitted session back to its ring: the target block's
// refcount drops (recycling the block once the writer has also moved on) and
// the session header returns to the pool. The session is invalid afterwards.
// No-op for sessions not emitted by a ring, and idempotent — a second
// Release on the same header finds s.ring nil. Must be called under the same
// lock that guards the ring.
func (s *Session) Release() {
	if s.ring == nil {
		return
	}
	r, b := s.ring, s.block
	*s = Session{}
	r.releaseBlock(b)
	r.sessions = append(r.sessions, s)
}
