// Package transport streams CSI packets between a measurement node (the
// laptop with the NIC, or its simulated stand-in) and a collector over TCP,
// replacing the paper's local CSI Tool capture with a distributed one.
//
// Wire protocol: the trace format of internal/trace, verbatim, over a TCP
// stream — one header, then framed records. Anything that can read a
// .csitrace file can read a live socket and vice versa.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/csi"
	"repro/internal/trace"
)

// PacketSource produces CSI packets to stream (e.g. a simulator-backed
// receiver, or a trace file replay).
type PacketSource interface {
	// Next returns the next packet, or an error; io.EOF ends the stream
	// cleanly.
	Next() (csi.Packet, error)
}

// DefaultWriteTimeout is the per-packet write deadline a Server applies
// when ServerConfig.WriteTimeout is zero. A consumer that cannot drain a
// packet within this window is evicted rather than allowed to wedge a
// serve goroutine indefinitely.
const DefaultWriteTimeout = 30 * time.Second

// Server streams CSI from a source to every connecting collector. Each
// connection gets an independent replay of the source factory's stream.
type Server struct {
	listener net.Listener
	// NewSource builds a fresh packet source per connection.
	newSource func() (PacketSource, error)
	numAnt    int
	carrier   float64
	interval  time.Duration
	writeTO   time.Duration
	wrapConn  func(net.Conn) (net.Conn, error)

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	evicted int
	wg      sync.WaitGroup
	// done interrupts serve-loop throttle sleeps on Close so shutdown is
	// never held hostage by a long emission interval.
	done chan struct{}
}

// ServerConfig configures a streaming server.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// NewSource builds a packet source per connection.
	NewSource func() (PacketSource, error)
	// NumAnt and Carrier describe the stream for the trace header.
	NumAnt  int
	Carrier float64
	// Interval throttles packet emission (the paper's 10 ms cadence);
	// zero streams as fast as possible.
	Interval time.Duration
	// WriteTimeout is the per-packet write deadline; a consumer that stalls
	// past it is evicted (its connection closed). Zero selects
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// WrapConn, when non-nil, wraps every accepted connection before
	// serving — the hook the fault-injection layer (internal/faults) and
	// instrumentation plug into. Returning an error drops the connection.
	WrapConn func(net.Conn) (net.Conn, error)
}

// NewServer starts listening and serving. Stop with Close.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NewSource == nil {
		return nil, fmt.Errorf("transport: nil source factory")
	}
	if cfg.NumAnt < 1 {
		return nil, fmt.Errorf("transport: need at least one antenna, got %d", cfg.NumAnt)
	}
	if cfg.Carrier <= 0 {
		return nil, fmt.Errorf("transport: non-positive carrier %v", cfg.Carrier)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	writeTO := cfg.WriteTimeout
	if writeTO == 0 {
		writeTO = DefaultWriteTimeout
	}
	s := &Server{
		listener:  ln,
		newSource: cfg.NewSource,
		numAnt:    cfg.NumAnt,
		carrier:   cfg.Carrier,
		interval:  cfg.Interval,
		writeTO:   writeTO,
		wrapConn:  cfg.WrapConn,
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	out := conn
	if s.wrapConn != nil {
		var err error
		out, err = s.wrapConn(conn)
		if err != nil {
			return
		}
	}
	source, err := s.newSource()
	if err != nil {
		return
	}
	w, err := trace.NewWriter(out, s.numAnt, s.carrier)
	if err != nil {
		return
	}
	for {
		pkt, err := source.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			return
		}
		if s.writeTO > 0 {
			// Slow-consumer eviction: a collector that cannot drain one
			// packet within the window is cut loose instead of wedging this
			// goroutine (and, through it, Close).
			_ = conn.SetWriteDeadline(time.Now().Add(s.writeTO))
		}
		if err := w.WritePacket(pkt); err != nil {
			if isTimeout(err) {
				s.mu.Lock()
				s.evicted++
				s.mu.Unlock()
			}
			return // collector went away (or was evicted)
		}
		if s.interval > 0 {
			select {
			case <-time.After(s.interval):
			case <-s.done:
				return
			}
		}
	}
}

// isTimeout reports whether err stems from a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Evicted reports how many slow consumers have been evicted on write
// deadline expiry.
func (s *Server) Evicted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Close stops accepting, closes every live connection and waits for the
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Collect dials a streaming server and reads up to maxPackets packets (0 =
// until the server closes the stream). The context cancels the collection.
// It is the single-connection convenience path; use Collector for
// reconnection, backoff, deduplication and read deadlines.
func Collect(ctx context.Context, addr string, maxPackets int) (*csi.Capture, error) {
	c, err := NewCollector(CollectorConfig{Addr: addr, MaxPackets: maxPackets})
	if err != nil {
		return nil, err
	}
	capture, _, err := c.Run(ctx)
	if err != nil {
		return capture, err
	}
	return capture, nil
}

// CaptureSource replays an in-memory capture as a PacketSource.
type CaptureSource struct {
	capture *csi.Capture
	next    int
}

// NewCaptureSource wraps a capture for replay.
func NewCaptureSource(c *csi.Capture) *CaptureSource {
	return &CaptureSource{capture: c}
}

// Next implements PacketSource.
func (cs *CaptureSource) Next() (csi.Packet, error) {
	if cs.next >= cs.capture.Len() {
		return csi.Packet{}, io.EOF
	}
	pkt := cs.capture.Packets[cs.next]
	cs.next++
	return pkt, nil
}
