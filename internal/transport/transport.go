// Package transport streams CSI packets between a measurement node (the
// laptop with the NIC, or its simulated stand-in) and a collector over TCP,
// replacing the paper's local CSI Tool capture with a distributed one.
//
// Wire protocol: the trace format of internal/trace, verbatim, over a TCP
// stream — one header, then framed records. Anything that can read a
// .csitrace file can read a live socket and vice versa.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/csi"
	"repro/internal/trace"
)

// PacketSource produces CSI packets to stream (e.g. a simulator-backed
// receiver, or a trace file replay).
type PacketSource interface {
	// Next returns the next packet, or an error; io.EOF ends the stream
	// cleanly.
	Next() (csi.Packet, error)
}

// Server streams CSI from a source to every connecting collector. Each
// connection gets an independent replay of the source factory's stream.
type Server struct {
	listener net.Listener
	// NewSource builds a fresh packet source per connection.
	newSource func() (PacketSource, error)
	numAnt    int
	carrier   float64
	interval  time.Duration

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerConfig configures a streaming server.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// NewSource builds a packet source per connection.
	NewSource func() (PacketSource, error)
	// NumAnt and Carrier describe the stream for the trace header.
	NumAnt  int
	Carrier float64
	// Interval throttles packet emission (the paper's 10 ms cadence);
	// zero streams as fast as possible.
	Interval time.Duration
}

// NewServer starts listening and serving. Stop with Close.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NewSource == nil {
		return nil, fmt.Errorf("transport: nil source factory")
	}
	if cfg.NumAnt < 1 {
		return nil, fmt.Errorf("transport: need at least one antenna, got %d", cfg.NumAnt)
	}
	if cfg.Carrier <= 0 {
		return nil, fmt.Errorf("transport: non-positive carrier %v", cfg.Carrier)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		listener:  ln,
		newSource: cfg.NewSource,
		numAnt:    cfg.NumAnt,
		carrier:   cfg.Carrier,
		interval:  cfg.Interval,
		conns:     make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	source, err := s.newSource()
	if err != nil {
		return
	}
	w, err := trace.NewWriter(conn, s.numAnt, s.carrier)
	if err != nil {
		return
	}
	for {
		pkt, err := source.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			return
		}
		if err := w.WritePacket(pkt); err != nil {
			return // collector went away
		}
		if s.interval > 0 {
			time.Sleep(s.interval)
		}
	}
}

// Close stops accepting, closes every live connection and waits for the
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Collect dials a streaming server and reads up to maxPackets packets (0 =
// until the server closes the stream). The context cancels the collection.
func Collect(ctx context.Context, addr string, maxPackets int) (*csi.Capture, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()
	// Unblock reads when the context dies.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	r, err := trace.NewReader(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	var cap csi.Capture
	for maxPackets == 0 || cap.Len() < maxPackets {
		pkt, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if ctx.Err() != nil {
				return &cap, fmt.Errorf("transport: collection cancelled: %w", ctx.Err())
			}
			return &cap, fmt.Errorf("transport: reading stream: %w", err)
		}
		cap.Packets = append(cap.Packets, pkt)
	}
	return &cap, nil
}

// CaptureSource replays an in-memory capture as a PacketSource.
type CaptureSource struct {
	capture *csi.Capture
	next    int
}

// NewCaptureSource wraps a capture for replay.
func NewCaptureSource(c *csi.Capture) *CaptureSource {
	return &CaptureSource{capture: c}
}

// Next implements PacketSource.
func (cs *CaptureSource) Next() (csi.Packet, error) {
	if cs.next >= cs.capture.Len() {
		return csi.Packet{}, io.EOF
	}
	pkt := cs.capture.Packets[cs.next]
	cs.next++
	return pkt, nil
}
