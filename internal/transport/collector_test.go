package transport

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/faults"
	"repro/internal/testutil"
)

// syntheticCapture builds n packets without the simulator (cheap enough for
// buffer-filling tests).
func syntheticCapture(t *testing.T, n, numAnt int) *csi.Capture {
	t.Helper()
	c := &csi.Capture{}
	for i := 0; i < n; i++ {
		m, err := csi.NewMatrix(numAnt)
		if err != nil {
			t.Fatal(err)
		}
		for ant := range m.Values {
			for sub := range m.Values[ant] {
				m.Values[ant][sub] = complex(float64(i+1), float64(ant+sub))
			}
		}
		c.Packets = append(c.Packets, csi.Packet{
			Seq: uint32(i), Timestamp: time.Unix(0, int64(i)), Carrier: 5.32e9, CSI: m,
		})
	}
	return c
}

func assertComplete(t *testing.T, got *csi.Capture, want int) {
	t.Helper()
	if got.Len() != want {
		t.Fatalf("collected %d packets, want %d", got.Len(), want)
	}
	seen := map[uint32]bool{}
	for _, p := range got.Packets {
		if seen[p.Seq] {
			t.Fatalf("duplicate seq %d delivered", p.Seq)
		}
		seen[p.Seq] = true
	}
	for i := 0; i < want; i++ {
		if !seen[uint32(i)] {
			t.Errorf("seq %d missing", i)
		}
	}
}

func TestCollectorReconnectsAfterMidStreamDisconnect(t *testing.T) {
	const n = 30
	orig := syntheticCapture(t, n, 3)
	var connCount atomic.Int64
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return NewCaptureSource(orig), nil },
		NumAnt:    3,
		Carrier:   5.32e9,
		WrapConn: func(c net.Conn) (net.Conn, error) {
			// First connection dies after ~6 records; later ones are clean.
			if connCount.Add(1) == 1 {
				return faults.WrapConn(c, faults.Profile{DisconnectAfterBytes: 9000}, 1)
			}
			return c, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	col, err := NewCollector(CollectorConfig{
		Addr:           srv.Addr().String(),
		MaxPackets:     n,
		MaxRetries:     3,
		InitialBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := col.Run(context.Background())
	if err != nil {
		t.Fatalf("collection failed: %v (stats %+v)", err, stats)
	}
	assertComplete(t, got, n)
	if stats.Reconnects < 1 {
		t.Errorf("stats = %+v, want at least one reconnect", stats)
	}
	if stats.Duplicates == 0 {
		t.Errorf("stats = %+v, want duplicates from the replayed stream prefix", stats)
	}
}

func TestCollectorDedupesInjectedDuplicates(t *testing.T) {
	const n = 40
	orig := syntheticCapture(t, n, 2)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (PacketSource, error) {
			return faults.WrapSource(NewCaptureSource(orig), faults.Profile{DupProb: 0.3}, 7)
		},
		NumAnt:  2,
		Carrier: 5.32e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	col, err := NewCollector(CollectorConfig{Addr: srv.Addr().String(), MaxPackets: n})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := col.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, got, n)
	if stats.Duplicates == 0 {
		t.Errorf("stats = %+v, want dropped duplicates", stats)
	}
}

func TestCollectorSkipsCorruptRecordsAndCompletes(t *testing.T) {
	const n = 25
	orig := syntheticCapture(t, n, 2)
	var connCount atomic.Int64
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return NewCaptureSource(orig), nil },
		NumAnt:    2,
		Carrier:   5.32e9,
		WrapConn: func(c net.Conn) (net.Conn, error) {
			// Every connection corrupts a few records; the per-connection
			// seed varies the schedule so retries fill the gaps.
			return faults.WrapConn(c, faults.Profile{CorruptProb: 0.1}, 100+connCount.Add(1))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	col, err := NewCollector(CollectorConfig{
		Addr:           srv.Addr().String(),
		MaxPackets:     n,
		MaxRetries:     8,
		InitialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := col.Run(context.Background())
	if err != nil {
		t.Fatalf("collection failed: %v (stats %+v)", err, stats)
	}
	if got.Len() != n {
		t.Fatalf("collected %d packets, want %d (stats %+v)", got.Len(), n, stats)
	}
	if stats.CRCSkipped == 0 {
		t.Errorf("stats = %+v, want skipped corrupt records", stats)
	}
}

func TestCollectorReadTimeoutFailsStalledStream(t *testing.T) {
	orig := syntheticCapture(t, 5, 2)
	// A server that stalls 30 s between packets.
	srv := startServer(t, orig, 30*time.Second)
	col, err := NewCollector(CollectorConfig{
		Addr:           srv.Addr().String(),
		MaxPackets:     5,
		MaxRetries:     1,
		InitialBackoff: time.Millisecond,
		ReadTimeout:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, stats, err := col.Run(context.Background())
	if err == nil {
		t.Fatal("stalled stream should exhaust retries and fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read deadline did not bound the stall: %v", elapsed)
	}
	if got.Len() == 0 {
		t.Error("the packet sent before the stall should have been kept")
	}
	if stats.Attempts != 2 {
		t.Errorf("stats = %+v, want 2 attempts", stats)
	}
}

func TestCollectorOnPacketStreamsWithoutRetention(t *testing.T) {
	const n = 25
	orig := syntheticCapture(t, n, 2)
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return NewCaptureSource(orig), nil },
		NumAnt:    2,
		Carrier:   5.32e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var delivered []uint32
	col, err := NewCollector(CollectorConfig{
		Addr:             srv.Addr().String(),
		MaxPackets:       n,
		DiscardDelivered: true,
		OnPacket: func(p csi.Packet) error {
			delivered = append(delivered, p.Seq)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := col.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("DiscardDelivered retained %d packets", got.Len())
	}
	if stats.Packets != n || len(delivered) != n {
		t.Errorf("stats.Packets=%d delivered=%d, want %d", stats.Packets, len(delivered), n)
	}
	for i, seq := range delivered {
		if seq != uint32(i) {
			t.Fatalf("delivered[%d] = seq %d, want %d", i, seq, i)
		}
	}
}

func TestCollectorOnPacketErrorAbortsWithoutRetry(t *testing.T) {
	const n = 30
	orig := syntheticCapture(t, n, 2)
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return NewCaptureSource(orig), nil },
		NumAnt:    2,
		Carrier:   5.32e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	sentinel := context.Canceled
	count := 0
	col, err := NewCollector(CollectorConfig{
		Addr:       srv.Addr().String(),
		MaxPackets: n,
		MaxRetries: 5,
		OnPacket: func(p csi.Packet) error {
			count++
			if count == 7 {
				return sentinel
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := col.Run(context.Background())
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if stats.Attempts != 1 {
		t.Errorf("attempts = %d: a callback abort must not be retried", stats.Attempts)
	}
	if count != 7 {
		t.Errorf("callback ran %d times after aborting at 7", count)
	}
}

func TestCollectorDedupWindowBoundsMemory(t *testing.T) {
	const n = 50
	orig := syntheticCapture(t, n, 2)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (PacketSource, error) {
			return faults.WrapSource(NewCaptureSource(orig), faults.Profile{DupProb: 0.3}, 11)
		},
		NumAnt:  2,
		Carrier: 5.32e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	col, err := NewCollector(CollectorConfig{
		Addr:        srv.Addr().String(),
		MaxPackets:  n,
		DedupWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := col.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Injected duplicates are back-to-back, so an 8-seq window still drops
	// them all and the collection completes exactly.
	assertComplete(t, got, n)
	if stats.Duplicates == 0 {
		t.Errorf("stats = %+v, want dropped duplicates", stats)
	}
	if len(col.seen) > 8 || len(col.seenRing) > 8 {
		t.Errorf("dedup memory grew past the window: map=%d ring=%d", len(col.seen), len(col.seenRing))
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(CollectorConfig{}); err == nil {
		t.Error("empty address should error")
	}
	if _, err := NewCollector(CollectorConfig{Addr: "x", MaxPackets: -1}); err == nil {
		t.Error("negative MaxPackets should error")
	}
}

func TestServerEvictsSlowConsumer(t *testing.T) {
	// A consumer that never reads must be evicted on the write deadline,
	// not wedge the serve goroutine.
	orig := syntheticCapture(t, 5000, 3)
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return NewCaptureSource(orig), nil },
		NumAnt:    3,
		Carrier:   5.32e9,
		// Shrink the kernel send buffer so the stall shows up quickly.
		WrapConn: func(c net.Conn) (net.Conn, error) {
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetWriteBuffer(4 << 10)
			}
			return c, nil
		},
		WriteTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	// Read nothing. The server must evict us.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Evicted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerCloseNoGoroutineLeak(t *testing.T) {
	// The Close/accept race audit: churning connections through servers and
	// closing them mid-flight must not leak goroutines.
	leakCheck := testutil.LeakCheck(t, 2)
	for i := 0; i < 5; i++ {
		orig := syntheticCapture(t, 50, 2)
		srv, err := NewServer(ServerConfig{
			Addr:      "127.0.0.1:0",
			NewSource: func() (PacketSource, error) { return NewCaptureSource(orig), nil },
			NumAnt:    2,
			Carrier:   5.32e9,
			Interval:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Open a few collectors and close the server while they stream.
		for j := 0; j < 3; j++ {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_, _ = Collect(ctx, srv.Addr().String(), 0)
			}()
		}
		time.Sleep(20 * time.Millisecond)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Give the collector goroutines a moment to unwind, then compare.
	leakCheck()
}
