package transport

import (
	"math/rand"
	"testing"
	"time"
)

// TestCollectorBackoffSchedule pins the deterministic reconnect-delay
// sequence for each jitter mode. The "equal" rows also pin backward
// compatibility: they must equal the historical hand-rolled schedule
// (base + rng.Float64()*base/2, one draw per retry) for the same seed.
func TestCollectorBackoffSchedule(t *testing.T) {
	const (
		initial = 100 * time.Millisecond
		max     = 800 * time.Millisecond
	)
	legacy := func(seed int64, n int) []time.Duration {
		// The pre-refactor Collector.Run loop, verbatim.
		rng := rand.New(rand.NewSource(seed))
		backoff := initial
		var out []time.Duration
		for i := 0; i < n; i++ {
			out = append(out, backoff+time.Duration(rng.Float64()*float64(backoff)/2))
			backoff *= 2
			if backoff > max {
				backoff = max
			}
		}
		return out
	}

	cases := []struct {
		name string
		cfg  CollectorConfig
		want []time.Duration
	}{
		{
			name: "equal jitter matches legacy seed 1",
			cfg:  CollectorConfig{Addr: "x", InitialBackoff: initial, MaxBackoff: max, JitterSeed: 1},
			want: legacy(1, 6),
		},
		{
			name: "equal jitter matches legacy seed 42",
			cfg:  CollectorConfig{Addr: "x", InitialBackoff: initial, MaxBackoff: max, JitterSeed: 42},
			want: legacy(42, 6),
		},
		{
			name: "jitter cap bounds the random component",
			cfg: CollectorConfig{Addr: "x", InitialBackoff: initial, MaxBackoff: max,
				JitterSeed: 1, JitterCap: 10 * time.Millisecond},
			// Base still doubles to the cap; jitter may add at most 10ms.
			want: nil, // checked by envelope below
		},
		{
			name: "full jitter stays under base",
			cfg: CollectorConfig{Addr: "x", InitialBackoff: initial, MaxBackoff: max,
				JitterSeed: 7, FullJitter: true},
			want: nil, // checked by envelope below
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col, err := NewCollector(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			bases := []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
				800 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond,
			}
			for i, base := range bases {
				got := col.backoff.Delay(i)
				if tc.want != nil {
					if got != tc.want[i] {
						t.Errorf("retry %d: delay %v, want %v", i, got, tc.want[i])
					}
					continue
				}
				switch {
				case tc.cfg.FullJitter:
					if got < 0 || got >= base {
						t.Errorf("retry %d: full-jitter delay %v outside [0, %v)", i, got, base)
					}
				default: // capped equal jitter
					lo, hi := base, base+tc.cfg.JitterCap
					if got < lo || got > hi {
						t.Errorf("retry %d: capped delay %v outside [%v, %v]", i, got, lo, hi)
					}
				}
			}
		})
	}
}

// TestCollectorBackoffSameSeedSameSchedule pins run-to-run determinism
// for every mode, full jitter included.
func TestCollectorBackoffSameSeedSameSchedule(t *testing.T) {
	for _, full := range []bool{false, true} {
		cfg := CollectorConfig{Addr: "x", InitialBackoff: 50 * time.Millisecond,
			MaxBackoff: time.Second, JitterSeed: 99, FullJitter: full}
		a, err := NewCollector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCollector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if da, db := a.backoff.Delay(i), b.backoff.Delay(i); da != db {
				t.Fatalf("full=%v retry %d: %v vs %v with identical seeds", full, i, da, db)
			}
		}
	}
}
