package transport_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/faults"
	"repro/internal/material"
	"repro/internal/simulate"
	"repro/internal/transport"
)

// chaosProfile is the packet-fault schedule the chaos test streams through:
// ≥10% loss, duplication, reordering, and a dead antenna 2 on every packet.
func chaosProfile() faults.Profile {
	return faults.Profile{
		Name:         "chaos-test",
		DropProb:     0.12,
		DupProb:      0.05,
		ReorderProb:  0.05,
		DeadAntennas: []int{2},
	}
}

// chaosCollect streams a capture through a fault-injecting server — packet
// loss/dup/reorder plus a dead antenna from the profile, and one forced
// mid-stream disconnect on the first connection — and collects it back with
// the resilient collector. Fully deterministic for a given seed.
func chaosCollect(t *testing.T, orig *csi.Capture, carrier float64, seed int64) (*csi.Capture, transport.CollectStats) {
	t.Helper()
	var sourceCount, connCount atomic.Int64
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			// A different sub-seed per connection: a retry must not re-drop
			// exactly the packets the last attempt lost, or the collection
			// could never complete.
			return faults.WrapSource(transport.NewCaptureSource(orig),
				chaosProfile(), seed+sourceCount.Add(1))
		},
		NumAnt:  orig.NumAntennas(),
		Carrier: carrier,
		WrapConn: func(c net.Conn) (net.Conn, error) {
			if connCount.Add(1) == 1 {
				// One forced mid-stream disconnect: the first connection dies
				// after ~5 records (3-antenna records are 1456 bytes).
				return faults.WrapConn(c, faults.Profile{DisconnectAfterBytes: 8 << 10}, seed)
			}
			return c, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	col, err := transport.NewCollector(transport.CollectorConfig{
		Addr:           srv.Addr().String(),
		MaxPackets:     orig.Len(),
		MaxRetries:     12,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		JitterSeed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := col.Run(context.Background())
	if err != nil {
		t.Fatalf("chaos collection failed: %v (stats %+v)", err, stats)
	}
	return got, stats
}

// TestChaosCollectionPreservesIdentification is the end-to-end acceptance
// test: every target capture of a 10-liquid evaluation set is streamed
// through the chaos schedule (≥10% packet loss, one forced mid-stream
// disconnect, one dead antenna), collected resiliently, and identified in
// degraded mode. The collection must complete despite the faults, and the
// 10-liquid accuracy must stay within 5 points (one sample in 20) of the
// fault-free run on the same sessions.
func TestChaosCollectionPreservesIdentification(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos end-to-end test")
	}
	// The paper's ten evaluation liquids (Sec. IV).
	liquids := []string{
		material.Vinegar, material.Honey, material.Soy, material.Milk,
		material.Pepsi, material.Liquor, material.PureWater, material.Oil,
		material.Coke, material.SweetWater,
	}

	// Train on clean simulated sessions.
	var sessions []*csi.Session
	var labels []string
	for li, name := range liquids {
		sc := simulate.Default()
		m, err := material.PaperDatabase().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
		set, err := simulate.TrialSet(sc, 3, int64(1000+li*100))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}

	// Evaluate 2 held-out sessions per liquid, fault-free vs chaos.
	const evalPerLiquid = 2
	total, cleanCorrect, chaosCorrect := 0, 0, 0
	reconnects := 0
	for li, name := range liquids {
		for k := 0; k < evalPerLiquid; k++ {
			sc := simulate.Default()
			m, err := material.PaperDatabase().Get(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Liquid = &m
			seed := int64(5000 + li*10 + k)
			session, err := simulate.Session(sc, seed)
			if err != nil {
				t.Fatal(err)
			}
			total++

			cleanLabel, err := id.Identify(session)
			if err != nil {
				t.Fatalf("%s: clean identify: %v", name, err)
			}
			if cleanLabel == name {
				cleanCorrect++
			}

			collected, stats := chaosCollect(t, &session.Target, session.Carrier, seed)
			if collected.Len() != session.Target.Len() {
				t.Fatalf("%s: chaos collection incomplete: %d/%d packets (stats %+v)",
					name, collected.Len(), session.Target.Len(), stats)
			}
			reconnects += stats.Reconnects

			chaosSession := &csi.Session{
				Carrier:  session.Carrier,
				Baseline: session.Baseline,
				Target:   *collected,
			}
			res, err := id.IdentifyRobust(chaosSession)
			if err != nil {
				t.Fatalf("%s: degraded identify: %v (stats %+v)", name, err, stats)
			}
			if res.Material == name {
				chaosCorrect++
			}
			if !res.Degradation.Degraded {
				t.Errorf("%s: chaos session not flagged degraded: %+v", name, res.Degradation)
			}
			if len(res.Degradation.DeadAntennas) != 1 || res.Degradation.DeadAntennas[0] != 2 {
				t.Errorf("%s: dead antennas = %v, want [2]", name, res.Degradation.DeadAntennas)
			}
		}
	}
	// Every collection's first connection is force-disconnected, so every
	// one must have reconnected at least once.
	if reconnects < total {
		t.Errorf("%d reconnects across %d collections, want ≥ %d (one forced disconnect each)",
			reconnects, total, total)
	}
	cleanAcc := 100 * float64(cleanCorrect) / float64(total)
	chaosAcc := 100 * float64(chaosCorrect) / float64(total)
	t.Logf("fault-free accuracy %.0f%% (%d/%d), chaos accuracy %.0f%% (%d/%d)",
		cleanAcc, cleanCorrect, total, chaosAcc, chaosCorrect, total)
	if cleanAcc-chaosAcc > 5 {
		t.Errorf("chaos accuracy %.0f%% more than 5 points below fault-free %.0f%%", chaosAcc, cleanAcc)
	}
}
