package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/csi"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// CollectorConfig configures a resilient collector.
type CollectorConfig struct {
	// Addr is the streaming server address.
	Addr string
	// MaxPackets is how many distinct packets to collect; 0 collects until
	// the server ends the stream cleanly.
	MaxPackets int
	// MaxRetries is how many reconnect attempts follow a failed or short
	// stream before giving up. Zero disables reconnection.
	MaxRetries int
	// InitialBackoff is the first reconnect delay; it doubles per attempt
	// up to MaxBackoff, with up to 50% random jitter on top. Zero selects
	// 100 ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero selects 3 s.
	MaxBackoff time.Duration
	// FullJitter switches the reconnect delay from "base + up to 50%"
	// (the default, historical schedule) to AWS-style full jitter: the
	// whole delay drawn uniformly from [0, base). Fleets of collectors
	// redialling one server desynchronise fastest this way.
	FullJitter bool
	// JitterCap, when positive, bounds the random jitter component so a
	// long base delay cannot smear even longer. Zero leaves it uncapped.
	JitterCap time.Duration
	// ReadTimeout is the per-read deadline on the stream; a server that
	// stalls past it fails the connection (and triggers a reconnect when
	// retries remain). Zero disables the deadline.
	ReadTimeout time.Duration
	// MaxConsecutiveCRC bounds how many back-to-back corrupt records are
	// skipped before the connection is declared framing-broken and
	// redialled: with no per-record magic, a byte slipped from the stream
	// misaligns every subsequent record, and only a fresh connection
	// recovers. Zero selects 3.
	MaxConsecutiveCRC int
	// JitterSeed seeds the backoff jitter so chaos tests are reproducible.
	// Zero selects 1.
	JitterSeed int64
	// OnPacket, when non-nil, is invoked synchronously for every distinct
	// (post-dedupe) packet as it arrives — the streaming-delivery hook the
	// monitor hub multiplexes collectors through. The callback runs on the
	// collector's goroutine; a returned error aborts the collection
	// immediately (no reconnect attempts) and surfaces from Run.
	OnPacket func(csi.Packet) error
	// DiscardDelivered, when true, stops the collector retaining packets in
	// the returned capture — every distinct packet is still counted (and
	// delivered to OnPacket), but a long-lived unbounded stream no longer
	// grows memory with its length. The capture Run returns stays empty.
	DiscardDelivered bool
	// DedupWindow, when positive, bounds the duplicate-detection memory to
	// the most recent N sequence numbers instead of every sequence ever
	// seen. A long-lived monitoring stream needs bounded memory more than
	// exactly-once delivery: a packet replayed after falling out of the
	// window is delivered (and counted) again. Zero keeps the full map —
	// bit-identical to the historical behaviour.
	DedupWindow int
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 3 * time.Second
	}
	if c.MaxConsecutiveCRC <= 0 {
		c.MaxConsecutiveCRC = 3
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// CollectStats is the collection's damage and recovery report.
type CollectStats struct {
	// Packets is the number of distinct packets delivered.
	Packets int
	// Duplicates is how many packets were dropped as already-seen (packet
	// duplication on the link, or replayed packets after a reconnect).
	Duplicates int
	// CRCSkipped is how many corrupt records were skipped.
	CRCSkipped int
	// Reconnects is how many times the collector redialled after a failure.
	Reconnects int
	// Attempts is the total number of connection attempts.
	Attempts int
}

// Collector dials a streaming server and survives the faults real CSI
// collection hits: it reconnects with exponential backoff + jitter, applies
// per-read deadlines, skips corrupt records (bounded, then redials), and
// resumes by sequence number after a reconnect — packets already collected
// are deduplicated, so a server that replays its stream from the start does
// not double-count.
type Collector struct {
	cfg     CollectorConfig
	backoff *resilience.Backoff
	seen    map[uint32]struct{}
	// seenRing is the eviction order of the bounded dedupe window
	// (cfg.DedupWindow > 0): the oldest remembered seq is forgotten as each
	// new one arrives beyond the cap.
	seenRing []uint32
	seenNext int

	capture csi.Capture
	stats   CollectStats
}

// NewCollector builds a collector for the given configuration.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("transport: empty collector address")
	}
	if cfg.MaxPackets < 0 || cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("transport: negative MaxPackets/MaxRetries")
	}
	if cfg.DedupWindow < 0 {
		return nil, fmt.Errorf("transport: negative DedupWindow")
	}
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:     cfg,
		backoff: resilience.NewBackoff(cfg.backoffConfig()),
		seen:    make(map[uint32]struct{}),
	}, nil
}

// backoffConfig maps the collector knobs onto the shared resilience
// schedule. The default mode reproduces the historical delay sequence
// bit-for-bit: base + up to 50% jitter, one rng draw per retry.
func (c CollectorConfig) backoffConfig() resilience.BackoffConfig {
	mode := resilience.JitterEqual
	if c.FullJitter {
		mode = resilience.JitterFull
	}
	return resilience.BackoffConfig{
		Initial:   c.InitialBackoff,
		Max:       c.MaxBackoff,
		Jitter:    mode,
		JitterCap: c.JitterCap,
		Seed:      c.JitterSeed,
	}
}

// Run collects until done, the retry budget is spent, or the context dies.
// The capture holds whatever was collected either way (possibly partial on
// error), packets in first-seen order.
func (c *Collector) Run(ctx context.Context) (*csi.Capture, CollectStats, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.stats.Reconnects++
			// Jittered exponential backoff: reconnect storms from many
			// collectors must not synchronise.
			delay := c.backoff.Delay(attempt - 1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return &c.capture, c.stats, fmt.Errorf("transport: collection cancelled: %w", ctx.Err())
			}
		}
		c.stats.Attempts++
		done, err := c.collectOnce(ctx)
		if done {
			return &c.capture, c.stats, nil
		}
		if ctx.Err() != nil {
			return &c.capture, c.stats, fmt.Errorf("transport: collection cancelled: %w", ctx.Err())
		}
		var abort *callbackAbort
		if errors.As(err, &abort) {
			// The delivery callback rejected the stream: that is the
			// consumer's decision, not a link fault — no reconnects.
			return &c.capture, c.stats, abort.err
		}
		lastErr = err
		if attempt >= c.cfg.MaxRetries {
			break
		}
	}
	return &c.capture, c.stats, fmt.Errorf("transport: %d/%d packets after %d attempts: %w",
		c.stats.Packets, c.cfg.MaxPackets, c.stats.Attempts, lastErr)
}

// callbackAbort wraps an OnPacket error so Run can tell a consumer-initiated
// abort from a link failure (which is retried).
type callbackAbort struct{ err error }

func (e *callbackAbort) Error() string { return e.err.Error() }
func (e *callbackAbort) Unwrap() error { return e.err }

// target reports whether the packet goal has been met.
func (c *Collector) target() bool {
	return c.cfg.MaxPackets > 0 && c.stats.Packets >= c.cfg.MaxPackets
}

// collectOnce runs one connection's worth of collection. done means the
// overall collection goal is met (count reached, or clean end-of-stream in
// unbounded mode); otherwise err says why the connection ended early.
func (c *Collector) collectOnce(ctx context.Context) (done bool, err error) {
	if c.target() {
		return true, nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.cfg.Addr)
	if err != nil {
		return false, fmt.Errorf("transport: dial %s: %w", c.cfg.Addr, err)
	}
	defer func() { _ = conn.Close() }()
	// Unblock reads when the context dies.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()

	r, err := trace.NewReader(&deadlineReader{conn: conn, timeout: c.cfg.ReadTimeout})
	if err != nil {
		return false, fmt.Errorf("transport: handshake: %w", err)
	}
	consecutiveCRC := 0
	for !c.target() {
		pkt, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			if c.cfg.MaxPackets == 0 {
				return true, nil // clean end of an unbounded stream
			}
			return false, fmt.Errorf("transport: stream ended at %d/%d packets",
				c.stats.Packets, c.cfg.MaxPackets)
		}
		if errors.Is(err, trace.ErrCorrupt) {
			c.stats.CRCSkipped++
			consecutiveCRC++
			if consecutiveCRC > c.cfg.MaxConsecutiveCRC {
				return false, fmt.Errorf("transport: %d consecutive corrupt records, framing lost: %w",
					consecutiveCRC, trace.ErrCorrupt)
			}
			continue
		}
		if err != nil {
			return false, fmt.Errorf("transport: reading stream: %w", err)
		}
		consecutiveCRC = 0
		if _, dup := c.seen[pkt.Seq]; dup {
			c.stats.Duplicates++
			continue
		}
		c.remember(pkt.Seq)
		if !c.cfg.DiscardDelivered {
			c.capture.Packets = append(c.capture.Packets, pkt)
		}
		c.stats.Packets++
		if c.cfg.OnPacket != nil {
			if err := c.cfg.OnPacket(pkt); err != nil {
				return false, &callbackAbort{err}
			}
		}
	}
	return true, nil
}

// remember records a delivered sequence number for deduplication. With a
// bounded window configured, remembering a new seq forgets the oldest one
// once the window is full.
func (c *Collector) remember(seq uint32) {
	w := c.cfg.DedupWindow
	if w > 0 && len(c.seenRing) >= w {
		delete(c.seen, c.seenRing[c.seenNext])
		c.seenRing[c.seenNext] = seq
		c.seenNext = (c.seenNext + 1) % w
	} else if w > 0 {
		c.seenRing = append(c.seenRing, seq)
	}
	c.seen[seq] = struct{}{}
}

// deadlineReader arms a fresh read deadline before every Read so a stalled
// server cannot block the collector forever.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineReader) Read(p []byte) (int, error) {
	if d.timeout > 0 {
		_ = d.conn.SetReadDeadline(time.Now().Add(d.timeout))
	}
	return d.conn.Read(p)
}
