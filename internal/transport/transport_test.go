package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/simulate"
)

func testCapture(t *testing.T, packets int) *csi.Capture {
	t.Helper()
	sc := simulate.Default()
	sc.Packets = packets
	s, err := simulate.Session(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &s.Baseline
}

func startServer(t *testing.T, capture *csi.Capture, interval time.Duration) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return NewCaptureSource(capture), nil },
		NumAnt:    capture.NumAntennas(),
		Carrier:   5.32e9,
		Interval:  interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", NumAnt: 3, Carrier: 5e9}); err == nil {
		t.Error("nil source factory should error")
	}
	src := func() (PacketSource, error) { return NewCaptureSource(&csi.Capture{}), nil }
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", NewSource: src, NumAnt: 0, Carrier: 5e9}); err == nil {
		t.Error("0 antennas should error")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", NewSource: src, NumAnt: 1, Carrier: 0}); err == nil {
		t.Error("0 carrier should error")
	}
	if _, err := NewServer(ServerConfig{Addr: "256.0.0.1:99999", NewSource: src, NumAnt: 1, Carrier: 5e9}); err == nil {
		t.Error("bad address should error")
	}
}

func TestCollectFullStream(t *testing.T) {
	orig := testCapture(t, 15)
	srv := startServer(t, orig, 0)
	got, err := Collect(context.Background(), srv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("collected %d packets, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Packets {
		for ant := range orig.Packets[i].CSI.Values {
			for sub := range orig.Packets[i].CSI.Values[ant] {
				if got.Packets[i].CSI.Values[ant][sub] != orig.Packets[i].CSI.Values[ant][sub] {
					t.Fatalf("packet %d corrupted in transit", i)
				}
			}
		}
	}
}

func TestCollectMaxPackets(t *testing.T) {
	orig := testCapture(t, 20)
	srv := startServer(t, orig, 0)
	got, err := Collect(context.Background(), srv.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 7 {
		t.Fatalf("collected %d packets, want 7", got.Len())
	}
}

func TestCollectContextCancel(t *testing.T) {
	orig := testCapture(t, 5)
	// Slow stream: the context should cut collection short.
	srv := startServer(t, orig, 200*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Collect(ctx, srv.Addr().String(), 0)
	if err == nil {
		t.Fatal("cancelled collection should report an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestCollectDialFailure(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	if _, err := Collect(context.Background(), addr, 0); err == nil {
		t.Error("dialing a dead address should error")
	}
}

func TestMultipleCollectorsIndependentStreams(t *testing.T) {
	orig := testCapture(t, 10)
	srv := startServer(t, orig, 0)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	lens := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := Collect(context.Background(), srv.Addr().String(), 0)
			errs[i] = err
			if got != nil {
				lens[i] = got.Len()
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Errorf("collector %d: %v", i, errs[i])
		}
		if lens[i] != orig.Len() {
			t.Errorf("collector %d got %d packets, want %d", i, lens[i], orig.Len())
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := startServer(t, testCapture(t, 2), 0)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksCollector(t *testing.T) {
	orig := testCapture(t, 5)
	srv := startServer(t, orig, 500*time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := Collect(context.Background(), srv.Addr().String(), 0)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	_ = srv.Close()
	select {
	case <-done:
		// Collect returned (with or without error) — connection was torn
		// down as expected.
	case <-time.After(5 * time.Second):
		t.Fatal("collector blocked after server close")
	}
}

// errorSource fails after a few packets — the failure-injection test.
type errorSource struct {
	remaining int
}

func (e *errorSource) Next() (csi.Packet, error) {
	if e.remaining <= 0 {
		return csi.Packet{}, fmt.Errorf("nic melted")
	}
	e.remaining--
	m, err := csi.NewMatrix(2)
	if err != nil {
		return csi.Packet{}, err
	}
	return csi.Packet{Seq: uint32(e.remaining), Carrier: 5e9, CSI: m}, nil
}

func TestServerSourceFailureClosesStreamCleanly(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NewSource: func() (PacketSource, error) { return &errorSource{remaining: 3}, nil },
		NumAnt:    2,
		Carrier:   5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	got, err := Collect(context.Background(), srv.Addr().String(), 0)
	// The stream ends abruptly after 3 packets; collectors see a short
	// read or clean EOF depending on timing — either way the 3 packets
	// that made it must be intact.
	if got.Len() != 3 {
		t.Fatalf("got %d packets before failure, want 3 (err %v)", got.Len(), err)
	}
}

func TestCaptureSourceReplay(t *testing.T) {
	orig := testCapture(t, 4)
	src := NewCaptureSource(orig)
	for i := 0; i < 4; i++ {
		pkt, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Seq != orig.Packets[i].Seq {
			t.Errorf("packet %d out of order", i)
		}
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted source = %v, want io.EOF", err)
	}
}

func TestEndToEndWithThrottle(t *testing.T) {
	orig := testCapture(t, 5)
	srv := startServer(t, orig, 5*time.Millisecond)
	start := time.Now()
	got, err := Collect(context.Background(), srv.Addr().String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("got %d packets", got.Len())
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("throttle not applied")
	}
}
