// Package propagation synthesises the clean (pre-hardware) wireless channel
// of the paper's experiments: a LoS Wi-Fi link crossed by a liquid-filled
// container, plus environment multipath from scatterers.
//
// Per subcarrier frequency f and receive antenna i the channel is
//
//	H_i(f) = LoS_i(f) + Σ_s  g_s · e^{−j·2πf·d_s/c + jitter}
//
// where the LoS component is split into a penetrating part — attenuated and
// phase-shifted by the liquid per paper Eqs. 2–4 — and a bypass part that
// diffracts around the container (the first Fresnel zone of a 2 m link is
// wider than the beaker, so a material-independent component always
// arrives). The penetrating weight shrinks when the container diameter
// approaches the wavelength, reproducing the diffraction cliff of Fig. 19.
package propagation

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/csi"
	"repro/internal/geometry"
	"repro/internal/material"
)

// Environment describes a room's multipath character. The paper uses three:
// an empty hall, a lab and a library (low/medium/high multipath).
type Environment struct {
	Name string
	// NumScatterers is how many reflecting objects populate the room.
	NumScatterers int
	// ScattererGain is the mean amplitude of a scattered path relative to a
	// 1 m LoS path.
	ScattererGain float64
	// Jitter is the per-packet phase jitter (radians, std-dev) of each
	// scattered path — the temporal instability that makes multipath-hit
	// subcarriers noisy across packets.
	Jitter float64
	// Drift is the per-capture phase drift (radians, std-dev) of each
	// scattered path: the environment shifts slowly between the baseline
	// capture and the target capture minutes later (a door, a chair, a
	// person two rooms away). Unlike Jitter it does NOT average out over
	// the packets of a capture, so it biases ΔΘ/ΔΨ at multipath-heavy
	// subcarriers — the error the 'good subcarrier' selection dodges.
	Drift float64
	// RoomHalf is the half-extent of the square room in metres; scatterers
	// are placed uniformly inside it.
	RoomHalf float64
}

// The three evaluation environments (paper Sec. IV).
var (
	EnvHall    = Environment{Name: "hall", NumScatterers: 8, ScattererGain: 0.5, Jitter: 0.08, RoomHalf: 9}
	EnvLab     = Environment{Name: "lab", NumScatterers: 9, ScattererGain: 0.55, Jitter: 0.10, RoomHalf: 7}
	EnvLibrary = Environment{Name: "library", NumScatterers: 18, ScattererGain: 0.7, Jitter: 0.13, RoomHalf: 8}
)

// EnvironmentByName looks up one of the three paper environments.
func EnvironmentByName(name string) (Environment, error) {
	switch name {
	case "hall":
		return EnvHall, nil
	case "lab":
		return EnvLab, nil
	case "library":
		return EnvLibrary, nil
	default:
		return Environment{}, fmt.Errorf("propagation: unknown environment %q (want hall, lab or library)", name)
	}
}

// Target is the liquid-filled container crossing the LoS.
type Target struct {
	// Liquid is the material inside the container; nil means the empty
	// container (the baseline capture of Sec. IV).
	Liquid *material.Material
	// Container is the wall material.
	Container material.ContainerMaterial
	// Diameter of the container in metres.
	Diameter float64
	// LateralOffset displaces the container centre perpendicular to the
	// LoS, in metres (so different antennas see different chord lengths).
	LateralOffset float64
	// DriftPerPacket moves the container laterally by this many metres per
	// packet — the paper's Discussion failure mode ("when the target is
	// moving ... it is then challenging to perform material
	// identification"). Zero (the default) keeps the target static.
	DriftPerPacket float64
}

// Scene assembles a full measurement setup.
type Scene struct {
	Env Environment
	// LinkDistance separates transmitter and receiver in metres.
	LinkDistance float64
	// NumRxAntennas is the receiver antenna count (the 5300 has 3).
	NumRxAntennas int
	// AntennaSpacing between adjacent receive antennas, metres.
	AntennaSpacing float64
	// Carrier frequency in Hz.
	Carrier float64
	// Target on the LoS; nil for a free link.
	Target *Target
	// Interferer is an OPTIONAL second container elsewhere on the link —
	// the Discussion's multi-target limitation ("WiMi can only identify
	// one target at a time with one WiFi transmitter-receiver pair").
	Interferer *Target
	// InterfererPosition places the interferer along the link as a
	// fraction of LinkDistance (0 selects the default 0.3).
	InterfererPosition float64
	// PenetrationWeight is the fraction of LoS energy that would pass
	// through a very large target (the rest bypasses via diffraction).
	// Zero selects the default 1.0: for containers much wider than the
	// wavelength the paper's model (Eqs. 2-4) assumes the LoS fully
	// traverses the liquid; a bypass component only emerges in the
	// small-container diffraction regime via the diameter-dependent
	// weight.
	PenetrationWeight float64
	// PathScale scales the geometric chord length to the effective
	// penetration length (curved-wall refraction and partial Fresnel-zone
	// interception make the effective absorbing path much shorter than the
	// full chord — without this, 14 cm of water at 5 GHz would absorb
	// ~150 dB and nothing the paper measured would be visible). Zero
	// selects the default 0.05. The material feature Ω is a ratio of
	// attenuation to phase change and is invariant to this scale.
	PathScale float64
}

func (s Scene) withDefaults() Scene {
	if s.PenetrationWeight == 0 {
		s.PenetrationWeight = 1.0
	}
	if s.PathScale == 0 {
		s.PathScale = 0.05
	}
	if s.InterfererPosition == 0 {
		s.InterfererPosition = 0.3
	}
	return s
}

// Validate rejects impossible scenes. Zero-valued optional fields are
// validated in their defaulted form.
func (s Scene) Validate() error {
	s = s.withDefaults()
	switch {
	case s.LinkDistance <= 0:
		return fmt.Errorf("propagation: non-positive link distance %v", s.LinkDistance)
	case s.NumRxAntennas < 1:
		return fmt.Errorf("propagation: need at least one rx antenna, got %d", s.NumRxAntennas)
	case s.AntennaSpacing <= 0 && s.NumRxAntennas > 1:
		return fmt.Errorf("propagation: non-positive antenna spacing %v", s.AntennaSpacing)
	case s.Carrier <= 0:
		return fmt.Errorf("propagation: non-positive carrier %v", s.Carrier)
	case s.Env.NumScatterers < 0:
		return fmt.Errorf("propagation: negative scatterer count %d", s.Env.NumScatterers)
	}
	for _, t := range []*Target{s.Target, s.Interferer} {
		if t == nil {
			continue
		}
		if t.Diameter <= 0 {
			return fmt.Errorf("propagation: non-positive target diameter %v", t.Diameter)
		}
		if t.Diameter >= s.LinkDistance {
			return fmt.Errorf("propagation: target diameter %v exceeds link distance %v", t.Diameter, s.LinkDistance)
		}
	}
	if s.Interferer != nil && (s.InterfererPosition <= 0 || s.InterfererPosition >= 1) {
		return fmt.Errorf("propagation: interferer position %v outside (0,1)", s.InterfererPosition)
	}
	return nil
}

// scatterer is one fixed reflector in the room.
type scatterer struct {
	pos  geometry.Point
	gain float64
	// basePhase is a fixed random reflection phase.
	basePhase float64
	// excess is extra (reverberant) path length in metres beyond the
	// geometric single-bounce path. Real rooms have 30-80 ns RMS delay
	// spread; the excess makes the channel genuinely frequency-selective
	// across the 20 MHz band so 'good' and 'bad' subcarriers exist (Fig. 6).
	excess float64
}

// Channel is an instantiated scene ready to produce per-packet CSI. The
// scatterer constellation is drawn once at construction (the room does not
// rearrange between packets); only per-packet jitter varies.
type Channel struct {
	scene    Scene
	tx       geometry.Point
	antennas []geometry.Point
	scats    []scatterer
	// chords[i] is the geometric in-target path for antenna i (0 when no
	// target or the ray misses).
	chords []float64
	// interfererChords[i] is the same for the optional interferer.
	interfererChords []float64
	// captureDrift holds the per-scatterer phase offsets of the current
	// capture (see Environment.Drift). Zero-valued until BeginCapture.
	captureDrift []float64
	// packetCount numbers the packets sampled since the last BeginCapture,
	// driving the moving-target geometry.
	packetCount int
	// movingChords is per-packet scratch for the moving-target chord
	// lengths, reused across samples.
	movingChords []float64
	// static caches every per-(antenna, subcarrier) term that does not
	// change packet to packet, built once at construction.
	static staticTerms
}

// staticTerms precomputes the per-capture-invariant parts of the channel:
// per-subcarrier frequency geometry and the per-(antenna, subcarrier[,
// scatterer]) complex factors. Per packet only one unit phasor per
// scatterer remains to be computed (the jitter/drift rotation); everything
// else is a cached complex multiply-accumulate. Without this, Sample spends
// its time in ~NumSubcarriers × antennas × scatterers sin/cos calls per
// packet.
type staticTerms struct {
	freq, k, lambda []float64 // per subcarrier
	uTar, uInt      []float64 // penetration weights per subcarrier
	// los[i][sub] is the full static LoS term of antenna i — free-space
	// spread, target factor and interferer factor included.
	los [][]complex128
	// intf[i][sub] is the interferer factor alone (1 when absent), needed
	// separately when a moving target forces the LoS to be rebuilt.
	intf [][]complex128
	// scat[i][sIdx][sub] holds the static complex factor of scatterer sIdx:
	// gain/d · e^{j(−k(d+excess)+basePhase)}. Jitter and drift rotate it.
	// Scatterer-major layout keeps Sample's accumulation loop contiguous.
	scat [][][]complex128
	// rot is per-packet scratch, one unit phasor per scatterer. Sharing it
	// across packets is why a Channel must not be used concurrently.
	rot []complex128
}

// NewChannel places the transmitter at the origin, the receiver array at
// (LinkDistance, 0) facing back along the link, the target (if any) at
// mid-link with its lateral offset, and draws the scatterer constellation
// from rng.
func NewChannel(scene Scene, rng *rand.Rand) (*Channel, error) {
	scene = scene.withDefaults()
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("propagation: nil random source")
	}
	tx := geometry.Point{X: 0, Y: 0}
	center := geometry.Point{X: scene.LinkDistance, Y: 0}
	antennas, err := geometry.LinearArray(center, scene.NumRxAntennas, scene.AntennaSpacing, geometry.Point{X: -1, Y: 0})
	if err != nil {
		return nil, fmt.Errorf("propagation: placing antennas: %w", err)
	}
	ch := &Channel{scene: scene, tx: tx, antennas: antennas}
	for i := 0; i < scene.Env.NumScatterers; i++ {
		ch.scats = append(ch.scats, scatterer{
			pos: geometry.Point{
				X: (rng.Float64()*2 - 1) * scene.Env.RoomHalf,
				Y: (rng.Float64()*2 - 1) * scene.Env.RoomHalf,
			},
			gain:      scene.Env.ScattererGain * (0.5 + rng.Float64()),
			basePhase: rng.Float64() * 2 * math.Pi,
			excess:    rng.Float64() * 18, // up to ~60 ns of reverberation
		})
	}
	ch.chords = make([]float64, len(antennas))
	if t := scene.Target; t != nil {
		circle := geometry.Circle{
			Center: geometry.Point{X: scene.LinkDistance / 2, Y: t.LateralOffset},
			Radius: t.Diameter / 2,
		}
		for i, ant := range antennas {
			ch.chords[i] = circle.ChordLength(tx, ant)
		}
	}
	ch.interfererChords = make([]float64, len(antennas))
	if t := scene.Interferer; t != nil {
		circle := geometry.Circle{
			Center: geometry.Point{
				X: scene.LinkDistance * scene.InterfererPosition,
				Y: t.LateralOffset,
			},
			Radius: t.Diameter / 2,
		}
		for i, ant := range antennas {
			ch.interfererChords[i] = circle.ChordLength(tx, ant)
		}
	}
	if err := ch.precompute(); err != nil {
		return nil, err
	}
	return ch, nil
}

// precompute fills the static term cache; called once from NewChannel. It
// consumes no randomness.
func (ch *Channel) precompute() error {
	st := &ch.static
	nSub := csi.NumSubcarriers
	// One backing array per element type: a Channel is rebuilt for every
	// capture of every trial, so the cache itself must be cheap to allocate.
	fbuf := make([]float64, 5*nSub)
	st.freq, fbuf = fbuf[:nSub:nSub], fbuf[nSub:]
	st.k, fbuf = fbuf[:nSub:nSub], fbuf[nSub:]
	st.lambda, fbuf = fbuf[:nSub:nSub], fbuf[nSub:]
	st.uTar, fbuf = fbuf[:nSub:nSub], fbuf[nSub:]
	st.uInt = fbuf[:nSub:nSub]
	for sub := 0; sub < nSub; sub++ {
		f, err := csi.SubcarrierFreq(ch.scene.Carrier, sub)
		if err != nil {
			return fmt.Errorf("propagation: %w", err)
		}
		st.freq[sub] = f
		st.k[sub] = 2 * math.Pi * f / material.SpeedOfLight // free-space wavenumber
		st.lambda[sub] = material.SpeedOfLight / f
		st.uTar[sub] = ch.penetrationWeight(ch.scene.Target, st.lambda[sub])
		st.uInt[sub] = ch.penetrationWeight(ch.scene.Interferer, st.lambda[sub])
	}
	nAnt, nScat := len(ch.antennas), len(ch.scats)
	cbuf := make([]complex128, (2+nScat)*nAnt*nSub+nScat)
	next := func(n int) []complex128 {
		s := cbuf[:n:n]
		cbuf = cbuf[n:]
		return s
	}
	st.los = make([][]complex128, nAnt)
	st.intf = make([][]complex128, nAnt)
	st.scat = make([][][]complex128, nAnt)
	st.rot = next(nScat)
	for i, ant := range ch.antennas {
		st.los[i] = next(nSub)
		st.intf[i] = next(nSub)
		st.scat[i] = make([][]complex128, nScat)
		for sub := 0; sub < nSub; sub++ {
			f, k := st.freq[sub], st.k[sub]
			intf := complex(1, 0)
			if ch.scene.Interferer != nil && ch.interfererChords[i] > 0 {
				intf = ch.targetFactor(ch.scene.Interferer, f, k, st.uInt[sub], ch.interfererChords[i])
			}
			st.intf[i][sub] = intf
			st.los[i][sub] = ch.losComponent(f, k, st.uTar[sub], ch.chords[i], ant) * intf
		}
		// The scattered-path phase is affine in the 802.11n grid index
		// (f = carrier + idx·spacing), so each scatterer's factor is walked
		// across subcarriers by repeated multiplication with a unit step
		// phasor — two sin/cos per (antenna, scatterer) instead of one per
		// (antenna, scatterer, subcarrier).
		for sIdx, sc := range ch.scats {
			d := ch.tx.Dist(sc.pos) + sc.pos.Dist(ant)
			// Scattered path: amplitude falls with the geometric path
			// length; the reverberant excess only rotates phase.
			total := d + sc.excess
			cur := cmplx.Rect(sc.gain/d, -st.k[0]*total+sc.basePhase)
			step := cmplx.Rect(1, -2*math.Pi*csi.SubcarrierSpacing/material.SpeedOfLight*total)
			idx, err := csi.SubcarrierIndex(0)
			if err != nil {
				return fmt.Errorf("propagation: %w", err)
			}
			scRow := next(nSub)
			for sub := 0; sub < nSub; sub++ {
				scRow[sub] = cur
				if sub+1 < nSub {
					next, err := csi.SubcarrierIndex(sub + 1)
					if err != nil {
						return fmt.Errorf("propagation: %w", err)
					}
					for ; idx < next; idx++ {
						cur *= step
					}
				}
			}
			st.scat[i][sIdx] = scRow
		}
	}
	return nil
}

// Chords returns the geometric in-target path length per antenna (metres).
func (ch *Channel) Chords() []float64 {
	return append([]float64(nil), ch.chords...)
}

// penetrationWeight returns the fraction of LoS energy traversing the
// given target, shrinking as the container diameter approaches the
// wavelength (diffraction regime, Fig. 19: "when the diameter is smaller
// than the wavelength ... diffraction degrades the identification
// accuracy").
func (ch *Channel) penetrationWeight(t *Target, lambda float64) float64 {
	if t == nil {
		return 0
	}
	ratio := t.Diameter / lambda
	// Quartic roll-off: containers comfortably wider than the wavelength
	// are fully traversed (size-independence of Ω holds above ~1.5λ), and
	// the bypass takes over sharply once the diameter drops below λ —
	// Fig. 19 sees sizes 1-3 nearly flat and a cliff at the 3.2 cm beaker.
	r2 := ratio * ratio
	return ch.scene.PenetrationWeight * (1 - math.Exp(-r2*r2))
}

// BeginCapture draws the slow multipath drift for a new capture: each
// scatterer's phase shifts by N(0, Drift) and stays there for every packet
// of the capture.
func (ch *Channel) BeginCapture(rng *rand.Rand) error {
	if rng == nil {
		return fmt.Errorf("propagation: nil random source")
	}
	if ch.captureDrift == nil {
		ch.captureDrift = make([]float64, len(ch.scats))
	}
	ch.packetCount = 0
	if ch.scene.Env.Drift == 0 {
		// Keep the random stream untouched for drift-free environments so
		// seeded scenarios are unaffected by whether drift is modelled.
		for i := range ch.captureDrift {
			ch.captureDrift[i] = 0
		}
		return nil
	}
	for i := range ch.captureDrift {
		ch.captureDrift[i] = rng.NormFloat64() * ch.scene.Env.Drift
	}
	return nil
}

// Sample synthesises one packet's clean CSI matrix, drawing fresh multipath
// jitter from rng.
//
// The static channel terms are cached per (antenna, subcarrier), so the
// per-packet work is one unit phasor per scatterer plus complex
// multiply-accumulates. A Channel holds per-packet scratch and must not be
// sampled from multiple goroutines; use one Channel per goroutine.
func (ch *Channel) Sample(rng *rand.Rand) (*csi.Matrix, error) {
	m, err := csi.NewMatrix(len(ch.antennas))
	if err != nil {
		return nil, fmt.Errorf("propagation: %w", err)
	}
	if err := ch.SampleInto(rng, m); err != nil {
		return nil, err
	}
	return m, nil
}

// SampleInto is Sample writing into a caller-owned matrix, so capture loops
// stop paying one matrix allocation per packet. m must have the channel's
// antenna count; its previous contents are overwritten. Values are
// identical to Sample for the same rng stream.
func (ch *Channel) SampleInto(rng *rand.Rand, m *csi.Matrix) error {
	if rng == nil {
		return fmt.Errorf("propagation: nil random source")
	}
	if m == nil || m.NumAntennas() != len(ch.antennas) {
		got := 0
		if m != nil {
			got = m.NumAntennas()
		}
		return fmt.Errorf("propagation: matrix has %d antennas, channel has %d", got, len(ch.antennas))
	}
	st := &ch.static
	// Per-packet jitter per scatterer (common across subcarriers and
	// antennas: the scatterer itself moved a little), folded together with
	// the capture drift into one rotation phasor.
	for i := range ch.scats {
		phase := rng.NormFloat64() * ch.scene.Env.Jitter
		if ch.captureDrift != nil {
			phase += ch.captureDrift[i]
		}
		st.rot[i] = cmplx.Rect(1, phase)
	}
	// A moving target changes the per-antenna chords packet by packet,
	// forcing the LoS term back onto the slow path; the scattered paths
	// stay static either way.
	var chords []float64
	if t := ch.scene.Target; t != nil && t.DriftPerPacket != 0 {
		circle := geometry.Circle{
			Center: geometry.Point{
				X: ch.scene.LinkDistance / 2,
				Y: t.LateralOffset + t.DriftPerPacket*float64(ch.packetCount),
			},
			Radius: t.Diameter / 2,
		}
		if cap(ch.movingChords) < len(ch.antennas) {
			ch.movingChords = make([]float64, len(ch.antennas))
		}
		chords = ch.movingChords[:len(ch.antennas)]
		for i, ant := range ch.antennas {
			chords[i] = circle.ChordLength(ch.tx, ant)
		}
	}
	ch.packetCount++
	for i, ant := range ch.antennas {
		row := m.Values[i]
		if chords == nil {
			copy(row, st.los[i])
		} else {
			for sub := 0; sub < csi.NumSubcarriers; sub++ {
				row[sub] = ch.losComponent(st.freq[sub], st.k[sub], st.uTar[sub], chords[i], ant) * st.intf[i][sub]
			}
		}
		// Accumulate scatterers in index order (same summation order as the
		// subcarrier-major loop this replaces, so results are bit-identical).
		for sIdx, scRow := range st.scat[i] {
			r := st.rot[sIdx]
			for sub, sc := range scRow {
				row[sub] += sc * r
			}
		}
	}
	return nil
}

// losComponent returns the (possibly target-modified) line-of-sight term
// for one antenna at frequency f, given the in-target chord length.
func (ch *Channel) losComponent(f, k, u, chord float64, ant geometry.Point) complex128 {
	losLen := ch.tx.Dist(ant)
	amp := 1.0 / losLen // free-space spread, referenced to 1 m
	base := cmplx.Rect(amp, -k*losLen)
	t := ch.scene.Target
	if t == nil {
		return base
	}
	if chord == 0 {
		return base
	}
	return base * ch.targetFactor(t, f, k, u, chord)
}

// targetFactor is the multiplicative channel factor one container imposes
// on a ray with the given in-container chord: a bypass (diffraction) part
// plus a wall- and liquid-modified penetrating part.
func (ch *Channel) targetFactor(t *Target, f, k, u, chord float64) complex128 {
	// Bypass (diffraction) component: unaffected by the liquid.
	bypass := complex(1-u, 0)
	// Penetrating component: crosses two container walls and the liquid.
	wall := t.Container.Transmission * t.Container.Transmission
	wallPhase := 2 * t.Container.WallPhaseShift
	dEff := chord * ch.scene.PathScale
	var alphaTar, betaTar float64
	if t.Liquid != nil {
		alphaTar, betaTar = t.Liquid.PropagationConstants(f)
	} else {
		// Empty container: air inside.
		alphaTar, betaTar = 0, k
	}
	// Excess attenuation and phase relative to the air the liquid displaces
	// (paper Eqs. 2-4): Δφ = D(β_tar − β_free), amplitude e^{−D(α_tar−α_free)}.
	excessPhase := dEff * (betaTar - k)
	attn := math.Exp(-dEff * alphaTar)
	pen := cmplx.Rect(u*wall*attn, -(excessPhase + wallPhase))
	return bypass + pen
}

// Antennas returns a copy of the receive antenna positions.
func (ch *Channel) Antennas() []geometry.Point {
	return append([]geometry.Point(nil), ch.antennas...)
}
