package propagation

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/csi"
	"repro/internal/geometry"
	"repro/internal/material"
)

// referenceSample recomputes one packet with the direct per-path formula —
// every distance, penetration weight and phasor evaluated from scratch —
// to pin the cached fast path in Sample. jit must hold the same jitter
// draws Sample consumed for the packet; pkt is the packet index since
// BeginCapture.
func referenceSample(ch *Channel, jit []float64, pkt int) (*csi.Matrix, error) {
	m, err := csi.NewMatrix(len(ch.antennas))
	if err != nil {
		return nil, err
	}
	chords := ch.chords
	if t := ch.scene.Target; t != nil && t.DriftPerPacket != 0 {
		circle := geometry.Circle{
			Center: geometry.Point{
				X: ch.scene.LinkDistance / 2,
				Y: t.LateralOffset + t.DriftPerPacket*float64(pkt),
			},
			Radius: t.Diameter / 2,
		}
		chords = make([]float64, len(ch.antennas))
		for i, ant := range ch.antennas {
			chords[i] = circle.ChordLength(ch.tx, ant)
		}
	}
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		f := ch.static.freq[sub]
		k := ch.static.k[sub]
		lambda := ch.static.lambda[sub]
		u := ch.penetrationWeight(ch.scene.Target, lambda)
		uInt := ch.penetrationWeight(ch.scene.Interferer, lambda)
		for i, ant := range ch.antennas {
			h := ch.losComponent(f, k, u, chords[i], ant)
			if ch.scene.Interferer != nil && ch.interfererChords[i] > 0 {
				h *= ch.targetFactor(ch.scene.Interferer, f, k, uInt, ch.interfererChords[i])
			}
			for sIdx, sc := range ch.scats {
				d := ch.tx.Dist(sc.pos) + sc.pos.Dist(ant)
				amp := sc.gain / d
				phase := -k*(d+sc.excess) + sc.basePhase + jit[sIdx]
				if ch.captureDrift != nil {
					phase += ch.captureDrift[sIdx]
				}
				h += cmplx.Rect(amp, phase)
			}
			m.Values[i][sub] = h
		}
	}
	return m, nil
}

func staticScenes(t *testing.T) map[string]Scene {
	t.Helper()
	withTarget := baseScene()
	withTarget.Target = waterTarget(t)
	moving := baseScene()
	mt := waterTarget(t)
	mt.DriftPerPacket = 0.004
	moving.Target = mt
	interferer := baseScene()
	interferer.Target = waterTarget(t)
	interferer.Interferer = waterTarget(t)
	drifting := withTarget
	drifting.Env.Drift = 0.2
	return map[string]Scene{
		"free link":     baseScene(),
		"target":        withTarget,
		"moving target": moving,
		"interferer":    interferer,
		"capture drift": drifting,
	}
}

// TestSampleMatchesDirectFormula drives several packets of each scene
// through both the cached Sample path and the from-scratch reference and
// requires agreement to float64 round-off.
func TestSampleMatchesDirectFormula(t *testing.T) {
	for name, scene := range staticScenes(t) {
		ch, err := NewChannel(scene, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rng := rand.New(rand.NewSource(22))
		if err := ch.BeginCapture(rng); err != nil {
			t.Fatal(err)
		}
		// Shadow rng replays the jitter draws Sample will consume.
		shadow := rand.New(rand.NewSource(22))
		if scene.Env.Drift != 0 {
			for range ch.scats {
				shadow.NormFloat64()
			}
		}
		for pkt := 0; pkt < 4; pkt++ {
			jit := make([]float64, len(ch.scats))
			for i := range jit {
				jit[i] = shadow.NormFloat64() * scene.Env.Jitter
			}
			want, err := referenceSample(ch, jit, pkt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ch.Sample(rng)
			if err != nil {
				t.Fatalf("%s pkt %d: %v", name, pkt, err)
			}
			for i := range got.Values {
				for sub := range got.Values[i] {
					g, w := got.Values[i][sub], want.Values[i][sub]
					if cmplx.Abs(g-w) > 1e-12*(1+cmplx.Abs(w)) {
						t.Fatalf("%s pkt %d ant %d sub %d: %v, reference %v", name, pkt, i, sub, g, w)
					}
				}
			}
		}
	}
}

func BenchmarkChannelSample(b *testing.B) {
	scene := baseScene()
	db := material.PaperDatabase()
	water, err := db.Get(material.PureWater)
	if err != nil {
		b.Fatal(err)
	}
	scene.Target = &Target{
		Liquid:        &water,
		Container:     material.ContainerPlastic,
		Diameter:      0.143,
		LateralOffset: 0.012,
	}
	ch, err := NewChannel(scene, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := ch.BeginCapture(rng); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Sample(rng); err != nil {
			b.Fatal(err)
		}
	}
}
