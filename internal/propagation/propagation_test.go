package propagation

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/mathx"
)

const carrier = 5.32e9

func baseScene() Scene {
	return Scene{
		Env:            EnvLab,
		LinkDistance:   2.0,
		NumRxAntennas:  3,
		AntennaSpacing: 0.028,
		Carrier:        carrier,
	}
}

func waterTarget(t *testing.T) *Target {
	t.Helper()
	db := material.PaperDatabase()
	water, err := db.Get(material.PureWater)
	if err != nil {
		t.Fatal(err)
	}
	return &Target{
		Liquid:        &water,
		Container:     material.ContainerPlastic,
		Diameter:      0.143,
		LateralOffset: 0.012,
	}
}

func TestEnvironmentByName(t *testing.T) {
	for _, name := range []string{"hall", "lab", "library"} {
		env, err := EnvironmentByName(name)
		if err != nil || env.Name != name {
			t.Errorf("EnvironmentByName(%q) = %v, %v", name, env, err)
		}
	}
	if _, err := EnvironmentByName("cave"); err == nil {
		t.Error("unknown environment should error")
	}
}

func TestEnvironmentMultipathOrdering(t *testing.T) {
	// hall < lab < library in scatterer count and gain (low/med/high).
	if !(EnvHall.NumScatterers < EnvLab.NumScatterers && EnvLab.NumScatterers < EnvLibrary.NumScatterers) {
		t.Error("scatterer counts not ordered")
	}
	if !(EnvHall.ScattererGain < EnvLab.ScattererGain && EnvLab.ScattererGain < EnvLibrary.ScattererGain) {
		t.Error("scatterer gains not ordered")
	}
}

func TestSceneValidate(t *testing.T) {
	good := baseScene()
	if err := good.Validate(); err != nil {
		t.Errorf("valid scene rejected: %v", err)
	}
	bad := good
	bad.LinkDistance = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero distance should error")
	}
	bad = good
	bad.NumRxAntennas = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero antennas should error")
	}
	bad = good
	bad.Carrier = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative carrier should error")
	}
	bad = good
	bad.Target = &Target{Diameter: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero-diameter target should error")
	}
	bad = good
	bad.Target = &Target{Diameter: 5}
	if err := bad.Validate(); err == nil {
		t.Error("target larger than link should error")
	}
}

func TestNewChannelErrors(t *testing.T) {
	if _, err := NewChannel(baseScene(), nil); err == nil {
		t.Error("nil rng should error")
	}
	bad := baseScene()
	bad.LinkDistance = -1
	if _, err := NewChannel(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid scene should error")
	}
}

func TestFreeLinkLoSPhaseAndAmplitude(t *testing.T) {
	// With no scatterers and no target, H is exactly the LoS term.
	scene := baseScene()
	scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	rng := rand.New(rand.NewSource(1))
	ch, err := NewChannel(scene, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ch.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	ants := ch.Antennas()
	f, _ := csi.SubcarrierFreq(carrier, 7)
	k := 2 * math.Pi * f / material.SpeedOfLight
	for i := range ants {
		losLen := math.Hypot(ants[i].X, ants[i].Y)
		want := cmplx.Rect(1/losLen, -k*losLen)
		got := m.Values[i][7]
		if cmplx.Abs(got-want) > 1e-9 {
			t.Errorf("antenna %d: H = %v, want %v", i, got, want)
		}
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	gen := func() *csi.Matrix {
		rng := rand.New(rand.NewSource(5))
		ch, err := NewChannel(baseScene(), rng)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ch.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := gen(), gen()
	for ant := range a.Values {
		for sub := range a.Values[ant] {
			if a.Values[ant][sub] != b.Values[ant][sub] {
				t.Fatal("same seed produced different channels")
			}
		}
	}
}

func TestChordsPerAntennaDiffer(t *testing.T) {
	scene := baseScene()
	scene.Target = waterTarget(t)
	rng := rand.New(rand.NewSource(2))
	ch, err := NewChannel(scene, rng)
	if err != nil {
		t.Fatal(err)
	}
	chords := ch.Chords()
	if len(chords) != 3 {
		t.Fatalf("chords = %v", chords)
	}
	for i, c := range chords {
		if c <= 0 || c > scene.Target.Diameter {
			t.Errorf("chord %d = %v out of (0, %v]", i, c, scene.Target.Diameter)
		}
	}
	if chords[0] == chords[1] && chords[1] == chords[2] {
		t.Error("all chords equal; lateral offset should differentiate antennas")
	}
}

func TestTargetAttenuatesLoS(t *testing.T) {
	// Adding a water target must reduce |H| (lossy liquid).
	scene := baseScene()
	scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	rngA := rand.New(rand.NewSource(3))
	free, err := NewChannel(scene, rngA)
	if err != nil {
		t.Fatal(err)
	}
	scene.Target = waterTarget(t)
	rngB := rand.New(rand.NewSource(3))
	tgt, err := NewChannel(scene, rngB)
	if err != nil {
		t.Fatal(err)
	}
	mFree, err := free.Sample(rngA)
	if err != nil {
		t.Fatal(err)
	}
	mTgt, err := tgt.Sample(rngB)
	if err != nil {
		t.Fatal(err)
	}
	aFree, _ := mFree.Amplitude(0, 15)
	aTgt, _ := mTgt.Amplitude(0, 15)
	if aTgt >= aFree {
		t.Errorf("water target did not attenuate: %v vs %v", aTgt, aFree)
	}
}

func TestEmptyContainerBaselineDiffersFromFreeLink(t *testing.T) {
	// The empty container still shifts phase slightly (walls), which is why
	// the paper baselines against the EMPTY CONTAINER, not the free link.
	scene := baseScene()
	scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	target := waterTarget(t)
	target.Liquid = nil // empty container
	scene.Target = target
	rng := rand.New(rand.NewSource(4))
	ch, err := NewChannel(scene, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ch.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	scene.Target = nil
	rng2 := rand.New(rand.NewSource(4))
	chFree, err := NewChannel(scene, rng2)
	if err != nil {
		t.Fatal(err)
	}
	mFree, err := chFree.Sample(rng2)
	if err != nil {
		t.Fatal(err)
	}
	pTgt, _ := m.Phase(0, 10)
	pFree, _ := mFree.Phase(0, 10)
	if math.Abs(mathx.AngleDiff(pTgt, pFree)) < 1e-6 {
		t.Error("empty container should still perturb the channel (wall phase)")
	}
}

func TestMaterialChangesPhaseDifferently(t *testing.T) {
	// Two different liquids must produce different inter-antenna phase
	// signatures — the physical basis of the whole system.
	measure := func(name string) float64 {
		db := material.PaperDatabase()
		liquid, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		scene := baseScene()
		scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
		scene.Target = &Target{
			Liquid:        &liquid,
			Container:     material.ContainerPlastic,
			Diameter:      0.143,
			LateralOffset: 0.012,
		}
		rng := rand.New(rand.NewSource(6))
		ch, err := NewChannel(scene, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ch.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.PhaseDiff(0, 1, 15)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	water := measure(material.PureWater)
	oil := measure(material.Oil)
	if math.Abs(mathx.AngleDiff(water, oil)) < 1e-4 {
		t.Errorf("water and oil produce the same phase difference %v", water)
	}
}

func TestMetalContainerBlocksMaterialSignal(t *testing.T) {
	// The Discussion's failure mode: a metal container reflects the signal,
	// so the liquid inside has (almost) no effect on the channel.
	measure := func(liquidName string) complex128 {
		db := material.PaperDatabase()
		liquid, err := db.Get(liquidName)
		if err != nil {
			t.Fatal(err)
		}
		scene := baseScene()
		scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
		scene.Target = &Target{
			Liquid:        &liquid,
			Container:     material.ContainerMetal,
			Diameter:      0.143,
			LateralOffset: 0.012,
		}
		rng := rand.New(rand.NewSource(7))
		ch, err := NewChannel(scene, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ch.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		return m.Values[0][15]
	}
	water := measure(material.PureWater)
	oil := measure(material.Oil)
	if cmplx.Abs(water-oil) > 1e-6 {
		t.Errorf("metal container should hide the liquid: water %v vs oil %v", water, oil)
	}
}

func TestPenetrationWeightDiffractionCliff(t *testing.T) {
	// u(d) must fall sharply once the diameter drops below the wavelength
	// (~5.6 cm at 5.32 GHz) — Fig. 19's cliff at the 3.2 cm beaker.
	lambda := material.SpeedOfLight / carrier
	weight := func(diam float64) float64 {
		scene := baseScene()
		tgt := waterTarget(t)
		tgt.Diameter = diam
		scene.Target = tgt
		rng := rand.New(rand.NewSource(8))
		ch, err := NewChannel(scene, rng)
		if err != nil {
			t.Fatal(err)
		}
		return ch.penetrationWeight(scene.Target, lambda)
	}
	sizes := []float64{0.143, 0.11, 0.089, 0.061, 0.032} // paper's five beakers
	prev := math.Inf(1)
	for _, d := range sizes {
		u := weight(d)
		if u >= prev {
			t.Errorf("penetration weight not decreasing at %v m: %v >= %v", d, u, prev)
		}
		prev = u
	}
	if big, small := weight(0.143), weight(0.032); small > big/2 {
		t.Errorf("no diffraction cliff: u(3.2cm)=%v vs u(14.3cm)=%v", small, big)
	}
}

func TestMultipathMakesSubcarrierVarianceUneven(t *testing.T) {
	// With multipath jitter, phase-difference variance across packets must
	// differ significantly across subcarriers — the basis of 'good
	// subcarrier' selection (Fig. 6).
	scene := baseScene()
	scene.Env = EnvLibrary
	rng := rand.New(rand.NewSource(9))
	ch, err := NewChannel(scene, rng)
	if err != nil {
		t.Fatal(err)
	}
	series := make([][]float64, csi.NumSubcarriers)
	for pkt := 0; pkt < 60; pkt++ {
		m, err := ch.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			d, err := m.PhaseDiff(0, 1, sub)
			if err != nil {
				t.Fatal(err)
			}
			series[sub] = append(series[sub], d)
		}
	}
	variances := make([]float64, csi.NumSubcarriers)
	for sub, s := range series {
		variances[sub] = mathx.CircularVariance(s)
	}
	lo, hi := mathx.Min(variances), mathx.Max(variances)
	if hi < 3*lo {
		t.Errorf("subcarrier variances too uniform: min %v max %v (want frequency diversity)", lo, hi)
	}
}

func TestMoreMultipathMoreVariance(t *testing.T) {
	// Library (high multipath) must show higher average phase-difference
	// variance than hall (low multipath) — Fig. 17's mechanism.
	avgVar := func(env Environment, seed int64) float64 {
		scene := baseScene()
		scene.Env = env
		rng := rand.New(rand.NewSource(seed))
		ch, err := NewChannel(scene, rng)
		if err != nil {
			t.Fatal(err)
		}
		series := make([][]float64, csi.NumSubcarriers)
		for pkt := 0; pkt < 50; pkt++ {
			m, err := ch.Sample(rng)
			if err != nil {
				t.Fatal(err)
			}
			for sub := 0; sub < csi.NumSubcarriers; sub++ {
				d, _ := m.PhaseDiff(0, 1, sub)
				series[sub] = append(series[sub], d)
			}
		}
		var sum float64
		for _, s := range series {
			sum += mathx.CircularVariance(s)
		}
		return sum / csi.NumSubcarriers
	}
	// Average over several seeds to avoid constellation luck.
	var hall, lib float64
	for seed := int64(0); seed < 5; seed++ {
		hall += avgVar(EnvHall, seed)
		lib += avgVar(EnvLibrary, seed)
	}
	if lib <= hall {
		t.Errorf("library variance %v not above hall %v", lib, hall)
	}
}

func TestMovingTargetChangesChordsPerPacket(t *testing.T) {
	scene := baseScene()
	scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	tgt := waterTarget(t)
	tgt.DriftPerPacket = 0.003
	scene.Target = tgt
	rng := rand.New(rand.NewSource(11))
	ch, err := NewChannel(scene, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.BeginCapture(rng); err != nil {
		t.Fatal(err)
	}
	m1, err := ch.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Let the target move several packets, then compare.
	for i := 0; i < 8; i++ {
		if _, err := ch.Sample(rng); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := ch.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := m1.Amplitude(0, 15)
	a2, _ := m2.Amplitude(0, 15)
	if math.Abs(a1-a2) < 1e-9 {
		t.Error("moving target left the channel unchanged across packets")
	}
	// A static target in an anechoic room produces identical packets.
	tgt2 := waterTarget(t)
	scene.Target = tgt2
	rng2 := rand.New(rand.NewSource(11))
	chStatic, err := NewChannel(scene, rng2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := chStatic.Sample(rng2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := chStatic.Sample(rng2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Values[0][15] != s2.Values[0][15] {
		t.Error("static anechoic channel should repeat exactly")
	}
}

func TestInterfererAffectsChannel(t *testing.T) {
	scene := baseScene()
	scene.Env = Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	scene.Target = waterTarget(t)
	rngA := rand.New(rand.NewSource(12))
	clean, err := NewChannel(scene, rngA)
	if err != nil {
		t.Fatal(err)
	}
	db := material.PaperDatabase()
	soy, err := db.Get(material.Soy)
	if err != nil {
		t.Fatal(err)
	}
	scene.Interferer = &Target{
		Liquid:        &soy,
		Container:     material.ContainerGlass,
		Diameter:      0.10,
		LateralOffset: 0.02,
	}
	rngB := rand.New(rand.NewSource(12))
	dirty, err := NewChannel(scene, rngB)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := clean.Sample(rngA)
	if err != nil {
		t.Fatal(err)
	}
	md, err := dirty.Sample(rngB)
	if err != nil {
		t.Fatal(err)
	}
	ac, _ := mc.Amplitude(0, 15)
	ad, _ := md.Amplitude(0, 15)
	if ad >= ac {
		t.Errorf("soy interferer should attenuate further: %v vs %v", ad, ac)
	}
	// Invalid interferer positions are rejected.
	scene.InterfererPosition = 1.5
	if err := scene.Validate(); err == nil {
		t.Error("interferer position outside (0,1) should error")
	}
}
