package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Budget is one request's total time allowance, shared across every
// retry attempt: each attempt runs under a context whose deadline is the
// budget's end, so attempt N+1 inherits only what attempt N left behind —
// the shrinking-deadline contract that guarantees retries can never push
// a request past its deadline.
type Budget struct {
	clock    Clock
	deadline time.Time
}

// NewBudget opens a budget of total starting now.
func NewBudget(clock Clock, total time.Duration) *Budget {
	if clock == nil {
		clock = RealClock()
	}
	return &Budget{clock: clock, deadline: clock.Now().Add(total)}
}

// Remaining is how much of the budget is left (never negative).
func (b *Budget) Remaining() time.Duration {
	if d := b.deadline.Sub(b.clock.Now()); d > 0 {
		return d
	}
	return 0
}

// Deadline is the absolute end of the budget.
func (b *Budget) Deadline() time.Time { return b.deadline }

// Context derives a child context that dies at the budget's end (or the
// parent's earlier deadline).
func (b *Budget) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithDeadline(ctx, b.deadline)
}

// ErrBudgetExhausted reports that the retry budget ran out before an
// attempt succeeded.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// RetryAfterError wraps an error with an explicit server-provided wait
// (an HTTP 429/503 Retry-After). Retry honours the hint in place of the
// backoff schedule when it is longer.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// Permanent wraps an error to mark it non-retryable: Retry returns it
// immediately. Use for client errors (4xx) where repeating the request
// cannot change the answer.
type Permanent struct{ Err error }

func (e *Permanent) Error() string { return e.Err.Error() }

func (e *Permanent) Unwrap() error { return e.Err }

// RetryConfig parameterises Retry.
type RetryConfig struct {
	// MaxAttempts bounds total tries, first included (default 3).
	MaxAttempts int
	// Budget is the total time allowance; zero selects 10 s.
	Budget time.Duration
	// MinAttempt is the smallest budget slice worth starting an attempt
	// with — when less remains, Retry gives up instead of firing a doomed
	// try (default 5 ms).
	MinAttempt time.Duration
	// Backoff configures the inter-attempt delays (zero fields take the
	// BackoffConfig defaults).
	Backoff BackoffConfig
	// Clock supplies time (default RealClock); it is also wired into the
	// backoff sleeps.
	Clock Clock
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Budget <= 0 {
		c.Budget = 10 * time.Second
	}
	if c.MinAttempt <= 0 {
		c.MinAttempt = 5 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	return c
}

// Retry runs fn until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, or the budget runs dry. Every attempt receives a context
// bounded by the remaining budget. Between attempts Retry sleeps the
// jittered backoff — or the server's RetryAfterError hint when that is
// longer — but never sleeps past the budget: if the required wait plus
// MinAttempt does not fit, Retry stops and reports the last error.
func Retry(ctx context.Context, cfg RetryConfig, fn func(ctx context.Context, attempt int) error) error {
	cfg = cfg.withDefaults()
	budget := NewBudget(cfg.Clock, cfg.Budget)
	bo := NewBackoff(cfg.Backoff)
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if budget.Remaining() < cfg.MinAttempt {
			return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempt, errOrBudget(lastErr))
		}
		attemptCtx, cancel := budget.Context(ctx)
		err := fn(attemptCtx, attempt)
		cancel()
		if err == nil {
			return nil
		}
		var perm *Permanent
		if errors.As(err, &perm) {
			return perm.Err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("resilience: retry cancelled: %w", ctx.Err())
		}
		if attempt == cfg.MaxAttempts-1 {
			break
		}
		wait := bo.Delay(attempt)
		var ra *RetryAfterError
		if errors.As(err, &ra) && ra.After > wait {
			wait = ra.After
		}
		if wait+cfg.MinAttempt > budget.Remaining() {
			return fmt.Errorf("%w after %d attempts (next wait %v exceeds remaining %v): %w",
				ErrBudgetExhausted, attempt+1, wait, budget.Remaining(), lastErr)
		}
		if err := cfg.Clock.Sleep(ctx, wait); err != nil {
			return fmt.Errorf("resilience: retry cancelled: %w", err)
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", cfg.MaxAttempts, lastErr)
}

func errOrBudget(err error) error {
	if err == nil {
		return errors.New("no attempt started")
	}
	return err
}
