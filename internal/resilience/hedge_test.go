package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgeFastPrimaryNeverHedges(t *testing.T) {
	clk := NewFakeClock()
	var launched atomic.Int32
	v, err := Hedge(context.Background(), HedgeConfig{Delay: 50 * time.Millisecond, Clock: clk},
		func(ctx context.Context, attempt int) (string, error) {
			launched.Add(1)
			return "primary", nil
		})
	if err != nil || v != "primary" {
		t.Fatalf("Hedge = %q, %v", v, err)
	}
	if got := launched.Load(); got != 1 {
		t.Fatalf("attempts launched = %d, want 1 (no hedge for a fast primary)", got)
	}
}

func TestHedgeFiresAfterDelayAndWins(t *testing.T) {
	clk := NewFakeClock()
	primaryCancelled := make(chan struct{})
	done := make(chan struct{})
	var v string
	var err error
	go func() {
		defer close(done)
		v, err = Hedge(context.Background(), HedgeConfig{Delay: 50 * time.Millisecond, Clock: clk},
			func(ctx context.Context, attempt int) (string, error) {
				if attempt == 0 {
					// Slow-but-alive primary: parks until the race is decided.
					<-ctx.Done()
					close(primaryCancelled)
					return "", ctx.Err()
				}
				return "hedge", nil
			})
	}()
	waitForSleeper(t, clk) // the hedge timer
	clk.Advance(50 * time.Millisecond)
	<-done
	if err != nil || v != "hedge" {
		t.Fatalf("Hedge = %q, %v; want the hedged attempt's answer", v, err)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing primary attempt was never cancelled")
	}
}

func TestHedgeBothFailReturnsFirstError(t *testing.T) {
	clk := NewFakeClock()
	first := errors.New("primary down")
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Hedge(context.Background(), HedgeConfig{Delay: time.Millisecond, Clock: clk},
			func(ctx context.Context, attempt int) (int, error) {
				if attempt == 0 {
					// Fail only after the hedge has launched, so both attempts
					// are in flight.
					if e := clk.Sleep(ctx, 5*time.Millisecond); e != nil {
						return 0, e
					}
					return 0, first
				}
				if e := clk.Sleep(ctx, 10*time.Millisecond); e != nil {
					return 0, e
				}
				return 0, errors.New("hedge down")
			})
	}()
	for {
		select {
		case <-done:
			if !errors.Is(err, first) {
				t.Fatalf("err = %v, want the first failure", err)
			}
			return
		default:
			clk.AdvanceToNext()
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestHedgePrimaryFailsBeforeDelay(t *testing.T) {
	// A primary that fails before the hedge delay must NOT trigger a hedge:
	// hedging cures slowness, retries (the caller's job) cure failure.
	clk := NewFakeClock()
	var launched atomic.Int32
	boom := errors.New("boom")
	_, err := Hedge(context.Background(), HedgeConfig{Delay: time.Hour, Clock: clk},
		func(ctx context.Context, attempt int) (int, error) {
			launched.Add(1)
			return 0, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := launched.Load(); got != 1 {
		t.Fatalf("attempts launched = %d, want 1", got)
	}
}
