package resilience

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// JitterMode selects how randomness spreads a backoff delay.
type JitterMode int

const (
	// JitterNone uses the plain exponential delay.
	JitterNone JitterMode = iota
	// JitterEqual adds up to 50% of the base delay on top of it — the
	// collector's historical behaviour: delay ∈ [base, 1.5·base).
	JitterEqual
	// JitterFull draws the whole delay uniformly from [0, base) (AWS
	// "full jitter"): maximal desynchronisation of reconnect storms at
	// the cost of occasionally near-zero waits.
	JitterFull
)

func (m JitterMode) String() string {
	switch m {
	case JitterNone:
		return "none"
	case JitterEqual:
		return "equal"
	case JitterFull:
		return "full"
	}
	return fmt.Sprintf("JitterMode(%d)", int(m))
}

// BackoffConfig parameterises an exponential backoff schedule.
type BackoffConfig struct {
	// Initial is the attempt-1 base delay (default 100 ms).
	Initial time.Duration
	// Max caps the exponential base (default 3 s).
	Max time.Duration
	// Multiplier grows the base per attempt (default 2).
	Multiplier float64
	// Jitter selects the randomisation mode (default JitterEqual).
	Jitter JitterMode
	// JitterCap, when positive, bounds the random component added (equal
	// jitter) or drawn (full jitter) — so a long base delay cannot smear
	// into an even longer one unboundedly.
	JitterCap time.Duration
	// Seed seeds the jitter stream; zero selects 1.
	Seed int64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Initial <= 0 {
		c.Initial = 100 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 3 * time.Second
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Backoff produces a deterministic, seeded backoff schedule. The zero
// attempt is the first retry. Safe for one goroutine; each retry loop
// owns its own Backoff.
type Backoff struct {
	cfg BackoffConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a schedule from the config (zero fields take
// defaults).
func NewBackoff(cfg BackoffConfig) *Backoff {
	cfg = cfg.withDefaults()
	return &Backoff{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Base returns the unjittered exponential delay for a retry attempt
// (attempt 0 = first retry), capped at Max.
func (b *Backoff) Base(attempt int) time.Duration {
	d := float64(b.cfg.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.cfg.Multiplier
		if d >= float64(b.cfg.Max) {
			return b.cfg.Max
		}
	}
	if d > float64(b.cfg.Max) {
		return b.cfg.Max
	}
	return time.Duration(d)
}

// Delay returns the jittered delay for a retry attempt, consuming one
// draw from the seeded jitter stream (exactly one per call, for every
// mode, so schedules stay aligned across modes with the same seed).
func (b *Backoff) Delay(attempt int) time.Duration {
	base := b.Base(attempt)
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	switch b.cfg.Jitter {
	case JitterNone:
		return base
	case JitterFull:
		span := base
		if b.cfg.JitterCap > 0 && span > b.cfg.JitterCap {
			span = b.cfg.JitterCap
		}
		return time.Duration(u * float64(span))
	default: // JitterEqual
		span := base / 2
		if b.cfg.JitterCap > 0 && span > b.cfg.JitterCap {
			span = b.cfg.JitterCap
		}
		return base + time.Duration(u*float64(span))
	}
}
