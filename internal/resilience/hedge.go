package resilience

import (
	"context"
	"time"
)

// HedgeConfig parameterises Hedge.
type HedgeConfig struct {
	// Delay is how long the primary attempt runs alone before the hedge
	// fires (default 50 ms). A hedge is a *duplicate* request racing the
	// primary — the tail-latency cure for a slow-but-alive backend, not a
	// retry (which waits for failure).
	Delay time.Duration
	// Clock supplies time (default RealClock).
	Clock Clock
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Delay <= 0 {
		c.Delay = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	return c
}

type hedgeResult[T any] struct {
	v       T
	err     error
	attempt int
}

// Hedge runs fn(ctx, 0); if no result lands within Delay it launches
// fn(ctx, 1) and returns whichever finishes first with success — or, when
// both fail, the first error. The loser's context is cancelled as soon as
// a winner is picked, and Hedge does not return until every launched
// attempt has finished, so callers never leak goroutines holding request
// state.
func Hedge[T any](ctx context.Context, cfg HedgeConfig, fn func(ctx context.Context, attempt int) (T, error)) (T, error) {
	cfg = cfg.withDefaults()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan hedgeResult[T], 2)
	launch := func(attempt int) {
		v, err := fn(raceCtx, attempt)
		results <- hedgeResult[T]{v: v, err: err, attempt: attempt}
	}

	go launch(0)
	launched := 1
	hedgeTimer := make(chan struct{}, 1)
	go func() {
		if cfg.Clock.Sleep(raceCtx, cfg.Delay) == nil {
			hedgeTimer <- struct{}{}
		}
	}()

	var firstErr error
	haveErr := false
	for done := 0; done < launched; {
		select {
		case <-hedgeTimer:
			if done == 0 { // primary still out: fire the hedge
				go launch(1)
				launched++
			}
		case r := <-results:
			done++
			if r.err == nil {
				// Winner: stop the race, then drain the loser (if any) so no
				// attempt outlives the call.
				cancel()
				for ; done < launched; done++ {
					<-results
				}
				return r.v, nil
			}
			if !haveErr {
				firstErr, haveErr = r.err, true
			}
		}
	}
	var zero T
	return zero, firstErr
}
