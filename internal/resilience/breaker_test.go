package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	clk := NewFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, HalfOpenProbes: 2, Clock: clk})

	// Closed: failures below the threshold keep passing traffic; a success
	// resets the consecutive count.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow: %v", err)
		}
		b.Record(false)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true) // resets: the next two failures alone must not trip
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after reset + 2 failures = %v, want closed", got)
	}

	// Third consecutive failure trips it open.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow = %v, want ErrBreakerOpen", err)
	}

	// Cool-down elapses: half-open admits exactly HalfOpenProbes probes.
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe: %v", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe beyond budget = %v, want ErrBreakerOpen", err)
	}

	// A failed probe reopens immediately and restarts the cool-down.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	b.Record(true) // the other probe's late success changes nothing while open
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after late success = %v, want open", got)
	}

	// Full recovery: both probes succeed → closed.
	clk.Advance(time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("recovery probe %d: %v", i, err)
		}
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probes = %v, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed after recovery: %v", err)
	}
	b.Record(true)
}

func TestBreakerHalfOpenOnlyAfterCooldown(t *testing.T) {
	clk := NewFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: 10 * time.Second, Clock: clk})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	clk.Advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow 1s before cool-down end = %v, want ErrBreakerOpen", err)
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow at cool-down end: %v", err)
	}
}
