package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// runRetry drives Retry on a fake clock: whenever Retry parks in a
// backoff sleep the driver jumps the clock to the sleeper's wake time, so
// schedules of any length elapse instantly and deterministically.
func runRetry(t *testing.T, clk *FakeClock, cfg RetryConfig, fn func(ctx context.Context, attempt int) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- Retry(context.Background(), cfg, fn) }()
	for {
		select {
		case err := <-done:
			return err
		default:
		}
		clk.AdvanceToNext()
		time.Sleep(100 * time.Microsecond)
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	clk := NewFakeClock()
	attempts := 0
	start := clk.Now()
	err := runRetry(t, clk, RetryConfig{
		MaxAttempts: 5,
		Budget:      time.Minute,
		Clock:       clk,
		Backoff:     BackoffConfig{Initial: 100 * time.Millisecond, Jitter: JitterNone},
	}, func(ctx context.Context, attempt int) error {
		attempts++
		if attempt < 2 {
			return fmt.Errorf("transient %d", attempt)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v (attempts %d)", err, attempts)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	// Two backoff waits elapsed: 100ms then 200ms, exactly.
	if got, want := clk.Now().Sub(start), 300*time.Millisecond; got != want {
		t.Errorf("fake time consumed by backoff = %v, want %v", got, want)
	}
}

func TestRetryAttemptContextCarriesBudgetDeadline(t *testing.T) {
	clk := NewFakeClock()
	start := clk.Now()
	var mu sync.Mutex
	var deadlines []time.Time
	err := runRetry(t, clk, RetryConfig{
		MaxAttempts: 3,
		Budget:      30 * time.Second,
		Clock:       clk,
		Backoff:     BackoffConfig{Initial: time.Millisecond, Jitter: JitterNone},
	}, func(ctx context.Context, attempt int) error {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Error("attempt context has no deadline")
		}
		mu.Lock()
		deadlines = append(deadlines, dl)
		mu.Unlock()
		if attempt == 0 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(deadlines) != 2 {
		t.Fatalf("attempts = %d, want 2", len(deadlines))
	}
	// The budget deadline is fixed at Retry start: every attempt sees the
	// SAME absolute deadline — that is what makes the per-attempt allowance
	// shrink as earlier attempts consume time.
	if !deadlines[0].Equal(deadlines[1]) {
		t.Errorf("attempt deadlines differ: %v vs %v", deadlines[0], deadlines[1])
	}
	if want := start.Add(30 * time.Second); !deadlines[0].Equal(want) {
		t.Errorf("deadline %v, want budget end %v", deadlines[0], want)
	}
}

func TestRetryStopsWhenBudgetCannotFitNextWait(t *testing.T) {
	clk := NewFakeClock()
	attempts := 0
	err := Retry(context.Background(), RetryConfig{
		MaxAttempts: 10,
		Budget:      50 * time.Millisecond,
		Clock:       clk,
		// First backoff wait is 100ms > the 50ms budget: exactly one
		// attempt runs, then Retry reports exhaustion instead of sleeping
		// past the deadline.
		Backoff: BackoffConfig{Initial: 100 * time.Millisecond, Jitter: JitterNone},
	}, func(ctx context.Context, attempt int) error {
		attempts++
		return errors.New("transient")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no doomed retries past the budget)", attempts)
	}
}

func TestRetryHonoursRetryAfterHint(t *testing.T) {
	clk := NewFakeClock()
	done := make(chan error, 1)
	attempts := 0
	go func() {
		done <- Retry(context.Background(), RetryConfig{
			MaxAttempts: 2,
			Budget:      time.Minute,
			Clock:       clk,
			Backoff:     BackoffConfig{Initial: time.Millisecond, Jitter: JitterNone},
		}, func(ctx context.Context, attempt int) error {
			attempts++
			if attempt == 0 {
				return &RetryAfterError{Err: errors.New("shed"), After: 7 * time.Second}
			}
			return nil
		})
	}()
	// Retry must wait the server's 7s hint, not the 1ms backoff.
	waitForSleeper(t, clk)
	clk.Advance(7*time.Second - time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("Retry returned %v before the Retry-After hint elapsed", err)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

func TestRetryPermanentErrorReturnsImmediately(t *testing.T) {
	sentinel := errors.New("bad request")
	attempts := 0
	err := Retry(context.Background(), RetryConfig{MaxAttempts: 5, Budget: time.Minute, Clock: NewFakeClock()},
		func(ctx context.Context, attempt int) error {
			attempts++
			return &Permanent{Err: sentinel}
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the permanent cause", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

func TestRetryCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryConfig{MaxAttempts: 3, Budget: time.Minute, Clock: NewFakeClock()},
		func(ctx context.Context, attempt int) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// waitForSleeper blocks until a goroutine parks on the fake clock.
func waitForSleeper(t *testing.T, clk *FakeClock) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Sleepers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no goroutine parked on the fake clock")
		}
		time.Sleep(50 * time.Microsecond)
	}
}
