// Package resilience holds the failure-handling building blocks the
// cluster tier composes: a circuit breaker with half-open probing, retry
// with capped jittered backoff under a shrinking per-request deadline
// budget, and hedged (tail-latency) duplicate requests.
//
// Every primitive draws time from a Clock and randomness from a seeded
// generator, mirroring internal/faults: the same (config, seed) pair
// makes the same decisions in the same order, so the chaos tests that
// exercise failover are reproducible and any failure they find replays
// exactly.
package resilience

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts wall time for the resilience primitives. Production
// code uses RealClock; tests drive a FakeClock so breaker cool-downs and
// retry delays elapse instantly and deterministically.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a manually advanced clock. Sleepers park until Advance
// moves the clock past their wake time; everything is ordered and
// lock-protected, so tests that interleave goroutines with Advance are
// race-free.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan struct{}
}

// NewFakeClock starts a fake clock at a fixed far-future epoch
// (2100-01-01). Far-future matters: Budget derives real context.Context
// deadlines from fake-clock times, and an epoch in the real past would
// make every such context arrive already expired.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(4_102_444_800, 0)}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep parks until Advance moves the clock to now+d, or ctx is done.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	c.mu.Lock()
	w := &fakeWaiter{at: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Advance moves the clock forward by d and wakes every sleeper whose
// deadline has passed, earliest first.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.waiters, func(i, j int) bool { return c.waiters[i].at.Before(c.waiters[j].at) })
	var remaining []*fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			close(w.ch)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()
}

// AdvanceToNext jumps the clock to the earliest parked sleeper's wake
// time and wakes it, returning how far the clock moved (zero when nothing
// is parked). Test drivers use it to release sleeps of unknown length
// without overshooting other deadlines.
func (c *FakeClock) AdvanceToNext() time.Duration {
	c.mu.Lock()
	if len(c.waiters) == 0 {
		c.mu.Unlock()
		return 0
	}
	earliest := c.waiters[0].at
	for _, w := range c.waiters[1:] {
		if w.at.Before(earliest) {
			earliest = w.at
		}
	}
	d := earliest.Sub(c.now)
	if d < 0 {
		d = 0
	}
	c.mu.Unlock()
	c.Advance(d)
	return d
}

// Sleepers reports how many goroutines are parked in Sleep — tests use it
// to wait for a sleeper to arrive before advancing.
func (c *FakeClock) Sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
