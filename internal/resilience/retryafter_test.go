package resilience

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 forms plus the garbage floor:
// delta-seconds, HTTP-dates in all three accepted formats, and inputs
// that must collapse to the 1s minimum instead of panicking or zeroing.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
	}{
		{"delta seconds", "30", 30 * time.Second},
		{"delta one", "1", time.Second},
		{"delta zero floors", "0", time.Second},
		{"delta negative floors", "-5", time.Second},
		{"http date rfc1123", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date rfc850", now.Add(2 * time.Minute).Format("Monday, 02-Jan-06 15:04:05 GMT"), 2 * time.Minute},
		{"http date asctime", now.Add(45 * time.Second).Format(time.ANSIC), 45 * time.Second},
		{"http date in past floors", now.Add(-time.Hour).Format(http.TimeFormat), time.Second},
		{"http date now floors", now.Format(http.TimeFormat), time.Second},
		{"empty", "", time.Second},
		{"garbage", "soon-ish", time.Second},
		{"float delta is not a delta", "2.5", time.Second},
		{"overflowing junk", "999999999999999999999999", time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ParseRetryAfter(tc.in, now); got != tc.want {
				t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}
