package resilience

import (
	"net/http"
	"strconv"
	"time"
)

// ParseRetryAfter reads an HTTP Retry-After value in either form RFC 9110
// §10.2.3 allows: a non-negative decimal delta in seconds, or an HTTP-date
// after which the client may retry. The date form is resolved against now,
// so callers with a fake clock stay deterministic. Unparseable input, a
// zero/negative delta and a date in the past all yield the 1s floor — a
// server that answered 429/503 is telling us to go away, never to hammer
// it immediately.
func ParseRetryAfter(v string, now time.Time) time.Duration {
	if secs, err := strconv.Atoi(v); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > time.Second {
			return d
		}
		return time.Second
	}
	return time.Second
}
