package resilience

import (
	"testing"
	"time"
)

func TestBackoffBaseSequence(t *testing.T) {
	b := NewBackoff(BackoffConfig{Initial: 100 * time.Millisecond, Max: time.Second, Jitter: JitterNone})
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Base(i); got != w {
			t.Errorf("Base(%d) = %v, want %v", i, got, w)
		}
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) with JitterNone = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffJitterBounds checks every mode's delay stays inside its
// documented envelope, with and without a jitter cap.
func TestBackoffJitterBounds(t *testing.T) {
	const initial = 100 * time.Millisecond
	cases := []struct {
		name     string
		cfg      BackoffConfig
		attempt  int
		min, max time.Duration
	}{
		{"equal within 50%", BackoffConfig{Initial: initial, Jitter: JitterEqual, Seed: 7}, 0,
			initial, initial + initial/2},
		{"equal capped", BackoffConfig{Initial: initial, Jitter: JitterEqual, JitterCap: 10 * time.Millisecond, Seed: 7}, 2,
			400 * time.Millisecond, 410 * time.Millisecond},
		{"full within base", BackoffConfig{Initial: initial, Jitter: JitterFull, Seed: 7}, 1,
			0, 200 * time.Millisecond},
		{"full capped", BackoffConfig{Initial: initial, Jitter: JitterFull, JitterCap: 20 * time.Millisecond, Seed: 7}, 3,
			0, 20 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBackoff(tc.cfg)
			for i := 0; i < 50; i++ {
				got := b.Delay(tc.attempt)
				if got < tc.min || got > tc.max {
					t.Fatalf("draw %d: delay %v outside [%v, %v]", i, got, tc.min, tc.max)
				}
			}
		})
	}
}

// TestBackoffDeterministicAcrossRuns pins that the same seed yields the
// same jittered schedule.
func TestBackoffDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Backoff {
		return NewBackoff(BackoffConfig{Initial: 50 * time.Millisecond, Max: time.Second, Jitter: JitterFull, Seed: 42})
	}
	a, b := mk(), mk()
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("attempt %d: %v vs %v with identical seeds", i, da, db)
		}
	}
}
