package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker refuses
// traffic.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes all traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses all traffic until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; enough
	// successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig parameterises a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// open (default 5).
	FailureThreshold int
	// OpenFor is the cool-down before an open breaker half-opens
	// (default 5 s).
	OpenFor time.Duration
	// HalfOpenProbes is both the number of concurrent probes half-open
	// admits and the successes required to close (default 1).
	HalfOpenProbes int
	// Clock supplies time (default RealClock).
	Clock Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker with half-open
// probing. The usage contract: call Allow before the guarded operation;
// when it returns nil, report the outcome with exactly one Record call.
// Allow/Record are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu           sync.Mutex
	state        BreakerState
	failures     int       // consecutive failures while closed
	openedAt     time.Time // when the breaker last tripped
	probesOut    int       // probes admitted in half-open, not yet recorded
	probeSuccess int       // successful probes this half-open episode
}

// NewBreaker builds a breaker (zero config fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether one request may proceed. It returns
// ErrBreakerOpen while the breaker is open or all half-open probe slots
// are taken; a nil return MUST be paired with one Record call.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrBreakerOpen
		}
		// Cool-down elapsed: half-open and admit this caller as the first
		// probe.
		b.state = BreakerHalfOpen
		b.probesOut = 1
		b.probeSuccess = 0
		return nil
	default: // BreakerHalfOpen
		if b.probesOut >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.probesOut++
		return nil
	}
}

// Record reports the outcome of an operation Allow admitted.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.probesOut > 0 {
			b.probesOut--
		}
		if !success {
			// One failed probe reopens immediately and restarts the
			// cool-down.
			b.trip()
			return
		}
		b.probeSuccess++
		if b.probeSuccess >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.failures = 0
			b.probesOut = 0
			b.probeSuccess = 0
		}
	case BreakerOpen:
		// A late Record from a request admitted before the trip: while
		// open, outcomes change nothing.
	}
}

// trip moves to open and stamps the cool-down start. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Clock.Now()
	b.failures = 0
	b.probesOut = 0
	b.probeSuccess = 0
}

// State returns the breaker's current position (open flips to reporting
// half-open only when an Allow crosses the cool-down).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
