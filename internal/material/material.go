// Package material models the electromagnetic properties of the liquids the
// paper identifies. A material is reduced — exactly as the paper's theory
// does in Eqs. 2-4 — to its signal phase constant β (rad/m) and attenuation
// constant α (Np/m) at the Wi-Fi carrier frequency, derived from a Debye
// relaxation model of the complex permittivity with an ionic conductivity
// term.
//
// The dielectric parameters are literature-plausible room-temperature values
// for each liquid; absolute accuracy is not required (our substrate is a
// simulator), only that every liquid maps to a distinct (α, β) pair, with
// near-identical pairs for near-identical drinks (Pepsi/Coke), which is the
// property the paper's evaluation exercises.
package material

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Physical constants.
const (
	SpeedOfLight = 2.99792458e8  // m/s
	Epsilon0     = 8.8541878e-12 // F/m
)

// Debye holds the parameters of a single-pole Debye relaxation with an
// ionic conductivity term:
//
//	ε(ω) = ε∞ + (εs − ε∞)/(1 + jωτ) − j·σ/(ω·ε₀)
type Debye struct {
	EpsStatic    float64 // εs, static relative permittivity
	EpsInf       float64 // ε∞, optical-limit relative permittivity
	RelaxTime    float64 // τ, seconds
	Conductivity float64 // σ, S/m
}

// Permittivity returns the complex relative permittivity ε' − jε” at
// frequency f (Hz).
func (d Debye) Permittivity(f float64) complex128 {
	omega := 2 * math.Pi * f
	wt := omega * d.RelaxTime
	den := 1 + wt*wt
	epsReal := d.EpsInf + (d.EpsStatic-d.EpsInf)/den
	epsImag := (d.EpsStatic-d.EpsInf)*wt/den + d.Conductivity/(omega*Epsilon0)
	return complex(epsReal, -epsImag)
}

// Material is a named substance with its dielectric model.
type Material struct {
	Name  string
	Model Debye
}

// PropagationConstants returns the attenuation constant α (Np/m) and phase
// constant β (rad/m) of a plane wave in the material at frequency f, via
// γ = j(ω/c)·sqrt(ε_r) = α + jβ.
func (m Material) PropagationConstants(f float64) (alpha, beta float64) {
	root := cmplx.Sqrt(m.Model.Permittivity(f))
	n := real(root)  // refractive index
	k := -imag(root) // extinction coefficient (ε'' > 0 ⇒ imag(root) < 0)
	w := 2 * math.Pi * f / SpeedOfLight
	return w * k, w * n
}

// AirBeta returns the free-space phase constant β_free = ω/c at frequency f.
// The free-space attenuation constant α_free is zero.
func AirBeta(f float64) float64 {
	return 2 * math.Pi * f / SpeedOfLight
}

// Omega returns the paper's material feature (Eq. 21) for this material at
// frequency f:
//
//	Ω = (α_free − α_tar) / (β_tar − β_free)
//
// It is the ground-truth value the pipeline's measured Ω̂ should approach.
// Materials whose β equals free space (vacuum-like) return ±Inf; none of the
// database liquids do.
func (m Material) Omega(f float64) float64 {
	alpha, beta := m.PropagationConstants(f)
	return (0 - alpha) / (beta - AirBeta(f))
}

// Database is an immutable collection of materials addressable by name.
type Database struct {
	byName map[string]Material
}

// NewDatabase builds a database from the given materials. Duplicate names
// are an error.
func NewDatabase(mats []Material) (*Database, error) {
	db := &Database{byName: make(map[string]Material, len(mats))}
	for _, m := range mats {
		if m.Name == "" {
			return nil, fmt.Errorf("material: empty material name")
		}
		if _, dup := db.byName[m.Name]; dup {
			return nil, fmt.Errorf("material: duplicate material %q", m.Name)
		}
		db.byName[m.Name] = m
	}
	return db, nil
}

// Get returns the named material.
func (db *Database) Get(name string) (Material, error) {
	m, ok := db.byName[name]
	if !ok {
		return Material{}, fmt.Errorf("material: unknown material %q", name)
	}
	return m, nil
}

// Names returns all material names, sorted.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.byName))
	for name := range db.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of materials.
func (db *Database) Len() int { return len(db.byName) }

// Standard liquid names used throughout the paper's evaluation (Fig. 15).
const (
	Vinegar    = "vinegar"
	Honey      = "honey"
	Soy        = "soy"
	Milk       = "milk"
	Pepsi      = "pepsi"
	Liquor     = "liquor"
	PureWater  = "pure-water"
	Oil        = "oil"
	Coke       = "coke"
	SweetWater = "sweet-water"
)

// PaperLiquids returns the ten liquids of Fig. 15 with literature-plausible
// room-temperature Debye parameters.
func PaperLiquids() []Material {
	return []Material{
		// Pure water: the textbook Debye reference at 25 °C.
		{PureWater, Debye{EpsStatic: 78.4, EpsInf: 5.2, RelaxTime: 8.27e-12, Conductivity: 5e-4}},
		// Sweet water (~10% sucrose): slightly depressed εs, slowed τ.
		{SweetWater, Debye{EpsStatic: 74.8, EpsInf: 5.0, RelaxTime: 9.4e-12, Conductivity: 2e-3}},
		// Pepsi / Coke: carbonated sugar-acid solutions — intentionally very
		// close (the paper's "similar items" pair), differing mainly in
		// acid/ion content.
		{Pepsi, Debye{EpsStatic: 73.6, EpsInf: 5.0, RelaxTime: 9.8e-12, Conductivity: 0.115}},
		{Coke, Debye{EpsStatic: 73.0, EpsInf: 5.0, RelaxTime: 1.0e-11, Conductivity: 0.145}},
		// Milk: water + fat/protein colloid, noticeable ionic content.
		{Milk, Debye{EpsStatic: 69.5, EpsInf: 5.4, RelaxTime: 8.9e-12, Conductivity: 0.55}},
		// Vinegar (~5% acetic acid): water-like τ, ionic acid loss.
		{Vinegar, Debye{EpsStatic: 71.0, EpsInf: 5.1, RelaxTime: 8.5e-12, Conductivity: 0.42}},
		// Soy sauce: heavily salted — strong conductivity, depressed εs.
		{Soy, Debye{EpsStatic: 60.0, EpsInf: 5.5, RelaxTime: 9.1e-12, Conductivity: 3.2}},
		// Liquor (~40% ethanol): large dispersion from the slow ethanol pole.
		{Liquor, Debye{EpsStatic: 40.0, EpsInf: 4.2, RelaxTime: 2.6e-11, Conductivity: 8e-3}},
		// Honey (~17% moisture): low-permittivity viscous sugar matrix.
		{Honey, Debye{EpsStatic: 12.0, EpsInf: 2.6, RelaxTime: 2.2e-11, Conductivity: 3e-3}},
		// Cooking oil: non-polar, nearly lossless.
		{Oil, Debye{EpsStatic: 2.9, EpsInf: 2.4, RelaxTime: 3.0e-12, Conductivity: 1e-5}},
	}
}

// WaterAtTemperature returns pure water with its Debye parameters adjusted
// to the given temperature in °C, using the standard empirical fits
// (static permittivity and relaxation time both fall as water warms).
// Valid over roughly 0-60 °C.
func WaterAtTemperature(tempC float64) Material {
	// εs(T): Malmberg-Maryott fit; τ(T): Debye relaxation shortens with
	// temperature (≈17.7 ps at 0 °C, 8.27 ps at 25 °C, 4.8 ps at 50 °C).
	es := 87.74 - 0.40008*tempC + 9.398e-4*tempC*tempC - 1.41e-6*tempC*tempC*tempC
	tau := 17.67e-12 * math.Exp(-0.0304*tempC)
	return Material{
		Name: fmt.Sprintf("water-%.0fC", tempC),
		Model: Debye{
			EpsStatic:    es,
			EpsInf:       5.2,
			RelaxTime:    tau,
			Conductivity: 5e-4,
		},
	}
}

// Mix blends two liquids by volume fraction (fracB of b, the rest a) with
// a linear mixture of the Debye parameters — a first-order rule that is
// adequate for water-based liquids of similar structure (it reduces to the
// linear permittivity mixing rule when the relaxation times are close).
func Mix(a, b Material, fracB float64) (Material, error) {
	if fracB < 0 || fracB > 1 {
		return Material{}, fmt.Errorf("material: mix fraction %v outside [0,1]", fracB)
	}
	fa := 1 - fracB
	return Material{
		Name: fmt.Sprintf("%s+%.0f%%-%s", a.Name, 100*fracB, b.Name),
		Model: Debye{
			EpsStatic:    fa*a.Model.EpsStatic + fracB*b.Model.EpsStatic,
			EpsInf:       fa*a.Model.EpsInf + fracB*b.Model.EpsInf,
			RelaxTime:    fa*a.Model.RelaxTime + fracB*b.Model.RelaxTime,
			Conductivity: fa*a.Model.Conductivity + fracB*b.Model.Conductivity,
		},
	}, nil
}

// SpoiledMilk models milk at the given age in days: souring bacteria
// convert lactose to lactic acid, raising ionic conductivity roughly
// linearly, with a small depression of the static permittivity as the
// colloid destabilises. The paper's introduction motivates exactly this
// ("expired liquid such as milk can be detected without requiring to open
// the bottle").
func SpoiledMilk(days float64) (Material, error) {
	if days < 0 {
		return Material{}, fmt.Errorf("material: negative milk age %v", days)
	}
	return Material{
		Name: fmt.Sprintf("milk-%.0fd", days),
		Model: Debye{
			EpsStatic:    69.5 - 0.5*days,
			EpsInf:       5.4,
			RelaxTime:    8.9e-12,
			Conductivity: 0.55 + 0.15*days,
		},
	}, nil
}

// Saltwater returns a saline solution parameterised by concentration in
// grams per 100 ml (the unit the paper's Fig. 16 uses: 1.2, 2.7, 5.9).
// Dissolved salt raises ionic conductivity ~linearly and slightly depresses
// the static permittivity.
func Saltwater(gramsPer100ml float64) Material {
	gpl := gramsPer100ml * 10 // g/L
	return Material{
		Name: fmt.Sprintf("saltwater-%.1fg", gramsPer100ml),
		Model: Debye{
			EpsStatic:    78.4 - 0.16*gpl,
			EpsInf:       5.2,
			RelaxTime:    8.27e-12,
			Conductivity: 0.15 * gpl,
		},
	}
}

// PaperDatabase returns the database of all materials the paper's
// evaluation uses: the ten liquids of Fig. 15 plus the three saltwater
// concentrations of Fig. 16.
func PaperDatabase() *Database {
	mats := PaperLiquids()
	for _, g := range []float64{1.2, 2.7, 5.9} {
		mats = append(mats, Saltwater(g))
	}
	db, err := NewDatabase(mats)
	if err != nil {
		// The construction above is fully static; a failure is a programming
		// error in this package, not a runtime condition.
		panic(fmt.Sprintf("material: building paper database: %v", err))
	}
	return db
}

// Container wall materials (Fig. 20 and the metal failure mode of the
// Discussion). Walls are thin, so they are modelled by a one-way
// transmission coefficient rather than full propagation constants.
type ContainerMaterial struct {
	Name string
	// Transmission is the one-way amplitude transmission coefficient of one
	// wall at 5 GHz (1 = transparent, 0 = opaque).
	Transmission float64
	// WallPhaseShift is the extra one-way phase a wall inserts (radians).
	WallPhaseShift float64
}

// Standard containers used in the evaluation.
var (
	ContainerPlastic = ContainerMaterial{Name: "plastic", Transmission: 0.985, WallPhaseShift: 0.05}
	ContainerGlass   = ContainerMaterial{Name: "glass", Transmission: 0.96, WallPhaseShift: 0.12}
	// Metal reflects essentially everything — the paper's documented
	// failure mode ("the RF signal will be essentially reflected back").
	ContainerMetal = ContainerMaterial{Name: "metal", Transmission: 0.001, WallPhaseShift: math.Pi}
)
