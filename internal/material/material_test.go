package material

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

// f5GHz is the carrier used across the tests (paper: 5 GHz band).
const f5GHz = 5.32e9

func TestWaterPermittivityAt5GHz(t *testing.T) {
	// Pure water at 5.32 GHz, 25 °C: ε' ≈ 73, ε'' ≈ 19 (textbook Debye).
	db, err := NewDatabase(PaperLiquids())
	if err != nil {
		t.Fatal(err)
	}
	water, err := db.Get(PureWater)
	if err != nil {
		t.Fatal(err)
	}
	eps := water.Model.Permittivity(f5GHz)
	if re := real(eps); re < 68 || re > 76 {
		t.Errorf("water ε' = %v, want ≈73", re)
	}
	if im := -imag(eps); im < 15 || im > 23 {
		t.Errorf("water ε'' = %v, want ≈19", im)
	}
}

func TestPermittivityStaticLimit(t *testing.T) {
	// At very low frequency (without conductivity) ε' → εs.
	d := Debye{EpsStatic: 78.4, EpsInf: 5.2, RelaxTime: 8.27e-12}
	eps := d.Permittivity(1e3)
	if !mathx.AlmostEqual(real(eps), 78.4, 1e-3) {
		t.Errorf("static limit ε' = %v, want 78.4", real(eps))
	}
}

func TestPermittivityOpticalLimit(t *testing.T) {
	d := Debye{EpsStatic: 78.4, EpsInf: 5.2, RelaxTime: 8.27e-12}
	eps := d.Permittivity(1e15)
	if math.Abs(real(eps)-5.2) > 0.1 {
		t.Errorf("optical limit ε' = %v, want ≈5.2", real(eps))
	}
}

func TestConductivityRaisesLoss(t *testing.T) {
	base := Debye{EpsStatic: 78.4, EpsInf: 5.2, RelaxTime: 8.27e-12}
	salted := base
	salted.Conductivity = 2
	lossBase := -imag(base.Permittivity(f5GHz))
	lossSalt := -imag(salted.Permittivity(f5GHz))
	if lossSalt <= lossBase {
		t.Errorf("conductivity did not raise ε'': %v vs %v", lossSalt, lossBase)
	}
	want := lossBase + 2/(2*math.Pi*f5GHz*Epsilon0)
	if !mathx.AlmostEqual(lossSalt, want, 1e-9) {
		t.Errorf("ε'' = %v, want %v", lossSalt, want)
	}
}

func TestPropagationConstantsWater(t *testing.T) {
	db, _ := NewDatabase(PaperLiquids())
	water, _ := db.Get(PureWater)
	alpha, beta := water.PropagationConstants(f5GHz)
	// n ≈ 8.6 → β ≈ 8.6 × ω/c ≈ 960 rad/m; α ≈ 110-140 Np/m.
	if beta < 900 || beta > 1050 {
		t.Errorf("water β = %v rad/m, want ≈960", beta)
	}
	if alpha < 90 || alpha > 160 {
		t.Errorf("water α = %v Np/m, want ≈120", alpha)
	}
}

func TestPropagationConstantsOilNearlyLossless(t *testing.T) {
	db, _ := NewDatabase(PaperLiquids())
	oil, _ := db.Get(Oil)
	alpha, beta := oil.PropagationConstants(f5GHz)
	if alpha > 20 {
		t.Errorf("oil α = %v Np/m, want small", alpha)
	}
	// n ≈ 1.6 → β ≈ 178.
	if beta < 150 || beta > 210 {
		t.Errorf("oil β = %v rad/m, want ≈178", beta)
	}
}

func TestAirBeta(t *testing.T) {
	got := AirBeta(f5GHz)
	want := 2 * math.Pi * f5GHz / SpeedOfLight
	if !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("AirBeta = %v, want %v", got, want)
	}
	// Wavelength sanity: λ = 2π/β ≈ 5.6 cm at 5.32 GHz.
	if lambda := 2 * math.Pi / got; lambda < 0.05 || lambda > 0.06 {
		t.Errorf("λ = %v m, want ≈0.056", lambda)
	}
}

func TestOmegaNegativeForLossyLiquids(t *testing.T) {
	// β_tar > β_free and α_tar > 0 for every liquid ⇒ Ω < 0.
	for _, m := range PaperLiquids() {
		if om := m.Omega(f5GHz); om >= 0 {
			t.Errorf("%s: Ω = %v, want negative", m.Name, om)
		}
	}
}

func TestOmegaDistinctAcrossLiquids(t *testing.T) {
	// The feature must separate the ten liquids: pairwise |ΔΩ| above a
	// noise-scale threshold except for the intentionally-similar
	// Pepsi/Coke pair.
	liquids := PaperLiquids()
	for i := 0; i < len(liquids); i++ {
		for j := i + 1; j < len(liquids); j++ {
			a, b := liquids[i], liquids[j]
			d := math.Abs(a.Omega(f5GHz) - b.Omega(f5GHz))
			similar := (a.Name == Pepsi && b.Name == Coke) || (a.Name == Coke && b.Name == Pepsi)
			if similar {
				if d > 0.02 {
					t.Errorf("%s vs %s: ΔΩ = %v, want close (similar drinks)", a.Name, b.Name, d)
				}
				continue
			}
			if d < 1e-4 {
				t.Errorf("%s vs %s: ΔΩ = %v, features collide", a.Name, b.Name, d)
			}
		}
	}
}

func TestSaltwaterConcentrationMonotone(t *testing.T) {
	// More salt ⇒ more conductivity ⇒ larger |Ω| ordering must be strictly
	// monotone so Fig. 16's concentrations are separable.
	var prev float64
	for i, g := range []float64{0, 1.2, 2.7, 5.9} {
		m := Saltwater(g)
		alpha, _ := m.PropagationConstants(f5GHz)
		if i > 0 && alpha <= prev {
			t.Errorf("concentration %vg: α = %v not > previous %v", g, alpha, prev)
		}
		prev = alpha
	}
}

func TestSaltwaterNames(t *testing.T) {
	if got := Saltwater(1.2).Name; got != "saltwater-1.2g" {
		t.Errorf("name = %q", got)
	}
}

func TestDatabaseDuplicate(t *testing.T) {
	_, err := NewDatabase([]Material{{Name: "x"}, {Name: "x"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names should error, got %v", err)
	}
	if _, err := NewDatabase([]Material{{}}); err == nil {
		t.Error("empty name should error")
	}
}

func TestDatabaseGetUnknown(t *testing.T) {
	db, _ := NewDatabase(PaperLiquids())
	if _, err := db.Get("adamantium"); err == nil {
		t.Error("unknown material should error")
	}
}

func TestDatabaseNamesSorted(t *testing.T) {
	db := PaperDatabase()
	names := db.Names()
	if len(names) != 13 { // 10 liquids + 3 saltwater concentrations
		t.Fatalf("len(names) = %d, want 13", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	if db.Len() != 13 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestPaperDatabaseContainsAllFig15Liquids(t *testing.T) {
	db := PaperDatabase()
	for _, name := range []string{
		Vinegar, Honey, Soy, Milk, Pepsi, Liquor, PureWater, Oil, Coke, SweetWater,
	} {
		if _, err := db.Get(name); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

// Property: for any physically sensible Debye parameters, α and β are
// non-negative and β exceeds the free-space constant (n ≥ 1).
func TestPropagationConstantsPhysicalProperty(t *testing.T) {
	f := func(esRaw, tauRaw, sigRaw float64) bool {
		if math.IsNaN(esRaw) || math.IsNaN(tauRaw) || math.IsNaN(sigRaw) {
			return true
		}
		es := 2 + math.Abs(math.Mod(esRaw, 100))            // 2..102
		tau := 1e-12 * (1 + math.Abs(math.Mod(tauRaw, 50))) // 1..51 ps
		sigma := math.Abs(math.Mod(sigRaw, 10))             // 0..10 S/m
		m := Material{Name: "q", Model: Debye{EpsStatic: es, EpsInf: 2, RelaxTime: tau, Conductivity: sigma}}
		alpha, beta := m.PropagationConstants(f5GHz)
		return alpha >= 0 && beta >= AirBeta(f5GHz)*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContainerMaterials(t *testing.T) {
	if ContainerMetal.Transmission > 0.01 {
		t.Error("metal container must be essentially opaque")
	}
	if ContainerPlastic.Transmission < ContainerGlass.Transmission {
		t.Error("plastic should transmit at least as well as glass")
	}
}

func TestPepsiCokeOmegaCloseButDistinct(t *testing.T) {
	db := PaperDatabase()
	pepsi, _ := db.Get(Pepsi)
	coke, _ := db.Get(Coke)
	d := math.Abs(pepsi.Omega(f5GHz) - coke.Omega(f5GHz))
	if d == 0 {
		t.Error("Pepsi and Coke must remain distinguishable (ΔΩ > 0)")
	}
	if d > 0.02 {
		t.Errorf("Pepsi/Coke ΔΩ = %v, should be a hard pair (< 0.02)", d)
	}
}

func TestWaterAtTemperature(t *testing.T) {
	w25 := WaterAtTemperature(25)
	// Near the canonical 25 °C values.
	if math.Abs(w25.Model.EpsStatic-78.3) > 0.5 {
		t.Errorf("εs(25°C) = %v, want ≈78.3", w25.Model.EpsStatic)
	}
	if math.Abs(w25.Model.RelaxTime-8.27e-12) > 0.8e-12 {
		t.Errorf("τ(25°C) = %v, want ≈8.3 ps", w25.Model.RelaxTime)
	}
	// Both εs and τ fall monotonically with temperature.
	prevEs, prevTau := math.Inf(1), math.Inf(1)
	for _, temp := range []float64{0, 10, 20, 30, 40, 50} {
		w := WaterAtTemperature(temp)
		if w.Model.EpsStatic >= prevEs {
			t.Errorf("εs not decreasing at %v°C", temp)
		}
		if w.Model.RelaxTime >= prevTau {
			t.Errorf("τ not decreasing at %v°C", temp)
		}
		prevEs, prevTau = w.Model.EpsStatic, w.Model.RelaxTime
	}
	// Temperature changes Ω measurably — the basis of the ablation.
	if d := math.Abs(WaterAtTemperature(5).Omega(f5GHz) - w25.Omega(f5GHz)); d < 0.01 {
		t.Errorf("ΔΩ(5°C vs 25°C) = %v, want noticeable", d)
	}
}

func TestMix(t *testing.T) {
	db := PaperDatabase()
	milk, err := db.Get(Milk)
	if err != nil {
		t.Fatal(err)
	}
	water, err := db.Get(PureWater)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints reproduce the pure liquids.
	m0, err := Mix(milk, water, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Model != milk.Model {
		t.Error("Mix(..., 0) should equal the first liquid")
	}
	m1, err := Mix(milk, water, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Model != water.Model {
		t.Error("Mix(..., 1) should equal the second liquid")
	}
	// Midpoint is between the endpoints in Ω.
	mid, err := Mix(milk, water, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	omMid := mid.Omega(f5GHz)
	omA, omB := milk.Omega(f5GHz), water.Omega(f5GHz)
	lo, hi := math.Min(omA, omB), math.Max(omA, omB)
	if omMid < lo || omMid > hi {
		t.Errorf("mix Ω %v outside [%v, %v]", omMid, lo, hi)
	}
	if _, err := Mix(milk, water, -0.1); err == nil {
		t.Error("negative fraction should error")
	}
	if _, err := Mix(milk, water, 1.1); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestSpoiledMilk(t *testing.T) {
	fresh, err := SpoiledMilk(0)
	if err != nil {
		t.Fatal(err)
	}
	old, err := SpoiledMilk(4)
	if err != nil {
		t.Fatal(err)
	}
	if old.Model.Conductivity <= fresh.Model.Conductivity {
		t.Error("souring should raise conductivity")
	}
	aF, _ := fresh.PropagationConstants(f5GHz)
	aO, _ := old.PropagationConstants(f5GHz)
	if aO <= aF {
		t.Error("spoiled milk should attenuate more")
	}
	if _, err := SpoiledMilk(-1); err == nil {
		t.Error("negative age should error")
	}
}
