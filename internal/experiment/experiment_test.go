package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/material"
	"repro/internal/propagation"
)

// fastOpt trades some fidelity for test speed; the full-fidelity runs live
// in the benchmarks.
func fastOpt() Options {
	return Options{Trials: 8, SplitSeeds: 2, BaseSeed: 1}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 20 || o.TestFraction != 0.3 || o.SplitSeeds != 3 || o.BaseSeed != 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestRoomSeedFor(t *testing.T) {
	if RoomSeedFor(mustEnv(t, "hall")) != RoomSeedHall {
		t.Error("hall seed wrong")
	}
	if RoomSeedFor(mustEnv(t, "library")) != RoomSeedLibrary {
		t.Error("library seed wrong")
	}
	if RoomSeedFor(mustEnv(t, "lab")) != RoomSeedLab {
		t.Error("lab seed wrong")
	}
}

func mustEnv(t *testing.T, name string) propagation.Environment {
	t.Helper()
	e, err := propagation.EnvironmentByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLiquidScenarios(t *testing.T) {
	items, err := LiquidScenarios(LabScenario(), []string{material.Milk, material.Oil})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Scenario.Liquid == nil {
		t.Fatalf("items = %+v", items)
	}
	if _, err := LiquidScenarios(LabScenario(), []string{"nope"}); err == nil {
		t.Error("unknown liquid should error")
	}
}

func TestRunClassificationValidation(t *testing.T) {
	items, err := LiquidScenarios(LabScenario(), []string{material.Milk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, fastOpt()); err == nil {
		t.Error("single class should error")
	}
}

func TestRunClassificationSeparableLiquids(t *testing.T) {
	items, err := LiquidScenarios(LabScenario(), []string{material.PureWater, material.Honey, material.Oil})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("well-separated liquids accuracy %v, want ≥ 0.9", res.Accuracy)
	}
	if len(res.GoodSubcarriers) != core.DefaultConfig().GoodSubcarriers {
		t.Errorf("good subcarriers %v", res.GoodSubcarriers)
	}
	if s := res.String(); !strings.Contains(s, "accuracy") {
		t.Error("String() should render the accuracy")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.RawSpreadDeg < 180 {
		t.Errorf("raw spread %v°, want near-uniform", r.RawSpreadDeg)
	}
	if r.DiffSpreadDeg > 60 {
		t.Errorf("phase-difference spread %v°, want tight cluster", r.DiffSpreadDeg)
	}
	if r.DiffSpreadDeg >= r.RawSpreadDeg/3 {
		t.Errorf("no clear contrast: %v vs %v", r.DiffSpreadDeg, r.RawSpreadDeg)
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Outliers3Sig == 0 {
		t.Error("no outliers observed; hardware model should inject them")
	}
	if r.ImpulseExcursions == 0 {
		t.Error("no impulse excursions observed")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Selected) != 4 {
		t.Fatalf("selected = %v", r.Selected)
	}
	// Frequency diversity: max variance well above min.
	min, max := r.Variances[0], r.Variances[0]
	for _, v := range r.Variances {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max < 2*min {
		t.Errorf("variance profile too flat: min %v max %v", min, max)
	}
}

func TestFig7ProposedBeatsLinearFilters(t *testing.T) {
	r, err := Fig7(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	prop := r.ResidualRMSE["proposed"]
	if prop >= r.RawRMSE {
		t.Errorf("proposed %v not below raw %v", prop, r.RawRMSE)
	}
	// The proposed method must beat the two linear filters (slide,
	// butterworth). The median filter is genuinely strong on impulse noise;
	// the paper's figure shows the proposed best overall, we require it to
	// be at least competitive (within 3x of median).
	if prop >= r.ResidualRMSE["slide"] {
		t.Errorf("proposed %v not below slide %v", prop, r.ResidualRMSE["slide"])
	}
	if prop >= r.ResidualRMSE["butterworth"] {
		t.Errorf("proposed %v not below butterworth %v", prop, r.ResidualRMSE["butterworth"])
	}
	if prop > 3*r.ResidualRMSE["median"] {
		t.Errorf("proposed %v not competitive with median %v", prop, r.ResidualRMSE["median"])
	}
}

func TestFig8RatioMostStable(t *testing.T) {
	r, err := Fig8(fastOpt())
	// Robust variances: outlier/impulse events are what the later pipeline
	// stage removes; Fig. 8's stability claim is about the common-mode
	// variation that the ratio cancels.
	if err != nil {
		t.Fatal(err)
	}
	var m1, m2, mr float64
	for sub := range r.Ant1 {
		m1 += r.Ant1[sub]
		m2 += r.Ant2[sub]
		mr += r.Ratio[sub]
	}
	if mr >= m1 || mr >= m2 {
		t.Errorf("ratio variance %v not below antennas %v / %v", mr, m1, m2)
	}
}

func TestFig9FeatureSeparability(t *testing.T) {
	r, err := Fig9(Options{Trials: 14, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mean) != 5 {
		t.Fatalf("means = %v", r.Mean)
	}
	// At least 8 of the 10 liquid pairs must separate on some antenna pair
	// (vinegar/milk genuinely overlap on the Ω̄ scalar; the classifier's
	// full feature vector still splits them).
	if got := r.SeparablePairs(); got < 8 {
		t.Errorf("separable pairs = %d/10, want ≥ 8", got)
	}
}

func TestFig10PairsRanked(t *testing.T) {
	r, err := Fig10(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats) != 3 {
		t.Fatalf("stats = %v", r.Stats)
	}
}

func TestFig12CascadeMonotone(t *testing.T) {
	r, err := Fig12(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Report
	if !(rep.RawSpreadDeg > rep.DiffSpreadDeg && rep.DiffSpreadDeg >= rep.GoodSpreadDeg) {
		t.Errorf("cascade not monotone: %v → %v → %v",
			rep.RawSpreadDeg, rep.DiffSpreadDeg, rep.GoodSpreadDeg)
	}
}

func TestFig15HeadlineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10-liquid run in -short mode")
	}
	r, err := Fig15(Options{Trials: 14, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 96%. Accept the reproduction band.
	if r.Accuracy < 0.88 {
		t.Errorf("10-liquid accuracy %v, want ≥ 0.88", r.Accuracy)
	}
}

func TestFig16Concentrations(t *testing.T) {
	r, err := Fig16(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.85 {
		t.Errorf("saltwater concentration accuracy %v, want ≥ 0.85", r.Accuracy)
	}
}

func TestFig19DiffractionCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep in -short mode")
	}
	r, err := Fig19(Options{Trials: 14, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.Series["overall"]
	if len(accs) != 5 {
		t.Fatalf("accs = %v", accs)
	}
	// Large containers fine; the sub-wavelength beaker collapses.
	if accs[0] < 0.8 {
		t.Errorf("size 1 accuracy %v, want ≥ 0.8", accs[0])
	}
	if accs[4] >= accs[0]-0.2 {
		t.Errorf("no diffraction cliff: size1 %v vs size5 %v", accs[0], accs[4])
	}
}

func TestFig20ContainersComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("container sweep in -short mode")
	}
	r, err := Fig20(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Series["glass"][0]
	p := r.Series["plastic"][0]
	diff := g - p
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.25 {
		t.Errorf("glass %v vs plastic %v differ too much (container should cancel)", g, p)
	}
}

func TestAblationMetalCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("metal ablation in -short mode")
	}
	r, err := AblationMetalContainer(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	plastic := r.Series["plastic"][0]
	metal := r.Series["metal"][0]
	if metal >= plastic-0.2 {
		t.Errorf("metal %v not clearly below plastic %v", metal, plastic)
	}
}

func TestFig14DenoisingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("denoise ablation in -short mode")
	}
	r, err := Fig14(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var with, without float64
	for i := range r.Liquids {
		with += r.WithDenoise[i]
		without += r.Without[i]
	}
	if with <= without {
		t.Errorf("denoising did not help on average: %v vs %v", with, without)
	}
}

func TestAblationAbsoluteFeatureCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("absolute-feature ablation in -short mode")
	}
	r, err := AblationAbsoluteFeature(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	diff := r.Series["wimi-differential"][0]
	abs := r.Series["absolute (TagScan-style)"][0]
	// The paper's motivating claim: absolute phase/amplitude features do
	// not survive commodity Wi-Fi hardware.
	if abs >= diff-0.2 {
		t.Errorf("absolute features %v not clearly below differential %v", abs, diff)
	}
}

func TestAblationMovingTargetDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("moving-target ablation in -short mode")
	}
	r, err := AblationMovingTarget(Options{Trials: 10, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.Series["accuracy"]
	if accs[len(accs)-1] >= accs[0]-0.1 {
		t.Errorf("fast motion %v not clearly below static %v", accs[len(accs)-1], accs[0])
	}
}

func TestExtensionConcentrationAccurate(t *testing.T) {
	if testing.Short() {
		t.Skip("concentration extension in -short mode")
	}
	r, err := ExtensionConcentration(Options{Trials: 12, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The training grid spans 0..6 g/100ml; useful estimation means an MAE
	// well under one grid step.
	if r.MAE > 0.6 {
		t.Errorf("concentration MAE = %v g/100ml, want < 0.6", r.MAE)
	}
	if len(r.Estimates) == 0 || len(r.Estimates) != len(r.TestConcentrations) {
		t.Errorf("result shape: %d estimates for %d truths", len(r.Estimates), len(r.TestConcentrations))
	}
}

func TestExtensionDualBandDoesNotHurt(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-band extension in -short mode")
	}
	r, err := ExtensionDualBand(Options{Trials: 12, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.DualBand < r.SingleBand-0.05 {
		t.Errorf("dual-band %v clearly below single-band %v", r.DualBand, r.SingleBand)
	}
}

func TestAblationAntennaCountThreeBeatsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("antenna ablation in -short mode")
	}
	r, err := AblationAntennaCount(Options{Trials: 10, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.Series["accuracy"]
	if accs[1] <= accs[0] {
		t.Errorf("3 antennas (%v) not above 2 (%v)", accs[1], accs[0])
	}
}

func TestAblationPlacementDegradesOffAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("placement ablation in -short mode")
	}
	r, err := AblationPlacement(Options{Trials: 10, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.Series["accuracy"]
	if accs[len(accs)-1] >= accs[0]-0.1 {
		t.Errorf("extreme offset %v not clearly below centred %v", accs[len(accs)-1], accs[0])
	}
}

func TestAblationWaterTemperatureTrainedPointBest(t *testing.T) {
	if testing.Short() {
		t.Skip("temperature ablation in -short mode")
	}
	r, err := AblationWaterTemperature(Options{Trials: 10, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := r.Series["recognised as water"]
	// Index 2 is the trained 25 °C point.
	for i, v := range rec {
		if i != 2 && v > rec[2] {
			t.Errorf("off-temperature point %d (%v) recognised better than the trained point (%v)", i, v, rec[2])
		}
	}
	if rec[2] < 0.8 {
		t.Errorf("trained-temperature water recognised only %v", rec[2])
	}
}

func TestAblationInterfererDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("interferer ablation in -short mode")
	}
	r, err := AblationInterferer(Options{Trials: 10, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.Series["accuracy"]
	if accs[1] >= accs[0] {
		t.Errorf("interferer accuracy %v not below clean-link %v", accs[1], accs[0])
	}
}

func TestExtensionMilkQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("milk extension in -short mode")
	}
	r, err := ExtensionMilkQuality(Options{Trials: 10, SplitSeeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both screening tasks must be far above chance (25 % / 33 %).
	if r.DilutionAccuracy < 0.5 {
		t.Errorf("dilution accuracy %v, want ≥ 0.5", r.DilutionAccuracy)
	}
	if r.SpoilageAccuracy < 0.6 {
		t.Errorf("spoilage accuracy %v, want ≥ 0.6", r.SpoilageAccuracy)
	}
}

// tinyOpt keeps the heavyweight sweep tests affordable.
func tinyOpt() Options {
	return Options{Trials: 6, SplitSeeds: 1, BaseSeed: 1}
}

func TestFig17DistanceTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("distance sweep in -short mode")
	}
	r, err := Fig17(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []string{"hall", "lab", "library"} {
		if len(r.Series[env]) != 5 {
			t.Fatalf("%s has %d points", env, len(r.Series[env]))
		}
	}
	// The library's far point must be below its near point (the paper's
	// distance-degradation claim is strongest there).
	lib := r.Series["library"]
	if lib[4] >= lib[0] {
		t.Errorf("library accuracy did not degrade with distance: %v", lib)
	}
}

func TestFig18PacketTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("packet sweep in -short mode")
	}
	r, err := Fig18(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	// 20 packets must beat 3 packets averaged over the environments.
	var at3, at20 float64
	for _, env := range r.SeriesOrder {
		at3 += r.Series[env][0]
		at20 += r.Series[env][3]
	}
	if at20 <= at3 {
		t.Errorf("mean accuracy at 20 packets (%v) not above 3 packets (%v)", at20/3, at3/3)
	}
}

func TestFig21AllPairsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("pair sweep in -short mode")
	}
	r, err := Fig21(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []string{"1&2", "1&3", "2&3"} {
		series := r.Series[pair]
		// Three per-liquid points plus the overall mean.
		if len(series) != 4 {
			t.Fatalf("pair %s has %d points, want 4", pair, len(series))
		}
		if series[len(series)-1] < 0.3 {
			t.Errorf("pair %s overall accuracy %v implausibly low", pair, series[len(series)-1])
		}
	}
}

func TestFig13Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("subcarrier study in -short mode")
	}
	r, err := Fig13(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 5 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	// The full calibrated set is the best or tied-best arm.
	full := r.Entries[len(r.Entries)-1].Accuracy
	for _, e := range r.Entries[:len(r.Entries)-1] {
		if e.Accuracy > full+0.1 {
			t.Errorf("%s (%v) clearly beats the full good set (%v)", e.Name, e.Accuracy, full)
		}
	}
}

func TestSweepResultString(t *testing.T) {
	r := &SweepResult{
		Title:       "test",
		XLabels:     []string{"a", "b"},
		SeriesOrder: []string{"s"},
		Series:      map[string][]float64{"s": {0.5, 0.75}},
		Note:        "note",
	}
	out := r.String()
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "75.0%") || !strings.Contains(out, "note") {
		t.Errorf("render missing pieces:\n%s", out)
	}
}

func TestExtensionResultRendering(t *testing.T) {
	// The result types must render every field a reader needs, without
	// running the (expensive) experiments.
	conc := &ConcentrationResult{
		TestConcentrations: []float64{1.5},
		Estimates:          []float64{1.42},
		Interpolated:       []bool{true},
		MAE:                0.08,
	}
	if out := conc.String(); !strings.Contains(out, "1.42") || !strings.Contains(out, "INTERPOLATED") {
		t.Errorf("concentration render incomplete:\n%s", out)
	}
	dual := &DualBandResult{SingleBand: 0.9, DualBand: 0.922}
	if out := dual.String(); !strings.Contains(out, "92.2%") {
		t.Errorf("dual-band render incomplete:\n%s", out)
	}
	milk := &MilkQualityResult{DilutionAccuracy: 0.819, SpoilageAccuracy: 0.926}
	if out := milk.String(); !strings.Contains(out, "81.9%") || !strings.Contains(out, "92.6%") {
		t.Errorf("milk render incomplete:\n%s", out)
	}
	unknown := &UnknownLiquidResult{HeldOut: "liquor", DetectionRate: 1, FalseUnknownRate: 0.056, Threshold: 3}
	if out := unknown.String(); !strings.Contains(out, "liquor") || !strings.Contains(out, "100.0%") {
		t.Errorf("unknown render incomplete:\n%s", out)
	}
	f13 := &Fig13Result{Entries: []Fig13Entry{{Name: "good", Subcarriers: []int{1, 2}, Accuracy: 0.97}}}
	if out := f13.String(); !strings.Contains(out, "97.0%") {
		t.Errorf("fig13 render incomplete:\n%s", out)
	}
	f14 := &Fig14Result{Liquids: []string{"milk"}, WithDenoise: []float64{0.9}, Without: []float64{0.5}}
	if out := f14.String(); !strings.Contains(out, "90.0%") || !strings.Contains(out, "50.0%") {
		t.Errorf("fig14 render incomplete:\n%s", out)
	}
}
