package experiment

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/material"
)

// TestRunClassificationDeterministicAcrossWorkerCounts pins the central
// guarantee of the parallel evaluation harness: the scientific output is a
// pure function of (scenarios, BaseSeed) and never of the worker count.
// Every accuracy, the accuracy spread, the calibrated subcarrier set and
// every confusion count must match exactly — not within a tolerance —
// between a serial run and a heavily oversubscribed pool. Run under -race
// (as `make check` does) this doubles as the data-race check on the pool.
func TestRunClassificationDeterministicAcrossWorkerCounts(t *testing.T) {
	items, err := LiquidScenarios(LabScenario(), []string{material.PureWater, material.Honey, material.Oil})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *ClassificationResult {
		t.Helper()
		opt := fastOpt()
		opt.Workers = workers
		res, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	pooled := run(8)
	if serial.Accuracy != pooled.Accuracy {
		t.Errorf("accuracy differs across worker counts: %v serial vs %v with 8 workers", serial.Accuracy, pooled.Accuracy)
	}
	if serial.AccuracyStd != pooled.AccuracyStd {
		t.Errorf("accuracy std differs: %v serial vs %v with 8 workers", serial.AccuracyStd, pooled.AccuracyStd)
	}
	if !reflect.DeepEqual(serial.GoodSubcarriers, pooled.GoodSubcarriers) {
		t.Errorf("calibrated subcarriers differ: %v serial vs %v with 8 workers", serial.GoodSubcarriers, pooled.GoodSubcarriers)
	}
	if s, p := serial.Confusion.String(), pooled.Confusion.String(); s != p {
		t.Errorf("confusion matrices differ:\nserial:\n%s\n8 workers:\n%s", s, p)
	}
}

// TestSweepDeterministicAcrossWorkerCounts covers the nested case: a sweep
// fans points out over the pool and each point's RunClassification fans out
// again. The full result table must still be independent of the pool size.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *SweepResult {
		t.Helper()
		opt := Options{Trials: 4, SplitSeeds: 2, BaseSeed: 7, Workers: workers}
		r, err := Fig20(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	if serial, pooled := run(1), run(8); !reflect.DeepEqual(serial, pooled) {
		t.Errorf("sweep result differs across worker counts:\nserial: %+v\n8 workers: %+v", serial, pooled)
	}
}
