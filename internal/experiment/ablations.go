package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dwt"
	"repro/internal/material"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/propagation"
	"repro/internal/simulate"
)

// AblationWavelet sweeps the mother wavelet of the correlation denoiser —
// a design choice the paper leaves unstated.
func AblationWavelet(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — wavelet family for the correlation denoiser",
		SeriesOrder: []string{"haar", "db2", "db4", "sym4"},
		Series:      make(map[string][]float64),
		Note:        "20-packet captures favour short-support wavelets (more decomposition levels)",
	}
	res.XLabels = []string{"overall"}
	items, err := LiquidScenarios(LabScenario(), MicrobenchLiquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: wavelet ablation: %w", err)
	}
	points, err := classificationSeries(len(res.SeriesOrder), opt, func(i int) (*ClassificationResult, error) {
		name := res.SeriesOrder[i]
		w, err := dwt.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiment: wavelet ablation: %w", err)
		}
		cfg := core.DefaultConfig()
		cfg.Wavelet = w
		cls, err := RunClassification(items, cfg, core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: wavelet ablation %s: %w", name, err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range res.SeriesOrder {
		res.Series[name] = append(res.Series[name], points[i].Accuracy)
	}
	return res, nil
}

// AblationSubcarrierCount sweeps P, the number of good subcarriers.
func AblationSubcarrierCount(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	counts := []int{2, 4, 8, 12, 16, 24}
	res := &SweepResult{
		Title:       "Ablation — number of good subcarriers P",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
		Note:        "the paper illustrates P=4; accuracy keeps improving with more good subcarriers before flattening",
	}
	items, err := LiquidScenarios(LabScenario(), MicrobenchLiquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: P ablation: %w", err)
	}
	for _, p := range counts {
		res.XLabels = append(res.XLabels, fmt.Sprintf("P=%d", p))
	}
	points, err := classificationSeries(len(counts), opt, func(i int) (*ClassificationResult, error) {
		cfg := core.DefaultConfig()
		cfg.GoodSubcarriers = counts[i]
		cls, err := RunClassification(items, cfg, core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: P=%d: %w", counts[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range points {
		res.Series["accuracy"] = append(res.Series["accuracy"], cls.Accuracy)
	}
	return res, nil
}

// AblationClassifier compares the paper's SVM with the kNN baseline.
func AblationClassifier(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — classifier backend (10 liquids, lab)",
		SeriesOrder: []string{"svm-rbf", "knn-3"},
		Series:      make(map[string][]float64),
	}
	res.XLabels = []string{"overall"}
	items, err := LiquidScenarios(LabScenario(), Fig15Liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: classifier ablation: %w", err)
	}
	for _, spec := range []struct {
		name string
		cfg  core.IdentifierConfig
	}{
		{"svm-rbf", core.IdentifierConfig{Kind: core.ClassifierSVM}},
		{"knn-3", core.IdentifierConfig{Kind: core.ClassifierKNN}},
	} {
		cls, err := RunClassification(items, core.DefaultConfig(), spec.cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: classifier %s: %w", spec.name, err)
		}
		res.Series[spec.name] = append(res.Series[spec.name], cls.Accuracy)
	}
	return res, nil
}

// AblationMetalContainer demonstrates the failure mode of the paper's
// Discussion: with a metal container the RF signal reflects instead of
// penetrating and identification collapses toward chance.
func AblationMetalContainer(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — metal container failure mode (paper Discussion)",
		SeriesOrder: []string{"plastic", "metal"},
		Series:      make(map[string][]float64),
		Note:        "metal reflects the signal; accuracy should collapse toward chance (20% for 5 classes)",
	}
	res.XLabels = []string{"overall"}
	for _, container := range []material.ContainerMaterial{material.ContainerPlastic, material.ContainerMetal} {
		base := LabScenario()
		base.Container = container
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: metal ablation: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: metal ablation %s: %w", container.Name, err)
		}
		res.Series[container.Name] = append(res.Series[container.Name], cls.Accuracy)
	}
	return res, nil
}

// AblationSNR sweeps the hardware thermal SNR to map the pipeline's noise
// tolerance (an extension beyond the paper).
func AblationSNR(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	snrs := []float64{10, 16, 22, 28, 34}
	res := &SweepResult{
		Title:       "Ablation — identification accuracy vs hardware SNR",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
	}
	for _, snr := range snrs {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%gdB", snr))
	}
	points, err := classificationSeries(len(snrs), opt, func(i int) (*ClassificationResult, error) {
		base := LabScenario()
		base.Hardware.SNRdB = snrs[i]
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: snr ablation: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: snr %gdB: %w", snrs[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range points {
		res.Series["accuracy"] = append(res.Series["accuracy"], cls.Accuracy)
	}
	return res, nil
}

// AblationMovingTarget reproduces the Discussion's third limitation: "our
// current system can only identify the material type of a static liquid.
// When the target is moving ... it is then challenging to perform material
// identification". The container drifts laterally during each capture.
func AblationMovingTarget(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	drifts := []float64{0, 0.0005, 0.001, 0.002, 0.004} // m per packet
	res := &SweepResult{
		Title:       "Ablation — moving target (paper Discussion: static liquids only)",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
		Note:        "lateral drift during the 20-packet capture; 2 mm/packet ≈ 4 cm total motion",
	}
	for _, d := range drifts {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%.1fmm/pkt", d*1000))
	}
	points, err := classificationSeries(len(drifts), opt, func(i int) (*ClassificationResult, error) {
		base := LabScenario()
		base.TargetDriftPerPacket = drifts[i]
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: moving target: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: moving target %.4f: %w", drifts[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range points {
		res.Series["accuracy"] = append(res.Series["accuracy"], cls.Accuracy)
	}
	return res, nil
}

// AblationAbsoluteFeature reproduces the paper's core motivation claim
// (Sec. III-D): "the material identification feature introduced in [3]
// (TagScan) does not work with commodity Wi-Fi devices". It classifies the
// same measurements two ways — with WiMi's differential features
// (phase difference / amplitude ratio between antennas) and with the
// TagScan-style absolute per-antenna phase/amplitude changes — and shows
// the absolute features collapse under the CFO/SFO/PBD of Eq. 5.
func AblationAbsoluteFeature(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — WiMi differential features vs TagScan-style absolute features",
		SeriesOrder: []string{"wimi-differential", "absolute (TagScan-style)"},
		Series:      make(map[string][]float64),
		Note:        "paper Sec. III-D: absolute phase/amplitude features cannot work on commodity Wi-Fi",
	}
	res.XLabels = []string{"overall"}
	items, err := LiquidScenarios(LabScenario(), MicrobenchLiquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: absolute ablation: %w", err)
	}
	// Differential arm: the standard engine.
	diff, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: absolute ablation (differential): %w", err)
	}
	res.Series["wimi-differential"] = append(res.Series["wimi-differential"], diff.Accuracy)

	// Absolute arm: same sessions, TagScan-style features.
	abs, err := runAbsoluteClassification(items, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: absolute ablation (absolute): %w", err)
	}
	res.Series["absolute (TagScan-style)"] = append(res.Series["absolute (TagScan-style)"], abs)
	return res, nil
}

// runAbsoluteClassification mirrors RunClassification but extracts the
// absolute (per-antenna) features.
func runAbsoluteClassification(items []LabeledScenario, opt Options) (float64, error) {
	opt = opt.withDefaults()
	var all []labeledSession
	for ci, item := range items {
		ts, err := trialSessions(item, opt.Trials, classSeed(opt.BaseSeed, ci), opt.Workers)
		if err != nil {
			return 0, err
		}
		all = append(all, ts...)
	}
	cfg := core.DefaultConfig()
	good, err := core.CalibrateSubcarriers(sessionsOf(all), core.AntennaPair{A: 0, B: 1}, cfg.GoodSubcarriers)
	if err != nil {
		return 0, err
	}
	cfg.ForcedSubcarriers = good
	ds := &classify.Dataset{}
	for _, it := range all {
		vec, err := core.ExtractAbsoluteFeatures(it.session, cfg)
		if err != nil {
			return 0, err
		}
		ds.Append(vec, it.label)
	}
	accs := make([]float64, opt.SplitSeeds)
	err = parallel.ForEach(opt.SplitSeeds, opt.Workers, func(split int) error {
		rng := rand.New(rand.NewSource(splitRandSeed(opt.BaseSeed, split)))
		train, test, err := classify.SplitTrainTest(ds, opt.TestFraction, rng)
		if err != nil {
			return err
		}
		id, err := core.TrainIdentifierOnFeatures(train, core.IdentifierConfig{})
		if err != nil {
			return err
		}
		correct := 0
		for i := range test.X {
			if id.IdentifyFeatures(test.X[i]) == test.Labels[i] {
				correct++
			}
		}
		accs[split] = float64(correct) / float64(len(test.X))
		return nil
	})
	if err != nil {
		return 0, err
	}
	return mathx.Mean(accs), nil
}

// AblationSizeTransfer trains on the largest container and tests on the
// smaller ones — the direct test of Ω̄'s size independence claim, beyond
// Fig. 19's per-size evaluation.
func AblationSizeTransfer(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	liquids := []string{material.PureWater, material.Honey, material.Oil}
	res := &SweepResult{
		Title:       "Ablation — train on 14.3 cm container, test on smaller sizes",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
		Note:        "Ω̄ is size-independent: transfer should hold until the diffraction regime",
	}
	// Train set: large container.
	trainBase := LabScenario()
	trainItems, err := LiquidScenarios(trainBase, liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: size transfer: %w", err)
	}
	var trainSessions []labeledSession
	for ci, item := range trainItems {
		ts, err := trialSessions(item, opt.Trials, classSeed(opt.BaseSeed, ci), opt.Workers)
		if err != nil {
			return nil, err
		}
		trainSessions = append(trainSessions, ts...)
	}
	// Transfer across sizes relies on the size-independent scalar Ω̄: the
	// auxiliary ΔΘ / −ln ΔΨ components scale with the in-target paths and
	// would anchor the classifier to the training container's size.
	pipeline := core.DefaultConfig()
	pipeline.OmegaOnlyFeatures = true
	idCfg := core.IdentifierConfig{Pipeline: pipeline}
	id, forced, err := trainOnSessions(trainSessions, idCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: size transfer training: %w", err)
	}
	for _, d := range []float64{0.11, 0.089, 0.061, 0.032} {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%.1fcm", d*100))
		testBase := LabScenario()
		testBase.Diameter = d
		testItems, err := LiquidScenarios(testBase, liquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: size transfer: %w", err)
		}
		correct, total := 0, 0
		for ci, item := range testItems {
			ts, err := trialSessions(item, opt.Trials/2, opt.BaseSeed+9_000_000+int64(ci)*999, opt.Workers)
			if err != nil {
				return nil, err
			}
			for _, s := range ts {
				pipeline := idCfg.Pipeline
				pipeline.ForcedSubcarriers = forced
				feats, err := core.ExtractFeatures(s.session, pipeline)
				if err != nil {
					return nil, fmt.Errorf("experiment: size transfer features: %w", err)
				}
				if id.IdentifyFeatures(feats.Vector) == s.label {
					correct++
				}
				total++
			}
		}
		res.Series["accuracy"] = append(res.Series["accuracy"], float64(correct)/float64(total))
	}
	return res, nil
}

// AblationPlacement sweeps the container's lateral offset from the LoS
// axis — a deployment question the paper does not study: how precisely must
// the target be positioned?
func AblationPlacement(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	offsets := []float64{0.0, 0.012, 0.025, 0.04, 0.055}
	res := &SweepResult{
		Title:       "Ablation — container lateral offset from the LoS axis",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
		Note:        "the 14.3 cm beaker has a 7.15 cm radius; beyond ~5 cm offset some antenna rays start missing it",
	}
	for _, off := range offsets {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%.1fcm", off*100))
	}
	points, err := classificationSeries(len(offsets), opt, func(i int) (*ClassificationResult, error) {
		base := LabScenario()
		base.LateralOffset = offsets[i]
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: placement ablation: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: placement %.3f: %w", offsets[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range points {
		res.Series["accuracy"] = append(res.Series["accuracy"], cls.Accuracy)
	}
	return res, nil
}

// AblationAntennaCount compares a 2-antenna receiver (one pair) with the
// 5300's 3 antennas (three pairs) and a hypothetical 4-antenna board —
// quantifying Sec. III-F's "more antenna pairs help" argument.
func AblationAntennaCount(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — receiver antenna count (Sec. III-F)",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
		Note:        "p antennas give p(p−1)/2 phase-difference/amplitude-ratio pairs",
	}
	antCounts := []int{2, 3, 4}
	for _, n := range antCounts {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%d ant", n))
	}
	points, err := classificationSeries(len(antCounts), opt, func(i int) (*ClassificationResult, error) {
		base := LabScenario()
		base.NumAntennas = antCounts[i]
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: antenna ablation: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: %d antennas: %w", antCounts[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range points {
		res.Series["accuracy"] = append(res.Series["accuracy"], cls.Accuracy)
	}
	return res, nil
}

// AblationWaterTemperature trains the identifier on room-temperature water
// (25 °C) among other liquids and tests against colder and warmer water —
// the Debye parameters drift with temperature, so this measures how
// temperature-robust a deployed material database is.
func AblationWaterTemperature(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	temps := []float64{5, 15, 25, 35, 45}
	res := &SweepResult{
		Title:       "Ablation — water temperature vs a 25 °C-trained database",
		SeriesOrder: []string{"recognised as water"},
		Series:      make(map[string][]float64),
		Note:        "water's εs and τ drift with temperature; far from 25 °C it stops looking like the trained 'pure-water'",
	}
	// Train on the standard database (water at 25 °C).
	liquids := []string{material.PureWater, material.Milk, material.Honey, material.Oil}
	items, err := LiquidScenarios(LabScenario(), liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: temperature ablation: %w", err)
	}
	var trainSessions []labeledSession
	for ci, item := range items {
		ts, err := trialSessions(item, opt.Trials, classSeed(opt.BaseSeed, ci), opt.Workers)
		if err != nil {
			return nil, err
		}
		trainSessions = append(trainSessions, ts...)
	}
	idCfg := core.IdentifierConfig{Pipeline: core.DefaultConfig()}
	id, forced, err := trainOnSessions(trainSessions, idCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: temperature training: %w", err)
	}
	pipeline := idCfg.Pipeline
	pipeline.ForcedSubcarriers = forced
	for _, temp := range temps {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%.0f°C", temp))
		water := material.WaterAtTemperature(temp)
		base := LabScenario()
		base.Liquid = &water
		correct, total := 0, 0
		for trial := 0; trial < opt.Trials/2; trial++ {
			session, err := simulate.Session(base, opt.BaseSeed+8_000_000+int64(trial)*7919)
			if err != nil {
				return nil, fmt.Errorf("experiment: temperature %v: %w", temp, err)
			}
			feats, err := core.ExtractFeatures(session, pipeline)
			if err != nil {
				return nil, fmt.Errorf("experiment: temperature %v: %w", temp, err)
			}
			if id.IdentifyFeatures(feats.Vector) == material.PureWater {
				correct++
			}
			total++
		}
		res.Series["recognised as water"] = append(res.Series["recognised as water"],
			float64(correct)/float64(total))
	}
	return res, nil
}

// AblationInterferer reproduces the Discussion's multi-target limitation:
// a second liquid container standing elsewhere on the link. The interferer
// is present in both captures (it is not the object under test), yet its
// interaction with the moving baseline/target difference degrades
// identification.
func AblationInterferer(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — second container on the link (paper Discussion: one target at a time)",
		SeriesOrder: []string{"accuracy"},
		Series:      make(map[string][]float64),
		Note:        "interferer: a soy-sauce bottle at 30% of the link, present in both captures",
	}
	db := material.PaperDatabase()
	soy, err := db.Get(material.Soy)
	if err != nil {
		return nil, fmt.Errorf("experiment: interferer ablation: %w", err)
	}
	for _, withInterferer := range []bool{false, true} {
		label := "none"
		if withInterferer {
			label = "soy bottle"
		}
		res.XLabels = append(res.XLabels, label)
		base := LabScenario()
		if withInterferer {
			base.Interferer = &propagation.Target{
				Liquid:        &soy,
				Container:     material.ContainerGlass,
				Diameter:      0.10,
				LateralOffset: 0.02,
			}
		}
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: interferer ablation: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: interferer %v: %w", withInterferer, err)
		}
		res.Series["accuracy"] = append(res.Series["accuracy"], cls.Accuracy)
	}
	return res, nil
}

// AblationAutoTune compares the fixed default SVM hyperparameters with
// cross-validated grid search — quantifying how much headroom tuning buys
// on the 10-liquid task.
func AblationAutoTune(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	res := &SweepResult{
		Title:       "Ablation — SVM hyperparameters: defaults vs 4-fold grid search",
		SeriesOrder: []string{"defaults (C=1, γ=1)", "auto-tuned"},
		Series:      make(map[string][]float64),
	}
	res.XLabels = []string{"overall"}
	items, err := LiquidScenarios(LabScenario(), Fig15Liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: autotune ablation: %w", err)
	}
	for _, tune := range []bool{false, true} {
		name := res.SeriesOrder[0]
		if tune {
			name = res.SeriesOrder[1]
		}
		cls, err := RunClassification(items, core.DefaultConfig(),
			core.IdentifierConfig{AutoTune: tune}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: autotune=%v: %w", tune, err)
		}
		res.Series[name] = append(res.Series[name], cls.Accuracy)
	}
	return res, nil
}
