package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/dwt"
	"repro/internal/filter"
	"repro/internal/linalg"
	"repro/internal/material"
	"repro/internal/mathx"
	"repro/internal/propagation"
	"repro/internal/simulate"
)

// Fig2Result quantifies the phase distributions of Fig. 2: raw phase across
// packets (grey dots, expected ≈ uniform over the circle) versus the
// inter-antenna phase difference (red dots, expected ≈ 18° cluster).
type Fig2Result struct {
	RawSpreadDeg  float64
	DiffSpreadDeg float64
	Packets       int
}

// String implements fmt.Stringer.
func (r *Fig2Result) String() string {
	return fmt.Sprintf("Fig 2 — phase distributions over %d packets\n"+
		"  raw CSI phase spread:            %6.1f°   (paper: ~uniform over 360°)\n"+
		"  antenna phase-difference spread: %6.1f°   (paper: ≈18°)\n",
		r.Packets, r.RawSpreadDeg, r.DiffSpreadDeg)
}

// Fig2 runs the raw-phase versus phase-difference comparison in the lab.
func Fig2(opt Options) (*Fig2Result, error) {
	opt = opt.withDefaults()
	sc := LabScenario()
	sc.Packets = 200
	session, err := simulate.Session(sc, opt.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig2: %w", err)
	}
	// Illustrate with a typical (median-variance) subcarrier, as the
	// paper's single-subcarrier plot does.
	ref, err := medianVarianceSubcarrier(&session.Baseline)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig2: %w", err)
	}
	raw, err := session.Baseline.PhaseSeries(0, ref)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig2: %w", err)
	}
	diff, err := session.Baseline.PhaseDiffSeries(0, 1, ref)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig2: %w", err)
	}
	return &Fig2Result{
		RawSpreadDeg:  mathx.AngularSpreadDeg(raw),
		DiffSpreadDeg: mathx.AngularSpreadDeg(diff),
		Packets:       sc.Packets,
	}, nil
}

// medianVarianceSubcarrier returns the subcarrier whose phase-difference
// variance is the median of the capture — a "typical" subcarrier for the
// single-subcarrier illustrations of Figs. 2 and 12.
func medianVarianceSubcarrier(c *csi.Capture) (int, error) {
	variances, err := core.SubcarrierVariances(c, core.AntennaPair{A: 0, B: 1})
	if err != nil {
		return 0, err
	}
	order := mathx.ArgSort(variances)
	return order[len(order)/2], nil
}

// Fig3Result quantifies the raw amplitude pathologies of Fig. 3.
type Fig3Result struct {
	Packets      int
	MeanAmp      float64
	StdAmp       float64
	Outliers3Sig int
	// ImpulseExcursions counts samples more than 50% above the median —
	// the "comparable to the useful signals" bursts.
	ImpulseExcursions int
}

// String implements fmt.Stringer.
func (r *Fig3Result) String() string {
	return fmt.Sprintf("Fig 3 — raw CSI amplitude over %d packets\n"+
		"  mean |H| %.3f, std %.3f\n"+
		"  outliers beyond 3σ:        %d (paper: 'substantial outliers')\n"+
		"  impulse excursions (>1.5×median): %d (paper: 'impulse noise ... comparable to the useful signals')\n",
		r.Packets, r.MeanAmp, r.StdAmp, r.Outliers3Sig, r.ImpulseExcursions)
}

// Fig3 measures the raw amplitude noise structure in the lab.
func Fig3(opt Options) (*Fig3Result, error) {
	opt = opt.withDefaults()
	sc := LabScenario()
	sc.Packets = 300
	session, err := simulate.Session(sc, opt.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig3: %w", err)
	}
	amps, err := session.Baseline.AmplitudeSeries(0, 10)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig3: %w", err)
	}
	_, mask := filter.RejectOutliers3Sigma(amps)
	outliers := 0
	for _, m := range mask {
		if m {
			outliers++
		}
	}
	med := mathx.Median(amps)
	impulses := 0
	for _, a := range amps {
		if a > 1.5*med {
			impulses++
		}
	}
	return &Fig3Result{
		Packets:           sc.Packets,
		MeanAmp:           mathx.Mean(amps),
		StdAmp:            mathx.StdDev(amps),
		Outliers3Sig:      outliers,
		ImpulseExcursions: impulses,
	}, nil
}

// Fig6Result is the per-subcarrier phase-difference variance profile and
// the selected 'good' subcarriers.
type Fig6Result struct {
	Variances [csi.NumSubcarriers]float64
	Selected  []int
}

// String implements fmt.Stringer.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 6 — phase-difference variance per subcarrier (P=4 selection)\n")
	for sub, v := range r.Variances {
		marker := ""
		for _, s := range r.Selected {
			if s == sub {
				marker = "  <-- good"
			}
		}
		fmt.Fprintf(&b, "  subcarrier %2d: %.5f%s\n", sub, v, marker)
	}
	fmt.Fprintf(&b, "  selected good subcarriers: %v (paper example: 5, 20, 23, 24)\n", r.Selected)
	return b.String()
}

// Fig6 computes the variance profile in the lab with the default milk
// target (footnote 2: "the default target material is milk").
func Fig6(opt Options) (*Fig6Result, error) {
	opt = opt.withDefaults()
	sc, err := withLiquid(LabScenario(), material.Milk)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	sc.Packets = 100
	session, err := simulate.Session(sc, opt.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	pair := core.AntennaPair{A: 0, B: 1}
	vb, err := core.SubcarrierVariances(&session.Baseline, pair)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	vt, err := core.SubcarrierVariances(&session.Target, pair)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	var res Fig6Result
	for i := range res.Variances {
		res.Variances[i] = vb[i] + vt[i]
	}
	res.Selected, err = core.SelectGoodSubcarriersSession(session, pair, 4)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	return &res, nil
}

// Fig7Result compares denoising methods on an impulse-corrupted amplitude
// stream: the paper's wavelet-correlation method versus median, slide and
// Butterworth filters. Lower residual RMSE is better.
type Fig7Result struct {
	// ResidualRMSE maps method name to RMSE against the clean signal.
	ResidualRMSE map[string]float64
	// RawRMSE is the RMSE of the corrupted input.
	RawRMSE float64
}

// String implements fmt.Stringer.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 7 — amplitude denoising comparison (residual RMSE vs clean signal)\n")
	fmt.Fprintf(&b, "  raw (no filtering):     %.4f\n", r.RawRMSE)
	for _, m := range []string{"median", "slide", "butterworth", "pca (CARM/WiKey-style)", "proposed"} {
		fmt.Fprintf(&b, "  %-24s %.4f\n", m+":", r.ResidualRMSE[m])
	}
	b.WriteString("  (paper: 'our method has the best noise removal performance';\n" +
		"   PCA is the Related-Work baseline the paper calls 'not stable enough')\n")
	return b.String()
}

// Fig7 builds the paper's denoising scenario: a smooth amplitude stream
// plus outliers and impulse noise, filtered four ways.
func Fig7(opt Options) (*Fig7Result, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.BaseSeed))
	n := 512
	clean := make([]float64, n)
	dirty := make([]float64, n)
	for i := range clean {
		t := float64(i)
		clean[i] = 12 + 1.5*math.Sin(t*0.03) + 0.6*math.Cos(t*0.075)
		dirty[i] = clean[i] + rng.NormFloat64()*0.12
		if rng.Float64() < 0.05 { // impulse noise
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			dirty[i] += sign * (6 + 6*rng.Float64())
		}
		if rng.Float64() < 0.01 { // gross outliers
			dirty[i] *= 3.5
		}
	}
	rmse := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - clean[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(x)))
	}
	res := &Fig7Result{ResidualRMSE: make(map[string]float64), RawRMSE: rmse(dirty)}

	med, err := filter.Median(dirty, 5)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig7 median: %w", err)
	}
	res.ResidualRMSE["median"] = rmse(med)

	slide, err := filter.Slide(dirty, 5)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig7 slide: %w", err)
	}
	res.ResidualRMSE["slide"] = rmse(slide)

	bw, err := filter.NewButterworth(4, 0.15)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig7 butterworth: %w", err)
	}
	res.ResidualRMSE["butterworth"] = rmse(bw.FiltFilt(dirty))

	// CARM/WiKey-style PCA denoising: the dirty stream plus 15 correlated
	// sibling subcarrier streams (same latent signal, independent noise and
	// impulses), keep the dominant component.
	channels := make([][]float64, n)
	for i := range channels {
		row := make([]float64, 16)
		row[0] = dirty[i]
		for c := 1; c < 16; c++ {
			row[c] = clean[i] + rng.NormFloat64()*0.12
			if rng.Float64() < 0.05 {
				row[c] += 6 + 6*rng.Float64()
			}
		}
		channels[i] = row
	}
	pcaDen, err := linalg.DenoiseSeriesPCA(channels, 1)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig7 pca: %w", err)
	}
	pcaOut := make([]float64, n)
	for i := range pcaOut {
		pcaOut[i] = pcaDen[i][0]
	}
	res.ResidualRMSE["pca (CARM/WiKey-style)"] = rmse(pcaOut)

	// The proposed method: 3σ outlier rejection + wavelet correlation.
	pre, _ := filter.RejectOutliers3Sigma(dirty)
	prop, err := dwt.CorrelationDenoise(pre, &dwt.DenoiseConfig{Wavelet: dwt.DB4})
	if err != nil {
		return nil, fmt.Errorf("experiment: fig7 proposed: %w", err)
	}
	res.ResidualRMSE["proposed"] = rmse(prop)
	return res, nil
}

// Fig8Result is the per-subcarrier amplitude variance of each antenna and
// of their ratio (normalised to each series' squared mean so the scales are
// comparable).
type Fig8Result struct {
	Ant1, Ant2, Ratio [csi.NumSubcarriers]float64
}

// String implements fmt.Stringer.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 8 — normalised amplitude variance per subcarrier\n")
	b.WriteString("  sub   ant1      ant2      ant1/ant2\n")
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		fmt.Fprintf(&b, "  %2d   %.5f   %.5f   %.5f\n", sub, r.Ant1[sub], r.Ant2[sub], r.Ratio[sub])
	}
	var m1, m2, mr float64
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		m1 += r.Ant1[sub]
		m2 += r.Ant2[sub]
		mr += r.Ratio[sub]
	}
	n := float64(csi.NumSubcarriers)
	fmt.Fprintf(&b, "  means: ant1 %.5f, ant2 %.5f, ratio %.5f (paper: ratio has the smallest variance)\n",
		m1/n, m2/n, mr/n)
	return b.String()
}

// Fig8 measures amplitude stability in the lab.
func Fig8(opt Options) (*Fig8Result, error) {
	opt = opt.withDefaults()
	sc := LabScenario()
	sc.Packets = 200
	session, err := simulate.Session(sc, opt.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig8: %w", err)
	}
	var res Fig8Result
	// Robust normalised variance (MAD-based): sparse impulses hit each
	// antenna independently and would otherwise dominate both sides of the
	// comparison; Fig. 8 is about the common-mode fluctuation that the
	// inter-antenna ratio cancels.
	normVar := func(xs []float64) float64 {
		m, s := mathx.MedianAndMADStdDev(xs)
		if m == 0 {
			return 0
		}
		return s * s / (m * m)
	}
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		a1, err := session.Baseline.AmplitudeSeries(0, sub)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig8: %w", err)
		}
		a2, err := session.Baseline.AmplitudeSeries(1, sub)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig8: %w", err)
		}
		ratio, err := session.Baseline.AmplitudeRatioSeries(0, 1, sub)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig8: %w", err)
		}
		res.Ant1[sub] = normVar(a1)
		res.Ant2[sub] = normVar(a2)
		res.Ratio[sub] = normVar(ratio)
	}
	return &res, nil
}

// Fig9Result is the measured material feature per liquid: mean and std of
// Ω̄ over the trials for every antenna pair, against the ground-truth Ω of
// the dielectric model. Indoor multipath mixing shifts the absolute values
// away from the plane-wave truth (each room has its own systematic), but
// the per-liquid clusters must stay separable — the property Fig. 9 shows.
type Fig9Result struct {
	Liquids []string
	// Mean[i][k] / Std[i][k] are the Ω̄ statistics of liquid i on antenna
	// pair k (1&2, 1&3, 2&3).
	Mean  [][3]float64
	Std   [][3]float64
	Truth []float64
}

// String implements fmt.Stringer.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 9 — material feature Ω̄ per liquid and antenna pair (lab)\n")
	b.WriteString("  liquid            pair 1&2          pair 1&3          pair 2&3       truth Ω\n")
	for i, name := range r.Liquids {
		fmt.Fprintf(&b, "  %-14s", name)
		for k := 0; k < 3; k++ {
			fmt.Fprintf(&b, "  %+6.3f ± %.3f", r.Mean[i][k], r.Std[i][k])
		}
		fmt.Fprintf(&b, "   %+7.4f\n", r.Truth[i])
	}
	fmt.Fprintf(&b, "  separable liquid pairs (mean gap > summed std on ≥1 antenna pair): %d of %d\n",
		r.SeparablePairs(), len(r.Liquids)*(len(r.Liquids)-1)/2)
	b.WriteString("  (paper: features separate saltwater/vinegar/Pepsi/milk/pure water)\n")
	return b.String()
}

// SeparablePairs counts liquid pairs whose Ω̄ clusters are separated by
// more than the summed stds on at least one antenna pair.
func (r *Fig9Result) SeparablePairs() int {
	count := 0
	for i := 0; i < len(r.Liquids); i++ {
		for j := i + 1; j < len(r.Liquids); j++ {
			for k := 0; k < 3; k++ {
				d := r.Mean[i][k] - r.Mean[j][k]
				if d < 0 {
					d = -d
				}
				if d > r.Std[i][k]+r.Std[j][k] {
					count++
					break
				}
			}
		}
	}
	return count
}

// Fig9 extracts the material feature for the paper's five benchmark liquids.
func Fig9(opt Options) (*Fig9Result, error) {
	opt = opt.withDefaults()
	liquids := []string{
		"saltwater-2.7g", material.Vinegar, material.Pepsi,
		material.Milk, material.PureWater,
	}
	db := material.PaperDatabase()
	res := &Fig9Result{Liquids: liquids}
	// Calibrate a shared subcarrier set from water sessions.
	calSc, err := withLiquid(LabScenario(), material.PureWater)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig9: %w", err)
	}
	calSessions, err := simulate.TrialSet(calSc, 4, opt.BaseSeed+555)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig9: %w", err)
	}
	cfg := core.DefaultConfig()
	good, err := core.CalibrateSubcarriers(calSessions, core.AntennaPair{A: 0, B: 1}, cfg.GoodSubcarriers)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig9: %w", err)
	}
	cfg.ForcedSubcarriers = good
	for _, name := range liquids {
		m, err := db.Get(name)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig9: %w", err)
		}
		sc, err := withLiquid(LabScenario(), name)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig9: %w", err)
		}
		var omegas [3][]float64
		for trial := 0; trial < opt.Trials; trial++ {
			session, err := simulate.Session(sc, opt.BaseSeed+int64(trial)*7919)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig9: %w", err)
			}
			feats, err := core.ExtractFeatures(session, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig9: %w", err)
			}
			for k := 0; k < 3 && k < len(feats.Pairs); k++ {
				omegas[k] = append(omegas[k], feats.Pairs[k].Omega)
			}
		}
		var mm, ss [3]float64
		for k := 0; k < 3; k++ {
			mm[k] = mathx.Mean(omegas[k])
			ss[k] = mathx.StdDev(omegas[k])
		}
		res.Mean = append(res.Mean, mm)
		res.Std = append(res.Std, ss)
		res.Truth = append(res.Truth, m.Omega(sc.Carrier))
	}
	return res, nil
}

// Fig10Result holds the per-antenna-pair stability of Fig. 10a/b.
type Fig10Result struct {
	Stats []core.PairStability
}

// String implements fmt.Stringer.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 10 — variance per antenna combination (best first)\n")
	b.WriteString("  pair   phase-diff var   amp-ratio var\n")
	for _, s := range r.Stats {
		fmt.Fprintf(&b, "  %-5s  %.5f          %.5f\n", s.Pair, s.PhaseVariance, s.RatioVariance)
	}
	b.WriteString("  (paper: variances differ per combination → pick the most stable pair)\n")
	return b.String()
}

// Fig10 ranks antenna pairs in the lab.
func Fig10(opt Options) (*Fig10Result, error) {
	opt = opt.withDefaults()
	sc := LabScenario()
	sc.Packets = 200
	session, err := simulate.Session(sc, opt.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig10: %w", err)
	}
	cfg := core.DefaultConfig()
	good, err := core.SelectGoodSubcarriersSession(session, core.AntennaPair{A: 0, B: 1}, cfg.GoodSubcarriers)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig10: %w", err)
	}
	stats, err := core.RankPairs(&session.Baseline, good, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig10: %w", err)
	}
	return &Fig10Result{Stats: stats}, nil
}

// Fig12Result is the calibration cascade of Fig. 12.
type Fig12Result struct {
	Report *core.CalibrationReport
}

// String implements fmt.Stringer.
func (r *Fig12Result) String() string {
	return fmt.Sprintf("Fig 12 — phase calibration cascade (library)\n"+
		"  raw phase spread:                 %6.1f°  (paper: 0..360°)\n"+
		"  + antenna phase difference:       %6.1f°  (paper: ≈18°)\n"+
		"  + good-subcarrier selection:      %6.1f°  (paper: ≈5°)\n"+
		"  good subcarriers: %v\n",
		r.Report.RawSpreadDeg, r.Report.DiffSpreadDeg, r.Report.GoodSpreadDeg, r.Report.GoodSubcarriers)
}

// Fig12 runs the cascade in the library environment ("We conduct
// experiments in the library environment to test the phase calibration
// scheme"), 10 s of packets as in the paper.
func Fig12(opt Options) (*Fig12Result, error) {
	opt = opt.withDefaults()
	sc := ScenarioInEnv(propagation.EnvLibrary)
	sc.Packets = 1000 // 10 s at 10 ms per packet
	session, err := simulate.Session(sc, opt.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig12: %w", err)
	}
	ref, err := medianVarianceSubcarrier(&session.Baseline)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig12: %w", err)
	}
	rep, err := core.Calibrate(&session.Baseline, core.AntennaPair{A: 0, B: 1}, ref, 4)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig12: %w", err)
	}
	return &Fig12Result{Report: rep}, nil
}
