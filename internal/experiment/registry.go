package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Runner executes one experiment and returns its printable result.
type Runner func(Options) (fmt.Stringer, error)

// wrapRunner adapts a concrete result type to the Runner signature.
func wrapRunner[T fmt.Stringer](f func(Options) (T, error)) Runner {
	return func(opt Options) (fmt.Stringer, error) {
		r, err := f(opt)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// Registry maps every experiment's canonical name to its runner: the paper
// figures (fig2..fig21), the design ablations (ablation-*) and the
// extensions beyond the paper (ext-*). Both cmd/wimi-bench and the root
// benchmark suite drive experiments through it.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig2":  wrapRunner(Fig2),
		"fig3":  wrapRunner(Fig3),
		"fig6":  wrapRunner(Fig6),
		"fig7":  wrapRunner(Fig7),
		"fig8":  wrapRunner(Fig8),
		"fig9":  wrapRunner(Fig9),
		"fig10": wrapRunner(Fig10),
		"fig12": wrapRunner(Fig12),
		"fig13": wrapRunner(Fig13),
		"fig14": wrapRunner(Fig14),
		"fig15": wrapRunner(Fig15),
		"fig16": wrapRunner(Fig16),
		"fig17": wrapRunner(Fig17),
		"fig18": wrapRunner(Fig18),
		"fig19": wrapRunner(Fig19),
		"fig20": wrapRunner(Fig20),
		"fig21": wrapRunner(Fig21),

		"ablation-wavelet":    wrapRunner(AblationWavelet),
		"ablation-p":          wrapRunner(AblationSubcarrierCount),
		"ablation-classifier": wrapRunner(AblationClassifier),
		"ablation-metal":      wrapRunner(AblationMetalContainer),
		"ablation-snr":        wrapRunner(AblationSNR),
		"ablation-absolute":   wrapRunner(AblationAbsoluteFeature),
		"ablation-motion":     wrapRunner(AblationMovingTarget),
		"ablation-interferer": wrapRunner(AblationInterferer),
		"ablation-placement":  wrapRunner(AblationPlacement),
		"ablation-antennas":   wrapRunner(AblationAntennaCount),
		"ablation-temp":       wrapRunner(AblationWaterTemperature),
		"ablation-autotune":   wrapRunner(AblationAutoTune),
		"ablation-size":       wrapRunner(AblationSizeTransfer),

		"ext-concentration": wrapRunner(ExtensionConcentration),
		"ext-dualband":      wrapRunner(ExtensionDualBand),
		"ext-milk":          wrapRunner(ExtensionMilkQuality),
		"ext-unknown":       wrapRunner(ExtensionUnknownLiquid),
	}
}

// SortedNames returns the registry's names in display order: figures in
// numeric order first, then everything else alphabetically.
func SortedNames(m map[string]Runner) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := strings.HasPrefix(out[i], "fig"), strings.HasPrefix(out[j], "fig")
		if fi != fj {
			return fi
		}
		if fi && fj {
			var a, b int
			// The names are registry-controlled; a parse failure leaves the
			// zero value and sorts deterministically anyway.
			_, _ = fmt.Sscanf(out[i], "fig%d", &a)
			_, _ = fmt.Sscanf(out[j], "fig%d", &b)
			return a < b
		}
		return out[i] < out[j]
	})
	return out
}
