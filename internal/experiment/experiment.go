// Package experiment regenerates every table and figure of the paper's
// evaluation (Figs. 2-3, 6-10, 12-21) plus the design-choice ablations
// called out in DESIGN.md. Each experiment is a pure function from options
// to a typed result whose String() prints the same rows/series the paper
// reports.
//
// Canonical room seeds: the paper measured in one specific hall, lab and
// library; the simulator's equivalent free variable is the scatterer
// constellation seed. The seeds below are the calibrated stand-ins for
// "the rooms the authors happened to measure in" and are documented in
// EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/propagation"
	"repro/internal/simulate"
)

// Canonical per-environment room seeds.
const (
	RoomSeedHall    int64 = 7
	RoomSeedLab     int64 = 7
	RoomSeedLibrary int64 = 1
)

// RoomSeedFor returns the canonical room seed for a paper environment.
func RoomSeedFor(env propagation.Environment) int64 {
	switch env.Name {
	case "hall":
		return RoomSeedHall
	case "library":
		return RoomSeedLibrary
	default:
		return RoomSeedLab
	}
}

// Fig15Liquids is the evaluation order of the ten liquids (paper Fig. 15's
// A..J legend).
var Fig15Liquids = []string{
	material.Vinegar, material.Honey, material.Soy, material.Milk,
	material.Pepsi, material.Liquor, material.PureWater, material.Oil,
	material.Coke, material.SweetWater,
}

// MicrobenchLiquids is the 5-liquid subset the sweep figures use (matching
// the scale of the paper's Figs. 14/19/20/21 which test 3-5 liquids).
var MicrobenchLiquids = []string{
	material.PureWater, material.Pepsi, material.Vinegar,
	material.Milk, material.Oil,
}

// Options tunes experiment cost/fidelity. The zero value takes the paper's
// settings.
type Options struct {
	// Trials per class ("we repeat collecting the measurements 20 times").
	Trials int
	// TestFraction of trials held out per class.
	TestFraction float64
	// SplitSeeds is how many random train/test splits accuracies are
	// averaged over.
	SplitSeeds int
	// BaseSeed drives all trial randomness.
	BaseSeed int64
	// Workers bounds the evaluation engine's concurrency: trials, feature
	// extraction, train/test splits and sweep points all fan out over a
	// pool of this many workers. Zero (the default) selects
	// runtime.GOMAXPROCS(0). Results are bit-identical at ANY worker count:
	// every unit of work derives its seed from (BaseSeed, its own index),
	// never from a shared random stream, and results land in index order.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 20
	}
	if o.TestFraction == 0 {
		o.TestFraction = 0.3
	}
	if o.SplitSeeds == 0 {
		o.SplitSeeds = 3
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	return o
}

// LabScenario returns the default measurement setup in the canonical lab
// room.
func LabScenario() simulate.Scenario {
	sc := simulate.Default()
	sc.RoomSeed = RoomSeedLab
	return sc
}

// ScenarioInEnv returns the default setup in the named environment's
// canonical room.
func ScenarioInEnv(env propagation.Environment) simulate.Scenario {
	sc := simulate.Default()
	sc.Env = env
	sc.RoomSeed = RoomSeedFor(env)
	return sc
}

// withLiquid clones sc with the named liquid loaded.
func withLiquid(sc simulate.Scenario, name string) (simulate.Scenario, error) {
	m, err := material.PaperDatabase().Get(name)
	if err != nil {
		return sc, err
	}
	sc.Liquid = &m
	return sc, nil
}

// LabeledScenario pairs a class label with its measurement scenario.
type LabeledScenario struct {
	Label    string
	Scenario simulate.Scenario
}

// LiquidScenarios builds one labelled scenario per liquid name on top of a
// base scenario.
func LiquidScenarios(base simulate.Scenario, names []string) ([]LabeledScenario, error) {
	out := make([]LabeledScenario, 0, len(names))
	for _, name := range names {
		sc, err := withLiquid(base, name)
		if err != nil {
			return nil, err
		}
		out = append(out, LabeledScenario{Label: name, Scenario: sc})
	}
	return out, nil
}

// ClassificationResult is the outcome of a train/evaluate run.
type ClassificationResult struct {
	// Accuracy is the mean test accuracy over split seeds.
	Accuracy float64
	// AccuracyStd is its standard deviation over split seeds.
	AccuracyStd float64
	// Confusion aggregates test predictions over all split seeds.
	Confusion *classify.ConfusionMatrix
	// GoodSubcarriers is the calibrated subcarrier set used.
	GoodSubcarriers []int
}

// String renders the confusion matrix and the headline accuracy.
func (r *ClassificationResult) String() string {
	var b strings.Builder
	b.WriteString(r.Confusion.String())
	fmt.Fprintf(&b, "mean accuracy over splits: %.1f%% ± %.1f (good subcarriers %v)\n",
		100*r.Accuracy, 100*r.AccuracyStd, r.GoodSubcarriers)
	return b.String()
}

// labeledSession pairs a simulated session with its class label.
type labeledSession struct {
	session *csi.Session
	label   string
}

// trialSessions simulates n trials of one labelled scenario on the worker
// pool. Trial i always uses seed baseSeed + i*7919 (simulate.TrialSet's
// stride), so the result is identical at any worker count.
func trialSessions(item LabeledScenario, n int, baseSeed int64, workers int) ([]labeledSession, error) {
	out := make([]labeledSession, n)
	err := parallel.ForEach(n, workers, func(i int) error {
		s, err := simulate.Session(item.Scenario, baseSeed+int64(i)*7919)
		if err != nil {
			return fmt.Errorf("experiment: class %s trial %d: %w", item.Label, i, err)
		}
		out[i] = labeledSession{session: s, label: item.Label}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// classSeed derives the simulation seed base for class index ci — the
// stride RunClassification has always used.
func classSeed(baseSeed int64, ci int) int64 {
	return baseSeed + int64(ci)*1_000_003
}

// splitRandSeed derives the train/test split seed for split index s.
func splitRandSeed(baseSeed int64, s int) int64 {
	return baseSeed + int64(s)*97
}

// trainOnSessions calibrates subcarriers over the sessions, trains an
// identifier, and returns it together with the calibrated subcarrier set
// (so held-out data can be featurised identically).
func trainOnSessions(items []labeledSession, idCfg core.IdentifierConfig) (*core.Identifier, []int, error) {
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("experiment: no training sessions")
	}
	sessions := make([]*csi.Session, 0, len(items))
	labels := make([]string, 0, len(items))
	for _, it := range items {
		sessions = append(sessions, it.session)
		labels = append(labels, it.label)
	}
	cfg := idCfg.Pipeline
	if len(cfg.ForcedSubcarriers) == 0 {
		pairs := cfg.Pairs
		if len(pairs) == 0 {
			pairs = core.AllPairs(sessions[0].Baseline.NumAntennas())
		}
		good, err := core.CalibrateSubcarriers(sessions, pairs[0], cfg.GoodSubcarriers)
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: calibration: %w", err)
		}
		cfg.ForcedSubcarriers = good
		idCfg.Pipeline = cfg
	}
	id, err := core.TrainIdentifier(sessions, labels, idCfg)
	if err != nil {
		return nil, nil, err
	}
	return id, cfg.ForcedSubcarriers, nil
}

// newSplitRand builds the deterministic random source used for train/test
// splitting.
func newSplitRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// RunClassification is the shared engine behind every accuracy figure:
// simulate Trials sessions per class, calibrate the subcarrier set over all
// of them, extract features once, then train and evaluate over several
// stratified splits.
//
// Every stage fans out over opt.Workers workers, and the result is
// bit-identical to the serial run: trial (ci, ti) always simulates with
// seed classSeed(BaseSeed, ci) + ti*7919, split s always splits with seed
// splitRandSeed(BaseSeed, s), and every worker writes only to its own slot
// of an index-ordered result slice.
func RunClassification(items []LabeledScenario, pipeline core.Config, idCfg core.IdentifierConfig, opt Options) (*ClassificationResult, error) {
	opt = opt.withDefaults()
	if len(items) < 2 {
		return nil, fmt.Errorf("experiment: need at least two classes, got %d", len(items))
	}
	sessions, labels, err := simulateClassSessions(items, opt)
	if err != nil {
		return nil, err
	}
	return runClassificationSessions(sessions, labels, pipeline, idCfg, opt)
}

// simulateClassSessions is RunClassification's simulate stage: one session
// per (class, trial) pair, in class-major order, trial (ci, ti) always
// seeded classSeed(BaseSeed, ci) + ti*7919. Sweeps that evaluate several
// variants of the same sessions (e.g. packet-count prefixes) call it once
// and feed the variants to runClassificationSessions.
func simulateClassSessions(items []LabeledScenario, opt Options) ([]*csi.Session, []string, error) {
	total := len(items) * opt.Trials
	sessions := make([]*csi.Session, total)
	labels := make([]string, total)
	err := parallel.ForEach(total, opt.Workers, func(idx int) error {
		ci, ti := idx/opt.Trials, idx%opt.Trials
		s, err := simulate.Session(items[ci].Scenario, classSeed(opt.BaseSeed, ci)+int64(ti)*7919)
		if err != nil {
			return fmt.Errorf("experiment: class %s: %w", items[ci].Label, err)
		}
		sessions[idx] = s
		labels[idx] = items[ci].Label
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return sessions, labels, nil
}

// truncateSession returns a view of s keeping only the first p packets of
// each capture — "analyse fewer packets of the same measurement". Packet
// data is shared with s, not copied, so the result must be treated as
// read-only.
func truncateSession(s *csi.Session, p int) *csi.Session {
	t := &csi.Session{Carrier: s.Carrier, Baseline: s.Baseline, Target: s.Target}
	if p < len(t.Baseline.Packets) {
		t.Baseline.Packets = t.Baseline.Packets[:p]
	}
	if p < len(t.Target.Packets) {
		t.Target.Packets = t.Target.Packets[:p]
	}
	return t
}

// runClassificationSessions is RunClassification's evaluate stage:
// calibrate, featurise, then train/test over splits on pre-simulated
// sessions.
func runClassificationSessions(sessions []*csi.Session, labels []string, pipeline core.Config, idCfg core.IdentifierConfig, opt Options) (*ClassificationResult, error) {
	opt = opt.withDefaults()
	total := len(sessions)
	// 2. Calibrate subcarriers (unless pinned).
	cfg := pipeline
	if len(cfg.ForcedSubcarriers) == 0 {
		pairs := cfg.Pairs
		if len(pairs) == 0 {
			pairs = core.AllPairs(sessions[0].Baseline.NumAntennas())
		}
		good, err := core.CalibrateSubcarriers(sessions, pairs[0], cfg.GoodSubcarriers)
		if err != nil {
			return nil, fmt.Errorf("experiment: calibration: %w", err)
		}
		cfg.ForcedSubcarriers = good
	}
	// 3. Extract features once, one unit of work per session.
	vectors := make([][]float64, total)
	err := parallel.ForEach(total, opt.Workers, func(i int) error {
		feats, err := core.ExtractFeatures(sessions[i], cfg)
		if err != nil {
			return fmt.Errorf("experiment: features for %s trial: %w", labels[i], err)
		}
		vectors[i] = feats.Vector
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds := &classify.Dataset{}
	for i := range vectors {
		ds.Append(vectors[i], labels[i])
	}
	// 4. Train/evaluate over splits, one unit of work per split. Each split
	// collects its predictions locally; they are merged in split order.
	idCfg.Pipeline = cfg
	// The SVM's own one-vs-one/grid-search fan-out follows the harness
	// worker budget unless the caller pinned it explicitly.
	if idCfg.SVM.Workers == 0 {
		idCfg.SVM.Workers = opt.Workers
	}
	classes := ds.Classes()
	confusion, err := classify.NewConfusionMatrix(classes)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	type splitOutcome struct {
		acc          float64
		actual, pred []string
	}
	outcomes := make([]splitOutcome, opt.SplitSeeds)
	err = parallel.ForEach(opt.SplitSeeds, opt.Workers, func(split int) error {
		rng := rand.New(rand.NewSource(splitRandSeed(opt.BaseSeed, split)))
		train, test, err := classify.SplitTrainTest(ds, opt.TestFraction, rng)
		if err != nil {
			return fmt.Errorf("experiment: split %d: %w", split, err)
		}
		id, err := core.TrainIdentifierOnFeatures(train, idCfg)
		if err != nil {
			return fmt.Errorf("experiment: split %d: %w", split, err)
		}
		out := splitOutcome{
			actual: test.Labels,
			pred:   make([]string, len(test.X)),
		}
		correct := 0
		for i := range test.X {
			out.pred[i] = id.IdentifyFeatures(test.X[i])
			if out.pred[i] == test.Labels[i] {
				correct++
			}
		}
		out.acc = float64(correct) / float64(len(test.X))
		outcomes[split] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	accs := make([]float64, 0, opt.SplitSeeds)
	for _, out := range outcomes {
		for i := range out.actual {
			// Unknown predictions cannot occur: the classifier only emits
			// training classes, which equal the dataset classes.
			if err := confusion.Add(out.actual[i], out.pred[i]); err != nil {
				return nil, fmt.Errorf("experiment: recording prediction: %w", err)
			}
		}
		accs = append(accs, out.acc)
	}
	return &ClassificationResult{
		Accuracy:        mathx.Mean(accs),
		AccuracyStd:     mathx.StdDev(accs),
		Confusion:       confusion,
		GoodSubcarriers: cfg.ForcedSubcarriers,
	}, nil
}

// classificationSeries runs one RunClassification-shaped computation per
// point on the worker pool, returning results in point order. Sweeps and
// ablations use it to fan their independent points out.
func classificationSeries(n int, opt Options, run func(point int) (*ClassificationResult, error)) ([]*ClassificationResult, error) {
	out := make([]*ClassificationResult, n)
	err := parallel.ForEach(n, opt.Workers, func(i int) error {
		r, err := run(i)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
