package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/propagation"
)

// SweepResult is a generic labelled accuracy series (one paper curve).
type SweepResult struct {
	Title string
	// XLabels name the sweep points (e.g. "1.0 m").
	XLabels []string
	// Series maps a curve name (e.g. environment) to accuracies per point.
	Series map[string][]float64
	// SeriesOrder fixes the display order.
	SeriesOrder []string
	Note        string
}

// String implements fmt.Stringer.
func (r *SweepResult) String() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	fmt.Fprintf(&b, "  %-12s", "")
	for _, x := range r.XLabels {
		fmt.Fprintf(&b, "%10s", x)
	}
	b.WriteByte('\n')
	for _, name := range r.SeriesOrder {
		fmt.Fprintf(&b, "  %-12s", name)
		for _, v := range r.Series[name] {
			fmt.Fprintf(&b, "%9.1f%%", 100*v)
		}
		b.WriteByte('\n')
	}
	if r.Note != "" {
		b.WriteString("  (" + r.Note + ")\n")
	}
	return b.String()
}

// Fig17 sweeps the transmitter-receiver distance from 1 m to 3 m in 0.5 m
// steps across the three environments (paper: 98% → 87.3%).
func Fig17(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	distances := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	res := &SweepResult{
		Title:       "Fig 17 — identification accuracy vs Tx-Rx distance",
		SeriesOrder: []string{"hall", "lab", "library"},
		Series:      make(map[string][]float64),
		Note:        "paper: accuracy decreases from ~98% at 1 m to ~87% at 3 m; hall ≥ lab ≥ library",
	}
	for _, d := range distances {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%.1f m", d))
	}
	envs := []propagation.Environment{propagation.EnvHall, propagation.EnvLab, propagation.EnvLibrary}
	points, err := classificationSeries(len(envs)*len(distances), opt, func(i int) (*ClassificationResult, error) {
		env, d := envs[i/len(distances)], distances[i%len(distances)]
		base := ScenarioInEnv(env)
		base.LinkDistance = d
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig17: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig17 %s %.1fm: %w", env.Name, d, err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for ei, env := range envs {
		for di := range distances {
			res.Series[env.Name] = append(res.Series[env.Name], points[ei*len(distances)+di].Accuracy)
		}
	}
	return res, nil
}

// Fig18 sweeps the number of packets per capture (3, 5, 10, 20, 30) across
// the three environments (paper: rises then saturates around 20). Like the
// paper's analysis — which collects full captures once and varies how many
// packets the pipeline consumes — each environment is simulated a single
// time at the maximum packet count and every sweep point classifies the
// first p packets of those same captures. That shares the dominant
// simulation cost across the five points instead of re-measuring per point.
func Fig18(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	packets := []int{3, 5, 10, 20, 30}
	res := &SweepResult{
		Title:       "Fig 18 — identification accuracy vs packet number",
		SeriesOrder: []string{"hall", "lab", "library"},
		Series:      make(map[string][]float64),
		Note:        "paper: accuracy grows with packets and saturates around 20",
	}
	for _, p := range packets {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%d", p))
	}
	envs := []propagation.Environment{propagation.EnvHall, propagation.EnvLab, propagation.EnvLibrary}
	for _, env := range envs {
		base := ScenarioInEnv(env)
		base.Packets = packets[len(packets)-1]
		items, err := LiquidScenarios(base, MicrobenchLiquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig18: %w", err)
		}
		full, labels, err := simulateClassSessions(items, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig18 %s: %w", env.Name, err)
		}
		for _, p := range packets {
			cells := make([]*csi.Session, len(full))
			for i, s := range full {
				cells[i] = truncateSession(s, p)
			}
			cls, err := runClassificationSessions(cells, labels, core.DefaultConfig(), core.IdentifierConfig{}, opt)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig18 %s %d packets: %w", env.Name, p, err)
			}
			res.Series[env.Name] = append(res.Series[env.Name], cls.Accuracy)
		}
	}
	return res, nil
}

// Fig19Sizes are the five beaker diameters of the container-size sweep
// (metres). Size 5 (3.2 cm) is below the ~5.6 cm wavelength.
var Fig19Sizes = []float64{0.143, 0.11, 0.089, 0.061, 0.032}

// Fig19 sweeps the container size for pure water, Pepsi and vinegar
// (paper: 95% → 91% down to 8.9 cm, a clear drop at 3.2 cm). Like the
// paper's figure, results are reported per liquid plus the overall mean.
func Fig19(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	liquids := []string{material.PureWater, material.Pepsi, material.Vinegar}
	res := &SweepResult{
		Title:       "Fig 19 — identification accuracy vs container diameter",
		SeriesOrder: append(append([]string(nil), liquids...), "overall"),
		Series:      make(map[string][]float64),
		Note:        "paper: ~95%→91% from 14.3 cm to 8.9 cm, sharp drop below the 5.6 cm wavelength (3.2 cm beaker)",
	}
	for i, d := range Fig19Sizes {
		res.XLabels = append(res.XLabels, fmt.Sprintf("S%d %.1fcm", i+1, d*100))
	}
	points, err := classificationSeries(len(Fig19Sizes), opt, func(i int) (*ClassificationResult, error) {
		base := LabScenario()
		base.Diameter = Fig19Sizes[i]
		items, err := LiquidScenarios(base, liquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig19: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig19 %.3fm: %w", Fig19Sizes[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range points {
		for _, name := range liquids {
			acc, err := cls.Confusion.ClassAccuracy(name)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig19: %w", err)
			}
			res.Series[name] = append(res.Series[name], acc)
		}
		res.Series["overall"] = append(res.Series["overall"], cls.Accuracy)
	}
	return res, nil
}

// Fig20 compares container wall materials (glass vs plastic beaker) for
// three liquids (paper: nearly identical accuracies — the baseline
// subtraction removes the container).
func Fig20(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	liquids := []string{material.PureWater, material.Pepsi, material.Vinegar}
	res := &SweepResult{
		Title:       "Fig 20 — identification accuracy vs container material",
		SeriesOrder: []string{"glass", "plastic"},
		Series:      make(map[string][]float64),
		Note:        "paper: similar accuracy for both containers (container effect cancels in the baseline)",
	}
	res.XLabels = append(append([]string(nil), liquids...), "overall")
	containers := []material.ContainerMaterial{material.ContainerGlass, material.ContainerPlastic}
	points, err := classificationSeries(len(containers), opt, func(i int) (*ClassificationResult, error) {
		base := LabScenario()
		base.Container = containers[i]
		items, err := LiquidScenarios(base, liquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig20: %w", err)
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig20 %s: %w", containers[i].Name, err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cls := range points {
		container := containers[i]
		for _, name := range liquids {
			acc, err := cls.Confusion.ClassAccuracy(name)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig20: %w", err)
			}
			res.Series[container.Name] = append(res.Series[container.Name], acc)
		}
		res.Series[container.Name] = append(res.Series[container.Name], cls.Accuracy)
	}
	return res, nil
}

// Fig21 compares identification accuracy using each antenna pair alone
// (paper: pairs differ slightly; 1&2 best in their setup).
func Fig21(opt Options) (*SweepResult, error) {
	opt = opt.withDefaults()
	liquids := []string{material.PureWater, material.Pepsi, material.Vinegar}
	res := &SweepResult{
		Title:       "Fig 21 — identification accuracy per antenna combination",
		SeriesOrder: []string{"1&2", "1&3", "2&3"},
		Series:      make(map[string][]float64),
		Note:        "paper: combinations differ slightly; picking a stable pair helps",
	}
	res.XLabels = append(append([]string(nil), liquids...), "overall")
	pairs := core.AllPairs(3)
	points, err := classificationSeries(len(pairs), opt, func(i int) (*ClassificationResult, error) {
		cfg := core.DefaultConfig()
		cfg.Pairs = []core.AntennaPair{pairs[i]}
		items, err := LiquidScenarios(LabScenario(), liquids)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig21: %w", err)
		}
		cls, err := RunClassification(items, cfg, core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig21 pair %s: %w", pairs[i], err)
		}
		return cls, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cls := range points {
		pair := pairs[i]
		for _, name := range liquids {
			acc, err := cls.Confusion.ClassAccuracy(name)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig21: %w", err)
			}
			res.Series[pair.String()] = append(res.Series[pair.String()], acc)
		}
		res.Series[pair.String()] = append(res.Series[pair.String()], cls.Accuracy)
	}
	return res, nil
}
