package experiment

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperFigure(t *testing.T) {
	reg := Registry()
	// The paper's evaluation figures (Figs. 4, 5 and 11 are diagrams, not
	// results).
	for _, fig := range []string{
		"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21",
	} {
		if reg[fig] == nil {
			t.Errorf("figure %s missing from registry", fig)
		}
	}
	if len(reg) < 30 {
		t.Errorf("registry has %d experiments, expected ≥ 30 (figures + ablations + extensions)", len(reg))
	}
}

func TestRegistryRunnersExecutable(t *testing.T) {
	// Spot-check that registry entries actually run (the cheap ones).
	reg := Registry()
	opt := Options{Trials: 4, SplitSeeds: 1, BaseSeed: 1}
	for _, name := range []string{"fig2", "fig3", "fig7", "fig8"} {
		res, err := reg[name](opt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.String() == "" {
			t.Errorf("%s rendered empty", name)
		}
	}
}

func TestSortedNamesShape(t *testing.T) {
	names := SortedNames(Registry())
	if names[0] != "fig2" {
		t.Errorf("first = %q, want fig2", names[0])
	}
	// All figs precede all non-figs; non-figs sorted.
	seenNonFig := false
	var lastNonFig string
	for _, n := range names {
		if strings.HasPrefix(n, "fig") {
			if seenNonFig {
				t.Fatalf("figure %s after non-figure entries", n)
			}
			continue
		}
		if lastNonFig != "" && lastNonFig >= n {
			t.Errorf("non-figures not sorted: %q >= %q", lastNonFig, n)
		}
		lastNonFig = n
		seenNonFig = true
	}
}
