package experiment

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/material"
	"repro/internal/mathx"
	"repro/internal/simulate"
)

// ConcentrationResult is the continuous-estimation extension of Fig. 16:
// instead of classifying three discrete saltwater strengths, a kNN
// regressor on the Ω̄ feature estimates the concentration in g/100 ml —
// including at concentrations never seen in training.
type ConcentrationResult struct {
	// TestConcentrations are the true values of the held-out measurements.
	TestConcentrations []float64
	// Estimates are the regressor's outputs, aligned with
	// TestConcentrations.
	Estimates []float64
	// MAE is the mean absolute error in g/100 ml.
	MAE float64
	// Interpolated flags test points whose concentration lies between
	// training grid points (the harder generalisation case).
	Interpolated []bool
}

// String implements fmt.Stringer.
func (r *ConcentrationResult) String() string {
	var b strings.Builder
	b.WriteString("Extension — continuous saltwater concentration estimation (beyond Fig. 16)\n")
	b.WriteString("  true g/100ml   estimated    seen in training?\n")
	for i := range r.TestConcentrations {
		seen := "grid point"
		if r.Interpolated[i] {
			seen = "INTERPOLATED"
		}
		fmt.Fprintf(&b, "  %8.2f       %8.2f     %s\n", r.TestConcentrations[i], r.Estimates[i], seen)
	}
	fmt.Fprintf(&b, "  mean absolute error: %.3f g/100ml\n", r.MAE)
	return b.String()
}

// ExtensionConcentration trains a kNN regressor on a grid of saltwater
// concentrations and evaluates on held-out trials, including concentrations
// between grid points.
func ExtensionConcentration(opt Options) (*ConcentrationResult, error) {
	opt = opt.withDefaults()
	grid := []float64{0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}
	testPoints := []float64{0.5, 1.0, 1.5, 2.5, 3.0, 4.5, 5.0, 5.5}

	saltScenario := func(g float64) simulate.Scenario {
		sc := LabScenario()
		m := material.Saltwater(g)
		if g == 0 {
			db := material.PaperDatabase()
			w, err := db.Get(material.PureWater)
			if err == nil {
				m = w
			}
		}
		sc.Liquid = &m
		return sc
	}

	// Calibrate the subcarrier set once over grid sessions.
	var calSessions []labeledSession
	for gi, g := range grid {
		ts, err := trialSessions(LabeledScenario{Label: fmt.Sprint(g), Scenario: saltScenario(g)},
			3, opt.BaseSeed+int64(gi)*313, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiment: concentration calibration: %w", err)
		}
		calSessions = append(calSessions, ts...)
	}
	cfg := core.DefaultConfig()
	good, err := core.CalibrateSubcarriers(sessionsOf(calSessions), core.AntennaPair{A: 0, B: 1}, cfg.GoodSubcarriers)
	if err != nil {
		return nil, fmt.Errorf("experiment: concentration calibration: %w", err)
	}
	cfg.ForcedSubcarriers = good

	extract := func(g float64, trials int, seedBase int64) ([][]float64, error) {
		var out [][]float64
		sc := saltScenario(g)
		for trial := 0; trial < trials; trial++ {
			session, err := simulate.Session(sc, seedBase+int64(trial)*7919)
			if err != nil {
				return nil, err
			}
			feats, err := core.ExtractFeatures(session, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, feats.Vector)
		}
		return out, nil
	}

	// Training grid.
	var trainX [][]float64
	var trainY []float64
	for gi, g := range grid {
		rows, err := extract(g, opt.Trials/2, opt.BaseSeed+int64(gi)*100_003)
		if err != nil {
			return nil, fmt.Errorf("experiment: concentration %gg training: %w", g, err)
		}
		for _, row := range rows {
			trainX = append(trainX, row)
			trainY = append(trainY, g)
		}
	}
	scaler, err := classify.FitScaler(trainX)
	if err != nil {
		return nil, fmt.Errorf("experiment: concentration: %w", err)
	}
	reg, err := classify.NewKNNRegressor(5, scaler.Transform(trainX), trainY)
	if err != nil {
		return nil, fmt.Errorf("experiment: concentration: %w", err)
	}

	// Held-out evaluation.
	res := &ConcentrationResult{}
	gridSet := make(map[float64]bool, len(grid))
	for _, g := range grid {
		gridSet[g] = true
	}
	var absErrs []float64
	for ti, g := range testPoints {
		rows, err := extract(g, 4, opt.BaseSeed+9_000_000+int64(ti)*77_003)
		if err != nil {
			return nil, fmt.Errorf("experiment: concentration %gg test: %w", g, err)
		}
		for _, row := range rows {
			est := reg.Predict(scaler.TransformOne(row))
			res.TestConcentrations = append(res.TestConcentrations, g)
			res.Estimates = append(res.Estimates, est)
			res.Interpolated = append(res.Interpolated, !gridSet[g])
			diff := est - g
			if diff < 0 {
				diff = -diff
			}
			absErrs = append(absErrs, diff)
		}
	}
	res.MAE = mathx.Mean(absErrs)
	return res, nil
}

// DualBandResult compares single-band identification with dual-band feature
// fusion — an extension in the spirit of the paper's future-work section:
// Ω(f) differs per material through the Debye dispersion, so a second
// carrier adds genuinely new evidence, not just averaging.
type DualBandResult struct {
	SingleBand float64
	DualBand   float64
}

// String implements fmt.Stringer.
func (r *DualBandResult) String() string {
	var b strings.Builder
	b.WriteString("Extension — dual-band feature fusion (5.32 + 5.75 GHz), hardest liquid set\n")
	fmt.Fprintf(&b, "  single band (5.32 GHz):  %5.1f%%\n", 100*r.SingleBand)
	fmt.Fprintf(&b, "  dual band fusion:        %5.1f%%\n", 100*r.DualBand)
	b.WriteString("  (Debye dispersion makes Ω frequency-dependent per material)\n")
	return b.String()
}

// ExtensionDualBand measures both operating points on the close-liquid set
// (pepsi/coke/vinegar/milk/sweet-water — the confusable cluster of Fig. 15).
func ExtensionDualBand(opt Options) (*DualBandResult, error) {
	opt = opt.withDefaults()
	liquids := []string{
		material.Pepsi, material.Coke, material.Vinegar,
		material.Milk, material.SweetWater,
	}
	carriers := []float64{5.32e9, 5.75e9}

	// Simulate per liquid, per carrier, with paired trial seeds so the two
	// bands observe the same physical trial (same placement).
	type bandFeatures struct {
		vecs  [][]float64 // per trial
		label string
	}
	extractBand := func(carrier float64) ([]bandFeatures, error) {
		var all []labeledSession
		var perLiquid [][]labeledSession
		for ci, name := range liquids {
			base := LabScenario()
			base.Carrier = carrier
			item, err := LiquidScenarios(base, []string{name})
			if err != nil {
				return nil, err
			}
			ts, err := trialSessions(item[0], opt.Trials, classSeed(opt.BaseSeed, ci), opt.Workers)
			if err != nil {
				return nil, err
			}
			perLiquid = append(perLiquid, ts)
			all = append(all, ts...)
		}
		cfg := core.DefaultConfig()
		good, err := core.CalibrateSubcarriers(sessionsOf(all), core.AntennaPair{A: 0, B: 1}, cfg.GoodSubcarriers)
		if err != nil {
			return nil, err
		}
		cfg.ForcedSubcarriers = good
		out := make([]bandFeatures, len(liquids))
		for ci := range liquids {
			out[ci].label = liquids[ci]
			for _, ls := range perLiquid[ci] {
				feats, err := core.ExtractFeatures(ls.session, cfg)
				if err != nil {
					return nil, err
				}
				out[ci].vecs = append(out[ci].vecs, feats.Vector)
			}
		}
		return out, nil
	}
	bandA, err := extractBand(carriers[0])
	if err != nil {
		return nil, fmt.Errorf("experiment: dual band %g: %w", carriers[0], err)
	}
	bandB, err := extractBand(carriers[1])
	if err != nil {
		return nil, fmt.Errorf("experiment: dual band %g: %w", carriers[1], err)
	}

	evaluate := func(build func(ci, trial int) []float64) (float64, error) {
		ds := &classify.Dataset{}
		for ci := range liquids {
			for trial := range bandA[ci].vecs {
				ds.Append(build(ci, trial), liquids[ci])
			}
		}
		var accs []float64
		for split := 0; split < opt.SplitSeeds; split++ {
			rng := newSplitRand(opt.BaseSeed + int64(split)*97)
			train, test, err := classify.SplitTrainTest(ds, opt.TestFraction, rng)
			if err != nil {
				return 0, err
			}
			// kNN backend: distance-based classification degrades gracefully
			// as the fused dimensionality doubles, unlike a fixed-γ RBF.
			id, err := core.TrainIdentifierOnFeatures(train, core.IdentifierConfig{Kind: core.ClassifierKNN})
			if err != nil {
				return 0, err
			}
			correct := 0
			for i := range test.X {
				if id.IdentifyFeatures(test.X[i]) == test.Labels[i] {
					correct++
				}
			}
			accs = append(accs, float64(correct)/float64(len(test.X)))
		}
		return mathx.Mean(accs), nil
	}
	single, err := evaluate(func(ci, trial int) []float64 {
		return bandA[ci].vecs[trial]
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: dual band single eval: %w", err)
	}
	dual, err := evaluate(func(ci, trial int) []float64 {
		merged := append([]float64(nil), bandA[ci].vecs[trial]...)
		return append(merged, bandB[ci].vecs[trial]...)
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: dual band fused eval: %w", err)
	}
	return &DualBandResult{SingleBand: single, DualBand: dual}, nil
}

// MilkQualityResult covers the paper introduction's signature use case:
// detecting watered-down and expired milk without opening the bottle.
type MilkQualityResult struct {
	// DilutionAccuracy is the accuracy of classifying milk dilution levels
	// (0/15/30/45 % added water).
	DilutionAccuracy float64
	// SpoilageAccuracy is the accuracy of classifying milk age
	// (fresh / 2 days / 4 days).
	SpoilageAccuracy float64
}

// String implements fmt.Stringer.
func (r *MilkQualityResult) String() string {
	var b strings.Builder
	b.WriteString("Extension — milk quality screening (the paper's introduction scenario)\n")
	fmt.Fprintf(&b, "  adulteration (0/15/30/45%% added water):  %5.1f%%\n", 100*r.DilutionAccuracy)
	fmt.Fprintf(&b, "  spoilage (fresh / 2 days / 4 days):       %5.1f%%\n", 100*r.SpoilageAccuracy)
	b.WriteString("  ('expired liquid such as milk can be detected without ... opening the bottle')\n")
	return b.String()
}

// ExtensionMilkQuality runs both milk-screening tasks.
func ExtensionMilkQuality(opt Options) (*MilkQualityResult, error) {
	opt = opt.withDefaults()
	db := material.PaperDatabase()
	milk, err := db.Get(material.Milk)
	if err != nil {
		return nil, fmt.Errorf("experiment: milk quality: %w", err)
	}
	water, err := db.Get(material.PureWater)
	if err != nil {
		return nil, fmt.Errorf("experiment: milk quality: %w", err)
	}

	classifySet := func(mats []material.Material) (float64, error) {
		var items []LabeledScenario
		for _, m := range mats {
			base := LabScenario()
			liquid := m
			base.Liquid = &liquid
			items = append(items, LabeledScenario{Label: m.Name, Scenario: base})
		}
		cls, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
		if err != nil {
			return 0, err
		}
		return cls.Accuracy, nil
	}

	var dilutions []material.Material
	for _, frac := range []float64{0, 0.15, 0.30, 0.45} {
		m, err := material.Mix(milk, water, frac)
		if err != nil {
			return nil, fmt.Errorf("experiment: milk quality: %w", err)
		}
		dilutions = append(dilutions, m)
	}
	dilAcc, err := classifySet(dilutions)
	if err != nil {
		return nil, fmt.Errorf("experiment: milk dilution: %w", err)
	}

	var ages []material.Material
	for _, days := range []float64{0, 2, 4} {
		m, err := material.SpoiledMilk(days)
		if err != nil {
			return nil, fmt.Errorf("experiment: milk quality: %w", err)
		}
		ages = append(ages, m)
	}
	ageAcc, err := classifySet(ages)
	if err != nil {
		return nil, fmt.Errorf("experiment: milk spoilage: %w", err)
	}
	return &MilkQualityResult{DilutionAccuracy: dilAcc, SpoilageAccuracy: ageAcc}, nil
}

// UnknownLiquidResult is the open-set rejection extension: train the
// database on nine of the paper's liquids, then present both known liquids
// and the held-out tenth. Thresholding the SVM's pairwise-vote confidence
// should flag the stranger while passing the knowns.
type UnknownLiquidResult struct {
	HeldOut string
	// DetectionRate is the fraction of held-out-liquid trials flagged
	// unknown (confidence below threshold).
	DetectionRate float64
	// FalseUnknownRate is the fraction of known-liquid trials wrongly
	// flagged unknown.
	FalseUnknownRate float64
	// Threshold is the confidence cut used.
	Threshold float64
}

// String implements fmt.Stringer.
func (r *UnknownLiquidResult) String() string {
	var b strings.Builder
	b.WriteString("Extension — open-set rejection (unknown liquid detection)\n")
	fmt.Fprintf(&b, "  database: 9 liquids; stranger: %s; novelty threshold %.1f× NN scale\n", r.HeldOut, r.Threshold)
	fmt.Fprintf(&b, "  stranger flagged unknown:      %5.1f%%\n", 100*r.DetectionRate)
	fmt.Fprintf(&b, "  known liquids falsely flagged: %5.1f%%\n", 100*r.FalseUnknownRate)
	b.WriteString("  (a checkpoint must refuse to guess when the liquid is not in its database)\n")
	return b.String()
}

// ExtensionUnknownLiquid runs the open-set study with liquor held out (its
// Ω sits far from the other nine, making it a fair stranger).
func ExtensionUnknownLiquid(opt Options) (*UnknownLiquidResult, error) {
	opt = opt.withDefaults()
	heldOut := material.Liquor
	var known []string
	for _, name := range Fig15Liquids {
		if name != heldOut {
			known = append(known, name)
		}
	}
	items, err := LiquidScenarios(LabScenario(), known)
	if err != nil {
		return nil, fmt.Errorf("experiment: unknown liquid: %w", err)
	}
	var trainSessions []labeledSession
	for ci, item := range items {
		ts, err := trialSessions(item, opt.Trials, classSeed(opt.BaseSeed, ci), opt.Workers)
		if err != nil {
			return nil, err
		}
		trainSessions = append(trainSessions, ts...)
	}
	id, forced, err := trainOnSessions(trainSessions, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		return nil, fmt.Errorf("experiment: unknown liquid training: %w", err)
	}
	pipeline := core.DefaultConfig()
	pipeline.ForcedSubcarriers = forced

	// Novelty threshold: a trial whose features sit more than 3× the
	// training cloud's own nearest-neighbour scale from every training
	// point is declared unknown.
	const threshold = 3.0
	res := &UnknownLiquidResult{HeldOut: heldOut, Threshold: threshold}

	// Stranger trials.
	strangerSc, err := withLiquid(LabScenario(), heldOut)
	if err != nil {
		return nil, err
	}
	flagged, total := 0, 0
	for trial := 0; trial < opt.Trials; trial++ {
		session, err := simulate.Session(strangerSc, opt.BaseSeed+7_000_000+int64(trial)*7919)
		if err != nil {
			return nil, err
		}
		score, err := id.NoveltyScore(session)
		if err != nil {
			return nil, err
		}
		if score > threshold {
			flagged++
		}
		total++
	}
	res.DetectionRate = float64(flagged) / float64(total)

	// Known-liquid trials (fresh seeds).
	falsePos, knownTotal := 0, 0
	for ci, name := range known {
		sc, err := withLiquid(LabScenario(), name)
		if err != nil {
			return nil, err
		}
		for trial := 0; trial < opt.Trials/3; trial++ {
			session, err := simulate.Session(sc, opt.BaseSeed+8_500_000+int64(ci)*991+int64(trial)*7919)
			if err != nil {
				return nil, err
			}
			score, err := id.NoveltyScore(session)
			if err != nil {
				return nil, err
			}
			if score > threshold {
				falsePos++
			}
			knownTotal++
		}
	}
	res.FalseUnknownRate = float64(falsePos) / float64(knownTotal)
	return res, nil
}
