package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
)

// Fig13Result compares identification accuracy across subcarrier choices:
// randomly picked subcarriers versus calibrated 'good' ones versus the
// combination — the ablation of Fig. 13 ("the two good subcarriers achieve
// a much higher identification accuracy").
type Fig13Result struct {
	// Entries are ordered: random trio, each single best subcarrier, the
	// combination of the best ones.
	Entries []Fig13Entry
}

// Fig13Entry is one bar of Fig. 13.
type Fig13Entry struct {
	Name        string
	Subcarriers []int
	Accuracy    float64
}

// String implements fmt.Stringer.
func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 13 — identification accuracy vs subcarrier choice\n")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-24s %v: %5.1f%%\n", e.Name, e.Subcarriers, 100*e.Accuracy)
	}
	b.WriteString("  (paper: good ≫ random for single subcarriers; reproduced shape: the full\n" +
		"   calibrated good set is best. The single-subcarrier good-vs-bad gap does NOT\n" +
		"   reproduce under this simulator — see EXPERIMENTS.md for the analysis)\n")
	return b.String()
}

// Fig13 runs the subcarrier-choice ablation over the microbenchmark liquid
// set in the lab.
func Fig13(opt Options) (*Fig13Result, error) {
	opt = opt.withDefaults()
	// Liquids separable by the direct through-target differential (the
	// paper's subcarrier study uses milk-vs-others style targets, not the
	// hardest Pepsi/Coke pairs).
	liquids := []string{material.PureWater, material.Oil, material.Honey, material.Soy, material.Milk}
	items, err := LiquidScenarios(LabScenario(), liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig13: %w", err)
	}
	// Find the calibrated good subcarriers first (default pipeline).
	calRes, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig13 calibration run: %w", err)
	}
	good := calRes.GoodSubcarriers
	best1 := good[:1]
	best2 := good[1:2]
	bestPair := good[:2]
	// The contrast set: the three subcarriers the calibration ranks WORST
	// (the paper picks 2, 7 and 12, which happened to be bad in its room).
	worst, err := worstSubcarriers(items, 3, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig13: %w", err)
	}

	run := func(name string, subs []int) (Fig13Entry, error) {
		cfg := core.DefaultConfig()
		// The paper's subcarrier study classifies on the literal Ω̄
		// feature, whose division makes it directly sensitive to phase
		// noise at bad subcarriers.
		cfg.OmegaOnlyFeatures = true
		cfg.ForcedSubcarriers = subs
		res, err := RunClassification(items, cfg, core.IdentifierConfig{}, opt)
		if err != nil {
			return Fig13Entry{}, fmt.Errorf("experiment: fig13 %s: %w", name, err)
		}
		return Fig13Entry{Name: name, Subcarriers: subs, Accuracy: res.Accuracy}, nil
	}
	var res Fig13Result
	// The paper's random trio is subcarriers 2, 7, 12.
	for _, spec := range []struct {
		name string
		subs []int
	}{
		{"bad subcarriers", worst},
		{"good single", best1},
		{"good single", best2},
		{"good combined", bestPair},
		{"all good (calibrated)", good},
	} {
		e, err := run(spec.name, spec.subs)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, e)
	}
	return &res, nil
}

// worstSubcarriers calibrates the variance ranking over fresh sessions of
// the given scenarios and returns the n HIGHEST-variance subcarriers.
func worstSubcarriers(items []LabeledScenario, n int, opt Options) ([]int, error) {
	opt = opt.withDefaults()
	var all []labeledSession
	for ci, item := range items {
		ts, err := trialSessions(item, 3, opt.BaseSeed+77_000+int64(ci)*131, opt.Workers)
		if err != nil {
			return nil, err
		}
		all = append(all, ts...)
	}
	// Rank by the same combined variance the calibration uses, inverted.
	good, err := core.CalibrateSubcarriers(sessionsOf(all), core.AntennaPair{A: 0, B: 1}, csi.NumSubcarriers)
	if err != nil {
		return nil, err
	}
	out := append([]int(nil), good[len(good)-n:]...)
	return out, nil
}

func sessionsOf(items []labeledSession) []*csi.Session {
	out := make([]*csi.Session, 0, len(items))
	for _, it := range items {
		out = append(out, it.session)
	}
	return out
}

// Fig14Result is the amplitude-denoising ablation: per-liquid accuracy with
// and without the outlier + wavelet-correlation step.
type Fig14Result struct {
	Liquids     []string
	WithDenoise []float64
	Without     []float64
}

// String implements fmt.Stringer.
func (r *Fig14Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 14 — identification accuracy w/ and w/o amplitude denoising\n")
	b.WriteString("  liquid          w/o noise removed   w/ noise removed\n")
	for i, name := range r.Liquids {
		fmt.Fprintf(&b, "  %-14s %6.1f%%             %6.1f%%\n",
			name, 100*r.Without[i], 100*r.WithDenoise[i])
	}
	b.WriteString("  (paper: consistently better with the denoising method)\n")
	return b.String()
}

// Fig14 runs the denoising ablation. The paper reports per-liquid accuracy
// for Pepsi, oil, vinegar, soy and milk.
func Fig14(opt Options) (*Fig14Result, error) {
	opt = opt.withDefaults()
	liquids := []string{material.Pepsi, material.Oil, material.Vinegar, material.Soy, material.Milk}
	items, err := LiquidScenarios(LabScenario(), liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig14: %w", err)
	}
	// Heavier impulse noise than default so the ablation has signal to
	// show, as in the paper's stress microbenchmark.
	for i := range items {
		items[i].Scenario.Hardware.ImpulseProb = 0.18
		items[i].Scenario.Hardware.ImpulseMagnitude = 2.0
		items[i].Scenario.Hardware.OutlierProb = 0.04
	}
	res := &Fig14Result{Liquids: liquids}
	for _, denoise := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.DenoiseAmplitude = denoise
		cls, err := RunClassification(items, cfg, core.IdentifierConfig{}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig14 denoise=%v: %w", denoise, err)
		}
		for _, name := range liquids {
			acc, err := cls.Confusion.ClassAccuracy(name)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig14: %w", err)
			}
			if denoise {
				res.WithDenoise = append(res.WithDenoise, acc)
			} else {
				res.Without = append(res.Without, acc)
			}
		}
	}
	return res, nil
}

// Fig15 is the headline experiment: the 10-liquid confusion matrix in the
// lab environment ("WiMi achieves an average accuracy of 96%").
func Fig15(opt Options) (*ClassificationResult, error) {
	opt = opt.withDefaults()
	items, err := LiquidScenarios(LabScenario(), Fig15Liquids)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig15: %w", err)
	}
	res, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig15: %w", err)
	}
	return res, nil
}

// Fig16 is the concentration experiment: pure water versus three saltwater
// concentrations (1.2, 2.7, 5.9 g/100 ml), ≥95% in the paper.
func Fig16(opt Options) (*ClassificationResult, error) {
	opt = opt.withDefaults()
	names := []string{material.PureWater, "saltwater-1.2g", "saltwater-2.7g", "saltwater-5.9g"}
	items, err := LiquidScenarios(LabScenario(), names)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig16: %w", err)
	}
	res, err := RunClassification(items, core.DefaultConfig(), core.IdentifierConfig{}, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig16: %w", err)
	}
	return res, nil
}
