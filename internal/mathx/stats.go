// Package mathx provides the scalar, vector and circular statistics
// primitives shared by every other WiMi package.
//
// All functions operate on float64 slices, never mutate their inputs unless
// the name says so (e.g. SortInPlace), and define their behaviour for empty
// input explicitly: reductions over empty slices return NaN so that callers
// cannot silently mistake "no data" for a real value.
package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN when xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by N, matching
// Eq. 7 of the paper), or NaN when xs is empty.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mu := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by N-1),
// or NaN when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	mu := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// floatLess orders float64s the way sort.Float64s does: NaN sorts before
// every other value, otherwise the usual <.
func floatLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// kthInPlace rearranges xs so xs[k] holds its k-th smallest element (0-based,
// sort.Float64s order) and everything before index k orders no later than it.
// Quickselect with median-of-three pivots: average O(n), versus the O(n log n)
// full sort the median used to pay on every call of the denoising hot loop.
// NaN-free input (the overwhelmingly common case) takes a branch-light path
// comparing with plain <.
func kthInPlace(xs []float64, k int) float64 {
	for _, v := range xs {
		if math.IsNaN(v) {
			return kthInPlaceNaN(xs, k)
		}
	}
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if pivot >= xs[j] {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// kthInPlaceNaN is kthInPlace for slices containing NaN, using the full
// sort.Float64s ordering (NaN before everything).
func kthInPlaceNaN(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot to dodge quadratic behaviour on sorted runs.
		mid := lo + (hi-lo)/2
		if floatLess(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if floatLess(xs[hi], xs[lo]) {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if floatLess(xs[hi], xs[mid]) {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition: afterwards xs[lo..j] ≼ pivot ≼ xs[j+1..hi].
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !floatLess(xs[i], pivot) {
					break
				}
			}
			for {
				j--
				if !floatLess(pivot, xs[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// insertionSortFloats sorts xs in sort.Float64s order; it beats quickselect's
// pivot machinery for the tiny slices rolling-window filters produce.
func insertionSortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && floatLess(v, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// medianInPlace returns the median of buf, scrambling buf in the process.
func medianInPlace(buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return math.NaN()
	}
	if n <= 16 {
		insertionSortFloats(buf)
		if n%2 == 1 {
			return buf[n/2]
		}
		return buf[n/2-1]/2 + buf[n/2]/2
	}
	hi := kthInPlace(buf, n/2)
	if n%2 == 1 {
		return hi
	}
	// kthInPlace leaves the lower half before index n/2; its maximum is the
	// other middle order statistic.
	lo := buf[0]
	for _, v := range buf[1 : n/2] {
		if floatLess(lo, v) {
			lo = v
		}
	}
	// Halve before adding so the midpoint of two near-MaxFloat64 values
	// cannot overflow to infinity.
	return lo/2 + hi/2
}

// Median returns the median of xs without mutating it, or NaN when empty.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), xs...)
	return medianInPlace(tmp)
}

// MedianBuf is Median with a caller-owned scratch buffer, for hot loops
// that would otherwise allocate a copy per call. buf is grown as needed and
// returned for reuse; xs is not mutated. The value is identical to Median.
func MedianBuf(xs, buf []float64) (med float64, scratch []float64) {
	if len(xs) == 0 {
		return math.NaN(), buf
	}
	if cap(buf) < len(xs) {
		buf = make([]float64, len(xs))
	}
	tmp := buf[:len(xs)]
	copy(tmp, xs)
	return medianInPlace(tmp), buf
}

// MAD returns the median absolute deviation of xs: median(|x - median(x)|).
// It is the robust scale estimator used by the wavelet noise threshold
// (robust median estimation, reference [24] of the paper).
func MAD(xs []float64) float64 {
	_, mad := medianAndMAD(xs)
	return mad
}

// medianAndMAD shares one scratch buffer between the median and the MAD:
// the location estimate is selected first, then the buffer is overwritten
// with absolute deviations for the scale estimate.
func medianAndMAD(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	med = medianInPlace(tmp)
	for i, x := range xs {
		tmp[i] = math.Abs(x - med)
	}
	return med, medianInPlace(tmp)
}

// MedianAndMADStdDev returns Median(xs) and MADStdDev(xs) together, computing
// the shared median once instead of twice — the robust location/scale pair
// every filtering stage asks for.
func MedianAndMADStdDev(xs []float64) (med, sigma float64) {
	med, mad := medianAndMAD(xs)
	return med, mad / 0.6745
}

// MedianAndMADStdDevBuf is MedianAndMADStdDev with a caller-owned scratch
// buffer for the rolling-window hot paths that would otherwise allocate per
// window. buf is grown as needed and returned for reuse; xs is not mutated.
func MedianAndMADStdDevBuf(xs, buf []float64) (med, sigma float64, scratch []float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN(), buf
	}
	if cap(buf) < len(xs) {
		buf = make([]float64, len(xs))
	}
	tmp := buf[:len(xs)]
	copy(tmp, xs)
	med = medianInPlace(tmp)
	for i, x := range xs {
		tmp[i] = math.Abs(x - med)
	}
	return med, medianInPlace(tmp) / 0.6745, buf
}

// MADStdDev converts a MAD into a consistent estimator of the Gaussian
// standard deviation (divide by Φ⁻¹(3/4) ≈ 0.6745).
func MADStdDev(xs []float64) float64 {
	return MAD(xs) / 0.6745
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. Returns NaN for empty input or p
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n == 1 {
		return tmp[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return tmp[lo]
	}
	frac := rank - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// Min returns the minimum of xs, or NaN when empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN when empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element of xs, or -1 when empty.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element of xs, or -1 when empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgSort returns the permutation that sorts xs ascending. xs is not
// mutated; ties keep their original relative order (stable).
func ArgSort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// ArgSortBuf is ArgSort with a caller-owned index buffer: idx is grown as
// needed, filled with the stable-sort permutation and returned. The
// permutation is identical to ArgSort's (both are stable under <), but the
// insertion sort used here allocates nothing — sized for the short
// fixed-length vectors (e.g. 30 subcarrier variances) of the hot path.
func ArgSortBuf(xs []float64, idx []int) []int {
	if cap(idx) < len(xs) {
		idx = make([]int, len(xs))
	}
	idx = idx[:len(xs)]
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && xs[v] < xs[idx[j]] {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
	return idx
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n == 1 returns [lo]; n <= 0 returns nil.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Dot returns the inner product of a and b. Panics are avoided: extra
// trailing elements of the longer slice are ignored.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of xs.
func Norm2(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

// Power returns the mean squared value of xs (signal power), or NaN when
// empty.
func Power(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s / float64(len(xs))
}

// Scale returns a copy of xs with every element multiplied by c.
func Scale(xs []float64, c float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c * x
	}
	return out
}

// AbsAll returns a copy of xs with every element replaced by its absolute
// value.
func AbsAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// terms, or by at most tol relative to the larger magnitude. NaNs are never
// equal; equal infinities are.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
