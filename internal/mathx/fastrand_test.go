package mathx

import (
	"math"
	"testing"
)

func TestFastSourceDeterministic(t *testing.T) {
	a, b := NewFastRand(42), NewFastRand(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewFastRand(43)
	same := 0
	d := NewFastRand(42)
	for i := 0; i < 1000; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 identical draws from different seeds", same)
	}
}

func TestFastSourceUniformity(t *testing.T) {
	// Coarse sanity: mean and variance of Float64 draws near uniform's.
	rng := NewFastRand(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance %v, want ~%v", variance, 1.0/12)
	}
}

func TestFastSourceSeedResets(t *testing.T) {
	s := NewFastSource(9)
	first := s.Uint64()
	s.Seed(9)
	if got := s.Uint64(); got != first {
		t.Errorf("re-seeded stream started at %v, want %v", got, first)
	}
}
