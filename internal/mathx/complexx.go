package mathx

import (
	"math"
	"math/cmplx"
)

// Phases returns the argument of every element of zs in radians.
func Phases(zs []complex128) []float64 {
	out := make([]float64, len(zs))
	for i, z := range zs {
		out[i] = cmplx.Phase(z)
	}
	return out
}

// Magnitudes returns the modulus of every element of zs.
func Magnitudes(zs []complex128) []float64 {
	out := make([]float64, len(zs))
	for i, z := range zs {
		out[i] = cmplx.Abs(z)
	}
	return out
}

// Polar builds a complex number from magnitude and phase (radians).
func Polar(mag, phase float64) complex128 {
	return cmplx.Rect(mag, phase)
}

// MeanComplex returns the arithmetic mean of zs, or NaN+NaNi when empty.
func MeanComplex(zs []complex128) complex128 {
	if len(zs) == 0 {
		return complex(math.NaN(), math.NaN())
	}
	var s complex128
	for _, z := range zs {
		s += z
	}
	return s / complex(float64(len(zs)), 0)
}

// PowerComplex returns the mean squared magnitude of zs, or NaN when empty.
func PowerComplex(zs []complex128) float64 {
	if len(zs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, z := range zs {
		re, im := real(z), imag(z)
		s += re*re + im*im
	}
	return s / float64(len(zs))
}

// DBFromRatio converts an amplitude ratio to decibels (20·log10).
func DBFromRatio(ratio float64) float64 {
	return 20 * math.Log10(ratio)
}

// RatioFromDB converts decibels to an amplitude ratio.
func RatioFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}
