package mathx

import "math/rand"

// FastSource is a splitmix64 rand.Source64. The standard library's
// rng source burns ~600 multiplies re-keying its 607-word lagged-Fibonacci
// state on every Seed call, which dominates profiles wherever a fresh
// deterministic stream is created per small unit of work (one simulated
// session, one SMO machine). Splitmix64 seeds in one word write, draws in
// a handful of arithmetic ops, and passes BigCrush — more than enough for
// synthesising measurement noise. Streams are fully determined by the
// seed, so all (scenario, seed) reproducibility contracts hold; the drawn
// values simply come from a different (still fixed) sequence than the
// old source produced.
type FastSource struct {
	state uint64
}

// NewFastSource returns a FastSource seeded like rand.NewSource(seed).
func NewFastSource(seed int64) *FastSource {
	s := &FastSource{}
	s.Seed(seed)
	return s
}

// NewFastRand returns a *rand.Rand drawing from a fresh FastSource —
// a drop-in replacement for rand.New(rand.NewSource(seed)) on hot paths.
func NewFastRand(seed int64) *rand.Rand {
	return rand.New(NewFastSource(seed))
}

// Seed resets the stream. O(1), unlike the stdlib source.
func (s *FastSource) Seed(seed int64) {
	s.state = uint64(seed)
}

// Uint64 advances the splitmix64 state and returns the next output.
func (s *FastSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 satisfies rand.Source.
func (s *FastSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}
