package mathx

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestPhasesMagnitudes(t *testing.T) {
	zs := []complex128{1, 1i, -1, -1i, 3 + 4i}
	ph := Phases(zs)
	wantPh := []float64{0, math.Pi / 2, math.Pi, -math.Pi / 2, math.Atan2(4, 3)}
	for i := range wantPh {
		if !AlmostEqual(ph[i], wantPh[i], 1e-12) {
			t.Errorf("Phases[%d] = %v, want %v", i, ph[i], wantPh[i])
		}
	}
	mags := Magnitudes(zs)
	wantMag := []float64{1, 1, 1, 1, 5}
	for i := range wantMag {
		if !AlmostEqual(mags[i], wantMag[i], 1e-12) {
			t.Errorf("Magnitudes[%d] = %v, want %v", i, mags[i], wantMag[i])
		}
	}
}

func TestPolarRoundTrip(t *testing.T) {
	f := func(magRaw, phRaw float64) bool {
		if math.IsNaN(magRaw) || math.IsInf(magRaw, 0) || math.IsNaN(phRaw) || math.IsInf(phRaw, 0) {
			return true
		}
		mag := math.Abs(math.Mod(magRaw, 1e3)) + 0.001
		ph := WrapAngle(phRaw)
		z := Polar(mag, ph)
		return AlmostEqual(cmplx.Abs(z), mag, 1e-9) &&
			math.Abs(AngleDiff(cmplx.Phase(z), ph)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanComplex(t *testing.T) {
	got := MeanComplex([]complex128{1 + 1i, 3 + 3i})
	if got != 2+2i {
		t.Errorf("MeanComplex = %v, want (2+2i)", got)
	}
	empty := MeanComplex(nil)
	if !math.IsNaN(real(empty)) || !math.IsNaN(imag(empty)) {
		t.Errorf("MeanComplex(nil) = %v, want NaN+NaNi", empty)
	}
}

func TestPowerComplex(t *testing.T) {
	// |1+i|² = 2, |2|² = 4 → mean 3.
	if got := PowerComplex([]complex128{1 + 1i, 2}); !AlmostEqual(got, 3, 1e-12) {
		t.Errorf("PowerComplex = %v, want 3", got)
	}
	if !math.IsNaN(PowerComplex(nil)) {
		t.Error("PowerComplex(nil) should be NaN")
	}
}

func TestDBConversions(t *testing.T) {
	if got := DBFromRatio(10); !AlmostEqual(got, 20, 1e-12) {
		t.Errorf("DBFromRatio(10) = %v, want 20", got)
	}
	if got := RatioFromDB(20); !AlmostEqual(got, 10, 1e-12) {
		t.Errorf("RatioFromDB(20) = %v, want 10", got)
	}
	// Round trip property.
	f := func(db float64) bool {
		if math.IsNaN(db) || math.IsInf(db, 0) {
			return true
		}
		db = math.Mod(db, 100)
		return AlmostEqual(DBFromRatio(RatioFromDB(db)), db, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
