package mathx

import "math"

// WrapAngle maps an angle in radians to the half-open interval [-π, π).
func WrapAngle(a float64) float64 {
	// math.Remainder maps to [-π, π] with ties toward even quotients;
	// normalise the single boundary case so the interval is half-open.
	w := math.Remainder(a, 2*math.Pi)
	if w >= math.Pi {
		w -= 2 * math.Pi
	}
	if w < -math.Pi {
		w += 2 * math.Pi
	}
	return w
}

// WrapAngle2Pi maps an angle in radians to [0, 2π).
func WrapAngle2Pi(a float64) float64 {
	w := math.Mod(a, 2*math.Pi)
	if w < 0 {
		w += 2 * math.Pi
	}
	return w
}

// AngleDiff returns the signed minimal difference a-b wrapped to [-π, π).
func AngleDiff(a, b float64) float64 {
	return WrapAngle(a - b)
}

// CircularMean returns the circular mean of the angles (radians), i.e. the
// argument of the mean unit phasor. Returns NaN for empty input or when the
// resultant vector length is (numerically) zero.
func CircularMean(angles []float64) float64 {
	if len(angles) == 0 {
		return math.NaN()
	}
	var sx, sy float64
	for _, a := range angles {
		s, c := math.Sincos(a)
		sx += c
		sy += s
	}
	if math.Hypot(sx, sy) < 1e-12 {
		return math.NaN()
	}
	return math.Atan2(sy, sx)
}

// CircularVariance returns 1-R where R is the mean resultant length of the
// unit phasors of the angles. It is 0 for identical angles and approaches 1
// for angles uniformly spread over the circle. Returns NaN for empty input.
func CircularVariance(angles []float64) float64 {
	if len(angles) == 0 {
		return math.NaN()
	}
	var sx, sy float64
	for _, a := range angles {
		s, c := math.Sincos(a)
		sx += c
		sy += s
	}
	r := math.Hypot(sx, sy) / float64(len(angles))
	return 1 - r
}

// CircularStdDev returns the circular standard deviation sqrt(-2 ln R) in
// radians. It diverges as the distribution approaches uniform. Returns NaN
// for empty input.
func CircularStdDev(angles []float64) float64 {
	if len(angles) == 0 {
		return math.NaN()
	}
	var sx, sy float64
	for _, a := range angles {
		s, c := math.Sincos(a)
		sx += c
		sy += s
	}
	r := math.Hypot(sx, sy) / float64(len(angles))
	if r <= 0 {
		return math.Inf(1)
	}
	if r >= 1 {
		return 0
	}
	return math.Sqrt(-2 * math.Log(r))
}

// AngularSpreadDeg returns the full angular fluctuation of the angles in
// degrees, measured as the 5th-to-95th percentile span of deviations from
// the circular mean. This is the "angular fluctuation is around 18 degrees"
// metric the paper reports in Figs. 2 and 12.
func AngularSpreadDeg(angles []float64) float64 {
	if len(angles) == 0 {
		return math.NaN()
	}
	mu := CircularMean(angles)
	if math.IsNaN(mu) {
		// Perfectly balanced phasors (e.g. uniform): report full circle.
		return 360
	}
	dev := make([]float64, len(angles))
	for i, a := range angles {
		dev[i] = AngleDiff(a, mu)
	}
	span := Percentile(dev, 95) - Percentile(dev, 5)
	return span * 180 / math.Pi
}

// UnwrapAngles removes 2π jumps from a sequence of angles, returning a
// continuous phase track (like numpy.unwrap).
func UnwrapAngles(angles []float64) []float64 {
	out := make([]float64, len(angles))
	if len(angles) == 0 {
		return out
	}
	out[0] = angles[0]
	for i := 1; i < len(angles); i++ {
		d := WrapAngle(angles[i] - angles[i-1])
		out[i] = out[i-1] + d
	}
	return out
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
