package mathx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{5}, 5},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
		{"constant", []float64{7, 7, 7}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !AlmostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestVariance(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"constant is zero", []float64{3, 3, 3, 3}, 0},
		{"simple", []float64{1, 2, 3, 4}, 1.25},
		{"two points", []float64{0, 2}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.in); !AlmostEqual(got, tt.want, 1e-12) {
				t.Errorf("Variance(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSampleVariance(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	want := 5.0 / 3.0
	if got := SampleVariance(in); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, want)
	}
	if got := SampleVariance([]float64{1}); !math.IsNaN(got) {
		t.Errorf("SampleVariance of one element = %v, want NaN", got)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{9}, 9},
		{"duplicates", []float64{5, 5, 1}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.in); got != tt.want {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	// median = 2, deviations = {1,0,1}, MAD = 1
	if got := MAD([]float64{1, 2, 3}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	// Constant data has zero spread.
	if got := MAD([]float64{4, 4, 4}); got != 0 {
		t.Errorf("MAD of constants = %v, want 0", got)
	}
}

func TestMADStdDevGaussianConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 2.5
	}
	got := MADStdDev(xs)
	if math.Abs(got-2.5) > 0.1 {
		t.Errorf("MADStdDev of N(0, 2.5²) = %v, want ≈2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !AlmostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("Percentile outside [0,100] should be NaN")
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, -1, 4, -1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := ArgMin(xs); got != 1 {
		t.Errorf("ArgMin = %v, want first minimum index 1", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Errorf("ArgMax = %v", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("Arg{Min,Max} of empty should be -1")
	}
}

func TestArgSort(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := ArgSort(xs)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgSort = %v, want %v", got, want)
		}
	}
	// Stability on ties.
	ties := []float64{1, 0, 1, 0}
	gt := ArgSort(ties)
	if gt[0] != 1 || gt[1] != 3 || gt[2] != 0 || gt[3] != 2 {
		t.Errorf("ArgSort ties = %v, want [1 3 0 2]", gt)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Linspace(2, 9, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("Linspace n=1 = %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0 = %v, want nil", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	// Mismatched lengths use the shorter.
	if got := Dot([]float64{1, 2}, []float64{3}); got != 3 {
		t.Errorf("Dot short = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestPower(t *testing.T) {
	if got := Power([]float64{1, -1, 1, -1}); got != 1 {
		t.Errorf("Power = %v", got)
	}
	if !math.IsNaN(Power(nil)) {
		t.Error("Power(nil) should be NaN")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestScaleAbsAll(t *testing.T) {
	in := []float64{-1, 2}
	if got := Scale(in, 3); got[0] != -3 || got[1] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := AbsAll(in); got[0] != 1 || got[1] != 2 {
		t.Errorf("AbsAll = %v", got)
	}
	if in[0] != -1 {
		t.Error("Scale/AbsAll mutated input")
	}
}

// Property: variance is non-negative and invariant to adding a constant.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		shift := math.Mod(shiftRaw, 1e3)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 0
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		// Tolerance scales with magnitude of the data.
		tol := 1e-6 * (1 + math.Abs(shift)) * (1 + math.Abs(Max(AbsAll(xs))))
		return math.Abs(Variance(shifted)-v) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: median lies within [min, max].
func TestMedianBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				t.Fatalf("Percentile not monotone at p=%v: %v < %v", p, v, prev)
			}
			prev = v
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-9) {
		t.Error("nearby values should compare equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("distant values should not compare equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN never equals NaN")
	}
	if !AlmostEqual(math.Inf(1), math.Inf(1), 1e-9) {
		t.Error("equal infinities compare equal")
	}
	// Relative tolerance path for large magnitudes.
	if !AlmostEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance should apply at large magnitude")
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) should be 0")
	}
	if Sum([]float64{1.5, 2.5}) != 4 {
		t.Error("Sum wrong")
	}
}

// sortMedian is the O(n log n) reference definition the quickselect Median
// must reproduce exactly.
func sortMedian(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return tmp[n/2-1]/2 + tmp[n/2]/2
}

func TestMedianMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = float64(rng.Intn(4)) // force duplicates
			case 1:
				xs[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				xs[i] = rng.NormFloat64() * 100
			}
		}
		got, want := Median(xs), sortMedian(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: Median(%v) = %v, sort reference %v", trial, xs, got, want)
		}
	}
	// Already-sorted and reverse-sorted runs exercise the pivot code.
	asc := make([]float64, 101)
	for i := range asc {
		asc[i] = float64(i)
	}
	if got := Median(asc); got != 50 {
		t.Fatalf("sorted run: Median = %v, want 50", got)
	}
	desc := make([]float64, 100)
	for i := range desc {
		desc[i] = float64(len(desc) - i)
	}
	if got, want := Median(desc), sortMedian(desc); got != want {
		t.Fatalf("reverse run: Median = %v, want %v", got, want)
	}
}

func TestMedianWithNaNsMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			if rng.Intn(4) == 0 {
				xs[i] = math.NaN()
			} else {
				xs[i] = rng.NormFloat64()
			}
		}
		got, want := Median(xs), sortMedian(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: Median(%v) = %v, sort reference %v", trial, xs, got, want)
		}
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Median(xs)
	for i, want := range []float64{5, 1, 4, 2, 3} {
		if xs[i] != want {
			t.Fatalf("Median mutated its input: %v", xs)
		}
	}
}

func BenchmarkMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Median(xs)
	}
}

func TestMedianAndMADStdDevMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var buf []float64
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		wantMed, wantSig := Median(xs), MADStdDev(xs)
		if med, sig := MedianAndMADStdDev(xs); med != wantMed || sig != wantSig {
			t.Fatalf("MedianAndMADStdDev = (%v, %v), want (%v, %v)", med, sig, wantMed, wantSig)
		}
		var med, sig float64
		med, sig, buf = MedianAndMADStdDevBuf(xs, buf)
		if med != wantMed || sig != wantSig {
			t.Fatalf("MedianAndMADStdDevBuf = (%v, %v), want (%v, %v)", med, sig, wantMed, wantSig)
		}
	}
	if med, sig, _ := MedianAndMADStdDevBuf(nil, buf); !math.IsNaN(med) || !math.IsNaN(sig) {
		t.Fatalf("empty input should give NaNs, got (%v, %v)", med, sig)
	}
}
