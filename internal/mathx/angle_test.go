package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWrapAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{math.Pi, -math.Pi}, // boundary folds to -π (half-open interval)
		{-math.Pi, -math.Pi},
		{3 * math.Pi, -math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := WrapAngle(tt.in); !AlmostEqual(got, tt.want, 1e-12) {
			t.Errorf("WrapAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapAngleRangeProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1e6)
		w := WrapAngle(a)
		if w < -math.Pi || w >= math.Pi {
			return false
		}
		// Same angle modulo 2π.
		d := math.Mod(a-w, 2*math.Pi)
		return math.Abs(math.Remainder(d, 2*math.Pi)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWrapAngle2Pi(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
		{2 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := WrapAngle2Pi(tt.in); !AlmostEqual(got, tt.want, 1e-12) {
			t.Errorf("WrapAngle2Pi(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	// Difference across the wrap boundary is small, not ~2π.
	a := math.Pi - 0.1
	b := -math.Pi + 0.1
	if got := AngleDiff(a, b); !AlmostEqual(got, -0.2, 1e-9) {
		t.Errorf("AngleDiff across boundary = %v, want -0.2", got)
	}
}

func TestCircularMean(t *testing.T) {
	// Angles clustered around the wrap boundary average correctly.
	angles := []float64{math.Pi - 0.1, -math.Pi + 0.1}
	got := CircularMean(angles)
	if !AlmostEqual(math.Abs(got), math.Pi, 1e-9) {
		t.Errorf("CircularMean near boundary = %v, want ±π", got)
	}
	// Simple cluster.
	got = CircularMean([]float64{0.1, 0.2, 0.3})
	if !AlmostEqual(got, 0.2, 1e-9) {
		t.Errorf("CircularMean = %v, want 0.2", got)
	}
	if !math.IsNaN(CircularMean(nil)) {
		t.Error("CircularMean(nil) should be NaN")
	}
	// Balanced phasors cancel → NaN.
	if !math.IsNaN(CircularMean([]float64{0, math.Pi})) {
		t.Error("CircularMean of opposed phasors should be NaN")
	}
}

func TestCircularVariance(t *testing.T) {
	if got := CircularVariance([]float64{1, 1, 1}); !AlmostEqual(got, 0, 1e-12) {
		t.Errorf("identical angles variance = %v, want 0", got)
	}
	// Uniform coverage approaches 1.
	n := 1000
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = 2 * math.Pi * float64(i) / float64(n)
	}
	if got := CircularVariance(angles); got < 0.99 {
		t.Errorf("uniform angles variance = %v, want ≈1", got)
	}
}

func TestCircularStdDev(t *testing.T) {
	if got := CircularStdDev([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("identical angles stddev = %v, want 0", got)
	}
	// Tight Gaussian cluster: circular stddev ≈ linear stddev.
	rng := rand.New(rand.NewSource(7))
	angles := make([]float64, 5000)
	for i := range angles {
		angles[i] = rng.NormFloat64() * 0.1
	}
	got := CircularStdDev(angles)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("CircularStdDev of N(0, 0.1²) = %v, want ≈0.1", got)
	}
}

func TestAngularSpreadDeg(t *testing.T) {
	// A tight cluster has a small spread.
	cluster := []float64{0.0, 0.05, -0.05, 0.02, -0.02, 0.04, -0.04, 0.01, -0.01, 0.03}
	if got := AngularSpreadDeg(cluster); got > 10 {
		t.Errorf("tight cluster spread = %v°, want < 10°", got)
	}
	// Uniform angles span (nearly) the whole circle.
	n := 720
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 2 * math.Pi * float64(i) / float64(n)
	}
	if got := AngularSpreadDeg(uniform); got < 300 {
		t.Errorf("uniform spread = %v°, want ≈324-360°", got)
	}
}

func TestAngularSpreadClusterVsUniformOrdering(t *testing.T) {
	// The paper's Fig. 2/12 claim in miniature: clustered phase differences
	// must report a far smaller spread than raw uniform phase.
	rng := rand.New(rand.NewSource(3))
	clustered := make([]float64, 200)
	uniform := make([]float64, 200)
	for i := range clustered {
		clustered[i] = 1.0 + rng.NormFloat64()*Rad(5)
		uniform[i] = rng.Float64() * 2 * math.Pi
	}
	c := AngularSpreadDeg(clustered)
	u := AngularSpreadDeg(uniform)
	if c >= u/5 {
		t.Errorf("clustered spread %v° not ≪ uniform spread %v°", c, u)
	}
}

func TestUnwrapAngles(t *testing.T) {
	// A continuously increasing phase that wraps should unwrap to a ramp.
	n := 100
	in := make([]float64, n)
	for i := range in {
		in[i] = WrapAngle(0.3 * float64(i))
	}
	out := UnwrapAngles(in)
	for i := range out {
		want := 0.3 * float64(i)
		// Unwrap preserves the initial wrapped value as origin.
		want = WrapAngle(in[0]) + 0.3*float64(i) - 0.3*0
		if !AlmostEqual(out[i], want, 1e-9) {
			t.Fatalf("UnwrapAngles[%d] = %v, want %v", i, out[i], want)
		}
	}
	if got := UnwrapAngles(nil); len(got) != 0 {
		t.Error("UnwrapAngles(nil) should be empty")
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		return AlmostEqual(Rad(Deg(x)), x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if !AlmostEqual(Deg(math.Pi), 180, 1e-12) {
		t.Error("Deg(π) != 180")
	}
}
