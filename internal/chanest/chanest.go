// Package chanest estimates channel characteristics from CSI — the power
// delay profile (PDP) and RMS delay spread that quantify how much multipath
// an environment has. The paper leans on this literature (reference [17],
// "Precise power delay profiling with commodity WiFi") to justify its
// multipath claims; here the same diagnostics validate the simulator's
// rooms and give users a way to characterise an environment before
// deploying WiMi in it.
package chanest

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/mathx"
)

// PDP is a power delay profile: per-tap power over delay.
type PDP struct {
	// Power[i] is the linear power of tap i.
	Power []float64
	// TapSpacing is the delay between taps in seconds (1/bandwidth).
	TapSpacing float64
}

// NumTaps returns the profile length.
func (p *PDP) NumTaps() int { return len(p.Power) }

// Delay returns the delay of tap i in seconds.
func (p *PDP) Delay(i int) float64 { return float64(i) * p.TapSpacing }

// SanitizePhase removes the per-packet linear phase across subcarriers —
// the SFO/PBD term k·(λb+λs) of Eq. 5 plus the common CFO — from one
// antenna's CSI, returning a cleaned copy. This is the sanitization step of
// reference [17] ("Precise power delay profiling with commodity WiFi"):
// without it the random per-packet slope acts as a random delay shift and
// smears any averaged power delay profile.
func SanitizePhase(values []complex128) []complex128 {
	n := len(values)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	phases := mathx.UnwrapAngles(mathx.Phases(values))
	// Least-squares line fit phase ≈ a + b·k.
	var sk, sp, skk, skp float64
	for k, ph := range phases {
		fk := float64(k)
		sk += fk
		sp += ph
		skk += fk * fk
		skp += fk * ph
	}
	fn := float64(n)
	den := fn*skk - sk*sk
	var a, b float64
	if den != 0 {
		b = (fn*skp - sk*sp) / den
		a = (sp - b*sk) / fn
	} else {
		a = sp / fn
	}
	for k, v := range values {
		out[k] = v * cmplx.Rect(1, -(a+b*float64(k)))
	}
	return out
}

// FromCSI computes the PDP of one antenna's CSI by sanitizing the phase
// (see SanitizePhase) and inverse-transforming the frequency response
// across the reported subcarriers. The Intel 5300 grid has a gap at DC and
// uneven spacing; the standard approach (taken here) is to treat the 30
// reported subcarriers as a uniform band — adequate for delay-spread
// estimation, which only needs power ratios across taps.
func FromCSI(m *csi.Matrix, ant int) (*PDP, error) {
	if ant < 0 || ant >= m.NumAntennas() {
		return nil, fmt.Errorf("chanest: antenna %d out of range [0,%d)", ant, m.NumAntennas())
	}
	h := SanitizePhase(m.Values[ant])
	taps := dsp.IFFT(h)
	power := make([]float64, len(taps))
	for i, t := range taps {
		power[i] = real(t)*real(t) + imag(t)*imag(t)
	}
	// The reported band spans 56 subcarrier spacings ≈ 17.5 MHz.
	bandwidth := 56 * csi.SubcarrierSpacing
	return &PDP{Power: power, TapSpacing: 1 / bandwidth}, nil
}

// AveragePDP averages the per-packet PDPs of one antenna over a capture —
// multipath taps are static and reinforce, noise averages down.
func AveragePDP(c *csi.Capture, ant int) (*PDP, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("chanest: empty capture")
	}
	var acc *PDP
	for i := range c.Packets {
		p, err := FromCSI(c.Packets[i].CSI, ant)
		if err != nil {
			return nil, fmt.Errorf("chanest: packet %d: %w", i, err)
		}
		if acc == nil {
			acc = p
			continue
		}
		for t := range acc.Power {
			acc.Power[t] += p.Power[t]
		}
	}
	inv := 1 / float64(c.Len())
	for t := range acc.Power {
		acc.Power[t] *= inv
	}
	return acc, nil
}

// RMSDelaySpread returns the power-weighted RMS delay spread in seconds —
// the standard single-number multipath severity metric. Returns an error
// for an all-zero profile.
func (p *PDP) RMSDelaySpread() (float64, error) {
	var total, meanNum float64
	for i, pw := range p.Power {
		total += pw
		meanNum += pw * p.Delay(i)
	}
	if total <= 0 {
		return 0, fmt.Errorf("chanest: zero-power profile")
	}
	mean := meanNum / total
	var varNum float64
	for i, pw := range p.Power {
		d := p.Delay(i) - mean
		varNum += pw * d * d
	}
	return math.Sqrt(varNum / total), nil
}

// RicianK estimates the Rician K-factor (dominant-tap power over the sum of
// the rest, linear) — large K means a clean LoS-dominated link, small K a
// multipath-rich one. Returns +Inf when only one tap carries power.
func (p *PDP) RicianK() (float64, error) {
	if len(p.Power) == 0 {
		return 0, fmt.Errorf("chanest: empty profile")
	}
	var total, peak float64
	for _, pw := range p.Power {
		total += pw
		if pw > peak {
			peak = pw
		}
	}
	if total <= 0 {
		return 0, fmt.Errorf("chanest: zero-power profile")
	}
	rest := total - peak
	if rest <= 0 {
		return math.Inf(1), nil
	}
	return peak / rest, nil
}

// EnvironmentReport characterises a capture for deployment planning.
type EnvironmentReport struct {
	// RMSDelaySpreadNs is the RMS delay spread in nanoseconds.
	RMSDelaySpreadNs float64
	// RicianK is the LoS dominance factor (linear).
	RicianK float64
}

// Characterize averages PDPs over the capture's first antenna and reports
// the headline multipath metrics.
func Characterize(c *csi.Capture) (*EnvironmentReport, error) {
	pdp, err := AveragePDP(c, 0)
	if err != nil {
		return nil, err
	}
	ds, err := pdp.RMSDelaySpread()
	if err != nil {
		return nil, err
	}
	k, err := pdp.RicianK()
	if err != nil {
		return nil, err
	}
	return &EnvironmentReport{RMSDelaySpreadNs: ds * 1e9, RicianK: k}, nil
}

// String renders the report.
func (r *EnvironmentReport) String() string {
	return fmt.Sprintf("RMS delay spread %.1f ns, Rician K %.2f", r.RMSDelaySpreadNs, r.RicianK)
}
