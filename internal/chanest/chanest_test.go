package chanest

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/propagation"
	"repro/internal/simulate"
)

// flatChannelMatrix builds CSI for a pure single-tap (flat) channel.
func flatChannelMatrix(t *testing.T) *csi.Matrix {
	t.Helper()
	m, err := csi.NewMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	for ant := 0; ant < 2; ant++ {
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			m.Values[ant][sub] = complex(1, 0)
		}
	}
	return m
}

func TestFromCSIFlatChannelSingleTap(t *testing.T) {
	pdp, err := FromCSI(flatChannelMatrix(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pdp.NumTaps() != csi.NumSubcarriers {
		t.Fatalf("taps = %d", pdp.NumTaps())
	}
	// All energy lands in tap 0 for a flat channel.
	if pdp.Power[0] < 0.99 {
		t.Errorf("tap 0 power = %v, want ≈1", pdp.Power[0])
	}
	for i := 1; i < pdp.NumTaps(); i++ {
		if pdp.Power[i] > 1e-12 {
			t.Errorf("tap %d power = %v, want 0", i, pdp.Power[i])
		}
	}
	ds, err := pdp.RMSDelaySpread()
	if err != nil {
		t.Fatal(err)
	}
	if ds > 1e-12 {
		t.Errorf("flat channel delay spread = %v, want 0", ds)
	}
	k, err := pdp.RicianK()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(k, 1) {
		t.Errorf("single-tap K = %v, want +Inf", k)
	}
}

func TestFromCSIDelayedTapRecentredBySanitization(t *testing.T) {
	// A pure delayed tap e^{-j2πkd/N} is a LINEAR phase across subcarriers —
	// exactly what SanitizePhase removes (it is indistinguishable from
	// SFO/PBD). The PDP therefore recentres the dominant tap at delay 0;
	// only RELATIVE delays (spread) survive, which is all the diagnostics
	// use.
	m, err := csi.NewMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	n := csi.NumSubcarriers
	d := 5
	for sub := 0; sub < n; sub++ {
		m.Values[0][sub] = cmplx.Rect(1, -2*math.Pi*float64(d*sub)/float64(n))
	}
	pdp, err := FromCSI(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range pdp.Power {
		if pdp.Power[i] > pdp.Power[best] {
			best = i
		}
	}
	if best != 0 {
		t.Errorf("peak tap = %d, want 0 (recentred)", best)
	}
	// And the spread of a single tap is (near) zero.
	ds, err := pdp.RMSDelaySpread()
	if err != nil {
		t.Fatal(err)
	}
	if ds > 2e-9 {
		t.Errorf("single-tap delay spread = %v s, want ≈0", ds)
	}
}

func TestSanitizePhaseRemovesLinearSlope(t *testing.T) {
	// A two-tap channel with an added SFO-like slope: after sanitization the
	// RELATIVE tap separation must survive while the common slope is gone.
	n := csi.NumSubcarriers
	mk := func(slope float64) []complex128 {
		out := make([]complex128, n)
		for k := 0; k < n; k++ {
			// Tap at 0 plus a half-strength echo 4 taps later.
			h := complex(1, 0) + cmplx.Rect(0.5, -2*math.Pi*float64(4*k)/float64(n))
			out[k] = h * cmplx.Rect(1, slope*float64(k))
		}
		return out
	}
	clean := SanitizePhase(mk(0))
	sloped := SanitizePhase(mk(0.7))
	// Compare the PDP shapes (power is phase-slope invariant after
	// sanitization up to the recentring).
	pc := dsp.IFFT(clean)
	ps := dsp.IFFT(sloped)
	var diff, total float64
	for i := range pc {
		ac := real(pc[i])*real(pc[i]) + imag(pc[i])*imag(pc[i])
		as := real(ps[i])*real(ps[i]) + imag(ps[i])*imag(ps[i])
		d := ac - as
		diff += d * d
		total += ac * ac
	}
	if diff > 0.05*total {
		t.Errorf("sanitized PDPs differ: rel diff %v", diff/total)
	}
	if len(SanitizePhase(nil)) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestFromCSIValidation(t *testing.T) {
	m := flatChannelMatrix(t)
	if _, err := FromCSI(m, 5); err == nil {
		t.Error("antenna out of range should error")
	}
}

func TestAveragePDPEmptyCapture(t *testing.T) {
	var c csi.Capture
	if _, err := AveragePDP(&c, 0); err == nil {
		t.Error("empty capture should error")
	}
}

func TestDelaySpreadOrdersEnvironments(t *testing.T) {
	// The simulated hall/lab/library must rank by multipath severity under
	// the standard delay-spread metric — validating the substitution in
	// DESIGN.md ("more multipath → noisier, frequency-selectively").
	spread := func(env propagation.Environment) float64 {
		sc := simulate.Default()
		sc.Env = env
		sc.Packets = 60
		// Clean hardware: the diagnostic targets the channel itself.
		sc.Hardware.ImpulseProb = 0
		sc.Hardware.OutlierProb = 0
		sc.Hardware.SNRdB = 50
		s, err := simulate.Session(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Characterize(&s.Baseline)
		if err != nil {
			t.Fatal(err)
		}
		return rep.RMSDelaySpreadNs
	}
	hall := spread(propagation.EnvHall)
	lab := spread(propagation.EnvLab)
	library := spread(propagation.EnvLibrary)
	if !(hall > 0 && lab > 0 && library > 0) {
		t.Fatalf("spreads: hall %v, lab %v, library %v", hall, lab, library)
	}
	if library <= hall {
		t.Errorf("library delay spread %v not above hall %v", library, hall)
	}
}

func TestRicianKDropsWithMultipath(t *testing.T) {
	k := func(env propagation.Environment) float64 {
		sc := simulate.Default()
		sc.Env = env
		sc.Packets = 60
		sc.Hardware.ImpulseProb = 0
		sc.Hardware.OutlierProb = 0
		sc.Hardware.SNRdB = 50
		s, err := simulate.Session(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Characterize(&s.Baseline)
		if err != nil {
			t.Fatal(err)
		}
		return rep.RicianK
	}
	if kh, kl := k(propagation.EnvHall), k(propagation.EnvLibrary); kl >= kh {
		t.Errorf("library K %v not below hall K %v", kl, kh)
	}
}

func TestZeroPowerProfileErrors(t *testing.T) {
	p := &PDP{Power: make([]float64, 8), TapSpacing: 1e-9}
	if _, err := p.RMSDelaySpread(); err == nil {
		t.Error("zero power should error")
	}
	if _, err := p.RicianK(); err == nil {
		t.Error("zero power should error")
	}
	empty := &PDP{}
	if _, err := empty.RicianK(); err == nil {
		t.Error("empty profile should error")
	}
}

func TestEnvironmentReportString(t *testing.T) {
	r := &EnvironmentReport{RMSDelaySpreadNs: 42.5, RicianK: 3.2}
	if s := r.String(); s == "" {
		t.Error("String should render")
	}
}
