package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

func TestKernelSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kernels := []Kernel{LinearKernel{}, RBFKernel{Gamma: 0.5}, PolyKernel{Degree: 3, Coef: 1}}
	for _, k := range kernels {
		for trial := 0; trial < 50; trial++ {
			a := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			b := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			if !mathx.AlmostEqual(k.Eval(a, b), k.Eval(b, a), 1e-12) {
				t.Errorf("%s not symmetric", k.Name())
			}
		}
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBFKernel{Gamma: 1}
	a := []float64{1, 2}
	if got := k.Eval(a, a); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("K(a,a) = %v, want 1", got)
	}
	// Monotone decreasing in distance.
	if k.Eval(a, []float64{1, 3}) <= k.Eval(a, []float64{1, 5}) {
		t.Error("RBF should decay with distance")
	}
}

func TestLinearKernel(t *testing.T) {
	if got := (LinearKernel{}).Eval([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("linear kernel = %v, want 11", got)
	}
}

func TestPolyKernel(t *testing.T) {
	k := PolyKernel{Degree: 2, Coef: 1}
	// (1·1 + 1)² = 4.
	if got := k.Eval([]float64{1}, []float64{1}); got != 4 {
		t.Errorf("poly kernel = %v, want 4", got)
	}
}

func TestTrainBinaryValidation(t *testing.T) {
	x := [][]float64{{0}, {1}}
	if _, err := TrainBinary(x, []float64{1, -1}, nil, Config{}); err == nil {
		t.Error("nil kernel should error")
	}
	if _, err := TrainBinary(nil, nil, LinearKernel{}, Config{}); err == nil {
		t.Error("empty data should error")
	}
	if _, err := TrainBinary(x, []float64{1, 2}, LinearKernel{}, Config{}); err == nil {
		t.Error("non ±1 labels should error")
	}
	if _, err := TrainBinary(x, []float64{1, 1}, LinearKernel{}, Config{}); err == nil {
		t.Error("single class should error")
	}
	ragged := [][]float64{{0, 1}, {1}}
	if _, err := TrainBinary(ragged, []float64{1, -1}, LinearKernel{}, Config{}); err == nil {
		t.Error("ragged samples should error")
	}
}

func TestBinaryLinearlySeparable(t *testing.T) {
	// Two clean clusters on a line.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		x = append(x, []float64{-2 + rng.NormFloat64()*0.3})
		y = append(y, -1)
		x = append(x, []float64{2 + rng.NormFloat64()*0.3})
		y = append(y, 1)
	}
	m, err := TrainBinary(x, y, LinearKernel{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := m.Predict(x[i]); got != y[i] {
			t.Errorf("sample %d (%v): predicted %v, want %v", i, x[i], got, y[i])
		}
	}
	// Margins should be signed correctly for held-out points.
	if m.Decision([]float64{-3}) >= 0 {
		t.Error("far-left point should be negative")
	}
	if m.Decision([]float64{3}) <= 0 {
		t.Error("far-right point should be positive")
	}
}

func TestBinaryXORNeedsRBF(t *testing.T) {
	// XOR is not linearly separable; RBF must solve it.
	x := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	y := []float64{1, 1, -1, -1}
	// Replicate points with jitter so SMO has a real dataset.
	rng := rand.New(rand.NewSource(3))
	var bigX [][]float64
	var bigY []float64
	for rep := 0; rep < 25; rep++ {
		for i := range x {
			bigX = append(bigX, []float64{
				x[i][0] + rng.NormFloat64()*0.05,
				x[i][1] + rng.NormFloat64()*0.05,
			})
			bigY = append(bigY, y[i])
		}
	}
	m, err := TrainBinary(bigX, bigY, RBFKernel{Gamma: 4}, Config{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if correct < 4 {
		t.Errorf("RBF SVM solved %d/4 XOR corners", correct)
	}
}

func TestBinaryDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		lab := float64(1)
		base := 1.0
		if i%2 == 0 {
			lab, base = -1, -1
		}
		x = append(x, []float64{base + rng.NormFloat64()*0.5})
		y = append(y, lab)
	}
	m1, err := TrainBinary(x, y, RBFKernel{Gamma: 1}, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainBinary(x, y, RBFKernel{Gamma: 1}, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v := -3.0; v <= 3; v += 0.1 {
		if m1.Decision([]float64{v}) != m2.Decision([]float64{v}) {
			t.Fatal("same seed gave different models")
		}
	}
}

func TestBinarySupportVectorsSubset(t *testing.T) {
	// With well-separated clusters most points are not support vectors.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{-5 + rng.NormFloat64()*0.1})
		y = append(y, -1)
		x = append(x, []float64{5 + rng.NormFloat64()*0.1})
		y = append(y, 1)
	}
	m, err := TrainBinary(x, y, LinearKernel{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSupportVectors() >= len(x)/2 {
		t.Errorf("support vectors = %d of %d; expected sparse solution", m.NumSupportVectors(), len(x))
	}
}

func TestMulticlassValidation(t *testing.T) {
	if _, err := TrainMulticlass(nil, nil, LinearKernel{}, Config{}); err == nil {
		t.Error("empty data should error")
	}
	x := [][]float64{{1}, {2}}
	if _, err := TrainMulticlass(x, []string{"a", "a"}, LinearKernel{}, Config{}); err == nil {
		t.Error("single class should error")
	}
	if _, err := TrainMulticlass(x, []string{"a"}, LinearKernel{}, Config{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMulticlassThreeGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	centers := map[string][2]float64{"a": {0, 0}, "b": {4, 0}, "c": {2, 4}}
	var x [][]float64
	var labels []string
	for name, c := range centers {
		for i := 0; i < 40; i++ {
			x = append(x, []float64{c[0] + rng.NormFloat64()*0.4, c[1] + rng.NormFloat64()*0.4})
			labels = append(labels, name)
		}
	}
	m, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 0.5}, Config{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Classes(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Classes = %v", got)
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("training accuracy %v, want ≥ 0.95", acc)
	}
	// Centres classify to their own class.
	for name, c := range centers {
		if got := m.Predict([]float64{c[0], c[1]}); got != name {
			t.Errorf("centre of %s predicted as %s", name, got)
		}
	}
}

func TestMulticlassPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var labels []string
	for i := 0; i < 30; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		labels = append(labels, string(rune('a'+i%3)))
	}
	m, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 1}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.1}
	first := m.Predict(probe)
	for i := 0; i < 10; i++ {
		if m.Predict(probe) != first {
			t.Fatal("prediction not deterministic")
		}
	}
}

func TestBinaryOverlappingClassesSoftMargin(t *testing.T) {
	// Heavily overlapping classes: training must still terminate and do
	// better than chance.
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		x = append(x, []float64{-0.5 + rng.NormFloat64()})
		y = append(y, -1)
		x = append(x, []float64{0.5 + rng.NormFloat64()})
		y = append(y, 1)
	}
	m, err := TrainBinary(x, y, LinearKernel{}, Config{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(x))
	if acc < 0.6 {
		t.Errorf("overlap accuracy %v, want > 0.6", acc)
	}
	if math.IsNaN(m.Decision([]float64{0})) {
		t.Error("decision is NaN")
	}
}
