package svm

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterises SMO training.
type Config struct {
	// C is the soft-margin penalty. Zero selects the default of 1.
	C float64
	// Tol is the KKT violation tolerance. Zero selects 1e-3.
	Tol float64
	// MaxPasses is how many consecutive alpha-sweeps without a change end
	// training. Zero selects 8.
	MaxPasses int
	// MaxIters hard-bounds total sweeps. Zero selects 2000.
	MaxIters int
	// Seed drives the randomised second-alpha choice, making training
	// deterministic for a fixed dataset.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 8
	}
	if c.MaxIters == 0 {
		c.MaxIters = 2000
	}
	return c
}

// Binary is a trained two-class SVM. Labels are internally ±1.
type Binary struct {
	kernel  Kernel
	dim     int         // feature dimensionality the model was trained on
	vectors [][]float64 // support vectors
	coefs   []float64   // αᵢ·yᵢ for each support vector
	bias    float64
}

// validateBinary checks the TrainBinary preconditions and returns the
// feature dimensionality.
func validateBinary(x [][]float64, y []float64, kernel Kernel) (int, error) {
	if kernel == nil {
		return 0, fmt.Errorf("svm: nil kernel")
	}
	n := len(x)
	if n == 0 || len(y) != n {
		return 0, fmt.Errorf("svm: need matching non-empty x (%d) and y (%d)", n, len(y))
	}
	dim := len(x[0])
	pos, neg := 0, 0
	for i, yi := range y {
		if yi != 1 && yi != -1 {
			return 0, fmt.Errorf("svm: label %v at %d not in {-1,+1}", yi, i)
		}
		if len(x[i]) != dim {
			return 0, fmt.Errorf("svm: ragged sample %d: %d dims, want %d", i, len(x[i]), dim)
		}
		if yi == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("svm: need both classes, got %d positive and %d negative", pos, neg)
	}
	return dim, nil
}

// gramMatrix precomputes the symmetric kernel matrix of x. Datasets here
// are a few hundred samples, so O(n²) memory is fine and saves O(n) kernel
// calls per SMO update.
func gramMatrix(x [][]float64, kernel Kernel) [][]float64 {
	n := len(x)
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kernel.Eval(x[i], x[j])
			gram[i][j] = v
			gram[j][i] = v
		}
	}
	return gram
}

// TrainBinary fits a soft-margin SVM on samples x with labels y ∈ {−1,+1}
// using simplified SMO. x must be non-empty, rectangular and the same
// length as y, and both classes must be present.
func TrainBinary(x [][]float64, y []float64, kernel Kernel, cfg Config) (*Binary, error) {
	dim, err := validateBinary(x, y, kernel)
	if err != nil {
		return nil, err
	}
	return trainBinaryGram(x, y, gramMatrix(x, kernel), kernel, cfg, dim)
}

// trainBinaryGram is the SMO core behind TrainBinary, taking the kernel
// matrix precomputed so callers training many machines over the same
// samples (one-vs-one pairs, cross-validation folds) can slice one shared
// Gram instead of re-evaluating the kernel per machine. gram[i][j] must
// equal kernel.Eval(x[i], x[j]).
func trainBinaryGram(x [][]float64, y []float64, gram [][]float64, kernel Kernel, cfg Config, dim int) (*Binary, error) {
	n := len(x)
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	alpha := make([]float64, n)
	// ya caches alpha[j]*y[j] (labels are ±1, so ya[j] = 0 iff alpha[j] = 0);
	// the margin evaluation below is the SMO hot loop and this saves it a
	// multiply per active sample without changing a bit of the sum.
	ya := make([]float64, n)
	var b float64
	f := func(i int) float64 {
		s := b
		row := gram[i]
		for j, a := range ya {
			if a != 0 {
				s += a * row[j]
			}
		}
		return s
	}
	passes, iters := 0, 0
	for passes < cfg.MaxPasses && iters < cfg.MaxIters {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*gram[i][j] - gram[i][i] - gram[j][j]
			if eta >= 0 {
				continue
			}
			alpha[j] = aj - y[j]*(ei-ej)/eta
			if alpha[j] > hi {
				alpha[j] = hi
			} else if alpha[j] < lo {
				alpha[j] = lo
			}
			if math.Abs(alpha[j]-aj) < 1e-7 {
				alpha[j] = aj
				continue
			}
			alpha[i] = ai + y[i]*y[j]*(aj-alpha[j])
			ya[i], ya[j] = alpha[i]*y[i], alpha[j]*y[j]
			b1 := b - ei - y[i]*(alpha[i]-ai)*gram[i][i] - y[j]*(alpha[j]-aj)*gram[i][j]
			b2 := b - ej - y[i]*(alpha[i]-ai)*gram[i][j] - y[j]*(alpha[j]-aj)*gram[j][j]
			switch {
			case alpha[i] > 0 && alpha[i] < cfg.C:
				b = b1
			case alpha[j] > 0 && alpha[j] < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			changed++
		}
		iters++
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	model := &Binary{kernel: kernel, dim: dim, bias: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 0 {
			model.vectors = append(model.vectors, append([]float64(nil), x[i]...))
			model.coefs = append(model.coefs, alpha[i]*y[i])
		}
	}
	if len(model.vectors) == 0 {
		return nil, fmt.Errorf("svm: training produced no support vectors")
	}
	return model, nil
}

// Decision returns the signed margin f(x) = Σ αᵢyᵢK(xᵢ,x) + b. x must have
// Dim() features; a mismatched query is a programming error and panics
// with a descriptive message instead of silently truncating.
func (m *Binary) Decision(x []float64) float64 {
	if len(x) != m.dim {
		panic(fmt.Sprintf("svm: query has %d features, model was trained on %d", len(x), m.dim))
	}
	s := m.bias
	for i, v := range m.vectors {
		s += m.coefs[i] * m.kernel.Eval(v, x)
	}
	return s
}

// Dim returns the feature dimensionality the model was trained on.
func (m *Binary) Dim() int { return m.dim }

// Predict returns the class label (+1 or −1) for x.
func (m *Binary) Predict(x []float64) float64 {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// NumSupportVectors reports the size of the trained model.
func (m *Binary) NumSupportVectors() int { return len(m.vectors) }
