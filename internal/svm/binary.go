package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// Config parameterises SMO training.
type Config struct {
	// C is the soft-margin penalty. Zero selects the default of 1.
	C float64
	// Tol is the KKT violation tolerance. Zero selects 1e-3.
	Tol float64
	// MaxPasses is how many consecutive full alpha-sweeps without a change
	// end training. Zero selects 8.
	MaxPasses int
	// MaxIters hard-bounds total sweeps. Zero selects 2000.
	MaxIters int
	// Seed drives the randomised second-alpha fallback, making training
	// deterministic for a fixed dataset.
	Seed int64
	// Workers bounds how many independent training problems run
	// concurrently in the layers above the binary solver (one-vs-one pair
	// machines in TrainMulticlass, grid cells in TuneRBF). Zero selects
	// GOMAXPROCS; 1 forces serial. Models are bit-identical at any
	// setting: every task derives its own seed and results are assembled
	// in task-index order.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 8
	}
	if c.MaxIters == 0 {
		c.MaxIters = 2000
	}
	return c
}

// Binary is a trained two-class SVM. Labels are internally ±1.
type Binary struct {
	kernel  Kernel
	dim     int         // feature dimensionality the model was trained on
	vectors [][]float64 // support vectors
	coefs   []float64   // αᵢ·yᵢ for each support vector
	bias    float64
	// svIdx[i] is the index of support vector i in the training slice the
	// model was fitted on — the key that lets decisionGram read kernel
	// values out of a precomputed Gram instead of re-evaluating them.
	// Persisted (with Multiclass.pairIdx) in the framed format so loaded
	// models keep their Gram path; nil when loading an older file.
	svIdx []int
}

// validateBinary checks the TrainBinary preconditions and returns the
// feature dimensionality.
func validateBinary(x [][]float64, y []float64, kernel Kernel) (int, error) {
	if kernel == nil {
		return 0, fmt.Errorf("svm: nil kernel")
	}
	n := len(x)
	if n == 0 || len(y) != n {
		return 0, fmt.Errorf("svm: need matching non-empty x (%d) and y (%d)", n, len(y))
	}
	dim := len(x[0])
	pos, neg := 0, 0
	for i, yi := range y {
		if yi != 1 && yi != -1 {
			return 0, fmt.Errorf("svm: label %v at %d not in {-1,+1}", yi, i)
		}
		if len(x[i]) != dim {
			return 0, fmt.Errorf("svm: ragged sample %d: %d dims, want %d", i, len(x[i]), dim)
		}
		if yi == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("svm: need both classes, got %d positive and %d negative", pos, neg)
	}
	return dim, nil
}

// newGram returns an n×n matrix whose rows all slice one flat backing
// array — one slice-header allocation plus one float64 allocation, the
// flat-backing convention the CSI and propagation buffers use.
func newGram(n int) [][]float64 {
	rows := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range rows {
		rows[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return rows
}

// newGram2 is newGram for rectangular rows×cols matrices.
func newGram2(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	backing := make([]float64, rows*cols)
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}

// sqDistMatrix precomputes the symmetric pairwise squared-distance matrix
// of x — the gamma-independent part of the RBF kernel, shared by every
// gamma a grid search visits. The accumulation order matches RBFKernel.Eval
// exactly so downstream Gram values are bit-identical to direct evaluation.
func sqDistMatrix(x [][]float64) [][]float64 {
	n := len(x)
	sqd := newGram(n)
	for i := range sqd {
		for j := 0; j <= i; j++ {
			var s float64
			a, b := x[i], x[j]
			for d := range a {
				diff := a[d] - b[d]
				s += diff * diff
			}
			sqd[i][j] = s
			sqd[j][i] = s
		}
	}
	return sqd
}

// rbfGramFromSqDist maps a squared-distance matrix through exp(−γ·d²),
// producing the same matrix gramMatrix(x, RBFKernel{gamma}) would.
func rbfGramFromSqDist(sqd [][]float64, gamma float64) [][]float64 {
	n := len(sqd)
	gram := newGram(n)
	for i := range gram {
		for j := 0; j <= i; j++ {
			v := math.Exp(-gamma * sqd[i][j])
			gram[i][j] = v
			gram[j][i] = v
		}
	}
	return gram
}

// gramMatrix precomputes the symmetric kernel matrix of x. Datasets here
// are a few hundred samples, so O(n²) memory is fine and saves O(n) kernel
// calls per SMO update.
func gramMatrix(x [][]float64, kernel Kernel) [][]float64 {
	n := len(x)
	gram := newGram(n)
	for i := range gram {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(x[i], x[j])
			gram[i][j] = v
			gram[j][i] = v
		}
	}
	return gram
}

// TrainBinary fits a soft-margin SVM on samples x with labels y ∈ {−1,+1}
// using SMO with a cached error vector. x must be non-empty, rectangular
// and the same length as y, and both classes must be present.
func TrainBinary(x [][]float64, y []float64, kernel Kernel, cfg Config) (*Binary, error) {
	dim, err := validateBinary(x, y, kernel)
	if err != nil {
		return nil, err
	}
	return trainBinaryGram(x, y, gramMatrix(x, kernel), kernel, cfg, dim)
}

// smoSolver is the state of one SMO optimisation. The central invariant is
// the error cache: errs[k] = f(k) − y[k] for every sample at all times,
// updated in O(n) after each successful alpha-pair step instead of
// recomputed as an O(n) margin sum per candidate — the difference between
// an O(n²)-per-sweep and an O(n·steps) training loop.
type smoSolver struct {
	gram  [][]float64
	y     []float64
	alpha []float64
	errs  []float64
	// active marks the working set: samples that are non-bound (0<α<C) or
	// were KKT violators at the last full pass. Between full passes the
	// solver only examines active samples, skipping the bound-clamped bulk.
	active []bool
	b      float64
	cfg    Config
	rng    *rand.Rand
}

func newSMOSolver(y []float64, gram [][]float64, cfg Config) *smoSolver {
	n := len(y)
	s := &smoSolver{
		gram:   gram,
		y:      y,
		alpha:  make([]float64, n),
		errs:   make([]float64, n),
		active: make([]bool, n),
		cfg:    cfg,
		rng:    mathx.NewFastRand(cfg.Seed),
	}
	// With α = 0 and b = 0, f(k) = 0 everywhere, so E(k) = −y(k).
	for k, yk := range y {
		s.errs[k] = -yk
		s.active[k] = true
	}
	return s
}

// violates reports whether sample i breaks its KKT condition by more than
// the tolerance, using the cached error.
func (s *smoSolver) violates(i int) bool {
	r := s.y[i] * s.errs[i]
	return (r < -s.cfg.Tol && s.alpha[i] < s.cfg.C) || (r > s.cfg.Tol && s.alpha[i] > 0)
}

// secondChoice picks the partner j maximising |Eᵢ−Eⱼ| over the non-bound
// samples — the standard heuristic for the largest feasible step. Returns
// -1 when no non-bound partner exists.
func (s *smoSolver) secondChoice(i int) int {
	best, bestGap := -1, -1.0
	ei := s.errs[i]
	for j, aj := range s.alpha {
		if j == i || aj <= 0 || aj >= s.cfg.C {
			continue
		}
		if gap := math.Abs(ei - s.errs[j]); gap > bestGap {
			best, bestGap = j, gap
		}
	}
	return best
}

// examine tries to optimise sample i, returning 1 if an alpha pair moved.
// The heuristic partner is tried first; if it makes no progress the solver
// falls back to the seeded-random scan, so the rng stream (and therefore
// the trained model) stays deterministic per cfg.Seed.
func (s *smoSolver) examine(i int) int {
	if !s.violates(i) {
		return 0
	}
	if j := s.secondChoice(i); j >= 0 && s.takeStep(i, j) {
		return 1
	}
	j := s.rng.Intn(len(s.y) - 1)
	if j >= i {
		j++
	}
	if s.takeStep(i, j) {
		return 1
	}
	return 0
}

// takeStep jointly optimises the (i, j) alpha pair, updating the bias and
// the full error cache exactly. Returns false when the pair cannot move.
func (s *smoSolver) takeStep(i, j int) bool {
	if i == j {
		return false
	}
	gram, y, alpha := s.gram, s.y, s.alpha
	c := s.cfg.C
	ei, ej := s.errs[i], s.errs[j]
	ai, aj := alpha[i], alpha[j]
	var lo, hi float64
	if y[i] != y[j] {
		lo = math.Max(0, aj-ai)
		hi = math.Min(c, c+aj-ai)
	} else {
		lo = math.Max(0, ai+aj-c)
		hi = math.Min(c, ai+aj)
	}
	if lo == hi {
		return false
	}
	eta := 2*gram[i][j] - gram[i][i] - gram[j][j]
	if eta >= 0 {
		return false
	}
	newAj := aj - y[j]*(ei-ej)/eta
	if newAj > hi {
		newAj = hi
	} else if newAj < lo {
		newAj = lo
	}
	if math.Abs(newAj-aj) < 1e-7 {
		return false
	}
	newAi := ai + y[i]*y[j]*(aj-newAj)
	b1 := s.b - ei - y[i]*(newAi-ai)*gram[i][i] - y[j]*(newAj-aj)*gram[i][j]
	b2 := s.b - ej - y[i]*(newAi-ai)*gram[i][j] - y[j]*(newAj-aj)*gram[j][j]
	var newB float64
	switch {
	case newAi > 0 && newAi < c:
		newB = b1
	case newAj > 0 && newAj < c:
		newB = b2
	default:
		newB = (b1 + b2) / 2
	}
	// Maintain the invariant: f moved by Δαᵢyᵢ·K(i,·) + Δαⱼyⱼ·K(j,·) + Δb.
	di := y[i] * (newAi - ai)
	dj := y[j] * (newAj - aj)
	db := newB - s.b
	rowI, rowJ := gram[i], gram[j]
	for k := range s.errs {
		s.errs[k] += di*rowI[k] + dj*rowJ[k] + db
	}
	alpha[i], alpha[j] = newAi, newAj
	s.b = newB
	s.active[i], s.active[j] = true, true
	return true
}

// solve runs the alternating full/shrunk sweep loop. Full passes examine
// every sample and rebuild the working set; between them, sweeps touch
// only the active set. Convergence is MaxPasses consecutive full passes
// without a step (MaxIters bounds total sweeps of either kind).
func (s *smoSolver) solve() {
	n := len(s.y)
	passes, iters := 0, 0
	examineAll := true
	for passes < s.cfg.MaxPasses && iters < s.cfg.MaxIters {
		changed := 0
		for i := 0; i < n; i++ {
			if examineAll || s.active[i] {
				changed += s.examine(i)
			}
		}
		iters++
		if examineAll {
			if changed == 0 {
				passes++
			} else {
				passes = 0
			}
			// Shrink: drop bound samples that satisfy KKT; they rejoin if a
			// later step moves them (takeStep re-activates its pair) or at
			// the next full pass.
			for i := 0; i < n; i++ {
				s.active[i] = s.violates(i) || (s.alpha[i] > 0 && s.alpha[i] < s.cfg.C)
			}
			examineAll = false
		} else if changed == 0 {
			// Active set exhausted: verify against the full problem.
			examineAll = true
		}
	}
}

// refitBias recenters the bias from the converged alphas. SMO with a
// single shared threshold can stall with every sample's KKT condition
// satisfied relative to a misplaced b (all decisions shifted by a common
// offset); the alphas are fine, only the threshold is off. The KKT
// conditions pin the correction δ (b ← b − δ) exactly: non-bound support
// vectors need E = 0, so δ is their mean cached error; with none, bound
// samples constrain δ to an interval and its midpoint is used.
func (s *smoSolver) refitBias() {
	var sum float64
	nb := 0
	lo, hi := math.Inf(-1), math.Inf(1)
	for i, a := range s.alpha {
		e := s.errs[i]
		switch {
		case a > 0 && a < s.cfg.C:
			sum += e
			nb++
		case (s.y[i] > 0) == (a == 0):
			// α=0 with y=+1 (wants y·f ≥ 1) or α=C with y=−1: δ ≤ E.
			hi = math.Min(hi, e)
		default:
			// α=0 with y=−1 or α=C with y=+1: δ ≥ E.
			lo = math.Max(lo, e)
		}
	}
	var delta float64
	switch {
	case nb > 0:
		delta = sum / float64(nb)
	case !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
		delta = (lo + hi) / 2
	case !math.IsInf(lo, -1):
		delta = lo
	case !math.IsInf(hi, 1):
		delta = hi
	}
	s.b -= delta
	for k := range s.errs {
		s.errs[k] -= delta
	}
}

// trainBinaryGram is the SMO core behind TrainBinary, taking the kernel
// matrix precomputed so callers training many machines over the same
// samples (one-vs-one pairs, cross-validation folds) can slice one shared
// Gram instead of re-evaluating the kernel per machine. gram[i][j] must
// equal kernel.Eval(x[i], x[j]).
func trainBinaryGram(x [][]float64, y []float64, gram [][]float64, kernel Kernel, cfg Config, dim int) (*Binary, error) {
	cfg = cfg.withDefaults()
	s := newSMOSolver(y, gram, cfg)
	s.solve()
	s.refitBias()
	model := &Binary{kernel: kernel, dim: dim, bias: s.b}
	for i := range x {
		if s.alpha[i] > 0 {
			model.vectors = append(model.vectors, append([]float64(nil), x[i]...))
			model.coefs = append(model.coefs, s.alpha[i]*y[i])
			model.svIdx = append(model.svIdx, i)
		}
	}
	if len(model.vectors) == 0 {
		return nil, fmt.Errorf("svm: training produced no support vectors")
	}
	return model, nil
}

// Decision returns the signed margin f(x) = Σ αᵢyᵢK(xᵢ,x) + b. x must have
// Dim() features; a mismatched query is a programming error and panics
// with a descriptive message instead of silently truncating.
func (m *Binary) Decision(x []float64) float64 {
	if len(x) != m.dim {
		panic(fmt.Sprintf("svm: query has %d features, model was trained on %d", len(x), m.dim))
	}
	s := m.bias
	for i, v := range m.vectors {
		s += m.coefs[i] * m.kernel.Eval(v, x)
	}
	return s
}

// decisionGram computes the same signed margin as Decision from
// precomputed kernel values: kRow[q] must equal K(query, x_q) over the
// dataset that ord indexes, and ord maps the model's training-slice sample
// indices into kRow. Support vectors accumulate in the same order as
// Decision with bit-identical kernel values, so the margins agree exactly.
// Available on freshly-trained models and on models loaded from files that
// carry the Gram index (sv_idx/pair_idx).
func (m *Binary) decisionGram(kRow []float64, ord []int) float64 {
	s := m.bias
	for i, idx := range m.svIdx {
		s += m.coefs[i] * kRow[ord[idx]]
	}
	return s
}

// Dim returns the feature dimensionality the model was trained on.
func (m *Binary) Dim() int { return m.dim }

// Predict returns the class label (+1 or −1) for x.
func (m *Binary) Predict(x []float64) float64 {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// NumSupportVectors reports the size of the trained model.
func (m *Binary) NumSupportVectors() int { return len(m.vectors) }
