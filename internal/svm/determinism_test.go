package svm

import (
	"bytes"
	"math"
	"testing"
)

// TestTrainMulticlassWorkerCountInvariance pins the parallel one-vs-one
// fan-out contract: the serialised ensemble must be byte-identical no
// matter how many workers trained it. Each pair machine owns a derived
// seed and a fixed output slot, so scheduling cannot leak into the model.
func TestTrainMulticlassWorkerCountInvariance(t *testing.T) {
	x, labels := clusteredData(10, []string{"a", "b", "c", "d"}, 6, 23)
	kernel := RBFKernel{Gamma: 0.5}
	serialize := func(workers int) []byte {
		t.Helper()
		mc, err := TrainMulticlass(x, labels, kernel, Config{C: 10, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := mc.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := serialize(1)
	for _, workers := range []int{2, 8} {
		if got := serialize(workers); !bytes.Equal(got, serial) {
			t.Errorf("model bytes differ between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestTuneRBFWorkerCountInvariance pins the same contract one level up:
// the grid search must choose the same point with the same per-point
// scores at any worker count, because every (gamma, fold) cell trains with
// its own derived seed and counts into its own slot before the in-order
// reduction.
func TestTuneRBFWorkerCountInvariance(t *testing.T) {
	x, labels := clusteredData(9, []string{"a", "b", "c"}, 5, 31)
	serial, err := TuneRBF(x, labels, DefaultGrid(), 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := TuneRBF(x, labels, DefaultGrid(), 3, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Best != serial.Best {
			t.Errorf("workers=%d chose %+v, workers=1 chose %+v", workers, got.Best, serial.Best)
		}
		for i := range serial.Scores {
			if got.Scores[i] != serial.Scores[i] {
				t.Fatalf("workers=%d score[%d] = %v, workers=1 scored %v",
					workers, i, got.Scores[i], serial.Scores[i])
			}
		}
	}
}

// TestCachedErrorMatchesRecompute checks the solver's central invariant
// after a full optimisation: the incrementally-maintained error cache must
// agree with a from-scratch recomputation of f(k) − y(k) from the final
// alphas and bias, and the decision values implied by the cache must match
// the assembled model, both to 1e-12.
func TestCachedErrorMatchesRecompute(t *testing.T) {
	x, rawLabels := clusteredData(14, []string{"p", "n"}, 7, 41)
	y := make([]float64, len(rawLabels))
	for i, lab := range rawLabels {
		if lab == "p" {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	kernel := RBFKernel{Gamma: 0.3}
	gram := gramMatrix(x, kernel)
	cfg := Config{C: 5, Seed: 11}.withDefaults()
	s := newSMOSolver(y, gram, cfg)
	s.solve()
	s.refitBias()
	for k := range y {
		f := s.b
		for j, a := range s.alpha {
			if a != 0 {
				f += a * y[j] * gram[k][j]
			}
		}
		recomputed := f - y[k]
		if diff := math.Abs(recomputed - s.errs[k]); diff > 1e-12 {
			t.Errorf("sample %d: cached error %v, recomputed %v (diff %v)",
				k, s.errs[k], recomputed, diff)
		}
	}
	// The model assembled from the same alphas must reproduce the cached
	// decision values f(k) = E(k) + y(k) on every training sample.
	model, err := trainBinaryGram(x, y, gram, kernel, Config{C: 5, Seed: 11}, len(x[0]))
	if err != nil {
		t.Fatal(err)
	}
	for k := range x {
		fromCache := s.errs[k] + y[k]
		if diff := math.Abs(model.Decision(x[k]) - fromCache); diff > 1e-12 {
			t.Errorf("sample %d: model decision %v, cache implies %v (diff %v)",
				k, model.Decision(x[k]), fromCache, diff)
		}
	}
}

// TestBiasRefitRespectsKKT checks that after training, the threshold
// satisfies the KKT conditions the refit enforces: non-bound support
// vectors sit on their margin (|E| small) rather than sharing a common
// offset left over from a stalled threshold.
func TestBiasRefitRespectsKKT(t *testing.T) {
	x, rawLabels := clusteredData(12, []string{"p", "n"}, 5, 53)
	y := make([]float64, len(rawLabels))
	for i, lab := range rawLabels {
		if lab == "p" {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	gram := gramMatrix(x, RBFKernel{Gamma: 0.5})
	cfg := Config{C: 2, Seed: 3}.withDefaults()
	s := newSMOSolver(y, gram, cfg)
	s.solve()
	s.refitBias()
	var sum float64
	nb := 0
	for i, a := range s.alpha {
		if a > 0 && a < cfg.C {
			sum += s.errs[i]
			nb++
		}
	}
	if nb > 0 {
		if mean := math.Abs(sum / float64(nb)); mean > 1e-9 {
			t.Errorf("mean non-bound error %v after refit, want ~0", mean)
		}
	}
}
