package svm

import (
	"math/rand"
	"strings"
	"testing"
)

func clusteredData(perClass int, classes []string, dim int, seed int64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var labels []string
	for ci, c := range classes {
		for s := 0; s < perClass; s++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = float64(ci) + 0.3*rng.NormFloat64()
			}
			x = append(x, v)
			labels = append(labels, c)
		}
	}
	return x, labels
}

// TestMulticlassGramSlicingMatchesDirectTraining checks that training a
// pairwise machine on a slice of the shared full-dataset Gram produces the
// exact model direct TrainBinary training would: same support-vector
// count and bit-identical decision values.
func TestMulticlassGramSlicingMatchesDirectTraining(t *testing.T) {
	classes := []string{"a", "b", "c", "d"}
	x, labels := clusteredData(12, classes, 6, 17)
	kernel := RBFKernel{Gamma: 0.5}
	cfg := Config{C: 10, Seed: 3}
	mc, err := TrainMulticlass(x, labels, kernel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := clusteredData(3, classes, 6, 99)
	for pi := range mc.models {
		a, b := mc.classes[mc.pairA[pi]], mc.classes[mc.pairB[pi]]
		var subX [][]float64
		var subY []float64
		for i, lab := range labels {
			switch lab {
			case a:
				subX = append(subX, x[i])
				subY = append(subY, 1)
			case b:
				subX = append(subX, x[i])
				subY = append(subY, -1)
			}
		}
		// Pair machines train with per-pair derived seeds so the ensemble is
		// order-independent; the direct reference must use the same seed.
		pairCfg := cfg
		pairCfg.Seed = cfg.Seed + int64(pi)*pairSeedStride
		direct, err := TrainBinary(subX, subY, kernel, pairCfg)
		if err != nil {
			t.Fatalf("pair %s/%s: %v", a, b, err)
		}
		if direct.NumSupportVectors() != mc.models[pi].NumSupportVectors() {
			t.Fatalf("pair %s/%s: %d support vectors via shared Gram, %d direct",
				a, b, mc.models[pi].NumSupportVectors(), direct.NumSupportVectors())
		}
		for _, q := range queries {
			if got, want := mc.models[pi].Decision(q), direct.Decision(q); got != want {
				t.Fatalf("pair %s/%s: decision %v via shared Gram, %v direct", a, b, got, want)
			}
		}
	}
}

func TestTrainMulticlassRejectsRaggedSamples(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5}, {6, 7}}
	labels := []string{"a", "a", "b", "b"}
	_, err := TrainMulticlass(x, labels, LinearKernel{}, Config{})
	if err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("want ragged-sample error, got %v", err)
	}
}

func TestTuneRBFRejectsRaggedSamples(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5}, {6, 7}}
	labels := []string{"a", "a", "b", "b"}
	_, err := TuneRBF(x, labels, DefaultGrid(), 2, 1, 0)
	if err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("want ragged-sample error, got %v", err)
	}
}

func TestPredictPanicsOnDimensionMismatch(t *testing.T) {
	x, labels := clusteredData(6, []string{"a", "b"}, 4, 5)
	mc, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Dim() != 4 {
		t.Fatalf("Dim() = %d, want 4", mc.Dim())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on mismatched query dimension")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "features") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	mc.Predict([]float64{1, 2, 3})
}

func TestKernelPanicsOnMismatchedDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from RBF Eval on mismatched lengths")
		}
	}()
	RBFKernel{Gamma: 1}.Eval([]float64{1, 2, 3}, []float64{1, 2})
}

func BenchmarkTrainMulticlass(b *testing.B) {
	x, labels := clusteredData(15, []string{"a", "b", "c", "d", "e"}, 8, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 0.5}, Config{C: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoTune(b *testing.B) {
	x, labels := clusteredData(8, []string{"a", "b", "c"}, 6, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TuneRBF(x, labels, DefaultGrid(), 3, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
