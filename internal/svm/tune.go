package svm

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/parallel"
)

// cellSeedStride separates the derived per-cell training seeds of the grid
// search, mirroring pairSeedStride one level up: every (gamma, fold) cell
// owns an independent deterministic rng regardless of scheduling.
const cellSeedStride = 15_485_863

// GridPoint is one hyperparameter candidate.
type GridPoint struct {
	C     float64
	Gamma float64
}

// TuneResult reports the winning hyperparameters and the full grid.
type TuneResult struct {
	Best GridPoint
	// Scores maps grid index to mean cross-validated accuracy.
	Scores []float64
	Grid   []GridPoint
}

// TuneRBF grid-searches (C, γ) for an RBF multiclass SVM with k-fold
// cross-validation over the labelled data. Folds are stratified by label.
// Ties break toward the earlier grid point, so results are deterministic.
//
// The search is embarrassingly parallel and fans out over workers pool
// workers (0 selects GOMAXPROCS) in two layers: one Gram matrix per
// distinct gamma, then one task per (gamma, fold) cell. Every cell trains
// with its own derived seed and accumulates into its own counters, which
// are reduced in cell order — the chosen point and every score are
// bit-identical at any worker count.
func TuneRBF(x [][]float64, labels []string, grid []GridPoint, folds int, seed int64, workers int) (*TuneResult, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return nil, fmt.Errorf("svm: tune needs matching non-empty x (%d) and labels (%d)", len(x), len(labels))
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("svm: empty hyperparameter grid")
	}
	if folds < 2 || folds > len(x) {
		return nil, fmt.Errorf("svm: folds=%d outside [2,%d]", folds, len(x))
	}
	for _, g := range grid {
		if g.C <= 0 || g.Gamma <= 0 {
			return nil, fmt.Errorf("svm: grid point C=%v gamma=%v must be positive", g.C, g.Gamma)
		}
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("svm: ragged sample %d: %d dims, want %d", i, len(x[i]), dim)
		}
	}
	// Stratified fold assignment. Classes are processed in sorted order so
	// the rng stream (and therefore the folds) is deterministic.
	rng := rand.New(rand.NewSource(seed))
	byClass := make(map[string][]int)
	for i, lab := range labels {
		byClass[lab] = append(byClass[lab], i)
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fold := make([]int, len(x))
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for pos, sample := range idx {
			fold[sample] = pos % folds
		}
	}
	res := &TuneResult{Grid: append([]GridPoint(nil), grid...)}
	res.Scores = make([]float64, len(grid))
	// Grid points sharing a gamma see the exact same kernel values, so the
	// full-dataset Gram matrix is computed once per distinct gamma (in
	// first-appearance order) and every fold × C training slices it instead
	// of re-evaluating the kernel. The squared-distance matrix underneath is
	// gamma-independent, so it is computed exactly once and each per-gamma
	// Gram is just an exp(−γ·d²) map over it — the values are bit-identical
	// to RBFKernel.Eval, which computes the same d² then the same Exp.
	var gammaOrder []float64
	byGamma := make(map[float64][]int)
	for gi, g := range grid {
		if _, ok := byGamma[g.Gamma]; !ok {
			gammaOrder = append(gammaOrder, g.Gamma)
		}
		byGamma[g.Gamma] = append(byGamma[g.Gamma], gi)
	}
	sqd := sqDistMatrix(x)
	grams := make([][][]float64, len(gammaOrder))
	err := parallel.ForEach(len(gammaOrder), workers, func(g int) error {
		grams[g] = rbfGramFromSqDist(sqd, gammaOrder[g])
		return nil
	})
	if err != nil {
		return nil, err
	}
	// One task per (gamma, fold) cell. Each cell trains every C sharing its
	// gamma on the cell's training folds and scores the held-out fold into
	// cell-local counters; the reduction below sums them in cell order.
	type cellCounts struct {
		correct, total []int // indexed like byGamma[gamma]
	}
	cells := make([]cellCounts, len(gammaOrder)*folds)
	err = parallel.ForEach(len(cells), workers, func(c int) error {
		g, f := c/folds, c%folds
		gamma := gammaOrder[g]
		kernel := RBFKernel{Gamma: gamma}
		full := grams[g]
		var trIdx, teIdx []int
		var teY []string
		for i := range x {
			if fold[i] == f {
				teIdx = append(teIdx, i)
				teY = append(teY, labels[i])
			} else {
				trIdx = append(trIdx, i)
			}
		}
		if len(teIdx) == 0 {
			return nil
		}
		trX := make([][]float64, len(trIdx))
		trY := make([]string, len(trIdx))
		for j, i := range trIdx {
			trX[j] = x[i]
			trY[j] = labels[i]
		}
		trGram := newGram(len(trIdx))
		for a, p := range trIdx {
			row := trGram[a]
			src := full[p]
			for b, q := range trIdx {
				row[b] = src[q]
			}
		}
		// Held-out samples are classified straight from the full Gram: row
		// teK[i][j] = K(test_i, train_j) is gathered once per cell and every
		// C's model predicts by indexing it (PredictGram) instead of
		// re-evaluating the kernel against each support vector.
		teK := newGram2(len(teIdx), len(trIdx))
		for a, p := range teIdx {
			row := teK[a]
			src := full[p]
			for b, q := range trIdx {
				row[b] = src[q]
			}
		}
		trByClass := make(map[string][]int)
		for i, lab := range trY {
			trByClass[lab] = append(trByClass[lab], i)
		}
		if len(trByClass) < 2 {
			// A degenerate fold (single class in training) disqualifies
			// this split, not the whole search.
			return nil
		}
		trClasses := make([]string, 0, len(trByClass))
		for c := range trByClass {
			trClasses = append(trClasses, c)
		}
		sort.Strings(trClasses)
		counts := cellCounts{
			correct: make([]int, len(byGamma[gamma])),
			total:   make([]int, len(byGamma[gamma])),
		}
		// One election scratch per cell: the held-out classification loop
		// below runs per C × per sample and must not allocate vote buffers
		// each time.
		var psc PredictScratch
		for k, gi := range byGamma[gamma] {
			cfg := Config{
				C:    grid[gi].C,
				Seed: seed + int64(c)*cellSeedStride,
				// The cell itself is the unit of parallelism; its inner
				// pair machines train serially to keep the pool bounded.
				Workers: 1,
			}
			model, err := trainMulticlassGram(trX, trY, trGram, trClasses, trByClass, kernel, cfg, dim)
			if err != nil {
				continue
			}
			for i := range teIdx {
				if model.PredictGramScratch(teK[i], &psc) == teY[i] {
					counts.correct[k]++
				}
				counts.total[k]++
			}
		}
		cells[c] = counts
		return nil
	})
	if err != nil {
		return nil, err
	}
	correct := make([]int, len(grid))
	total := make([]int, len(grid))
	for c, counts := range cells {
		if counts.correct == nil {
			continue
		}
		gamma := gammaOrder[c/folds]
		for k, gi := range byGamma[gamma] {
			correct[gi] += counts.correct[k]
			total[gi] += counts.total[k]
		}
	}
	for gi := range grid {
		if total[gi] > 0 {
			res.Scores[gi] = float64(correct[gi]) / float64(total[gi])
		}
	}
	best := 0
	for gi := 1; gi < len(grid); gi++ {
		if res.Scores[gi] > res.Scores[best] {
			best = gi
		}
	}
	res.Best = grid[best]
	return res, nil
}

// DefaultGrid returns the standard logarithmic (C, γ) search grid.
func DefaultGrid() []GridPoint {
	var out []GridPoint
	for _, c := range []float64{0.1, 1, 10, 100} {
		for _, g := range []float64{0.05, 0.2, 1, 5} {
			out = append(out, GridPoint{C: c, Gamma: g})
		}
	}
	return out
}
