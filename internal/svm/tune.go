package svm

import (
	"fmt"
	"math/rand"
	"sort"
)

// GridPoint is one hyperparameter candidate.
type GridPoint struct {
	C     float64
	Gamma float64
}

// TuneResult reports the winning hyperparameters and the full grid.
type TuneResult struct {
	Best GridPoint
	// Scores maps grid index to mean cross-validated accuracy.
	Scores []float64
	Grid   []GridPoint
}

// TuneRBF grid-searches (C, γ) for an RBF multiclass SVM with k-fold
// cross-validation over the labelled data. Folds are stratified by label.
// Ties break toward the earlier grid point, so results are deterministic.
func TuneRBF(x [][]float64, labels []string, grid []GridPoint, folds int, seed int64) (*TuneResult, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return nil, fmt.Errorf("svm: tune needs matching non-empty x (%d) and labels (%d)", len(x), len(labels))
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("svm: empty hyperparameter grid")
	}
	if folds < 2 || folds > len(x) {
		return nil, fmt.Errorf("svm: folds=%d outside [2,%d]", folds, len(x))
	}
	for _, g := range grid {
		if g.C <= 0 || g.Gamma <= 0 {
			return nil, fmt.Errorf("svm: grid point C=%v gamma=%v must be positive", g.C, g.Gamma)
		}
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("svm: ragged sample %d: %d dims, want %d", i, len(x[i]), dim)
		}
	}
	// Stratified fold assignment. Classes are processed in sorted order so
	// the rng stream (and therefore the folds) is deterministic.
	rng := rand.New(rand.NewSource(seed))
	byClass := make(map[string][]int)
	for i, lab := range labels {
		byClass[lab] = append(byClass[lab], i)
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fold := make([]int, len(x))
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for pos, sample := range idx {
			fold[sample] = pos % folds
		}
	}
	res := &TuneResult{Grid: append([]GridPoint(nil), grid...)}
	res.Scores = make([]float64, len(grid))
	// Grid points sharing a gamma see the exact same kernel values, so the
	// full-dataset Gram matrix is computed once per distinct gamma (in
	// first-appearance order) and every fold × C training slices it instead
	// of re-evaluating the kernel. Scores are bit-identical to the naive
	// per-point loop.
	var gammaOrder []float64
	byGamma := make(map[float64][]int)
	for gi, g := range grid {
		if _, ok := byGamma[g.Gamma]; !ok {
			gammaOrder = append(gammaOrder, g.Gamma)
		}
		byGamma[g.Gamma] = append(byGamma[g.Gamma], gi)
	}
	correct := make([]int, len(grid))
	total := make([]int, len(grid))
	for _, gamma := range gammaOrder {
		kernel := RBFKernel{Gamma: gamma}
		full := gramMatrix(x, kernel)
		for f := 0; f < folds; f++ {
			var trIdx []int
			var teX [][]float64
			var teY []string
			for i := range x {
				if fold[i] == f {
					teX = append(teX, x[i])
					teY = append(teY, labels[i])
				} else {
					trIdx = append(trIdx, i)
				}
			}
			if len(teX) == 0 {
				continue
			}
			trX := make([][]float64, len(trIdx))
			trY := make([]string, len(trIdx))
			for j, i := range trIdx {
				trX[j] = x[i]
				trY[j] = labels[i]
			}
			trGram := make([][]float64, len(trIdx))
			for a, p := range trIdx {
				row := make([]float64, len(trIdx))
				for b, q := range trIdx {
					row[b] = full[p][q]
				}
				trGram[a] = row
			}
			trByClass := make(map[string][]int)
			for i, lab := range trY {
				trByClass[lab] = append(trByClass[lab], i)
			}
			if len(trByClass) < 2 {
				// A degenerate fold (single class in training) disqualifies
				// this split, not the whole search.
				continue
			}
			trClasses := make([]string, 0, len(trByClass))
			for c := range trByClass {
				trClasses = append(trClasses, c)
			}
			sort.Strings(trClasses)
			for _, gi := range byGamma[gamma] {
				model, err := trainMulticlassGram(trX, trY, trGram, trClasses, trByClass, kernel, Config{C: grid[gi].C, Seed: seed}, dim)
				if err != nil {
					continue
				}
				for i := range teX {
					if model.Predict(teX[i]) == teY[i] {
						correct[gi]++
					}
					total[gi]++
				}
			}
		}
	}
	for gi := range grid {
		if total[gi] > 0 {
			res.Scores[gi] = float64(correct[gi]) / float64(total[gi])
		}
	}
	best := 0
	for gi := 1; gi < len(grid); gi++ {
		if res.Scores[gi] > res.Scores[best] {
			best = gi
		}
	}
	res.Best = grid[best]
	return res, nil
}

// DefaultGrid returns the standard logarithmic (C, γ) search grid.
func DefaultGrid() []GridPoint {
	var out []GridPoint
	for _, c := range []float64{0.1, 1, 10, 100} {
		for _, g := range []float64{0.05, 0.2, 1, 5} {
			out = append(out, GridPoint{C: c, Gamma: g})
		}
	}
	return out
}
