package svm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// pairSeedStride separates the derived per-pair training seeds. Each
// one-vs-one machine trains with cfg.Seed + pairIndex*pairSeedStride, so
// every training task owns an independent deterministic rng regardless of
// which worker runs it.
const pairSeedStride = 104_729

// Multiclass is a one-vs-one ensemble of binary SVMs over string class
// labels, the standard construction for multi-material identification.
type Multiclass struct {
	classes []string
	dim     int // feature dimensionality, shared by every pairwise machine
	// pairs[i] votes between classes[pairA[i]] and classes[pairB[i]].
	pairA, pairB []int
	models       []*Binary
	// pairIdx[i] maps pair i's local sample indices to indices in the
	// training set the ensemble was fitted on, enabling Gram-row prediction.
	pairIdx [][]int

	// poolOnce/pool lazily build the deduplicated support-vector block
	// PredictBatch evaluates against (batch.go). The ensemble is immutable
	// after training/loading, so the pool is built at most once and shared
	// by every concurrent batch.
	poolOnce sync.Once
	pool     *svPool
}

// TrainMulticlass fits one binary SVM per unordered class pair. x and
// labels must be equal-length, non-empty and rectangular; at least two
// distinct classes are required.
//
// The kernel matrix over the full dataset is computed once and every
// pairwise machine trains on a slice of it, so a sample pair shared by
// several one-vs-one problems never has its kernel re-evaluated. Pair
// machines are independent and train concurrently on cfg.Workers workers;
// the ensemble is bit-identical at any worker count.
func TrainMulticlass(x [][]float64, labels []string, kernel Kernel, cfg Config) (*Multiclass, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return nil, fmt.Errorf("svm: need matching non-empty x (%d) and labels (%d)", len(x), len(labels))
	}
	if kernel == nil {
		return nil, fmt.Errorf("svm: nil kernel")
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("svm: ragged sample %d: %d dims, want %d", i, len(x[i]), dim)
		}
	}
	byClass := make(map[string][]int)
	for i, lab := range labels {
		byClass[lab] = append(byClass[lab], i)
	}
	if len(byClass) < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", len(byClass))
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return trainMulticlassGram(x, labels, gramMatrix(x, kernel), classes, byClass, kernel, cfg, dim)
}

// trainMulticlassGram fits the one-vs-one ensemble from a precomputed full
// kernel matrix. gram[i][j] must equal kernel.Eval(x[i], x[j]) over the
// complete dataset; per-pair sub-matrices are sliced from it.
//
// The class pairs fan out over the internal/parallel pool: every pair task
// reads the shared x and gram (never writes them), trains with its own
// derived seed, and stores its model at its own pair index, so the
// assembled ensemble is byte-identical whether cfg.Workers is 1 or 100.
func trainMulticlassGram(x [][]float64, labels []string, gram [][]float64, classes []string, byClass map[string][]int, kernel Kernel, cfg Config, dim int) (*Multiclass, error) {
	mc := &Multiclass{classes: classes, dim: dim}
	for a := 0; a < len(classes); a++ {
		for b := a + 1; b < len(classes); b++ {
			mc.pairA = append(mc.pairA, a)
			mc.pairB = append(mc.pairB, b)
		}
	}
	mc.models = make([]*Binary, len(mc.pairA))
	mc.pairIdx = make([][]int, len(mc.pairA))
	err := parallel.ForEach(len(mc.pairA), cfg.Workers, func(p int) error {
		a, b := mc.pairA[p], mc.pairB[p]
		idxA, idxB := byClass[classes[a]], byClass[classes[b]]
		sub := len(idxA) + len(idxB)
		subX := make([][]float64, 0, sub)
		subY := make([]float64, 0, sub)
		ord := make([]int, 0, sub)
		for _, i := range idxA {
			subX = append(subX, x[i])
			subY = append(subY, 1)
			ord = append(ord, i)
		}
		for _, i := range idxB {
			subX = append(subX, x[i])
			subY = append(subY, -1)
			ord = append(ord, i)
		}
		if _, err := validateBinary(subX, subY, kernel); err != nil {
			return fmt.Errorf("svm: pair %s/%s: %w", classes[a], classes[b], err)
		}
		subGram := newGram(sub)
		for si, p := range ord {
			row := subGram[si]
			src := gram[p]
			for sj, q := range ord {
				row[sj] = src[q]
			}
		}
		pairCfg := cfg
		pairCfg.Seed = cfg.Seed + int64(p)*pairSeedStride
		model, err := trainBinaryGram(subX, subY, subGram, kernel, pairCfg, dim)
		if err != nil {
			return fmt.Errorf("svm: pair %s/%s: %w", classes[a], classes[b], err)
		}
		mc.models[p] = model
		mc.pairIdx[p] = ord
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mc, nil
}

// Dim returns the feature dimensionality the ensemble was trained on.
func (mc *Multiclass) Dim() int { return mc.dim }

// Classes returns the sorted class labels the model can emit.
func (mc *Multiclass) Classes() []string {
	return append([]string(nil), mc.classes...)
}

// Predict returns the majority-vote class for x. Ties break toward the
// pairwise decision margin sum (then lexicographically), so prediction is
// deterministic.
func (mc *Multiclass) Predict(x []float64) string {
	label, _ := mc.PredictWithConfidence(x)
	return label
}

// PredictWithConfidence returns the winning class together with a
// confidence in [0, 1]: the winner's share of pairwise votes, scaled so a
// unanimous winner scores 1 and a bare plurality scores near 1/k. Low
// confidence indicates the sample sits between classes (or outside the
// trained distribution) — the basis of open-set rejection.
//
// x must have Dim() features; a mismatched query panics with a descriptive
// message instead of silently truncating inside the kernel.
func (mc *Multiclass) PredictWithConfidence(x []float64) (string, float64) {
	return mc.PredictWithConfidenceScratch(x, nil)
}

// PredictScratch holds the per-prediction vote and margin buffers so a
// caller classifying in a loop reuses them across calls. A scratch is not
// safe for concurrent use; keep one per goroutine.
type PredictScratch struct {
	votes  []int
	margin []float64
}

// tally returns zeroed vote and margin buffers of length k, drawn from the
// scratch when non-nil (grown as needed, retained across calls) and freshly
// allocated otherwise.
func (sc *PredictScratch) tally(k int) ([]int, []float64) {
	if sc == nil {
		return make([]int, k), make([]float64, k)
	}
	if cap(sc.votes) < k {
		sc.votes = make([]int, k)
	}
	if cap(sc.margin) < k {
		sc.margin = make([]float64, k)
	}
	votes := sc.votes[:k]
	margin := sc.margin[:k]
	for i := range votes {
		votes[i] = 0
		margin[i] = 0
	}
	return votes, margin
}

// PredictWithConfidenceScratch is PredictWithConfidence drawing its election
// buffers from sc (grown as needed). sc may be nil, which falls back to
// fresh allocations; the result is identical either way.
func (mc *Multiclass) PredictWithConfidenceScratch(x []float64, sc *PredictScratch) (string, float64) {
	if len(x) != mc.dim {
		panic(fmt.Sprintf("svm: query has %d features, ensemble was trained on %d", len(x), mc.dim))
	}
	votes, margin := sc.tally(len(mc.classes))
	for p := range mc.models {
		mc.score(votes, margin, p, mc.models[p].Decision(x))
	}
	return mc.electWinner(votes, margin)
}

// PredictGram classifies a sample from its precomputed kernel row against
// the ensemble's training set: kRow[q] must equal K(query, x_q) for every
// training sample q. It returns exactly what Predict would — same votes,
// margins and tie-breaks, built from bit-identical kernel values — without
// evaluating the kernel against any support vector, so callers holding a
// full Gram matrix (cross-validation cells) classify by indexing rows they
// already paid for. Valid on freshly-trained ensembles and on models saved
// by this version (the framed format persists the Gram index); ensembles
// loaded from older files panic with a descriptive message instead of
// silently returning bias-only votes.
func (mc *Multiclass) PredictGram(kRow []float64) string {
	return mc.PredictGramScratch(kRow, nil)
}

// PredictGramScratch is PredictGram with caller-owned election buffers —
// the form the tuning loop uses so classifying a held-out fold allocates
// nothing per sample.
func (mc *Multiclass) PredictGramScratch(kRow []float64, sc *PredictScratch) string {
	if mc.pairIdx == nil {
		panic("svm: ensemble has no Gram index (loaded from a pre-index model file); re-save the model or predict with PredictWithConfidence")
	}
	votes, margin := sc.tally(len(mc.classes))
	for p := range mc.models {
		mc.score(votes, margin, p, mc.models[p].decisionGram(kRow, mc.pairIdx[p]))
	}
	label, _ := mc.electWinner(votes, margin)
	return label
}

// score folds pair p's decision value into the election tallies: the sign
// casts the vote, the magnitude accumulates into both classes' margins.
func (mc *Multiclass) score(votes []int, margin []float64, p int, d float64) {
	if d >= 0 {
		votes[mc.pairA[p]]++
	} else {
		votes[mc.pairB[p]]++
	}
	margin[mc.pairA[p]] += d
	margin[mc.pairB[p]] -= d
}

// electWinner resolves the one-vs-one election: most votes wins, ties break
// toward the larger pairwise margin sum and then the lexicographically
// earlier class, so prediction is deterministic.
func (mc *Multiclass) electWinner(votes []int, margin []float64) (string, float64) {
	best := 0
	for c := 1; c < len(mc.classes); c++ {
		if votes[c] > votes[best] ||
			(votes[c] == votes[best] && margin[c] > margin[best]) {
			best = c
		}
	}
	// A class meets k-1 opponents; winning all of them is full confidence.
	maxWins := len(mc.classes) - 1
	conf := 1.0
	if maxWins > 0 {
		conf = float64(votes[best]) / float64(maxWins)
	}
	return mc.classes[best], conf
}
