package svm

import (
	"fmt"
	"sort"
)

// Multiclass is a one-vs-one ensemble of binary SVMs over string class
// labels, the standard construction for multi-material identification.
type Multiclass struct {
	classes []string
	// pairs[i] votes between classes[pairA[i]] and classes[pairB[i]].
	pairA, pairB []int
	models       []*Binary
}

// TrainMulticlass fits one binary SVM per unordered class pair. x and
// labels must be equal-length and non-empty; at least two distinct classes
// are required.
func TrainMulticlass(x [][]float64, labels []string, kernel Kernel, cfg Config) (*Multiclass, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return nil, fmt.Errorf("svm: need matching non-empty x (%d) and labels (%d)", len(x), len(labels))
	}
	byClass := make(map[string][]int)
	for i, lab := range labels {
		byClass[lab] = append(byClass[lab], i)
	}
	if len(byClass) < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", len(byClass))
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	mc := &Multiclass{classes: classes}
	for a := 0; a < len(classes); a++ {
		for b := a + 1; b < len(classes); b++ {
			idxA, idxB := byClass[classes[a]], byClass[classes[b]]
			subX := make([][]float64, 0, len(idxA)+len(idxB))
			subY := make([]float64, 0, len(idxA)+len(idxB))
			for _, i := range idxA {
				subX = append(subX, x[i])
				subY = append(subY, 1)
			}
			for _, i := range idxB {
				subX = append(subX, x[i])
				subY = append(subY, -1)
			}
			model, err := TrainBinary(subX, subY, kernel, cfg)
			if err != nil {
				return nil, fmt.Errorf("svm: pair %s/%s: %w", classes[a], classes[b], err)
			}
			mc.pairA = append(mc.pairA, a)
			mc.pairB = append(mc.pairB, b)
			mc.models = append(mc.models, model)
		}
	}
	return mc, nil
}

// Classes returns the sorted class labels the model can emit.
func (mc *Multiclass) Classes() []string {
	return append([]string(nil), mc.classes...)
}

// Predict returns the majority-vote class for x. Ties break toward the
// pairwise decision margin sum (then lexicographically), so prediction is
// deterministic.
func (mc *Multiclass) Predict(x []float64) string {
	label, _ := mc.PredictWithConfidence(x)
	return label
}

// PredictWithConfidence returns the winning class together with a
// confidence in [0, 1]: the winner's share of pairwise votes, scaled so a
// unanimous winner scores 1 and a bare plurality scores near 1/k. Low
// confidence indicates the sample sits between classes (or outside the
// trained distribution) — the basis of open-set rejection.
func (mc *Multiclass) PredictWithConfidence(x []float64) (string, float64) {
	votes := make([]int, len(mc.classes))
	margin := make([]float64, len(mc.classes))
	for i, m := range mc.models {
		d := m.Decision(x)
		if d >= 0 {
			votes[mc.pairA[i]]++
		} else {
			votes[mc.pairB[i]]++
		}
		margin[mc.pairA[i]] += d
		margin[mc.pairB[i]] -= d
	}
	best := 0
	for c := 1; c < len(mc.classes); c++ {
		if votes[c] > votes[best] ||
			(votes[c] == votes[best] && margin[c] > margin[best]) {
			best = c
		}
	}
	// A class meets k-1 opponents; winning all of them is full confidence.
	maxWins := len(mc.classes) - 1
	conf := 1.0
	if maxWins > 0 {
		conf = float64(votes[best]) / float64(maxWins)
	}
	return mc.classes[best], conf
}
