// Package svm implements the support-vector-machine classifier the paper
// uses for material identification (Sec. III-E: "incorporates the material
// database and the SVM classifier"), from scratch on the standard library:
// a simplified-SMO soft-margin binary SVM with pluggable kernels and a
// one-vs-one multiclass wrapper.
package svm

import (
	"fmt"
	"math"
)

// Kernel computes the inner product of two samples in feature space.
type Kernel interface {
	// Eval returns K(a, b). Implementations must be symmetric.
	Eval(a, b []float64) float64
	// Name identifies the kernel for model serialization.
	Name() string
}

// LinearKernel is K(a,b) = a·b.
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 { return dot(a, b) }

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// RBFKernel is K(a,b) = exp(−γ·‖a−b‖²).
type RBFKernel struct {
	Gamma float64
}

// Eval implements Kernel. The vectors must have equal lengths; evaluating
// mismatched dimensions is a programming error and panics rather than
// silently truncating to the shorter vector.
func (k RBFKernel) Eval(a, b []float64) float64 {
	checkDims(len(a), len(b))
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// PolyKernel is K(a,b) = (a·b + Coef)^Degree.
type PolyKernel struct {
	Degree int
	Coef   float64
}

// Eval implements Kernel.
func (k PolyKernel) Eval(a, b []float64) float64 {
	return math.Pow(dot(a, b)+k.Coef, float64(k.Degree))
}

// Name implements Kernel.
func (k PolyKernel) Name() string { return fmt.Sprintf("poly(d=%d,c=%g)", k.Degree, k.Coef) }

func dot(a, b []float64) float64 {
	checkDims(len(a), len(b))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// checkDims rejects mismatched feature dimensions. Kernels have no error
// return, so the contract is enforced with a descriptive panic; Train
// validates its inputs up front and returns a regular error, and
// Decision/Predict check the query against the trained dimensionality
// before any kernel sees bad input.
func checkDims(a, b int) {
	if a != b {
		panic(fmt.Sprintf("svm: kernel evaluated on mismatched dimensions %d and %d", a, b))
	}
}
