package svm

import (
	"math/rand"
	"testing"
)

func tuneDataset(sep float64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var labels []string
	centers := map[string][2]float64{"a": {0, 0}, "b": {sep, 0}, "c": {0, sep}}
	for _, name := range []string{"a", "b", "c"} {
		c := centers[name]
		for i := 0; i < 20; i++ {
			x = append(x, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
			labels = append(labels, name)
		}
	}
	return x, labels
}

func TestTuneRBFValidation(t *testing.T) {
	x, labels := tuneDataset(5)
	if _, err := TuneRBF(nil, nil, DefaultGrid(), 3, 1, 0); err == nil {
		t.Error("empty data should error")
	}
	if _, err := TuneRBF(x, labels, nil, 3, 1, 0); err == nil {
		t.Error("empty grid should error")
	}
	if _, err := TuneRBF(x, labels, DefaultGrid(), 1, 1, 0); err == nil {
		t.Error("folds=1 should error")
	}
	if _, err := TuneRBF(x, labels, []GridPoint{{C: -1, Gamma: 1}}, 3, 1, 0); err == nil {
		t.Error("negative C should error")
	}
	if _, err := TuneRBF(x, labels[:10], DefaultGrid(), 3, 1, 0); err == nil {
		t.Error("label length mismatch should error")
	}
}

func TestTuneRBFFindsWorkingPoint(t *testing.T) {
	x, labels := tuneDataset(6)
	res, err := TuneRBF(x, labels, DefaultGrid(), 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(res.Grid) {
		t.Fatalf("scores/grid length mismatch")
	}
	// Retrain at the chosen point: well-separated data must classify well.
	model, err := TrainMulticlass(x, labels, RBFKernel{Gamma: res.Best.Gamma}, Config{C: res.Best.C})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if model.Predict(x[i]) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.9 {
		t.Errorf("tuned accuracy %v, want ≥ 0.9 (best C=%v gamma=%v)", acc, res.Best.C, res.Best.Gamma)
	}
	// The best score should be among the highest in the grid.
	bestScore := 0.0
	for gi, g := range res.Grid {
		if g == res.Best {
			bestScore = res.Scores[gi]
		}
	}
	for _, sc := range res.Scores {
		if sc > bestScore {
			t.Errorf("a grid point scored %v above the chosen %v", sc, bestScore)
		}
	}
}

func TestTuneRBFDeterministic(t *testing.T) {
	x, labels := tuneDataset(4)
	a, err := TuneRBF(x, labels, DefaultGrid(), 3, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuneRBF(x, labels, DefaultGrid(), 3, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best {
		t.Errorf("same seed picked different points: %v vs %v", a.Best, b.Best)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatal("scores differ across identical runs")
		}
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid()
	if len(g) != 16 {
		t.Fatalf("grid size %d, want 16", len(g))
	}
	for _, p := range g {
		if p.C <= 0 || p.Gamma <= 0 {
			t.Errorf("non-positive grid point %+v", p)
		}
	}
}
