package svm

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// batchKernels are the serialisable kernels the blocked path specialises;
// bit-identity must hold for each.
func batchKernels() []Kernel {
	return []Kernel{
		RBFKernel{Gamma: 0.5},
		LinearKernel{},
		PolyKernel{Degree: 3, Coef: 1},
	}
}

// TestPredictBatchBitIdenticalSequential pins the tentpole contract:
// PredictBatch over any batch size equals N sequential
// PredictWithConfidence calls, float-for-float, for every kernel and
// regardless of the worker count the ensemble trained with.
func TestPredictBatchBitIdenticalSequential(t *testing.T) {
	classes := []string{"a", "b", "c", "d"}
	x, labels := clusteredData(12, classes, 6, 17)
	queries, _ := clusteredData(4, classes, 6, 99) // 16 queries

	for _, kernel := range batchKernels() {
		for _, workers := range []int{1, 4} {
			mc, err := TrainMulticlass(x, labels, kernel, Config{C: 10, Seed: 3, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kernel.Name(), workers, err)
			}
			var sc BatchScratch
			for size := 1; size <= 9; size++ {
				batch := make([][]float64, size)
				for i := range batch {
					batch[i] = queries[i%len(queries)]
				}
				gotL, gotC := mc.PredictBatch(batch, &sc)
				for i, q := range batch {
					wantL, wantC := mc.PredictWithConfidence(q)
					if gotL[i] != wantL || gotC[i] != wantC {
						t.Fatalf("%s workers=%d size=%d query %d: batch (%s, %v), sequential (%s, %v)",
							kernel.Name(), workers, size, i, gotL[i], gotC[i], wantL, wantC)
					}
				}
				// nil scratch takes the allocating path; results must not change.
				nilL, nilC := mc.PredictBatch(batch, nil)
				for i := range batch {
					if nilL[i] != gotL[i] || nilC[i] != gotC[i] {
						t.Fatalf("%s size=%d query %d: nil-scratch batch diverged", kernel.Name(), size, i)
					}
				}
			}
		}
	}
}

// TestPredictBatchConcurrent hammers one shared ensemble from many
// goroutines (each with its own scratch) so -race checks the lazy pool
// build and the read-only pool sharing.
func TestPredictBatchConcurrent(t *testing.T) {
	classes := []string{"a", "b", "c"}
	x, labels := clusteredData(10, classes, 5, 7)
	mc, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 0.8}, Config{C: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := clusteredData(3, classes, 5, 41)
	wantL := make([]string, len(queries))
	wantC := make([]float64, len(queries))
	for i, q := range queries {
		wantL[i], wantC[i] = mc.PredictWithConfidence(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc BatchScratch
			for iter := 0; iter < 20; iter++ {
				gotL, gotC := mc.PredictBatch(queries, &sc)
				for i := range queries {
					if gotL[i] != wantL[i] || gotC[i] != wantC[i] {
						t.Errorf("query %d: concurrent batch (%s, %v), want (%s, %v)",
							i, gotL[i], gotC[i], wantL[i], wantC[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPredictBatchPoolDedup checks the pool stores each distinct support
// vector once: one-vs-one machines share training samples, so the pooled
// row count must not exceed the training-set size even though the
// per-machine SV lists overlap.
func TestPredictBatchPoolDedup(t *testing.T) {
	classes := []string{"a", "b", "c", "d"}
	x, labels := clusteredData(12, classes, 6, 17)
	mc, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 0.5}, Config{C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pool := mc.batchPool()
	if pool.kernel == nil {
		t.Fatal("uniform-kernel ensemble built no pool")
	}
	total := 0
	for _, m := range mc.models {
		total += len(m.vectors)
	}
	if pool.rows > len(x) {
		t.Fatalf("pool has %d rows, training set only %d samples", pool.rows, len(x))
	}
	if pool.rows >= total {
		t.Fatalf("pool did not dedup: %d rows from %d machine-local SVs", pool.rows, total)
	}
	if len(pool.flat) != pool.rows*mc.dim {
		t.Fatalf("flat backing %d floats, want rows×dim = %d", len(pool.flat), pool.rows*mc.dim)
	}
	// Every mapped row must hold exactly the machine's support vector.
	for pi, m := range mc.models {
		for i, v := range m.vectors {
			r := int(pool.svRow[pi][i])
			row := pool.flat[r*mc.dim : (r+1)*mc.dim]
			for d := range v {
				if row[d] != v[d] {
					t.Fatalf("machine %d sv %d: pool row %d differs at dim %d", pi, i, r, d)
				}
			}
		}
	}
}

// TestPredictBatchMixedKernelFallback forces a mixed-kernel ensemble (only
// constructible by hand) and checks PredictBatch falls back to the
// sequential path with identical results.
func TestPredictBatchMixedKernelFallback(t *testing.T) {
	classes := []string{"a", "b", "c"}
	x, labels := clusteredData(10, classes, 5, 7)
	mc, err := TrainMulticlass(x, labels, RBFKernel{Gamma: 0.8}, Config{C: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mc.models[0].kernel = LinearKernel{}
	if pool := mc.batchPool(); pool.kernel != nil {
		t.Fatal("mixed-kernel ensemble built a shared pool")
	}
	queries, _ := clusteredData(2, classes, 5, 41)
	gotL, gotC := mc.PredictBatch(queries, &BatchScratch{})
	for i, q := range queries {
		wantL, wantC := mc.PredictWithConfidence(q)
		if gotL[i] != wantL || gotC[i] != wantC {
			t.Fatalf("query %d: fallback batch (%s, %v), sequential (%s, %v)", i, gotL[i], gotC[i], wantL, wantC)
		}
	}
}

func TestPredictBatchEmptyAndMismatch(t *testing.T) {
	classes := []string{"a", "b"}
	x, labels := clusteredData(8, classes, 4, 5)
	mc, err := TrainMulticlass(x, labels, LinearKernel{}, Config{C: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, c := mc.PredictBatch(nil, &BatchScratch{})
	if len(l) != 0 || len(c) != 0 {
		t.Fatalf("empty batch returned %d labels, %d confidences", len(l), len(c))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mismatched query dimension did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "batch query 1") {
			t.Fatalf("panic message %v does not identify the offending query", r)
		}
	}()
	mc.PredictBatch([][]float64{x[0], {1, 2}}, nil)
}

// TestLoadedModelGramAndBatchPaths pins the serialize round-trip fix: a
// model saved and re-loaded keeps its Gram index (PredictGram works and
// matches the fresh ensemble) and predicts batches bit-identically.
func TestLoadedModelGramAndBatchPaths(t *testing.T) {
	classes := []string{"a", "b", "c"}
	x, labels := clusteredData(10, classes, 5, 23)
	kernel := RBFKernel{Gamma: 0.6}
	mc, err := TrainMulticlass(x, labels, kernel, Config{C: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMulticlass(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.pairIdx == nil {
		t.Fatal("loaded model lost its Gram index")
	}
	queries, _ := clusteredData(3, classes, 5, 77)
	// Gram rows over the original training set: kRow[q] = K(query, x[q]).
	for _, q := range queries {
		kRow := make([]float64, len(x))
		for j := range x {
			kRow[j] = kernel.Eval(q, x[j])
		}
		if got, want := loaded.PredictGram(kRow), mc.PredictGram(kRow); got != want {
			t.Fatalf("loaded PredictGram %s, fresh %s", got, want)
		}
		if got, want := loaded.PredictGram(kRow), loaded.Predict(q); got != want {
			t.Fatalf("loaded PredictGram %s disagrees with direct Predict %s", got, want)
		}
	}
	gotL, gotC := loaded.PredictBatch(queries, &BatchScratch{})
	for i, q := range queries {
		wantL, wantC := loaded.PredictWithConfidence(q)
		if gotL[i] != wantL || gotC[i] != wantC {
			t.Fatalf("loaded batch query %d: (%s, %v), sequential (%s, %v)", i, gotL[i], gotC[i], wantL, wantC)
		}
	}
}

// TestPredictGramPanicsWithoutIndex pins the failure mode for models from
// files that predate the persisted Gram index: a descriptive panic, not
// bias-only votes.
func TestPredictGramPanicsWithoutIndex(t *testing.T) {
	classes := []string{"a", "b"}
	x, labels := clusteredData(8, classes, 4, 5)
	mc, err := TrainMulticlass(x, labels, LinearKernel{}, Config{C: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc.pairIdx = nil // what loading a pre-index file leaves behind
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PredictGram without an index did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Gram index") {
			t.Fatalf("panic %v does not explain the missing index", r)
		}
	}()
	mc.PredictGram(make([]float64, len(x)))
}
