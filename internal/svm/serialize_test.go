package svm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func trainedMulticlass(t *testing.T, kernel Kernel) (*Multiclass, [][]float64, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	centers := map[string][2]float64{"a": {0, 0}, "b": {4, 0}, "c": {2, 4}}
	var x [][]float64
	var labels []string
	for _, name := range []string{"a", "b", "c"} {
		c := centers[name]
		for i := 0; i < 30; i++ {
			x = append(x, []float64{c[0] + rng.NormFloat64()*0.4, c[1] + rng.NormFloat64()*0.4})
			labels = append(labels, name)
		}
	}
	mc, err := TrainMulticlass(x, labels, kernel, Config{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	return mc, x, labels
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, kernel := range []Kernel{LinearKernel{}, RBFKernel{Gamma: 0.5}, PolyKernel{Degree: 2, Coef: 1}} {
		t.Run(kernel.Name(), func(t *testing.T) {
			mc, x, _ := trainedMulticlass(t, kernel)
			var buf bytes.Buffer
			if err := mc.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadMulticlass(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// Every prediction must be identical.
			for i := range x {
				if a, b := mc.Predict(x[i]), loaded.Predict(x[i]); a != b {
					t.Fatalf("sample %d: original %q, loaded %q", i, a, b)
				}
			}
			// Fresh probes too.
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 50; i++ {
				p := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
				if a, b := mc.Predict(p), loaded.Predict(p); a != b {
					t.Fatalf("probe %d: original %q, loaded %q", i, a, b)
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadMulticlass(strings.NewReader("not json")); err == nil {
		t.Error("non-JSON should error")
	}
	if _, err := LoadMulticlass(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version should error")
	}
	if _, err := LoadMulticlass(strings.NewReader(`{"version":1,"classes":["a"]}`)); err == nil {
		t.Error("single class should error")
	}
	if _, err := LoadMulticlass(strings.NewReader(
		`{"version":1,"classes":["a","b"],"pair_a":[0],"pair_b":[1],"models":[]}`)); err == nil {
		t.Error("machine count mismatch should error")
	}
	if _, err := LoadMulticlass(strings.NewReader(
		`{"version":1,"classes":["a","a"],"pair_a":[0],"pair_b":[1],"models":[{}]}`)); err == nil {
		t.Error("duplicate classes should error")
	}
	// Machine with out-of-range class index.
	if _, err := LoadMulticlass(strings.NewReader(
		`{"version":1,"classes":["a","b"],"pair_a":[0],"pair_b":[7],` +
			`"models":[{"kernel":{"kind":"linear"},"vectors":[[1]],"coefs":[1],"bias":0}]}`)); err == nil {
		t.Error("out-of-range pair index should error")
	}
	// Vector/coefficient length mismatch.
	if _, err := LoadMulticlass(strings.NewReader(
		`{"version":1,"classes":["a","b"],"pair_a":[0],"pair_b":[1],` +
			`"models":[{"kernel":{"kind":"rbf","gamma":1},"vectors":[[1],[2]],"coefs":[1],"bias":0}]}`)); err == nil {
		t.Error("vectors/coefs mismatch should error")
	}
	// Unknown kernel kind.
	if _, err := LoadMulticlass(strings.NewReader(
		`{"version":1,"classes":["a","b"],"pair_a":[0],"pair_b":[1],` +
			`"models":[{"kernel":{"kind":"quantum"},"vectors":[[1]],"coefs":[1],"bias":0}]}`)); err == nil {
		t.Error("unknown kernel should error")
	}
	// RBF with nonpositive gamma.
	if _, err := LoadMulticlass(strings.NewReader(
		`{"version":1,"classes":["a","b"],"pair_a":[0],"pair_b":[1],` +
			`"models":[{"kernel":{"kind":"rbf","gamma":0},"vectors":[[1]],"coefs":[1],"bias":0}]}`)); err == nil {
		t.Error("gamma 0 should error")
	}
}

func TestSaveWithMetaRoundTrip(t *testing.T) {
	mc, x, labels := trainedMulticlass(t, RBFKernel{Gamma: 0.5})
	meta := Meta{
		TrainedAt:   "2026-08-06T00:00:00Z",
		Samples:     len(x),
		Note:        "serialize_test fixture",
		FeatureMean: []float64{1.5, -0.25},
		FeatureStd:  []float64{2, 3},
	}
	var buf bytes.Buffer
	if err := mc.SaveWithMeta(&buf, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadMulticlassMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.TrainedAt != meta.TrainedAt || gotMeta.Samples != meta.Samples || gotMeta.Note != meta.Note {
		t.Errorf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	if len(gotMeta.FeatureMean) != 2 || gotMeta.FeatureMean[0] != 1.5 ||
		len(gotMeta.FeatureStd) != 2 || gotMeta.FeatureStd[1] != 3 {
		t.Errorf("scaling constants round trip: got %+v", gotMeta)
	}
	for i := range x {
		if a, b := mc.Predict(x[i]), loaded.Predict(x[i]); a != b {
			t.Fatalf("sample %d (%s): original %q, loaded %q", i, labels[i], a, b)
		}
	}
}

// TestLoadRejectsCorruptFrames drives the framed v2 decoder through every
// damage mode a file can plausibly suffer: truncation at each frame
// boundary, bit flips in every section, and an oversized length header.
func TestLoadRejectsCorruptFrames(t *testing.T) {
	mc, _, _ := trainedMulticlass(t, RBFKernel{Gamma: 0.5})
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if len(good) < 20 {
		t.Fatalf("frame implausibly small: %d bytes", len(good))
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name    string
		input   []byte
		errWant string
	}{
		{"empty", nil, "truncated"},
		{"truncated magic", good[:5], "truncated"},
		{"truncated length", good[:10], "truncated"},
		{"truncated payload", good[:len(good)/2], "truncated"},
		{"truncated checksum", good[:len(good)-2], "truncated"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "magic"},
		{"flipped payload byte", corrupt(func(b []byte) []byte { b[12+50] ^= 0xFF; return b }), "corrupt"},
		{"flipped checksum", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }), "corrupt"},
		{"implausible length", corrupt(func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}), "length"},
		{"zero length", corrupt(func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0, 0, 0, 0
			return b
		}), "length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadMulticlass(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatalf("%s decoded successfully", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Errorf("error %q does not mention %q", err, tc.errWant)
			}
		})
	}
}

// TestLoadLegacyV1 keeps the pre-frame bare-JSON format readable.
func TestLoadLegacyV1(t *testing.T) {
	legacy := `{"version":1,"classes":["a","b"],"pair_a":[0],"pair_b":[1],` +
		`"models":[{"kernel":{"kind":"linear"},"vectors":[[1,0]],"coefs":[1],"bias":0.5}]}`
	mc, meta, err := LoadMulticlassMeta(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if got := mc.Classes(); len(got) != 2 || got[0] != "a" {
		t.Errorf("legacy classes: %v", got)
	}
	if meta.TrainedAt != "" || meta.Samples != 0 {
		t.Errorf("legacy meta should be zero, got %+v", meta)
	}
}

func TestKernelSpecRoundTrip(t *testing.T) {
	for _, k := range []Kernel{LinearKernel{}, RBFKernel{Gamma: 2.5}, PolyKernel{Degree: 3, Coef: 0.5}} {
		spec, err := specOf(k)
		if err != nil {
			t.Fatal(err)
		}
		back, err := spec.kernel()
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != k.Name() {
			t.Errorf("kernel round trip: %q != %q", back.Name(), k.Name())
		}
	}
}
