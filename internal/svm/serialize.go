package svm

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// kernelSpec is the serialised form of a kernel.
type kernelSpec struct {
	Kind   string  `json:"kind"`
	Gamma  float64 `json:"gamma,omitempty"`
	Degree int     `json:"degree,omitempty"`
	Coef   float64 `json:"coef,omitempty"`
}

func specOf(k Kernel) (kernelSpec, error) {
	switch kk := k.(type) {
	case LinearKernel:
		return kernelSpec{Kind: "linear"}, nil
	case RBFKernel:
		return kernelSpec{Kind: "rbf", Gamma: kk.Gamma}, nil
	case PolyKernel:
		return kernelSpec{Kind: "poly", Degree: kk.Degree, Coef: kk.Coef}, nil
	default:
		return kernelSpec{}, fmt.Errorf("svm: kernel %q is not serialisable", k.Name())
	}
}

func (ks kernelSpec) kernel() (Kernel, error) {
	switch ks.Kind {
	case "linear":
		return LinearKernel{}, nil
	case "rbf":
		if ks.Gamma <= 0 {
			return nil, fmt.Errorf("svm: rbf kernel needs positive gamma, got %v", ks.Gamma)
		}
		return RBFKernel{Gamma: ks.Gamma}, nil
	case "poly":
		if ks.Degree < 1 {
			return nil, fmt.Errorf("svm: poly kernel needs degree ≥ 1, got %d", ks.Degree)
		}
		return PolyKernel{Degree: ks.Degree, Coef: ks.Coef}, nil
	default:
		return nil, fmt.Errorf("svm: unknown kernel kind %q", ks.Kind)
	}
}

// binaryModel is the serialised form of a Binary SVM.
type binaryModel struct {
	Kernel  kernelSpec  `json:"kernel"`
	Vectors [][]float64 `json:"vectors"`
	Coefs   []float64   `json:"coefs"`
	Bias    float64     `json:"bias"`
}

// multiclassModel is the serialised form of a Multiclass ensemble.
type multiclassModel struct {
	Version int           `json:"version"`
	Classes []string      `json:"classes"`
	PairA   []int         `json:"pair_a"`
	PairB   []int         `json:"pair_b"`
	Models  []binaryModel `json:"models"`
}

// modelVersion is bumped on breaking format changes.
const modelVersion = 1

// Save writes the trained multiclass model as JSON.
func (mc *Multiclass) Save(w io.Writer) error {
	out := multiclassModel{
		Version: modelVersion,
		Classes: mc.classes,
		PairA:   mc.pairA,
		PairB:   mc.pairB,
	}
	for _, m := range mc.models {
		spec, err := specOf(m.kernel)
		if err != nil {
			return err
		}
		out.Models = append(out.Models, binaryModel{
			Kernel:  spec,
			Vectors: m.vectors,
			Coefs:   m.coefs,
			Bias:    m.bias,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("svm: encoding model: %w", err)
	}
	return nil
}

// LoadMulticlass reads a model written by Save and validates its internal
// consistency.
func LoadMulticlass(r io.Reader) (*Multiclass, error) {
	var in multiclassModel
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("svm: decoding model: %w", err)
	}
	if in.Version != modelVersion {
		return nil, fmt.Errorf("svm: unsupported model version %d", in.Version)
	}
	nc := len(in.Classes)
	if nc < 2 {
		return nil, fmt.Errorf("svm: model has %d classes", nc)
	}
	seen := make(map[string]bool, nc)
	for _, c := range in.Classes {
		if strings.TrimSpace(c) == "" || seen[c] {
			return nil, fmt.Errorf("svm: invalid class list %v", in.Classes)
		}
		seen[c] = true
	}
	wantPairs := nc * (nc - 1) / 2
	if len(in.Models) != wantPairs || len(in.PairA) != wantPairs || len(in.PairB) != wantPairs {
		return nil, fmt.Errorf("svm: model has %d pairwise machines, want %d", len(in.Models), wantPairs)
	}
	mc := &Multiclass{classes: in.Classes, pairA: in.PairA, pairB: in.PairB}
	for i, bm := range in.Models {
		if in.PairA[i] < 0 || in.PairA[i] >= nc || in.PairB[i] < 0 || in.PairB[i] >= nc {
			return nil, fmt.Errorf("svm: machine %d references classes %d/%d of %d", i, in.PairA[i], in.PairB[i], nc)
		}
		if len(bm.Vectors) == 0 || len(bm.Vectors) != len(bm.Coefs) {
			return nil, fmt.Errorf("svm: machine %d has %d vectors and %d coefs", i, len(bm.Vectors), len(bm.Coefs))
		}
		dim := len(bm.Vectors[0])
		for j, v := range bm.Vectors {
			if len(v) != dim {
				return nil, fmt.Errorf("svm: machine %d has ragged support vector %d: %d dims, want %d", i, j, len(v), dim)
			}
		}
		if i == 0 {
			mc.dim = dim
		} else if dim != mc.dim {
			return nil, fmt.Errorf("svm: machine %d trained on %d dims, others on %d", i, dim, mc.dim)
		}
		for _, v := range bm.Coefs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("svm: machine %d has non-finite coefficient", i)
			}
		}
		k, err := bm.Kernel.kernel()
		if err != nil {
			return nil, fmt.Errorf("svm: machine %d: %w", i, err)
		}
		mc.models = append(mc.models, &Binary{
			kernel:  k,
			dim:     dim,
			vectors: bm.Vectors,
			coefs:   bm.Coefs,
			bias:    bm.Bias,
		})
	}
	return mc, nil
}
