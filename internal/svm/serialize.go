package svm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
)

// kernelSpec is the serialised form of a kernel.
type kernelSpec struct {
	Kind   string  `json:"kind"`
	Gamma  float64 `json:"gamma,omitempty"`
	Degree int     `json:"degree,omitempty"`
	Coef   float64 `json:"coef,omitempty"`
}

func specOf(k Kernel) (kernelSpec, error) {
	switch kk := k.(type) {
	case LinearKernel:
		return kernelSpec{Kind: "linear"}, nil
	case RBFKernel:
		return kernelSpec{Kind: "rbf", Gamma: kk.Gamma}, nil
	case PolyKernel:
		return kernelSpec{Kind: "poly", Degree: kk.Degree, Coef: kk.Coef}, nil
	default:
		return kernelSpec{}, fmt.Errorf("svm: kernel %q is not serialisable", k.Name())
	}
}

func (ks kernelSpec) kernel() (Kernel, error) {
	switch ks.Kind {
	case "linear":
		return LinearKernel{}, nil
	case "rbf":
		if ks.Gamma <= 0 {
			return nil, fmt.Errorf("svm: rbf kernel needs positive gamma, got %v", ks.Gamma)
		}
		return RBFKernel{Gamma: ks.Gamma}, nil
	case "poly":
		if ks.Degree < 1 {
			return nil, fmt.Errorf("svm: poly kernel needs degree ≥ 1, got %d", ks.Degree)
		}
		return PolyKernel{Degree: ks.Degree, Coef: ks.Coef}, nil
	default:
		return nil, fmt.Errorf("svm: unknown kernel kind %q", ks.Kind)
	}
}

// binaryModel is the serialised form of a Binary SVM.
type binaryModel struct {
	Kernel  kernelSpec  `json:"kernel"`
	Vectors [][]float64 `json:"vectors"`
	Coefs   []float64   `json:"coefs"`
	Bias    float64     `json:"bias"`
	// SVIdx maps support vector i to its index in the pair's local
	// training slice — one half of the Gram index that lets a loaded
	// model keep serving PredictGram. omitempty keeps files from older
	// writers readable and files from this writer readable by them.
	SVIdx []int `json:"sv_idx,omitempty"`
}

// Meta carries training provenance inside a persisted model: when and on
// what the ensemble was trained, plus the feature-scaling constants the
// caller applied before training (the model itself sees scaled inputs, so
// serving the model without the same constants silently misclassifies).
type Meta struct {
	// TrainedAt is an RFC 3339 timestamp (informational).
	TrainedAt string `json:"trained_at,omitempty"`
	// Samples is the training-set size.
	Samples int `json:"samples,omitempty"`
	// Note is free-form provenance (tool name, scenario, operator).
	Note string `json:"note,omitempty"`
	// FeatureMean/FeatureStd are the per-dimension standardisation
	// constants applied to inputs before training.
	FeatureMean []float64 `json:"feature_mean,omitempty"`
	FeatureStd  []float64 `json:"feature_std,omitempty"`
}

// multiclassModel is the serialised form of a Multiclass ensemble.
type multiclassModel struct {
	Version int           `json:"version"`
	Classes []string      `json:"classes"`
	PairA   []int         `json:"pair_a"`
	PairB   []int         `json:"pair_b"`
	Models  []binaryModel `json:"models"`
	// PairIdx[i] maps pair i's local sample indices to training-set
	// indices (the other half of the Gram index, see binaryModel.SVIdx).
	PairIdx [][]int `json:"pair_idx,omitempty"`
	Meta    Meta    `json:"meta,omitempty"`
}

// The framed model format, version 2:
//
//	magic   "WIMISVM2" (8 bytes)
//	length  uint32 LE — payload byte count
//	payload JSON multiclassModel
//	crc     uint32 LE — IEEE CRC32 of payload
//
// The frame makes truncation and corruption first-class decode errors
// instead of whatever json.Decoder happens to notice. Version 1 files
// (bare JSON, no frame) are still readable: they start with '{', which can
// never collide with the magic.
var modelMagic = [8]byte{'W', 'I', 'M', 'I', 'S', 'V', 'M', '2'}

// modelVersion is bumped on breaking format changes.
const modelVersion = 2

// legacyModelVersion is the pre-frame bare-JSON format.
const legacyModelVersion = 1

// maxModelPayload bounds the declared payload length so a corrupt header
// cannot provoke a giant allocation.
const maxModelPayload = 1 << 30

// Save writes the trained multiclass model in the framed v2 format with
// empty metadata. Use SaveWithMeta to record provenance.
func (mc *Multiclass) Save(w io.Writer) error {
	return mc.SaveWithMeta(w, Meta{})
}

// SaveWithMeta writes the framed v2 format: magic, payload length, JSON
// payload (kernel params, class labels, support vectors, metadata) and a
// CRC32 trailer.
func (mc *Multiclass) SaveWithMeta(w io.Writer, meta Meta) error {
	out := multiclassModel{
		Version: modelVersion,
		Classes: mc.classes,
		PairA:   mc.pairA,
		PairB:   mc.pairB,
		PairIdx: mc.pairIdx,
		Meta:    meta,
	}
	for _, m := range mc.models {
		spec, err := specOf(m.kernel)
		if err != nil {
			return err
		}
		out.Models = append(out.Models, binaryModel{
			Kernel:  spec,
			Vectors: m.vectors,
			Coefs:   m.coefs,
			Bias:    m.bias,
			SVIdx:   m.svIdx,
		})
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("svm: encoding model: %w", err)
	}
	if _, err := w.Write(modelMagic[:]); err != nil {
		return fmt.Errorf("svm: writing model header: %w", err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("svm: writing model header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("svm: writing model payload: %w", err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("svm: writing model checksum: %w", err)
	}
	return nil
}

// LoadMulticlass reads a model written by Save/SaveWithMeta (or the legacy
// bare-JSON v1 format) and validates its internal consistency.
func LoadMulticlass(r io.Reader) (*Multiclass, error) {
	mc, _, err := LoadMulticlassMeta(r)
	return mc, err
}

// LoadMulticlassMeta is LoadMulticlass plus the persisted training
// metadata (zero for legacy v1 files, which predate it).
func LoadMulticlassMeta(r io.Reader) (*Multiclass, Meta, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("svm: model truncated: empty input")
	}
	var in multiclassModel
	if first[0] == '{' {
		// Legacy v1: bare JSON, no frame, no checksum.
		if err := json.NewDecoder(br).Decode(&in); err != nil {
			return nil, Meta{}, fmt.Errorf("svm: decoding model: %w", err)
		}
		if in.Version != legacyModelVersion {
			return nil, Meta{}, fmt.Errorf("svm: unsupported model version %d", in.Version)
		}
	} else {
		var magic [8]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil {
			return nil, Meta{}, fmt.Errorf("svm: model truncated reading magic: %w", err)
		}
		if magic != modelMagic {
			return nil, Meta{}, fmt.Errorf("svm: bad model magic %q (not a WiMi SVM model)", magic[:])
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, Meta{}, fmt.Errorf("svm: model truncated reading payload length: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxModelPayload {
			return nil, Meta{}, fmt.Errorf("svm: implausible model payload length %d", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, Meta{}, fmt.Errorf("svm: model truncated reading payload (want %d bytes): %w", n, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return nil, Meta{}, fmt.Errorf("svm: model truncated reading checksum: %w", err)
		}
		if want, got := binary.LittleEndian.Uint32(crcBuf[:]), crc32.ChecksumIEEE(payload); want != got {
			return nil, Meta{}, fmt.Errorf("svm: model payload corrupt: crc32 %08x, header says %08x", got, want)
		}
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, Meta{}, fmt.Errorf("svm: decoding model payload: %w", err)
		}
		if in.Version != modelVersion {
			return nil, Meta{}, fmt.Errorf("svm: unsupported model version %d", in.Version)
		}
	}
	mc, err := assembleMulticlass(in)
	if err != nil {
		return nil, Meta{}, err
	}
	return mc, in.Meta, nil
}

// assembleMulticlass validates a decoded model and reconstructs the
// ensemble.
func assembleMulticlass(in multiclassModel) (*Multiclass, error) {
	nc := len(in.Classes)
	if nc < 2 {
		return nil, fmt.Errorf("svm: model has %d classes", nc)
	}
	seen := make(map[string]bool, nc)
	for _, c := range in.Classes {
		if strings.TrimSpace(c) == "" || seen[c] {
			return nil, fmt.Errorf("svm: invalid class list %v", in.Classes)
		}
		seen[c] = true
	}
	wantPairs := nc * (nc - 1) / 2
	if len(in.Models) != wantPairs || len(in.PairA) != wantPairs || len(in.PairB) != wantPairs {
		return nil, fmt.Errorf("svm: model has %d pairwise machines, want %d", len(in.Models), wantPairs)
	}
	mc := &Multiclass{classes: in.Classes, pairA: in.PairA, pairB: in.PairB}
	for i, bm := range in.Models {
		if in.PairA[i] < 0 || in.PairA[i] >= nc || in.PairB[i] < 0 || in.PairB[i] >= nc {
			return nil, fmt.Errorf("svm: machine %d references classes %d/%d of %d", i, in.PairA[i], in.PairB[i], nc)
		}
		if len(bm.Vectors) == 0 || len(bm.Vectors) != len(bm.Coefs) {
			return nil, fmt.Errorf("svm: machine %d has %d vectors and %d coefs", i, len(bm.Vectors), len(bm.Coefs))
		}
		dim := len(bm.Vectors[0])
		for j, v := range bm.Vectors {
			if len(v) != dim {
				return nil, fmt.Errorf("svm: machine %d has ragged support vector %d: %d dims, want %d", i, j, len(v), dim)
			}
		}
		if i == 0 {
			mc.dim = dim
		} else if dim != mc.dim {
			return nil, fmt.Errorf("svm: machine %d trained on %d dims, others on %d", i, dim, mc.dim)
		}
		for _, v := range bm.Coefs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("svm: machine %d has non-finite coefficient", i)
			}
		}
		k, err := bm.Kernel.kernel()
		if err != nil {
			return nil, fmt.Errorf("svm: machine %d: %w", i, err)
		}
		mc.models = append(mc.models, &Binary{
			kernel:  k,
			dim:     dim,
			vectors: bm.Vectors,
			coefs:   bm.Coefs,
			bias:    bm.Bias,
		})
	}
	restoreGramIndex(mc, in)
	return mc, nil
}

// restoreGramIndex re-attaches the persisted Gram index (pair_idx +
// per-machine sv_idx) so loaded models keep serving PredictGram. The
// restore is all-or-nothing: files from older writers (no index) and files
// with an internally inconsistent index leave pairIdx nil, which
// PredictGram rejects with a descriptive panic rather than mis-indexing a
// caller's kernel row.
func restoreGramIndex(mc *Multiclass, in multiclassModel) {
	if len(in.PairIdx) != len(mc.models) {
		return
	}
	for i, bm := range in.Models {
		if len(bm.SVIdx) != len(bm.Coefs) {
			return
		}
		local := len(in.PairIdx[i])
		for _, si := range bm.SVIdx {
			if si < 0 || si >= local {
				return
			}
		}
		for _, ti := range in.PairIdx[i] {
			if ti < 0 {
				return
			}
		}
	}
	mc.pairIdx = in.PairIdx
	for i := range mc.models {
		mc.models[i].svIdx = in.Models[i].SVIdx
	}
}
