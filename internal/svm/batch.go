package svm

import (
	"fmt"
	"math"
)

// svTile is how many support-vector rows one tile of the blocked kernel
// product covers. A tile of SVs stays cache-resident while every query in
// the micro-batch streams over it, so an 8-deep batch reads each SV row
// from memory once per tile instead of once per query.
const svTile = 64

// svPool is the ensemble-level support-vector block behind PredictBatch.
// One-vs-one machines share training samples heavily — a sample that is a
// support vector for several pairs appears in each of their vectors
// slices — so the pool stores every distinct support vector exactly once,
// row-major in one flat backing, and maps each machine's local SV index to
// its pool row. A batch then evaluates K(query, sv) once per unique SV and
// every pair machine reuses the same float, which is what keeps the blocked
// path bit-identical to sequential Decision calls.
type svPool struct {
	flat []float64 // rows × dim, row-major
	rows int
	// svRow[p][i] is the pool row holding models[p].vectors[i].
	svRow [][]int32
	// kernel is the single kernel shared by every machine. nil marks an
	// ensemble the pool cannot serve (mixed or unknown kernel types);
	// PredictBatch then falls back to per-query sequential prediction.
	kernel Kernel
}

// batchPool returns the ensemble's support-vector pool, building it on
// first use. Safe for concurrent callers; the ensemble is immutable after
// training or loading.
func (mc *Multiclass) batchPool() *svPool {
	mc.poolOnce.Do(func() { mc.pool = buildSVPool(mc) })
	return mc.pool
}

// uniformKernel returns the kernel shared by every pair machine, or nil if
// the machines disagree or use a kernel type the blocked loops don't
// specialise. Only the in-tree value-type kernels are accepted: they are
// comparable (so cross-machine equality is well-defined) and evalBlock
// reproduces their Eval arithmetic exactly.
func uniformKernel(models []*Binary) Kernel {
	if len(models) == 0 {
		return nil
	}
	k := models[0].kernel
	switch k.(type) {
	case LinearKernel, RBFKernel, PolyKernel:
	default:
		return nil
	}
	for _, m := range models[1:] {
		if m.kernel != k {
			return nil
		}
	}
	return k
}

// buildSVPool deduplicates the ensemble's support vectors by exact content
// (float bit patterns), preserving first-appearance order.
func buildSVPool(mc *Multiclass) *svPool {
	p := &svPool{svRow: make([][]int32, len(mc.models))}
	p.kernel = uniformKernel(mc.models)
	if p.kernel == nil {
		return p
	}
	seen := make(map[string]int32)
	key := make([]byte, mc.dim*8)
	for pi, m := range mc.models {
		rows := make([]int32, len(m.vectors))
		for i, v := range m.vectors {
			for d, f := range v {
				bits := math.Float64bits(f)
				for b := 0; b < 8; b++ {
					key[d*8+b] = byte(bits >> (8 * b))
				}
			}
			r, ok := seen[string(key)]
			if !ok {
				r = int32(p.rows)
				seen[string(key)] = r
				p.flat = append(p.flat, v...)
				p.rows++
			}
			rows[i] = r
		}
		p.svRow[pi] = rows
	}
	return p
}

// evalBlock fills dst (len(queries) × p.rows, row-major) with
// dst[q*rows+s] = kernel.Eval(sv_s, query_q). The loops are tiled over SV
// rows and specialised per kernel, but each scalar is accumulated in
// exactly the element order the kernel's Eval uses, so every value is
// bit-identical to a sequential Eval call.
func (p *svPool) evalBlock(dst []float64, queries [][]float64, dim int) {
	u := p.rows
	switch k := p.kernel.(type) {
	case RBFKernel:
		gamma := k.Gamma
		for s0 := 0; s0 < u; s0 += svTile {
			s1 := min(s0+svTile, u)
			for qi, q := range queries {
				row := dst[qi*u:]
				base := s0 * dim
				for s := s0; s < s1; s++ {
					v := p.flat[base : base+dim]
					base += dim
					var acc float64
					for d, vd := range v {
						diff := vd - q[d]
						acc += diff * diff
					}
					row[s] = math.Exp(-gamma * acc)
				}
			}
		}
	case LinearKernel:
		for s0 := 0; s0 < u; s0 += svTile {
			s1 := min(s0+svTile, u)
			for qi, q := range queries {
				row := dst[qi*u:]
				base := s0 * dim
				for s := s0; s < s1; s++ {
					v := p.flat[base : base+dim]
					base += dim
					var acc float64
					for d, vd := range v {
						acc += vd * q[d]
					}
					row[s] = acc
				}
			}
		}
	case PolyKernel:
		for s0 := 0; s0 < u; s0 += svTile {
			s1 := min(s0+svTile, u)
			for qi, q := range queries {
				row := dst[qi*u:]
				base := s0 * dim
				for s := s0; s < s1; s++ {
					v := p.flat[base : base+dim]
					base += dim
					var acc float64
					for d, vd := range v {
						acc += vd * q[d]
					}
					row[s] = math.Pow(acc+k.Coef, float64(k.Degree))
				}
			}
		}
	default:
		// Unreachable today (uniformKernel admits only the cases above);
		// kept so a future specialised kernel degrades to correct output.
		for s0 := 0; s0 < u; s0 += svTile {
			s1 := min(s0+svTile, u)
			for qi, q := range queries {
				row := dst[qi*u:]
				for s := s0; s < s1; s++ {
					row[s] = p.kernel.Eval(p.flat[s*dim:(s+1)*dim], q)
				}
			}
		}
	}
}

// BatchScratch owns every buffer one blocked batch prediction needs — the
// query × SV kernel block, the election buffers, and the result slices —
// so a warmed caller predicts whole batches with zero heap allocations.
// Not safe for concurrent use; keep one per goroutine (the serve batcher
// dispatches batches from a single goroutine and owns exactly one).
type BatchScratch struct {
	kblock []float64
	votes  PredictScratch
	labels []string
	confs  []float64
}

// PredictBatch classifies all queries together with one blocked pass over
// the ensemble's deduplicated support-vector pool. Results are
// bit-identical to calling PredictWithConfidence on each query in order:
// the blocked loops evaluate the same kernel scalars in the same
// per-element order, the pool only reuses (never re-derives) floats, and
// the per-pair margins accumulate in support-vector index order exactly as
// Binary.Decision does.
//
// Every query must have Dim() features (a mismatch panics, like
// PredictWithConfidence). The returned label and confidence slices are
// scratch-owned — valid until the next call with the same scratch; sc may
// be nil, which falls back to fresh allocations.
func (mc *Multiclass) PredictBatch(queries [][]float64, sc *BatchScratch) ([]string, []float64) {
	for i, q := range queries {
		if len(q) != mc.dim {
			panic(fmt.Sprintf("svm: batch query %d has %d features, ensemble was trained on %d", i, len(q), mc.dim))
		}
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	n := len(queries)
	if cap(sc.labels) < n {
		sc.labels = make([]string, n)
	}
	if cap(sc.confs) < n {
		sc.confs = make([]float64, n)
	}
	labels := sc.labels[:n]
	confs := sc.confs[:n]
	if n == 0 {
		return labels, confs
	}
	pool := mc.batchPool()
	if pool.kernel == nil {
		// Mixed or non-specialised kernels: no shared block to evaluate;
		// per-query sequential prediction is the identity baseline anyway.
		for i, q := range queries {
			labels[i], confs[i] = mc.PredictWithConfidenceScratch(q, &sc.votes)
		}
		return labels, confs
	}
	u := pool.rows
	if cap(sc.kblock) < n*u {
		sc.kblock = make([]float64, n*u)
	}
	kb := sc.kblock[:n*u]
	pool.evalBlock(kb, queries, mc.dim)
	for qi := range queries {
		krow := kb[qi*u : (qi+1)*u]
		votes, margin := sc.votes.tally(len(mc.classes))
		for p, m := range mc.models {
			s := m.bias
			for i, r := range pool.svRow[p] {
				s += m.coefs[i] * krow[r]
			}
			mc.score(votes, margin, p, s)
		}
		labels[qi], confs[qi] = mc.electWinner(votes, margin)
	}
	return labels, confs
}
