package monitor_test

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/monitor"
	"repro/internal/raceflag"
)

// strideSegmenter builds the strided segmenter the zero-copy tests exercise.
func strideSegmenter(t *testing.T) *monitor.Segmenter {
	t.Helper()
	sg, err := monitor.NewSegmenterOpts(monitor.Config{BaselinePackets: 30}, 5.32e9,
		monitor.SegmenterOptions{Settle: 3, TargetLen: 15, BaselineLen: 15, Stride: 10})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// TestSegmenterSharedBaselineAcrossStrides pins the frozen-baseline
// contract: every session of one appearance aliases the SAME baseline slice
// (one private copy per appearance, not one per emission) — the identity the
// core BaselineCache keys on — while a second appearance gets a fresh one.
func TestSegmenterSharedBaselineAcrossStrides(t *testing.T) {
	stream, _, _ := streamScenario(t, material.Soy, 40, 80)
	sg := strideSegmenter(t)

	feed := func() (firsts []*csi.Packet) {
		for _, pkt := range stream {
			s, _, err := sg.Feed(pkt)
			if err != nil {
				t.Fatal(err)
			}
			if s != nil {
				firsts = append(firsts, &s.Baseline.Packets[0])
				s.Release()
			}
		}
		return firsts
	}

	first := feed()
	if len(first) < 4 {
		t.Fatalf("appearance 1 emitted %d sessions, want >= 4", len(first))
	}
	for i, p := range first {
		if p != first[0] {
			t.Fatalf("session %d of appearance 1 has its own baseline copy; want all strides sharing one frozen slice", i)
		}
	}

	// Second appearance (replay): a fresh frozen baseline, not the old one.
	second := feed()
	if len(second) < 4 {
		t.Fatalf("appearance 2 emitted %d sessions, want >= 4", len(second))
	}
	if second[0] == first[0] {
		t.Fatal("appearance 2 reuses appearance 1's frozen baseline; cache invalidation would never fire")
	}
	for i, p := range second {
		if p != second[0] {
			t.Fatalf("session %d of appearance 2 has its own baseline copy", i)
		}
	}
}

// TestSegmenterStrideAllocSteadyState guards the zero-copy claim: once the
// ring and session pool are warm, a full stride cycle — push, trim, emit,
// release — runs without heap allocation. Wired into `make alloc-guard`.
func TestSegmenterStrideAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	stream, appearAt, removeAt := streamScenario(t, material.Soy, 40, 80)
	sg := strideSegmenter(t)

	// Warm up: learn the baseline and run through the first emissions so the
	// ring's blocks, the frozen baseline, and the session pool all exist.
	warm := appearAt + 40
	for _, pkt := range stream[:warm] {
		s, _, err := sg.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			s.Release()
		}
	}

	// Steady state: the remaining target packets stride through block
	// turnovers with the emitted sessions promptly released.
	rest := stream[warm:removeAt]
	i := 0
	emitted := 0
	avg := testing.AllocsPerRun(len(rest)-1, func() {
		s, _, err := sg.Feed(rest[i])
		i++
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			emitted++
			s.Release()
		}
	})
	if emitted == 0 {
		t.Fatal("steady-state run emitted no sessions; the guard measured nothing")
	}
	if avg != 0 {
		t.Fatalf("steady-state strided Feed allocates %.2f times per packet, want 0", avg)
	}
}
