package monitor_test

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/monitor"
	"repro/internal/simulate"
	"repro/wimi"
)

// streamScenario builds a continuous packet stream: quiet packets, then a
// liquid target, then quiet again. Returns the stream and the true
// appearance/removal boundaries.
func streamScenario(t *testing.T, liquid string, quietLen, targetLen int) (stream []csi.Packet, appearAt, removeAt int) {
	t.Helper()
	sc := simulate.Default()
	if liquid != "" {
		m, err := material.PaperDatabase().Get(liquid)
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
	}
	// One session = one NIC: the baseline capture supplies the quiet
	// stretches (before AND after), the target capture the middle — so the
	// stream has the phase continuity a real continuous capture would.
	need := 2*quietLen + targetLen
	sc.Packets = need
	s, err := simulate.Session(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, s.Baseline.Packets[:quietLen]...)
	appearAt = len(stream)
	stream = append(stream, s.Target.Packets[:targetLen]...)
	removeAt = len(stream)
	stream = append(stream, s.Baseline.Packets[quietLen:2*quietLen]...)
	return stream, appearAt, removeAt
}

func TestConfigValidate(t *testing.T) {
	if err := (monitor.Config{}).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (monitor.Config{BaselinePackets: 2}).Validate(); err == nil {
		t.Error("too-few baseline packets should error")
	}
	if err := (monitor.Config{Threshold: -1}).Validate(); err == nil {
		t.Error("negative threshold should error")
	}
	if err := (monitor.Config{Slack: -1}).Validate(); err == nil {
		t.Error("negative slack should error")
	}
}

func TestEventKindString(t *testing.T) {
	if monitor.TargetAppeared.String() != "target-appeared" || monitor.TargetRemoved.String() != "target-removed" {
		t.Error("event names wrong")
	}
	if monitor.EventKind(99).String() != "unknown" {
		t.Error("unknown kind should say so")
	}
}

func TestDetectorDetectsWaterAppearance(t *testing.T) {
	stream, appearAt, _ := streamScenario(t, material.PureWater, 40, 60)
	det, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	var appeared *monitor.Event
	for _, pkt := range stream {
		ev, err := det.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && ev.Kind == monitor.TargetAppeared && appeared == nil {
			appeared = ev
		}
	}
	if appeared == nil {
		t.Fatal("water target never detected")
	}
	// Detection latency: within 15 packets of the true boundary.
	if appeared.PacketIndex < appearAt || appeared.PacketIndex > appearAt+15 {
		t.Errorf("appearance at packet %d, truth %d", appeared.PacketIndex, appearAt)
	}
}

func TestDetectorDetectsRemoval(t *testing.T) {
	stream, _, removeAt := streamScenario(t, material.Soy, 40, 60)
	det, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	var removed *monitor.Event
	for _, pkt := range stream {
		ev, err := det.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && ev.Kind == monitor.TargetRemoved {
			removed = ev
		}
	}
	if removed == nil {
		t.Fatal("target removal never detected")
	}
	if removed.PacketIndex < removeAt || removed.PacketIndex > removeAt+20 {
		t.Errorf("removal at packet %d, truth %d", removed.PacketIndex, removeAt)
	}
}

func TestDetectorQuietStreamNoFalseAlarm(t *testing.T) {
	// An all-quiet stream must not alarm.
	stream, _, _ := streamScenario(t, "", 60, 1)
	quiet := stream[:60] // only the leading quiet stretch
	det, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, pkt := range quiet {
		ev, err := det.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("false alarm at packet %d: %v", i, ev.Kind)
		}
	}
}

func TestDetectorNilCSI(t *testing.T) {
	det, err := monitor.NewDetector(monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Feed(csi.Packet{}); err == nil {
		t.Error("nil CSI should error")
	}
}

func TestDetectorReadyAndPresent(t *testing.T) {
	stream, _, _ := streamScenario(t, material.PureWater, 40, 60)
	det, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	if det.Ready() {
		t.Error("detector should not be ready before learning")
	}
	for _, pkt := range stream[:35] {
		if _, err := det.Feed(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if !det.Ready() {
		t.Error("detector should be ready after the baseline window")
	}
	if det.TargetPresent() {
		t.Error("no target yet")
	}
}

func TestSegmenterProducesIdentifiableSession(t *testing.T) {
	// End-to-end: the segmenter carves a session out of the stream and the
	// identifier names the liquid.
	stream, _, _ := streamScenario(t, material.Honey, 40, 60)
	sg, err := monitor.NewSegmenter(monitor.Config{BaselinePackets: 30}, 5.32e9, 5, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	var session *csi.Session
	for _, pkt := range stream {
		s, _, err := sg.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			session = s
			break
		}
	}
	if session == nil {
		t.Fatal("segmenter never produced a session")
	}
	if err := session.Validate(); err != nil {
		t.Fatalf("segmented session invalid: %v", err)
	}
	if session.Target.Len() != 20 || session.Baseline.Len() != 20 {
		t.Errorf("segment sizes %d/%d", session.Baseline.Len(), session.Target.Len())
	}

	// Train an identifier and check the carved session classifies correctly.
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.Honey, wimi.PureWater, wimi.Oil} {
		sc := wimi.DefaultScenario()
		sc.Liquid = wimi.MustLiquid(name)
		trials, err := wimi.SimulateTrials(sc, 6, int64(li*1000+77))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range trials {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := id.Identify(session)
	if err != nil {
		t.Fatal(err)
	}
	if got != wimi.Honey {
		t.Errorf("segmented session identified as %q, want honey", got)
	}
}

func TestSegmenterValidation(t *testing.T) {
	if _, err := monitor.NewSegmenter(monitor.Config{}, 0, 5, 20, 20); err == nil {
		t.Error("zero carrier should error")
	}
	if _, err := monitor.NewSegmenter(monitor.Config{}, 5e9, -1, 20, 20); err == nil {
		t.Error("negative settle should error")
	}
	if _, err := monitor.NewSegmenter(monitor.Config{}, 5e9, 0, 0, 20); err == nil {
		t.Error("zero target length should error")
	}
	if _, err := monitor.NewSegmenter(monitor.Config{}, 5e9, 0, 20, 0); err == nil {
		t.Error("zero baseline length should error")
	}
	if _, err := monitor.NewSegmenter(monitor.Config{BaselinePackets: 1}, 5e9, 0, 20, 20); err == nil {
		t.Error("invalid detector config should propagate")
	}
}

func TestSegmenterOneSessionPerAppearance(t *testing.T) {
	stream, _, _ := streamScenario(t, material.Soy, 40, 80)
	sg, err := monitor.NewSegmenter(monitor.Config{BaselinePackets: 30}, 5.32e9, 3, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, pkt := range stream {
		s, _, err := sg.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			count++
		}
	}
	if count != 1 {
		t.Errorf("segmenter produced %d sessions for one appearance, want 1", count)
	}
}

func TestConfigValidateRebaseline(t *testing.T) {
	if err := (monitor.Config{RebaselineAfter: -1}).Validate(); err == nil {
		t.Error("negative RebaselineAfter should error")
	}
	if err := (monitor.Config{BaselinePackets: 30, RebaselineAfter: 10}).Validate(); err == nil {
		t.Error("RebaselineAfter below the re-learn window should error")
	}
	if err := (monitor.Config{RebaselineAfter: 40, RebaselineBlend: 1.5}).Validate(); err == nil {
		t.Error("RebaselineBlend above 1 should error")
	}
	if err := (monitor.Config{BaselinePackets: 20, RebaselineAfter: 40}).Validate(); err != nil {
		t.Errorf("valid rebaseline config rejected: %v", err)
	}
}

// TestDetectorRebaselineSurvivesGainDrift runs the same slowly-drifting
// quiet stream through a fixed-baseline detector and a re-baselining one:
// the drift must eventually alarm the fixed detector and not the
// re-baselining one.
func TestDetectorRebaselineSurvivesGainDrift(t *testing.T) {
	stream, _, _ := streamScenario(t, "", 60, 1)
	quiet := stream[:60]
	feedAll := func(det *monitor.Detector, gain float64) (alarms int) {
		// Replay the quiet stretch many times with a slowly growing gain
		// (every value scaled): a drifting front-end, no target.
		for rep := 0; rep < 30; rep++ {
			for _, pkt := range quiet {
				m := pkt.CSI.Clone()
				scale := complex(gain, 0)
				for _, row := range m.Values {
					for i := range row {
						row[i] *= scale
					}
				}
				ev, err := det.Feed(csi.Packet{Seq: pkt.Seq, CSI: m})
				if err != nil {
					t.Fatal(err)
				}
				if ev != nil && ev.Kind == monitor.TargetAppeared {
					alarms++
				}
				gain *= 1.0003 // ~20% drift over the run
			}
		}
		return alarms
	}
	fixed, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	drifting, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30, RebaselineAfter: 60})
	if err != nil {
		t.Fatal(err)
	}
	fixedAlarms := feedAll(fixed, 1.0)
	driftAlarms := feedAll(drifting, 1.0)
	if fixedAlarms == 0 {
		t.Skip("drift too small to trip the fixed-baseline detector; scenario not discriminating")
	}
	if driftAlarms >= fixedAlarms {
		t.Errorf("re-baselining detector alarmed %d times vs %d without it", driftAlarms, fixedAlarms)
	}
	if drifting.Rebaselines() == 0 {
		t.Error("no re-learn ever completed despite 1800 quiet packets")
	}
}

func TestDetectorResetRelearns(t *testing.T) {
	stream, _, _ := streamScenario(t, material.PureWater, 40, 60)
	det, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	appeared := false
	for _, pkt := range stream {
		ev, err := det.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && ev.Kind == monitor.TargetAppeared {
			appeared = true
			break
		}
	}
	if !appeared {
		t.Fatal("target never detected before reset")
	}
	if !det.TargetPresent() {
		t.Fatal("detector should believe a target is present")
	}
	det.Reset()
	if det.Ready() || det.TargetPresent() {
		t.Error("reset detector should be back in the learning state")
	}
	// Re-learn on the water-present level: water becomes the new quiet, so
	// replaying the target stretch must not alarm.
	for _, pkt := range stream[40:100] {
		ev, err := det.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("event %v after reset onto a steady level", ev.Kind)
		}
	}
	if !det.Ready() {
		t.Error("detector never re-learned after reset")
	}
}

func TestSegmenterSlidingWindowEmitsMultipleSessions(t *testing.T) {
	stream, _, _ := streamScenario(t, material.Soy, 40, 80)
	sg, err := monitor.NewSegmenterOpts(monitor.Config{BaselinePackets: 30}, 5.32e9,
		monitor.SegmenterOptions{Settle: 3, TargetLen: 15, BaselineLen: 15, Stride: 10})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, pkt := range stream {
		s, _, err := sg.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			count++
			if s.Target.Len() != 15 {
				t.Fatalf("sliding session target length %d, want 15", s.Target.Len())
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("sliding session invalid: %v", err)
			}
		}
	}
	// ~80 target packets, first session after settle+15, then one per 10
	// more: at least 4 sessions for the one appearance.
	if count < 4 {
		t.Errorf("sliding segmenter produced %d sessions, want ≥ 4", count)
	}
}

func TestSegmenterAccessorsAndReset(t *testing.T) {
	stream, _, _ := streamScenario(t, material.Honey, 40, 60)
	sg, err := monitor.NewSegmenter(monitor.Config{BaselinePackets: 30}, 5.32e9, 5, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Ready() {
		t.Error("segmenter ready before learning")
	}
	zero, err := csi.NewMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sg.Feed(csi.Packet{Seq: 9999, CSI: zero}); err != nil {
		t.Fatal(err)
	}
	if sg.Degenerate() != 1 {
		t.Errorf("degenerate = %d, want 1", sg.Degenerate())
	}
	got := 0
	for _, pkt := range stream {
		s, _, err := sg.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("expected one session, got %d", got)
	}
	sg.Reset()
	if sg.Ready() || sg.TargetPresent() {
		t.Error("reset segmenter should be back in the learning state")
	}
	// A full replay after reset must again produce a session.
	got = 0
	for _, pkt := range stream {
		s, _, err := sg.Feed(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			got++
		}
	}
	if got != 1 {
		t.Errorf("expected one session after reset replay, got %d", got)
	}
}

func TestDetectorSkipsDegeneratePackets(t *testing.T) {
	// All-zero packets (zeroed faults, dead stretches) must be skipped and
	// counted, not abort the monitor — and must not poison the baseline or
	// trip a false detection.
	stream, appearAt, _ := streamScenario(t, material.PureWater, 40, 60)
	zero, err := csi.NewMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	// Splice dead packets into the learning stretch and the quiet stretch.
	spliced := make([]csi.Packet, 0, len(stream)+4)
	for i, pkt := range stream {
		if i == 5 || i == 15 || i == 25 || i == 35 {
			spliced = append(spliced, csi.Packet{Seq: 9000 + uint32(i), CSI: zero})
		}
		spliced = append(spliced, pkt)
	}
	det, err := monitor.NewDetector(monitor.Config{BaselinePackets: 30})
	if err != nil {
		t.Fatal(err)
	}
	var appeared int = -1
	for i, pkt := range spliced {
		ev, err := det.Feed(pkt)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if ev != nil && ev.Kind == monitor.TargetAppeared && appeared < 0 {
			appeared = i
		}
	}
	if det.Degenerate() != 4 {
		t.Errorf("degenerate count = %d, want 4", det.Degenerate())
	}
	if appeared < 0 {
		t.Fatal("target never detected")
	}
	// 4 splices all land before the original appearAt index.
	if appeared < appearAt {
		t.Errorf("appearance at %d precedes the true boundary %d: dead packets tripped a false alarm",
			appeared, appearAt)
	}
}
