// Package monitor watches a continuous CSI stream and detects when a target
// appears on (or leaves) the line of sight — the missing piece between the
// paper's manual "capture baseline, pour liquid, capture again" procedure
// and its Fig. 1 vision of a phone passively sensing materials.
//
// Detection is a two-sided CUSUM changepoint statistic on the per-packet
// mean log-amplitude: inserting a lossy target shifts the received level,
// and CUSUM accumulates small persistent shifts while ignoring the
// impulse/outlier noise the hardware injects (the statistic feeds on a
// robustly standardised score).
package monitor

import (
	"fmt"
	"math"

	"repro/internal/csi"
	"repro/internal/mathx"
)

// EventKind classifies a detected change.
type EventKind int

// Detected event kinds.
const (
	// TargetAppeared fires when the stream departs from the quiescent
	// baseline level.
	TargetAppeared EventKind = iota + 1
	// TargetRemoved fires when the stream returns to the baseline level.
	TargetRemoved
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case TargetAppeared:
		return "target-appeared"
	case TargetRemoved:
		return "target-removed"
	default:
		return "unknown"
	}
}

// Event is one detected change.
type Event struct {
	Kind EventKind
	// PacketIndex is the 0-based index (in feed order) of the packet that
	// triggered the decision.
	PacketIndex int
}

// Config parameterises the detector. The zero value selects the defaults.
type Config struct {
	// BaselinePackets establishes the quiescent level before detection
	// starts. Zero selects 20 (the paper's capture length).
	BaselinePackets int
	// Threshold is the CUSUM alarm level in robust-sigma units. Zero
	// selects 10.
	Threshold float64
	// Slack is the CUSUM drift allowance per packet in sigma units
	// (changes smaller than this never alarm). Zero selects 0.5.
	Slack float64
	// QuietPackets is how many consecutive near-baseline packets signal the
	// target's removal. Zero selects 8.
	QuietPackets int
	// RebaselineAfter, when positive, enables slow quiescent re-baselining:
	// after this many consecutive quiet packets (|z| < 3 while watching) the
	// baseline level is re-learned from the most recent quiet window and
	// blended into μ/σ, so a long-lived stream survives receiver gain drift
	// without a process restart. Must be ≥ BaselinePackets (the re-learn
	// window). Zero disables — detection is then bit-identical to the
	// pre-knob behaviour.
	RebaselineAfter int
	// RebaselineBlend is the EWMA weight of each re-learned level, in (0,1];
	// small values drift slowly. Zero selects 0.25. Ignored while
	// RebaselineAfter is zero.
	RebaselineBlend float64
}

func (c Config) withDefaults() Config {
	if c.BaselinePackets == 0 {
		c.BaselinePackets = 20
	}
	if c.Threshold == 0 {
		c.Threshold = 10
	}
	if c.Slack == 0 {
		c.Slack = 0.5
	}
	if c.QuietPackets == 0 {
		c.QuietPackets = 8
	}
	if c.RebaselineAfter > 0 && c.RebaselineBlend == 0 {
		c.RebaselineBlend = 0.25
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	c0 := c.withDefaults()
	switch {
	case c0.BaselinePackets < 4:
		return fmt.Errorf("monitor: need at least 4 baseline packets, got %d", c0.BaselinePackets)
	case c0.Threshold <= 0:
		return fmt.Errorf("monitor: threshold must be positive, got %v", c0.Threshold)
	case c0.Slack < 0:
		return fmt.Errorf("monitor: negative slack %v", c0.Slack)
	case c0.QuietPackets < 1:
		return fmt.Errorf("monitor: QuietPackets must be ≥ 1, got %d", c0.QuietPackets)
	case c0.RebaselineAfter < 0:
		return fmt.Errorf("monitor: negative RebaselineAfter %d", c0.RebaselineAfter)
	case c0.RebaselineAfter > 0 && c0.RebaselineAfter < c0.BaselinePackets:
		return fmt.Errorf("monitor: RebaselineAfter %d below the %d-packet re-learn window",
			c0.RebaselineAfter, c0.BaselinePackets)
	case c0.RebaselineBlend < 0 || c0.RebaselineBlend > 1:
		return fmt.Errorf("monitor: RebaselineBlend %v outside (0,1]", c0.RebaselineBlend)
	}
	return nil
}

// state is the detector's phase.
type state int

const (
	stateLearning state = iota + 1
	stateWatching
	stateTargetPresent
)

// Detector consumes packets one at a time and emits events.
type Detector struct {
	cfg   Config
	st    state
	count int

	// Baseline statistics (learned).
	learnBuf []float64
	mu, sig  float64

	// CUSUM accumulators.
	upSum, downSum float64

	quietRun int

	// Quiescent re-baselining state (Config.RebaselineAfter > 0): a ring of
	// the newest quiet statistics and the length of the current quiet run.
	rbBuf   []float64
	rbNext  int
	rbFill  int
	rbQuiet int
	// rebaselines counts completed drift re-learns, for operator stats.
	rebaselines int

	// degenerate counts skipped packets with no usable amplitude (all-zero
	// CSI from a dead stretch, zeroed faults, or a corrupt record) — the
	// detector must ride these out, not abort a live monitoring loop.
	degenerate int
}

// NewDetector builds a detector.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg.withDefaults(), st: stateLearning}, nil
}

// statistic reduces one packet to the detection scalar: the mean
// log-amplitude over all antennas and subcarriers. The log makes the common
// receiver gain additive and target attenuation a level shift.
func statistic(m *csi.Matrix) float64 {
	var sum float64
	n := 0
	for _, row := range m.Values {
		for _, v := range row {
			a := math.Hypot(real(v), imag(v))
			if a > 0 {
				sum += math.Log(a)
				n++
			}
		}
	}
	if n == 0 {
		return math.Inf(-1)
	}
	return sum / float64(n)
}

// Feed processes one packet. It returns a non-nil event when a change is
// detected, and nil otherwise.
func (d *Detector) Feed(pkt csi.Packet) (*Event, error) {
	if pkt.CSI == nil {
		return nil, fmt.Errorf("monitor: packet %d has nil CSI", pkt.Seq)
	}
	idx := d.count
	d.count++
	x := statistic(pkt.CSI)
	if math.IsInf(x, 0) || math.IsNaN(x) {
		// Skip-and-count: an all-zero packet carries no level information,
		// and a fault-injected or real dropout must not kill the monitor.
		d.degenerate++
		return nil, nil
	}
	switch d.st {
	case stateLearning:
		d.learnBuf = append(d.learnBuf, x)
		if len(d.learnBuf) >= d.cfg.BaselinePackets {
			d.mu, d.sig = mathx.MedianAndMADStdDev(d.learnBuf)
			if d.sig < 1e-6 {
				d.sig = 1e-6
			}
			d.st = stateWatching
			d.learnBuf = nil
		}
		return nil, nil
	case stateWatching:
		z := (x - d.mu) / d.sig
		d.upSum = math.Max(0, d.upSum+z-d.cfg.Slack)
		d.downSum = math.Max(0, d.downSum-z-d.cfg.Slack)
		if d.upSum > d.cfg.Threshold || d.downSum > d.cfg.Threshold {
			d.st = stateTargetPresent
			d.upSum, d.downSum = 0, 0
			d.quietRun = 0
			d.rbQuiet, d.rbFill, d.rbNext = 0, 0, 0
			return &Event{Kind: TargetAppeared, PacketIndex: idx}, nil
		}
		d.maybeRebaseline(x, z)
		return nil, nil
	case stateTargetPresent:
		z := (x - d.mu) / d.sig
		if math.Abs(z) < 3 {
			d.quietRun++
			if d.quietRun >= d.cfg.QuietPackets {
				d.st = stateWatching
				d.quietRun = 0
				return &Event{Kind: TargetRemoved, PacketIndex: idx}, nil
			}
		} else {
			d.quietRun = 0
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("monitor: detector in invalid state %d", d.st)
	}
}

// maybeRebaseline folds one watching-state statistic into the quiescent
// drift re-learn. Only packets within 3σ of the current baseline feed the
// window, and a single loud packet restarts the quiet run — re-learning must
// see a contiguous quiescent stretch, never a target's shoulder.
func (d *Detector) maybeRebaseline(x, z float64) {
	if d.cfg.RebaselineAfter <= 0 {
		return
	}
	if math.Abs(z) >= 3 {
		d.rbQuiet, d.rbFill, d.rbNext = 0, 0, 0
		return
	}
	if d.rbBuf == nil {
		d.rbBuf = make([]float64, d.cfg.BaselinePackets)
	}
	d.rbBuf[d.rbNext] = x
	d.rbNext = (d.rbNext + 1) % len(d.rbBuf)
	if d.rbFill < len(d.rbBuf) {
		d.rbFill++
	}
	d.rbQuiet++
	if d.rbQuiet < d.cfg.RebaselineAfter || d.rbFill < len(d.rbBuf) {
		return
	}
	// Blend the freshly-learned level into the baseline. Slowly: the EWMA
	// weight keeps one noisy window from yanking the reference, while a
	// genuine gain step is absorbed over a few re-learns.
	mu2, sig2 := mathx.MedianAndMADStdDev(d.rbBuf)
	if sig2 < 1e-6 {
		sig2 = 1e-6
	}
	a := d.cfg.RebaselineBlend
	d.mu += a * (mu2 - d.mu)
	d.sig += a * (sig2 - d.sig)
	if d.sig < 1e-6 {
		d.sig = 1e-6
	}
	// The CUSUM accumulators measured drift against the old level; restart
	// them so stale accumulation cannot alarm against the new one.
	d.upSum, d.downSum = 0, 0
	d.rbQuiet = 0
	d.rebaselines++
}

// Reset returns the detector to the learning state so the baseline is
// re-learned from scratch — the hard variant of re-baselining, for operators
// who know the environment changed (hardware swap, room re-arranged). The
// packet-index clock and the degenerate counter carry on; everything else
// (baseline, CUSUM accumulators, quiet runs) is discarded.
func (d *Detector) Reset() {
	d.st = stateLearning
	d.learnBuf = d.learnBuf[:0]
	d.mu, d.sig = 0, 0
	d.upSum, d.downSum = 0, 0
	d.quietRun = 0
	d.rbQuiet, d.rbFill, d.rbNext = 0, 0, 0
}

// Rebaselines reports how many quiescent drift re-learns have completed.
func (d *Detector) Rebaselines() int { return d.rebaselines }

// Ready reports whether the baseline has been learned.
func (d *Detector) Ready() bool { return d.st != stateLearning }

// Degenerate reports how many packets were skipped for carrying no usable
// amplitude (all-zero CSI).
func (d *Detector) Degenerate() int { return d.degenerate }

// TargetPresent reports whether the detector currently believes a target is
// on the link.
func (d *Detector) TargetPresent() bool { return d.st == stateTargetPresent }

// Segmenter assembles identification-ready sessions from a continuous
// stream: it buffers baseline packets while the link is quiet, and on a
// TargetAppeared→TargetRemoved (or appeared + enough packets) cycle emits a
// csi.Session pairing the pre-appearance baseline with the during-target
// packets.
type Segmenter struct {
	det     *Detector
	carrier float64
	// settle discards this many packets right after appearance (the paper
	// waits "a few seconds" for the liquid to stabilise).
	settle int
	// targetLen is how many target packets build a session.
	targetLen int
	// stride, when positive, keeps the segmenter live after the first
	// session of an appearance: every stride further target packets it
	// emits another session over the newest targetLen packets (a sliding
	// window against the same frozen baseline), until the target leaves.
	// Zero keeps the historical one-session-per-appearance behaviour.
	stride int

	quiet    []csi.Packet // rolling window of recent quiet packets
	quietCap int
	// guard is how many of the newest quiet packets are dropped when the
	// baseline freezes: CUSUM detection has a few packets of latency, so
	// the newest "quiet" packets may already contain the target.
	guard int
	// ring holds the live target window in refcounted blocks; emitted
	// sessions alias it (zero-copy sliding windows) and hand storage back
	// via csi.Session.Release.
	ring      *csi.PacketRing
	baseline  []csi.Packet // frozen at appearance, shared by every session of it
	skipped   int
	active    bool
	emitted   bool // a session has been emitted for the current appearance
	sinceEmit int  // target packets accumulated since the last emission
}

// SegmenterOptions shapes the sessions a Segmenter carves out of the stream.
type SegmenterOptions struct {
	// Settle packets are discarded right after the target appears.
	Settle int
	// TargetLen is how many target packets build each session.
	TargetLen int
	// BaselineLen recent quiet packets are paired as the session baseline.
	BaselineLen int
	// Stride, when positive, enables sliding-window sessions: after the
	// first session of an appearance, a fresh session over the newest
	// TargetLen packets is emitted every Stride packets until the target
	// leaves — the continuous re-identification a long-lived monitor needs
	// to notice the vessel's content being swapped. Zero emits one session
	// per appearance (the historical behaviour).
	Stride int
}

// NewSegmenter builds a segmenter. settle packets are discarded after the
// target appears; targetLen packets are then collected per session;
// baselineLen recent quiet packets are paired as the baseline.
func NewSegmenter(cfg Config, carrier float64, settle, targetLen, baselineLen int) (*Segmenter, error) {
	return NewSegmenterOpts(cfg, carrier, SegmenterOptions{
		Settle: settle, TargetLen: targetLen, BaselineLen: baselineLen,
	})
}

// NewSegmenterOpts builds a segmenter from explicit options, including the
// sliding-window stride NewSegmenter's fixed signature predates.
func NewSegmenterOpts(cfg Config, carrier float64, opts SegmenterOptions) (*Segmenter, error) {
	if carrier <= 0 {
		return nil, fmt.Errorf("monitor: non-positive carrier %v", carrier)
	}
	if opts.Settle < 0 || opts.TargetLen < 1 || opts.BaselineLen < 1 || opts.Stride < 0 {
		return nil, fmt.Errorf("monitor: invalid segmenter lengths settle=%d target=%d baseline=%d stride=%d",
			opts.Settle, opts.TargetLen, opts.BaselineLen, opts.Stride)
	}
	det, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	const detectionGuard = 10
	ring, err := csi.NewPacketRing(opts.TargetLen)
	if err != nil {
		return nil, err
	}
	return &Segmenter{
		det:       det,
		carrier:   carrier,
		settle:    opts.Settle,
		targetLen: opts.TargetLen,
		stride:    opts.Stride,
		guard:     detectionGuard,
		quietCap:  opts.BaselineLen + detectionGuard,
		ring:      ring,
	}, nil
}

// Feed processes one packet and returns a complete session once enough
// target packets have been observed after an appearance.
//
// Aliasing contract: emitted sessions are zero-copy. The target window
// aliases a refcounted block of the segmenter's csi.PacketRing, and the
// baseline is ONE frozen read-only slice shared by every session of the
// appearance — a stride emission costs O(Stride) new packet storage, not
// O(TargetLen+BaselineLen). A session stays valid until its
// csi.Session.Release, which recycles the target block; callers that never
// Release (one-shot monitors) just leave the storage to the GC. Feed,
// Release, and every other segmenter method must be serialized by the
// caller (the hub uses its per-stream mutex); session *reads* need no lock
// once the session has been handed over.
func (sg *Segmenter) Feed(pkt csi.Packet) (*csi.Session, *Event, error) {
	ev, err := sg.det.Feed(pkt)
	if err != nil {
		return nil, nil, err
	}
	if ev != nil && ev.Kind == TargetAppeared {
		// Freeze the baseline window, discarding the newest guard packets
		// (they were fed before the detector caught up and may already
		// contain the target). One fresh private copy per appearance; every
		// session of the appearance shares it.
		frozen := sg.quiet
		if len(frozen) > sg.guard {
			frozen = frozen[:len(frozen)-sg.guard]
		}
		sg.baseline = append([]csi.Packet(nil), frozen...)
		sg.ring.DropWindow()
		sg.skipped = 0
		sg.active = true
		sg.emitted = false
		sg.sinceEmit = 0
	}
	if ev != nil && ev.Kind == TargetRemoved {
		sg.active = false
		sg.ring.DropWindow()
	}
	if sg.active && sg.det.TargetPresent() {
		if sg.skipped < sg.settle {
			sg.skipped++
			return nil, ev, nil
		}
		sg.ring.Push(pkt)
		if sg.stride > 0 {
			// Sliding window: keep only the newest targetLen packets.
			sg.ring.TrimTo(sg.targetLen)
		}
		if sg.ring.Len() >= sg.targetLen && len(sg.baseline) > 0 {
			emit := !sg.emitted
			if sg.emitted && sg.stride > 0 {
				sg.sinceEmit++
				emit = sg.sinceEmit >= sg.stride
			}
			if emit {
				session := sg.ring.Emit(sg.carrier, sg.baseline)
				sg.emitted = true
				sg.sinceEmit = 0
				if sg.stride == 0 {
					sg.active = false // one session per appearance
				}
				return session, ev, nil
			}
		}
		return nil, ev, nil
	}
	if !sg.det.TargetPresent() {
		sg.quiet = append(sg.quiet, pkt)
		if len(sg.quiet) > sg.quietCap {
			sg.quiet = sg.quiet[len(sg.quiet)-sg.quietCap:]
		}
	}
	return nil, ev, nil
}

// Ready reports whether the underlying detector has learned its baseline.
func (sg *Segmenter) Ready() bool { return sg.det.Ready() }

// TargetPresent reports whether the underlying detector currently believes
// a target is on the link.
func (sg *Segmenter) TargetPresent() bool { return sg.det.TargetPresent() }

// Degenerate reports how many packets the underlying detector skipped for
// carrying no usable amplitude — the counter fleet operators watch for dead
// stretches that would otherwise be invisible.
func (sg *Segmenter) Degenerate() int { return sg.det.Degenerate() }

// Rebaselines reports how many quiescent drift re-learns the underlying
// detector has completed.
func (sg *Segmenter) Rebaselines() int { return sg.det.Rebaselines() }

// Reset re-learns the environment from scratch: the detector returns to the
// learning state and every buffered packet window is discarded.
func (sg *Segmenter) Reset() {
	sg.det.Reset()
	sg.quiet = sg.quiet[:0]
	sg.ring.DropWindow()
	sg.baseline = nil
	sg.skipped = 0
	sg.active = false
	sg.emitted = false
	sg.sinceEmit = 0
}
