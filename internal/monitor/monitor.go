// Package monitor watches a continuous CSI stream and detects when a target
// appears on (or leaves) the line of sight — the missing piece between the
// paper's manual "capture baseline, pour liquid, capture again" procedure
// and its Fig. 1 vision of a phone passively sensing materials.
//
// Detection is a two-sided CUSUM changepoint statistic on the per-packet
// mean log-amplitude: inserting a lossy target shifts the received level,
// and CUSUM accumulates small persistent shifts while ignoring the
// impulse/outlier noise the hardware injects (the statistic feeds on a
// robustly standardised score).
package monitor

import (
	"fmt"
	"math"

	"repro/internal/csi"
	"repro/internal/mathx"
)

// EventKind classifies a detected change.
type EventKind int

// Detected event kinds.
const (
	// TargetAppeared fires when the stream departs from the quiescent
	// baseline level.
	TargetAppeared EventKind = iota + 1
	// TargetRemoved fires when the stream returns to the baseline level.
	TargetRemoved
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case TargetAppeared:
		return "target-appeared"
	case TargetRemoved:
		return "target-removed"
	default:
		return "unknown"
	}
}

// Event is one detected change.
type Event struct {
	Kind EventKind
	// PacketIndex is the 0-based index (in feed order) of the packet that
	// triggered the decision.
	PacketIndex int
}

// Config parameterises the detector. The zero value selects the defaults.
type Config struct {
	// BaselinePackets establishes the quiescent level before detection
	// starts. Zero selects 20 (the paper's capture length).
	BaselinePackets int
	// Threshold is the CUSUM alarm level in robust-sigma units. Zero
	// selects 10.
	Threshold float64
	// Slack is the CUSUM drift allowance per packet in sigma units
	// (changes smaller than this never alarm). Zero selects 0.5.
	Slack float64
	// QuietPackets is how many consecutive near-baseline packets signal the
	// target's removal. Zero selects 8.
	QuietPackets int
}

func (c Config) withDefaults() Config {
	if c.BaselinePackets == 0 {
		c.BaselinePackets = 20
	}
	if c.Threshold == 0 {
		c.Threshold = 10
	}
	if c.Slack == 0 {
		c.Slack = 0.5
	}
	if c.QuietPackets == 0 {
		c.QuietPackets = 8
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	c0 := c.withDefaults()
	switch {
	case c0.BaselinePackets < 4:
		return fmt.Errorf("monitor: need at least 4 baseline packets, got %d", c0.BaselinePackets)
	case c0.Threshold <= 0:
		return fmt.Errorf("monitor: threshold must be positive, got %v", c0.Threshold)
	case c0.Slack < 0:
		return fmt.Errorf("monitor: negative slack %v", c0.Slack)
	case c0.QuietPackets < 1:
		return fmt.Errorf("monitor: QuietPackets must be ≥ 1, got %d", c0.QuietPackets)
	}
	return nil
}

// state is the detector's phase.
type state int

const (
	stateLearning state = iota + 1
	stateWatching
	stateTargetPresent
)

// Detector consumes packets one at a time and emits events.
type Detector struct {
	cfg   Config
	st    state
	count int

	// Baseline statistics (learned).
	learnBuf []float64
	mu, sig  float64

	// CUSUM accumulators.
	upSum, downSum float64

	quietRun int

	// degenerate counts skipped packets with no usable amplitude (all-zero
	// CSI from a dead stretch, zeroed faults, or a corrupt record) — the
	// detector must ride these out, not abort a live monitoring loop.
	degenerate int
}

// NewDetector builds a detector.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg.withDefaults(), st: stateLearning}, nil
}

// statistic reduces one packet to the detection scalar: the mean
// log-amplitude over all antennas and subcarriers. The log makes the common
// receiver gain additive and target attenuation a level shift.
func statistic(m *csi.Matrix) float64 {
	var sum float64
	n := 0
	for _, row := range m.Values {
		for _, v := range row {
			a := math.Hypot(real(v), imag(v))
			if a > 0 {
				sum += math.Log(a)
				n++
			}
		}
	}
	if n == 0 {
		return math.Inf(-1)
	}
	return sum / float64(n)
}

// Feed processes one packet. It returns a non-nil event when a change is
// detected, and nil otherwise.
func (d *Detector) Feed(pkt csi.Packet) (*Event, error) {
	if pkt.CSI == nil {
		return nil, fmt.Errorf("monitor: packet %d has nil CSI", pkt.Seq)
	}
	idx := d.count
	d.count++
	x := statistic(pkt.CSI)
	if math.IsInf(x, 0) || math.IsNaN(x) {
		// Skip-and-count: an all-zero packet carries no level information,
		// and a fault-injected or real dropout must not kill the monitor.
		d.degenerate++
		return nil, nil
	}
	switch d.st {
	case stateLearning:
		d.learnBuf = append(d.learnBuf, x)
		if len(d.learnBuf) >= d.cfg.BaselinePackets {
			d.mu, d.sig = mathx.MedianAndMADStdDev(d.learnBuf)
			if d.sig < 1e-6 {
				d.sig = 1e-6
			}
			d.st = stateWatching
			d.learnBuf = nil
		}
		return nil, nil
	case stateWatching:
		z := (x - d.mu) / d.sig
		d.upSum = math.Max(0, d.upSum+z-d.cfg.Slack)
		d.downSum = math.Max(0, d.downSum-z-d.cfg.Slack)
		if d.upSum > d.cfg.Threshold || d.downSum > d.cfg.Threshold {
			d.st = stateTargetPresent
			d.upSum, d.downSum = 0, 0
			d.quietRun = 0
			return &Event{Kind: TargetAppeared, PacketIndex: idx}, nil
		}
		return nil, nil
	case stateTargetPresent:
		z := (x - d.mu) / d.sig
		if math.Abs(z) < 3 {
			d.quietRun++
			if d.quietRun >= d.cfg.QuietPackets {
				d.st = stateWatching
				d.quietRun = 0
				return &Event{Kind: TargetRemoved, PacketIndex: idx}, nil
			}
		} else {
			d.quietRun = 0
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("monitor: detector in invalid state %d", d.st)
	}
}

// Ready reports whether the baseline has been learned.
func (d *Detector) Ready() bool { return d.st != stateLearning }

// Degenerate reports how many packets were skipped for carrying no usable
// amplitude (all-zero CSI).
func (d *Detector) Degenerate() int { return d.degenerate }

// TargetPresent reports whether the detector currently believes a target is
// on the link.
func (d *Detector) TargetPresent() bool { return d.st == stateTargetPresent }

// Segmenter assembles identification-ready sessions from a continuous
// stream: it buffers baseline packets while the link is quiet, and on a
// TargetAppeared→TargetRemoved (or appeared + enough packets) cycle emits a
// csi.Session pairing the pre-appearance baseline with the during-target
// packets.
type Segmenter struct {
	det     *Detector
	carrier float64
	// settle discards this many packets right after appearance (the paper
	// waits "a few seconds" for the liquid to stabilise).
	settle int
	// targetLen is how many target packets build a session.
	targetLen int

	quiet    []csi.Packet // rolling window of recent quiet packets
	quietCap int
	// guard is how many of the newest quiet packets are dropped when the
	// baseline freezes: CUSUM detection has a few packets of latency, so
	// the newest "quiet" packets may already contain the target.
	guard    int
	target   []csi.Packet
	baseline []csi.Packet // frozen at appearance
	skipped  int
	active   bool
}

// NewSegmenter builds a segmenter. settle packets are discarded after the
// target appears; targetLen packets are then collected per session;
// baselineLen recent quiet packets are paired as the baseline.
func NewSegmenter(cfg Config, carrier float64, settle, targetLen, baselineLen int) (*Segmenter, error) {
	if carrier <= 0 {
		return nil, fmt.Errorf("monitor: non-positive carrier %v", carrier)
	}
	if settle < 0 || targetLen < 1 || baselineLen < 1 {
		return nil, fmt.Errorf("monitor: invalid segmenter lengths settle=%d target=%d baseline=%d",
			settle, targetLen, baselineLen)
	}
	det, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	const detectionGuard = 10
	return &Segmenter{
		det:       det,
		carrier:   carrier,
		settle:    settle,
		targetLen: targetLen,
		guard:     detectionGuard,
		quietCap:  baselineLen + detectionGuard,
	}, nil
}

// Feed processes one packet and returns a complete session once enough
// target packets have been observed after an appearance.
func (sg *Segmenter) Feed(pkt csi.Packet) (*csi.Session, *Event, error) {
	ev, err := sg.det.Feed(pkt)
	if err != nil {
		return nil, nil, err
	}
	if ev != nil && ev.Kind == TargetAppeared {
		// Freeze the baseline window, discarding the newest guard packets
		// (they were fed before the detector caught up and may already
		// contain the target).
		frozen := sg.quiet
		if len(frozen) > sg.guard {
			frozen = frozen[:len(frozen)-sg.guard]
		}
		sg.baseline = append([]csi.Packet(nil), frozen...)
		sg.target = nil
		sg.skipped = 0
		sg.active = true
	}
	if ev != nil && ev.Kind == TargetRemoved {
		sg.active = false
		sg.target = nil
	}
	if sg.active && sg.det.TargetPresent() {
		if sg.skipped < sg.settle {
			sg.skipped++
			return nil, ev, nil
		}
		sg.target = append(sg.target, pkt)
		if len(sg.target) >= sg.targetLen && len(sg.baseline) > 0 {
			session := &csi.Session{
				Carrier:  sg.carrier,
				Baseline: csi.Capture{Packets: append([]csi.Packet(nil), sg.baseline...)},
				Target:   csi.Capture{Packets: append([]csi.Packet(nil), sg.target...)},
			}
			sg.active = false // one session per appearance
			return session, ev, nil
		}
		return nil, ev, nil
	}
	if !sg.det.TargetPresent() {
		sg.quiet = append(sg.quiet, pkt)
		if len(sg.quiet) > sg.quietCap {
			sg.quiet = sg.quiet[len(sg.quiet)-sg.quietCap:]
		}
	}
	return nil, ev, nil
}
