// Package hardware simulates the Intel-5300-class impairments that make raw
// CSI unusable for material sensing — exactly the error model the paper
// states in Eq. 5:
//
//	φ̃(k,i) = φ(k,i) + k(λb + λs) + β + Z
//
// where λb is the packet boundary delay (PBD), λs the sampling frequency
// offset (SFO) — both linear in subcarrier index k — β the carrier frequency
// offset (CFO), and Z Gaussian measurement noise. PBD/SFO/CFO are drawn
// fresh per packet but are IDENTICAL across the receive antennas of one
// board (shared sampling and oscillator clocks — the property WiMi's phase
// calibration exploits), while Z is independent per antenna.
//
// Amplitude impairments follow Sec. II-C: a common per-packet receiver gain
// (removed by the inter-antenna ratio), additive thermal noise, sparse
// impulse noise "comparable to the useful signals", and gross outliers.
package hardware

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/csi"
)

// Profile parameterises the impairment model. The zero value is NOT usable;
// call DefaultProfile and adjust.
type Profile struct {
	// PhaseNoiseSigma is the std-dev of the per-antenna Gaussian phase noise
	// Z in radians.
	PhaseNoiseSigma float64
	// SFOSlopeSigma is the std-dev of the per-packet linear phase slope
	// (λb + λs) in radians per subcarrier index.
	SFOSlopeSigma float64
	// CommonGainSigmaDB is the std-dev of the per-packet common receiver
	// gain jitter in dB (shared by all antennas, cancelled by the ratio).
	CommonGainSigmaDB float64
	// SNRdB sets the additive thermal noise floor relative to a unit-power
	// channel tap.
	SNRdB float64
	// ImpulseProb is the per-packet, per-antenna probability of an impulse
	// noise burst hitting the amplitude readings.
	ImpulseProb float64
	// ImpulseMagnitude scales impulse bursts relative to the signal
	// amplitude (1 ≈ "comparable to the useful signals").
	ImpulseMagnitude float64
	// OutlierProb is the per-packet, per-antenna probability of a gross
	// amplitude outlier (far outside the 3σ band).
	OutlierProb float64
	// OutlierMagnitude multiplies the amplitude on an outlier event.
	OutlierMagnitude float64
	// QuantBits, when > 0, quantises I/Q to signed integers of that many
	// bits (the 5300 reports 8-bit components).
	QuantBits int
}

// DefaultProfile returns impairment magnitudes calibrated so the simulated
// raw data reproduces the paper's Fig. 2/3 symptoms: raw phase uniform over
// 0-2π across packets, inter-antenna phase difference clustered within
// ~18°, and amplitude series with visible impulses and outliers.
func DefaultProfile() Profile {
	return Profile{
		PhaseNoiseSigma:   0.02,
		SFOSlopeSigma:     0.35,
		CommonGainSigmaDB: 1.2,
		SNRdB:             28,
		ImpulseProb:       0.05,
		ImpulseMagnitude:  1.0,
		OutlierProb:       0.012,
		OutlierMagnitude:  4.0,
		QuantBits:         0,
	}
}

// Validate checks the profile for nonsensical values.
func (p Profile) Validate() error {
	switch {
	case p.PhaseNoiseSigma < 0:
		return fmt.Errorf("hardware: negative PhaseNoiseSigma %v", p.PhaseNoiseSigma)
	case p.SFOSlopeSigma < 0:
		return fmt.Errorf("hardware: negative SFOSlopeSigma %v", p.SFOSlopeSigma)
	case p.ImpulseProb < 0 || p.ImpulseProb > 1:
		return fmt.Errorf("hardware: ImpulseProb %v outside [0,1]", p.ImpulseProb)
	case p.OutlierProb < 0 || p.OutlierProb > 1:
		return fmt.Errorf("hardware: OutlierProb %v outside [0,1]", p.OutlierProb)
	case p.QuantBits < 0 || p.QuantBits > 16:
		return fmt.Errorf("hardware: QuantBits %d outside [0,16]", p.QuantBits)
	}
	return nil
}

// Imperfection applies a Profile to CSI packets. It holds the per-capture
// static state (fixed per-antenna cable phase offsets) and a deterministic
// random source, so a capture corrupted twice from the same seed is
// identical.
type Imperfection struct {
	profile      Profile
	rng          *rand.Rand
	staticPhases []float64 // per-antenna fixed offsets (cable lengths)
}

// NewImperfection builds an impairment generator for numAnt receive
// antennas. The static per-antenna phase offsets are drawn once, as on a
// real board where they are fixed by cable lengths.
func NewImperfection(p Profile, numAnt int, rng *rand.Rand) (*Imperfection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if numAnt < 1 {
		return nil, fmt.Errorf("hardware: need at least one antenna, got %d", numAnt)
	}
	if rng == nil {
		return nil, fmt.Errorf("hardware: nil random source")
	}
	static := make([]float64, numAnt)
	for i := range static {
		static[i] = rng.Float64() * 2 * math.Pi
	}
	return &Imperfection{profile: p, rng: rng, staticPhases: static}, nil
}

// Corrupt applies one packet's worth of impairments to m in place. The
// matrix must have the antenna count the Imperfection was built for.
func (im *Imperfection) Corrupt(m *csi.Matrix) error {
	if m.NumAntennas() != len(im.staticPhases) {
		return fmt.Errorf("hardware: matrix has %d antennas, imperfection built for %d",
			m.NumAntennas(), len(im.staticPhases))
	}
	p := im.profile
	// Per-packet, board-common errors (Eq. 5): CFO β, and the SFO+PBD
	// slope k·(λb+λs).
	cfo := im.rng.Float64() * 2 * math.Pi
	slope := im.rng.NormFloat64() * p.SFOSlopeSigma
	gain := math.Pow(10, im.rng.NormFloat64()*p.CommonGainSigmaDB/20)

	// Signal scale for the additive noise floor: mean |H| over the matrix.
	var meanAmp float64
	n := 0
	for _, row := range m.Values {
		for _, v := range row {
			meanAmp += cmplx.Abs(v)
			n++
		}
	}
	if n > 0 {
		meanAmp /= float64(n)
	}
	noiseSigma := meanAmp * math.Pow(10, -p.SNRdB/20) / math.Sqrt2

	for ant, row := range m.Values {
		impulse := im.rng.Float64() < p.ImpulseProb
		outlier := im.rng.Float64() < p.OutlierProb
		// An impulse burst hits a contiguous run of subcarriers.
		impulseStart, impulseEnd := 0, 0
		if impulse {
			impulseStart = im.rng.Intn(csi.NumSubcarriers)
			impulseEnd = impulseStart + 4 + im.rng.Intn(8)
			if impulseEnd > csi.NumSubcarriers {
				impulseEnd = csi.NumSubcarriers
			}
		}
		for sub, v := range row {
			idx, err := csi.SubcarrierIndex(sub)
			if err != nil {
				return fmt.Errorf("hardware: %w", err)
			}
			phaseErr := cfo + slope*float64(idx) + im.staticPhases[ant] +
				im.rng.NormFloat64()*p.PhaseNoiseSigma
			v *= cmplx.Rect(gain, phaseErr)
			// Additive thermal noise.
			v += complex(im.rng.NormFloat64()*noiseSigma, im.rng.NormFloat64()*noiseSigma)
			// Impulse noise: amplitude burst comparable to the signal.
			if impulse && sub >= impulseStart && sub < impulseEnd {
				mag := cmplx.Abs(v)
				boost := p.ImpulseMagnitude * mag * (0.6 + 0.8*im.rng.Float64())
				v += cmplx.Rect(boost, im.rng.Float64()*2*math.Pi)
			}
			// Gross outlier: multiplicative blow-up (or collapse).
			if outlier {
				f := p.OutlierMagnitude
				if im.rng.Float64() < 0.5 {
					f = 1 / f
				}
				v *= complex(f, 0)
			}
			row[sub] = v
		}
	}
	if p.QuantBits > 0 {
		quantize(m, p.QuantBits)
	}
	return nil
}

// quantize maps I/Q onto a signed integer grid of the given bit width,
// scaled to the matrix's peak component.
func quantize(m *csi.Matrix, bits int) {
	maxLevel := float64(int(1)<<(bits-1)) - 1
	var peak float64
	for _, row := range m.Values {
		for _, v := range row {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if peak == 0 {
		return
	}
	scale := maxLevel / peak
	for _, row := range m.Values {
		for sub, v := range row {
			row[sub] = complex(
				math.Round(real(v)*scale)/scale,
				math.Round(imag(v)*scale)/scale,
			)
		}
	}
}
