package hardware

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/csi"
	"repro/internal/mathx"
)

func cleanMatrix(t *testing.T, numAnt int) *csi.Matrix {
	t.Helper()
	m, err := csi.NewMatrix(numAnt)
	if err != nil {
		t.Fatal(err)
	}
	for ant := 0; ant < numAnt; ant++ {
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			// A clean channel: unit-ish amplitude, smooth phase across
			// subcarriers, slight per-antenna phase offset (geometry).
			m.Values[ant][sub] = cmplx.Rect(1.0, 0.3+0.01*float64(sub)+0.2*float64(ant))
		}
	}
	return m
}

func TestProfileValidate(t *testing.T) {
	good := DefaultProfile()
	if err := good.Validate(); err != nil {
		t.Errorf("default profile invalid: %v", err)
	}
	bad := good
	bad.ImpulseProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("ImpulseProb > 1 should error")
	}
	bad = good
	bad.PhaseNoiseSigma = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative PhaseNoiseSigma should error")
	}
	bad = good
	bad.QuantBits = 99
	if err := bad.Validate(); err == nil {
		t.Error("excessive QuantBits should error")
	}
}

func TestNewImperfectionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewImperfection(DefaultProfile(), 0, rng); err == nil {
		t.Error("0 antennas should error")
	}
	if _, err := NewImperfection(DefaultProfile(), 2, nil); err == nil {
		t.Error("nil rng should error")
	}
	bad := DefaultProfile()
	bad.OutlierProb = -1
	if _, err := NewImperfection(bad, 2, rng); err == nil {
		t.Error("invalid profile should error")
	}
}

func TestCorruptAntennaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im, err := NewImperfection(DefaultProfile(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := cleanMatrix(t, 2)
	if err := im.Corrupt(m); err == nil {
		t.Error("antenna count mismatch should error")
	}
}

func TestCorruptDeterministic(t *testing.T) {
	run := func() *csi.Matrix {
		rng := rand.New(rand.NewSource(42))
		im, err := NewImperfection(DefaultProfile(), 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		m := cleanMatrix(t, 3)
		if err := im.Corrupt(m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	for ant := range a.Values {
		for sub := range a.Values[ant] {
			if a.Values[ant][sub] != b.Values[ant][sub] {
				t.Fatalf("same seed produced different corruption at %d/%d", ant, sub)
			}
		}
	}
}

// TestRawPhaseUniformAcrossPackets reproduces Fig. 2's grey dots: the raw
// phase at one subcarrier across many packets is spread over the whole
// circle.
func TestRawPhaseUniformAcrossPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im, err := NewImperfection(DefaultProfile(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var phases []float64
	for pkt := 0; pkt < 300; pkt++ {
		m := cleanMatrix(t, 3)
		if err := im.Corrupt(m); err != nil {
			t.Fatal(err)
		}
		ph, err := m.Phase(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, ph)
	}
	if spread := mathx.AngularSpreadDeg(phases); spread < 180 {
		t.Errorf("raw phase spread = %v°, want wide (Fig. 2 grey dots)", spread)
	}
}

// TestPhaseDiffStableAcrossPackets reproduces Fig. 2's red dots: the
// inter-antenna phase difference clusters tightly because CFO/SFO/PBD are
// board-common.
func TestPhaseDiffStableAcrossPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im, err := NewImperfection(DefaultProfile(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var diffs []float64
	for pkt := 0; pkt < 300; pkt++ {
		m := cleanMatrix(t, 3)
		if err := im.Corrupt(m); err != nil {
			t.Fatal(err)
		}
		d, err := m.PhaseDiff(0, 1, 10)
		if err != nil {
			t.Fatal(err)
		}
		diffs = append(diffs, d)
	}
	spread := mathx.AngularSpreadDeg(diffs)
	// Paper: "ranging around 18 degrees".
	if spread > 45 {
		t.Errorf("phase difference spread = %v°, want tight (~18°)", spread)
	}
	if spread < 2 {
		t.Errorf("phase difference spread = %v°, implausibly clean", spread)
	}
}

// TestAmplitudeRatioMoreStableThanAmplitude reproduces Fig. 8: the
// inter-antenna amplitude ratio has lower variance than each antenna's
// amplitude because the per-packet gain jitter is common.
func TestAmplitudeRatioMoreStableThanAmplitude(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	profile := DefaultProfile()
	profile.ImpulseProb = 0 // isolate the gain-jitter effect
	profile.OutlierProb = 0
	im, err := NewImperfection(profile, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var amp0, ratio []float64
	for pkt := 0; pkt < 400; pkt++ {
		m := cleanMatrix(t, 2)
		if err := im.Corrupt(m); err != nil {
			t.Fatal(err)
		}
		a, err := m.Amplitude(0, 12)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.AmplitudeRatio(0, 1, 12)
		if err != nil {
			t.Fatal(err)
		}
		amp0 = append(amp0, a)
		ratio = append(ratio, r)
	}
	// Compare coefficients of variation (scales differ).
	cvAmp := mathx.StdDev(amp0) / mathx.Mean(amp0)
	cvRatio := mathx.StdDev(ratio) / mathx.Mean(ratio)
	if cvRatio >= cvAmp {
		t.Errorf("ratio CV %v not below amplitude CV %v (Fig. 8)", cvRatio, cvAmp)
	}
}

// TestImpulseNoisePresent verifies that impulse events produce amplitude
// excursions comparable to the signal (Fig. 3).
func TestImpulseNoisePresent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	profile := DefaultProfile()
	profile.ImpulseProb = 1 // force impulses
	profile.OutlierProb = 0
	im, err := NewImperfection(profile, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	excursions := 0
	for pkt := 0; pkt < 50; pkt++ {
		m := cleanMatrix(t, 1)
		if err := im.Corrupt(m); err != nil {
			t.Fatal(err)
		}
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			a, err := m.Amplitude(0, sub)
			if err != nil {
				t.Fatal(err)
			}
			if a > 1.5 { // clean amplitude ≈ 1 ± gain jitter
				excursions++
			}
		}
	}
	if excursions == 0 {
		t.Error("forced impulses produced no amplitude excursions")
	}
}

func TestOutliersExceed3Sigma(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	profile := DefaultProfile()
	profile.ImpulseProb = 0
	profile.OutlierProb = 0.05
	im, err := NewImperfection(profile, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	var amps []float64
	for pkt := 0; pkt < 600; pkt++ {
		m := cleanMatrix(t, 1)
		if err := im.Corrupt(m); err != nil {
			t.Fatal(err)
		}
		a, err := m.Amplitude(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		amps = append(amps, a)
	}
	// With 5% outliers at 4x magnitude, some samples must sit outside
	// mean ± 3·(robust sigma).
	med := mathx.Median(amps)
	sigma := mathx.MADStdDev(amps)
	count := 0
	for _, a := range amps {
		if math.Abs(a-med) > 3*sigma {
			count++
		}
	}
	if count < 5 {
		t.Errorf("only %d outliers beyond 3σ, expected plenty", count)
	}
}

func TestQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	profile := DefaultProfile()
	profile.QuantBits = 8
	profile.ImpulseProb = 0
	profile.OutlierProb = 0
	im, err := NewImperfection(profile, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := cleanMatrix(t, 1)
	if err := im.Corrupt(m); err != nil {
		t.Fatal(err)
	}
	// After quantisation all I/Q values are integer multiples of the grid
	// step. Recover the step from the peak.
	var peak float64
	for _, v := range m.Values[0] {
		if a := math.Abs(real(v)); a > peak {
			peak = a
		}
		if a := math.Abs(imag(v)); a > peak {
			peak = a
		}
	}
	step := peak / 127
	for _, v := range m.Values[0] {
		for _, comp := range []float64{real(v), imag(v)} {
			q := comp / step
			if math.Abs(q-math.Round(q)) > 1e-6 {
				t.Fatalf("component %v not on the quantisation grid (step %v)", comp, step)
			}
		}
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	m, err := csi.NewMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	quantize(m, 8) // must not divide by zero
	if m.Values[0][0] != 0 {
		t.Error("zero matrix should stay zero")
	}
}
