package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

// naiveDFT is the O(n²) reference implementation the fast paths are tested
// against.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Rect(1, -2*math.Pi*float64(k*t)/float64(n))
		}
		out[k] = s
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-8*float64(n)) {
			t.Errorf("FFT(n=%d) does not match naive DFT", n)
		}
	}
}

func TestFFTMatchesNaiveDFTNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 7, 12, 30, 100, 127} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-7*float64(n)) {
			t.Errorf("Bluestein FFT(n=%d) does not match naive DFT", n)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT mutated input at %d", i)
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 8, 13, 30, 64, 100} {
		x := randComplex(rng, n)
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-9*float64(n+1)) {
			t.Errorf("IFFT(FFT(x)) != x for n=%d", n)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if FFT(nil) != nil {
		t.Error("FFT(nil) should be nil")
	}
	if IFFT(nil) != nil {
		t.Error("IFFT(nil) should be nil")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	got := FFT(x)
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("FFT(impulse)[%d] = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure complex tone at bin 3 concentrates all energy in that bin.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*3*float64(i)/float64(n))
	}
	got := FFT(x)
	for k, v := range got {
		mag := cmplx.Abs(v)
		if k == 3 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Errorf("bin 3 magnitude = %v, want %d", mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want 0", k, mag)
		}
	}
}

// Property: Parseval's theorem — energy in time equals energy/N in frequency.
func TestFFTParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(100)
		x := randComplex(rng, n)
		spec := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		for i := range spec {
			ef += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		ef /= float64(n)
		if !mathx.AlmostEqual(et, ef, 1e-8) {
			t.Fatalf("Parseval violated for n=%d: %v vs %v", n, et, ef)
		}
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(64)
		a := randComplex(rng, n)
		b := randComplex(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + 2*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+2*fb[i])) > 1e-8*float64(n) {
				t.Fatalf("linearity violated at n=%d bin %d", n, i)
			}
		}
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil || Convolve([]float64{1}, nil) != nil {
		t.Error("Convolve with empty operand should be nil")
	}
}

func TestConvolveFFTPathMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Force the FFT path with a long signal, compare against direct sum.
	a := make([]float64, 300)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := Convolve(a, b) // 300*40 = 12000 > 4096 → FFT path
	want := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			want[i+j] += av * bv
		}
	}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-7) {
			t.Fatalf("FFT convolution diverges from direct at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Property: convolution is commutative.
func TestConvolveCommutativeProperty(t *testing.T) {
	f := func(ra, rb []float64) bool {
		a := sanitize(ra, 50)
		b := sanitize(rb, 50)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for i := range ab {
			if !mathx.AlmostEqual(ab[i], ba[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sanitize(raw []float64, maxLen int) []float64 {
	out := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e3))
		if len(out) == maxLen {
			break
		}
	}
	return out
}

func TestCrossCorrelatePeakAtLag(t *testing.T) {
	// b is a delayed copy of a pattern inside a; the correlation peak should
	// land at the alignment offset.
	pattern := []float64{1, -2, 3, -1}
	a := make([]float64, 20)
	copy(a[7:], pattern)
	r := CrossCorrelate(a, pattern)
	// Peak index in full correlation = delay + len(b) - 1.
	peak := mathx.ArgMax(r)
	if peak != 7+len(pattern)-1 {
		t.Errorf("correlation peak at %d, want %d", peak, 7+len(pattern)-1)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	r, err := PearsonCorrelation(a, b)
	if err != nil || !mathx.AlmostEqual(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v (err %v), want 1", r, err)
	}
	c := []float64{8, 6, 4, 2}
	r, err = PearsonCorrelation(a, c)
	if err != nil || !mathx.AlmostEqual(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v (err %v), want -1", r, err)
	}
	if _, err := PearsonCorrelation(a, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PearsonCorrelation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant input should error")
	}
}

func TestWindowCoefficients(t *testing.T) {
	for _, w := range []Window{WindowRect, WindowHann, WindowHamming, WindowBlackman} {
		t.Run(w.String(), func(t *testing.T) {
			c := w.Coefficients(64)
			if len(c) != 64 {
				t.Fatalf("len = %d", len(c))
			}
			// All windows are bounded by [0, 1] and symmetric.
			for i := range c {
				if c[i] < -1e-12 || c[i] > 1+1e-12 {
					t.Errorf("coefficient %d out of range: %v", i, c[i])
				}
				j := len(c) - 1 - i
				if !mathx.AlmostEqual(c[i], c[j], 1e-9) {
					t.Errorf("asymmetric at %d: %v vs %v", i, c[i], c[j])
				}
			}
		})
	}
	if got := WindowHann.Coefficients(0); got != nil {
		t.Error("n=0 should be nil")
	}
	if got := WindowHann.Coefficients(1); len(got) != 1 || got[0] != 1 {
		t.Error("n=1 should be [1]")
	}
}

func TestHannEndpointsZero(t *testing.T) {
	c := WindowHann.Coefficients(10)
	if c[0] != 0 || !mathx.AlmostEqual(c[9], 0, 1e-12) {
		t.Errorf("Hann endpoints = %v, %v, want 0", c[0], c[9])
	}
}

func TestWindowApply(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	got := WindowRect.Apply(x)
	for i := range got {
		if got[i] != 1 {
			t.Errorf("rect window should be identity, got %v", got)
		}
	}
}

func TestSNRdB(t *testing.T) {
	clean := []float64{1, 1, 1, 1}
	if got := SNRdB(clean, clean); !math.IsInf(got, 1) {
		t.Errorf("identical signals SNR = %v, want +Inf", got)
	}
	noisy := []float64{1.1, 0.9, 1.1, 0.9}
	got := SNRdB(clean, noisy)
	want := 10 * math.Log10(1/0.01)
	if !mathx.AlmostEqual(got, want, 1e-9) {
		t.Errorf("SNR = %v, want %v", got, want)
	}
	if !math.IsNaN(SNRdB(clean, []float64{1})) {
		t.Error("length mismatch should be NaN")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
