package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window functions.
const (
	WindowRect Window = iota + 1
	WindowHann
	WindowHamming
	WindowBlackman
)

// String returns the window's conventional name.
func (w Window) String() string {
	switch w {
	case WindowRect:
		return "rect"
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowBlackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients (symmetric form). n <= 0
// returns nil; n == 1 returns [1].
func (w Window) Coefficients(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		t := float64(i) / den
		switch w {
		case WindowHann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case WindowHamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case WindowBlackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default: // WindowRect and anything unrecognised
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x element-wise by the window coefficients and returns the
// result without mutating x.
func (w Window) Apply(x []float64) []float64 {
	coef := w.Coefficients(len(x))
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * coef[i]
	}
	return out
}

// SNRdB estimates the signal-to-noise ratio in decibels given the clean
// signal and an observed (noisy) version of it. The noise is taken to be the
// element-wise difference. Returns +Inf when the residual is exactly zero
// and NaN when lengths differ or are zero.
func SNRdB(clean, observed []float64) float64 {
	if len(clean) != len(observed) || len(clean) == 0 {
		return math.NaN()
	}
	var ps, pn float64
	for i := range clean {
		ps += clean[i] * clean[i]
		d := observed[i] - clean[i]
		pn += d * d
	}
	if pn == 0 {
		return math.Inf(1)
	}
	if ps == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ps/pn)
}
