package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// Plan precomputes everything a fixed-length DFT needs — stage twiddle
// factors and the bit-reversal shift for power-of-two lengths, plus the
// Bluestein chirp, the transformed chirp filters and convolution scratch
// for other lengths — so that Transform and Inverse run with zero
// steady-state heap allocations.
//
// A Plan owns scratch buffers and is therefore NOT safe for concurrent
// use; create one plan per goroutine (see PooledPlan for a shared cache).
// Results are bit-identical to the one-shot FFT/IFFT functions.
type Plan struct {
	n  int
	r2 *radix2Plan    // non-nil when n is a power of two
	bs *bluesteinPlan // non-nil otherwise
}

// NewPlan returns a plan for transforms of length n (n ≥ 1).
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("dsp: NewPlan length %d, want ≥ 1", n))
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.r2 = newRadix2Plan(n)
	} else {
		p.bs = newBluesteinPlan(n)
	}
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Transform writes the forward DFT of src into dst. Both must have length
// Len(); dst may alias src for an in-place transform.
func (p *Plan) Transform(dst, src []complex128) {
	p.checkLen(dst, src)
	if p.r2 != nil {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		p.r2.transform(dst, false)
		return
	}
	p.bs.transform(dst, src, false)
}

// Inverse writes the inverse DFT of src (normalised by 1/N) into dst. Both
// must have length Len(); dst may alias src.
func (p *Plan) Inverse(dst, src []complex128) {
	p.checkLen(dst, src)
	if p.r2 != nil {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		p.r2.transform(dst, true)
	} else {
		p.bs.transform(dst, src, true)
	}
	inv := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= inv
	}
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("dsp: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
}

// radix2Plan holds the per-stage forward twiddles of an iterative
// Cooley-Tukey FFT, concatenated stage by stage (sizes 2, 4, …, n; n-1
// factors total). Inverse twiddles are the exact conjugates, taken inline.
type radix2Plan struct {
	n     int
	shift uint
	tw    []complex128
}

func newRadix2Plan(n int) *radix2Plan {
	p := &radix2Plan{n: n, shift: 64 - uint(bits.TrailingZeros(uint(n)))}
	if n > 1 {
		p.tw = make([]complex128, 0, n-1)
		for size := 2; size <= n; size <<= 1 {
			half := size / 2
			step := -2 * math.Pi / float64(size)
			for k := 0; k < half; k++ {
				p.tw = append(p.tw, cmplx.Rect(1, step*float64(k)))
			}
		}
	}
	return p
}

// transform runs the unnormalised FFT in place using the precomputed
// twiddles. Matches fftRadix2 bit for bit.
func (p *radix2Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if n <= 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> p.shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	base := 0
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.tw[base+k]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
		base += half
	}
}

// bluesteinPlan caches the chirp sequence, the pre-transformed chirp
// filters (one per direction) and the convolution scratch buffer for an
// arbitrary-length DFT via the chirp-z transform.
type bluesteinPlan struct {
	n, m  int
	r2    *radix2Plan     // length-m kernel for the embedded convolution
	chirp []complex128    // forward chirp exp(-iπk²/n); inverse is the conjugate
	bfft  [2][]complex128 // FFT of the chirp filter: [0] forward, [1] inverse
	a     []complex128    // scratch, length m
}

func newBluesteinPlan(n int) *bluesteinPlan {
	p := &bluesteinPlan{n: n}
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		p.chirp[k] = cmplx.Rect(1, -math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.r2 = newRadix2Plan(m)
	p.a = make([]complex128, m)
	for dir := 0; dir < 2; dir++ {
		b := make([]complex128, m)
		for k := 0; k < n; k++ {
			c := p.chirp[k]
			if dir == 1 {
				c = cmplx.Conj(c)
			}
			b[k] = cmplx.Conj(c)
			if k > 0 {
				b[m-k] = cmplx.Conj(c)
			}
		}
		p.r2.transform(b, false)
		p.bfft[dir] = b
	}
	return p
}

func (p *bluesteinPlan) transform(dst, src []complex128, inverse bool) {
	dir := 0
	if inverse {
		dir = 1
	}
	a := p.a
	for k := 0; k < p.n; k++ {
		c := p.chirp[k]
		if inverse {
			c = cmplx.Conj(c)
		}
		a[k] = src[k] * c
	}
	for k := p.n; k < p.m; k++ {
		a[k] = 0
	}
	p.r2.transform(a, false)
	bf := p.bfft[dir]
	for i := range a {
		a[i] *= bf[i]
	}
	p.r2.transform(a, true)
	invM := complex(1/float64(p.m), 0)
	for k := 0; k < p.n; k++ {
		c := p.chirp[k]
		if inverse {
			c = cmplx.Conj(c)
		}
		dst[k] = a[k] * invM * c
	}
}

// planCache hands out reusable plans keyed by length so the one-shot
// FFT/IFFT wrappers stop re-deriving twiddles and chirps on every call.
var planCache sync.Map // int → *sync.Pool of *Plan

// PooledPlan borrows a plan for length n from the package cache. Return it
// with ReleasePlan when done. Useful when a caller cannot keep a long-lived
// plan but still wants to amortise setup across calls.
func PooledPlan(n int) *Plan {
	v, ok := planCache.Load(n)
	if !ok {
		v, _ = planCache.LoadOrStore(n, &sync.Pool{New: func() any { return NewPlan(n) }})
	}
	return v.(*sync.Pool).Get().(*Plan)
}

// ReleasePlan returns a plan borrowed via PooledPlan to the cache.
func ReleasePlan(p *Plan) {
	if v, ok := planCache.Load(p.n); ok {
		v.(*sync.Pool).Put(p)
	}
}
