// Package dsp provides the core digital-signal-processing primitives the
// WiMi pipeline and its comparison filters are built on: FFT/IFFT for
// arbitrary lengths, convolution, window functions and SNR estimation.
//
// The paper's authors leaned on MATLAB toolboxes; the repro band flags "weak
// DSP libraries" in Go, so everything here is implemented from scratch on
// the standard library only.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. Any length is accepted:
// powers of two use an iterative radix-2 Cooley-Tukey kernel; other lengths
// fall back to Bluestein's chirp-z algorithm. The input is not mutated.
// An empty input returns an empty output.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	p := PooledPlan(n)
	p.Transform(out, x)
	ReleasePlan(p)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, normalised by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	p := PooledPlan(n)
	p.Inverse(out, x)
	ReleasePlan(p)
	return out
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum of the same length.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// fftRadix2 performs an in-place iterative Cooley-Tukey FFT. len(x) must be
// a power of two. When inverse is true the conjugate transform is computed
// (no normalisation).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Rect(1, step*float64(k))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1). Empty inputs yield nil. Short inputs use the
// direct O(n·m) form; longer ones go through the FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	if len(a)*len(b) <= 4096 {
		out := make([]float64, outLen)
		for i, av := range a {
			for j, bv := range b {
				out[i+j] += av * bv
			}
		}
		return out
	}
	m := NextPow2(outLen)
	ca := make([]complex128, m)
	cb := make([]complex128, m)
	for i, v := range a {
		ca[i] = complex(v, 0)
	}
	for i, v := range b {
		cb[i] = complex(v, 0)
	}
	fftRadix2(ca, false)
	fftRadix2(cb, false)
	for i := range ca {
		ca[i] *= cb[i]
	}
	fftRadix2(ca, true)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(ca[i]) / float64(m)
	}
	return out
}

// CrossCorrelate returns the cross-correlation of a with b at every lag
// from -(len(b)-1) to len(a)-1, i.e. Convolve(a, reverse(b)).
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	rb := make([]float64, len(b))
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	return Convolve(a, rb)
}

// PearsonCorrelation returns the Pearson correlation coefficient of a and b,
// which must have the same nonzero length; otherwise an error is returned.
// Constant inputs (zero variance) also produce an error since the
// coefficient is undefined.
func PearsonCorrelation(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("dsp: correlation needs equal nonzero lengths, got %d and %d", len(a), len(b))
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	n := float64(len(a))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("dsp: correlation undefined for constant input")
	}
	return cov / math.Sqrt(va*vb), nil
}
