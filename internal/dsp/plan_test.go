package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// planNaiveDFT is the O(n²) reference the plan is checked against.
func planNaiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += x[t] * cmplx.Rect(1, sign*2*math.Pi*float64(k)*float64(t)/float64(n))
		}
		out[k] = sum
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

func planRandComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestPlanMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 12, 16, 30, 64, 100} {
		x := planRandComplex(n, int64(n))
		p := NewPlan(n)
		if p.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, p.Len())
		}
		fwd := make([]complex128, n)
		p.Transform(fwd, x)
		want := planNaiveDFT(x, false)
		for i := range fwd {
			if cmplx.Abs(fwd[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: Transform[%d] = %v, want %v", n, i, fwd[i], want[i])
			}
		}
		inv := make([]complex128, n)
		p.Inverse(inv, fwd)
		for i := range inv {
			if cmplx.Abs(inv[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: round trip [%d] = %v, want %v", n, i, inv[i], x[i])
			}
		}
	}
}

func TestPlanMatchesFFTBitExact(t *testing.T) {
	// The one-shot FFT/IFFT wrappers delegate to a pooled plan; a private
	// plan must agree with them exactly, not just within tolerance.
	for _, n := range []int{8, 30, 64, 90} {
		x := planRandComplex(n, 42+int64(n))
		p := NewPlan(n)
		got := make([]complex128, n)
		p.Transform(got, x)
		for i, w := range FFT(x) {
			if got[i] != w {
				t.Fatalf("n=%d: Transform[%d] = %v, FFT gives %v", n, i, got[i], w)
			}
		}
		p.Inverse(got, x)
		for i, w := range IFFT(x) {
			if got[i] != w {
				t.Fatalf("n=%d: Inverse[%d] = %v, IFFT gives %v", n, i, got[i], w)
			}
		}
	}
}

func TestPlanInPlace(t *testing.T) {
	for _, n := range []int{16, 30} {
		x := planRandComplex(n, 7)
		want := FFT(x)
		buf := append([]complex128(nil), x...)
		p := NewPlan(n)
		p.Transform(buf, buf)
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("n=%d: in-place Transform[%d] = %v, want %v", n, i, buf[i], want[i])
			}
		}
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	p.Transform(make([]complex128, 8), make([]complex128, 7))
}

// TestPlanTransformZeroAllocs is the steady-state allocation guard: once a
// plan exists, Transform and Inverse must not touch the heap, for both the
// radix-2 and Bluestein code paths.
func TestPlanTransformZeroAllocs(t *testing.T) {
	for _, n := range []int{64, 90} {
		p := NewPlan(n)
		src := planRandComplex(n, 3)
		dst := make([]complex128, n)
		allocs := testing.AllocsPerRun(100, func() {
			p.Transform(dst, src)
			p.Inverse(dst, dst)
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs per Transform+Inverse, want 0", n, allocs)
		}
	}
}

func BenchmarkPlanTransformPow2(b *testing.B) {
	const n = 256
	p := NewPlan(n)
	src := planRandComplex(n, 1)
	dst := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, src)
	}
}

func BenchmarkPlanTransformBluestein(b *testing.B) {
	const n = 90
	p := NewPlan(n)
	src := planRandComplex(n, 1)
	dst := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, src)
	}
}

func BenchmarkFFTOneShotBluestein(b *testing.B) {
	src := planRandComplex(90, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(src)
	}
}
