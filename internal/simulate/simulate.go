// Package simulate assembles the propagation and hardware models into full
// measurement sessions, mirroring the paper's procedure (Sec. IV): capture
// baseline CSI with the empty container on the LoS, pour the liquid, wait
// for it to settle, capture again — one packet every 10 ms.
//
// Everything is driven by an explicit seed: the same scenario and seed
// reproduce the same session bit for bit.
package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/csi"
	"repro/internal/hardware"
	"repro/internal/material"
	"repro/internal/propagation"
)

// PacketInterval is the paper's CSI sampling period ("receive CSI
// measurements every 10 ms").
const PacketInterval = 10 * time.Millisecond

// Scenario describes one measurement setup.
type Scenario struct {
	// Env is the room (hall / lab / library).
	Env propagation.Environment
	// LinkDistance between transmitter and receiver, metres.
	LinkDistance float64
	// Carrier frequency, Hz.
	Carrier float64
	// NumAntennas at the receiver.
	NumAntennas int
	// AntennaSpacing, metres.
	AntennaSpacing float64
	// Liquid inside the container; nil simulates the empty container for
	// both captures (useful for microbenchmarks).
	Liquid *material.Material
	// Container wall material.
	Container material.ContainerMaterial
	// Diameter of the container, metres.
	Diameter float64
	// LateralOffset of the container from the LoS axis, metres.
	LateralOffset float64
	// TargetDriftPerPacket moves the container laterally during a capture
	// (metres per packet) — the Discussion's moving-target failure mode.
	TargetDriftPerPacket float64
	// Interferer is an optional second liquid container elsewhere on the
	// link (Discussion's multi-target limitation). Present in BOTH
	// captures, as someone else's bottle would be.
	Interferer *propagation.Target
	// InterfererPosition places the interferer along the link (fraction of
	// LinkDistance; 0 = default 0.3).
	InterfererPosition float64
	// Packets per capture (the paper settles on 20).
	Packets int
	// RoomSeed fixes the scatterer constellation: all trials of one
	// experiment happen in the same physical room, exactly as the paper's
	// repeated measurements do. Trials vary only in hardware randomness,
	// multipath jitter and container placement.
	RoomSeed int64
	// PlacementJitter is the std-dev (metres) of the per-trial container
	// re-placement error added to LateralOffset.
	PlacementJitter float64
	// Hardware is the NIC impairment profile.
	Hardware hardware.Profile
	// PenetrationWeight and PathScale forward to propagation.Scene
	// (zero = defaults).
	PenetrationWeight float64
	PathScale         float64
}

// Default returns the paper's standard operating point: lab environment,
// 2 m link at 5.32 GHz, three antennas at half-wavelength spacing, the
// 14.3 cm plastic beaker, 20 packets per capture.
func Default() Scenario {
	return Scenario{
		Env:            propagation.EnvLab,
		LinkDistance:   2.0,
		Carrier:        5.32e9,
		NumAntennas:    3,
		AntennaSpacing: 0.028,
		Container:      material.ContainerPlastic,
		Diameter:       0.143,
		LateralOffset:  0.012,
		Packets:        20,
		// The canonical lab room (see experiment.RoomSeedLab).
		RoomSeed:        7,
		PlacementJitter: 0.002,
		Hardware:        hardware.DefaultProfile(),
	}
}

// Validate rejects unusable scenarios.
func (sc Scenario) Validate() error {
	if sc.Packets < 1 {
		return fmt.Errorf("simulate: need at least one packet, got %d", sc.Packets)
	}
	if sc.PlacementJitter < 0 {
		return fmt.Errorf("simulate: negative placement jitter %v", sc.PlacementJitter)
	}
	return sc.scene(nil, sc.LateralOffset).Validate()
}

// scene builds the propagation scene with the given liquid (nil = empty
// container) and the trial's actual container placement.
func (sc Scenario) scene(liquid *material.Material, offset float64) propagation.Scene {
	return propagation.Scene{
		Env:            sc.Env,
		LinkDistance:   sc.LinkDistance,
		NumRxAntennas:  sc.NumAntennas,
		AntennaSpacing: sc.AntennaSpacing,
		Carrier:        sc.Carrier,
		Target: &propagation.Target{
			Liquid:         liquid,
			Container:      sc.Container,
			Diameter:       sc.Diameter,
			LateralOffset:  offset,
			DriftPerPacket: sc.TargetDriftPerPacket,
		},
		Interferer:         sc.Interferer,
		InterfererPosition: sc.InterfererPosition,
		PenetrationWeight:  sc.PenetrationWeight,
		PathScale:          sc.PathScale,
	}
}

// Session generates a complete baseline + target measurement session. The
// scenario's RoomSeed fixes the room; the trial seed drives container
// placement, the hardware's static offsets and every per-packet draw. The
// same (scenario, seed) is fully reproducible.
func Session(sc Scenario, seed int64) (*csi.Session, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	measRng := rand.New(rand.NewSource(seed + 1))
	// Re-placing the container between trials is never perfectly exact.
	offset := sc.LateralOffset + measRng.NormFloat64()*sc.PlacementJitter
	// Thermal SNR falls with link distance (received power ∝ 1/L²); the
	// profile's SNRdB is referenced to the standard 2 m link.
	hw := sc.Hardware
	if sc.LinkDistance > 0 {
		hw.SNRdB -= 20 * math.Log10(sc.LinkDistance/2.0)
	}
	// The room is identical for both captures and across trials: build the
	// channels from the constellation seed. NewChannel consumes random
	// draws only for scatterers, so equal seeds give equal rooms.
	chBase, err := propagation.NewChannel(sc.scene(nil, offset), rand.New(rand.NewSource(sc.RoomSeed)))
	if err != nil {
		return nil, fmt.Errorf("simulate: baseline channel: %w", err)
	}
	chTarget, err := propagation.NewChannel(sc.scene(sc.Liquid, offset), rand.New(rand.NewSource(sc.RoomSeed)))
	if err != nil {
		return nil, fmt.Errorf("simulate: target channel: %w", err)
	}
	imp, err := hardware.NewImperfection(hw, sc.NumAntennas, measRng)
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	session := &csi.Session{Carrier: sc.Carrier}
	epoch := time.Unix(1_700_000_000, 0)
	capture := func(ch *propagation.Channel, start time.Time, seqBase uint32) (csi.Capture, error) {
		var out csi.Capture
		if err := ch.BeginCapture(measRng); err != nil {
			return out, fmt.Errorf("simulate: %w", err)
		}
		// One slab backs the whole capture: the packets keep their matrices
		// (the session owns them), but the capture pays three allocations
		// instead of two per packet.
		mats, err := csi.NewMatrixSlab(sc.NumAntennas, sc.Packets)
		if err != nil {
			return out, fmt.Errorf("simulate: %w", err)
		}
		out.Packets = make([]csi.Packet, 0, sc.Packets)
		for i := 0; i < sc.Packets; i++ {
			m := &mats[i]
			if err := ch.SampleInto(measRng, m); err != nil {
				return out, fmt.Errorf("simulate: packet %d: %w", i, err)
			}
			if err := imp.Corrupt(m); err != nil {
				return out, fmt.Errorf("simulate: packet %d: %w", i, err)
			}
			out.Packets = append(out.Packets, csi.Packet{
				Seq:       seqBase + uint32(i),
				Timestamp: start.Add(time.Duration(i) * PacketInterval),
				Carrier:   sc.Carrier,
				CSI:       m,
			})
		}
		return out, nil
	}
	session.Baseline, err = capture(chBase, epoch, 0)
	if err != nil {
		return nil, err
	}
	// "We wait a few seconds to let tested liquid become stable."
	session.Target, err = capture(chTarget, epoch.Add(5*time.Second), uint32(sc.Packets))
	if err != nil {
		return nil, err
	}
	return session, nil
}

// TrialSet generates n independent sessions of the same scenario (fresh
// seeds derived from base), as in "we repeat collecting the measurements 20
// times".
func TrialSet(sc Scenario, n int, baseSeed int64) ([]*csi.Session, error) {
	if n < 1 {
		return nil, fmt.Errorf("simulate: need at least one trial, got %d", n)
	}
	out := make([]*csi.Session, 0, n)
	for i := 0; i < n; i++ {
		s, err := Session(sc, baseSeed+int64(i)*7919) // distinct seed stride
		if err != nil {
			return nil, fmt.Errorf("simulate: trial %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}
