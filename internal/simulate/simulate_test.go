package simulate

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/propagation"
)

func TestDefaultScenarioValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default scenario invalid: %v", err)
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := Default()
	sc.Packets = 0
	if err := sc.Validate(); err == nil {
		t.Error("zero packets should error")
	}
	sc = Default()
	sc.PlacementJitter = -1
	if err := sc.Validate(); err == nil {
		t.Error("negative placement jitter should error")
	}
	sc = Default()
	sc.LinkDistance = 0
	if err := sc.Validate(); err == nil {
		t.Error("invalid scene should propagate")
	}
}

func TestSessionShape(t *testing.T) {
	sc := Default()
	db := material.PaperDatabase()
	water, err := db.Get(material.PureWater)
	if err != nil {
		t.Fatal(err)
	}
	sc.Liquid = &water
	s, err := Session(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("generated session invalid: %v", err)
	}
	if s.Baseline.Len() != sc.Packets || s.Target.Len() != sc.Packets {
		t.Errorf("capture lengths %d/%d, want %d", s.Baseline.Len(), s.Target.Len(), sc.Packets)
	}
	if s.Baseline.NumAntennas() != 3 {
		t.Errorf("antennas = %d", s.Baseline.NumAntennas())
	}
	// Timestamps advance at the 10 ms packet interval.
	dt := s.Baseline.Packets[1].Timestamp.Sub(s.Baseline.Packets[0].Timestamp)
	if dt != PacketInterval {
		t.Errorf("packet interval = %v", dt)
	}
	// Target capture starts after the settling pause.
	gap := s.Target.Packets[0].Timestamp.Sub(s.Baseline.Packets[0].Timestamp)
	if gap < time.Second {
		t.Errorf("no settling gap between captures: %v", gap)
	}
	// Sequence numbers continue across captures.
	if s.Target.Packets[0].Seq != uint32(sc.Packets) {
		t.Errorf("target seq starts at %d", s.Target.Packets[0].Seq)
	}
}

func TestSessionDeterministic(t *testing.T) {
	sc := Default()
	a, err := Session(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Session(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Baseline.Packets {
		ma, mb := a.Baseline.Packets[i].CSI, b.Baseline.Packets[i].CSI
		for ant := range ma.Values {
			for sub := range ma.Values[ant] {
				if ma.Values[ant][sub] != mb.Values[ant][sub] {
					t.Fatal("same seed produced different sessions")
				}
			}
		}
	}
}

func TestSessionSeedChangesData(t *testing.T) {
	sc := Default()
	a, err := Session(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Session(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Baseline.Packets[0].CSI.Values[0][0] == b.Baseline.Packets[0].CSI.Values[0][0] {
		t.Error("different seeds should differ")
	}
}

func TestSessionRoomSeedSharedAcrossTrials(t *testing.T) {
	// Different trial seeds share the room: with all trial randomness
	// suppressed the channels must coincide.
	sc := Default()
	sc.PlacementJitter = 0
	sc.Env.Jitter = 0
	sc.Hardware.PhaseNoiseSigma = 0
	sc.Hardware.SFOSlopeSigma = 0
	sc.Hardware.CommonGainSigmaDB = 0
	sc.Hardware.SNRdB = 300
	sc.Hardware.ImpulseProb = 0
	sc.Hardware.OutlierProb = 0
	a, err := Session(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Session(sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Compare amplitude (phase still carries the static per-trial antenna
	// offsets and CFO of the hardware model only if enabled — all disabled
	// here except static offsets drawn from the trial rng; compare
	// amplitudes which those offsets do not touch).
	aAmp, err := a.Baseline.AmplitudeSeries(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	bAmp, err := b.Baseline.AmplitudeSeries(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aAmp {
		if diff := aAmp[i] - bAmp[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("room differs across trials: %v vs %v", aAmp[i], bAmp[i])
		}
	}
}

func TestTrialSet(t *testing.T) {
	sc := Default()
	sc.Packets = 3
	trials, err := TrialSet(sc, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 4 {
		t.Fatalf("trials = %d", len(trials))
	}
	// Trials differ from each other.
	if trials[0].Baseline.Packets[0].CSI.Values[0][0] == trials[1].Baseline.Packets[0].CSI.Values[0][0] {
		t.Error("trials should differ")
	}
	if _, err := TrialSet(sc, 0, 1); err == nil {
		t.Error("zero trials should error")
	}
}

func TestSessionEmptyContainerBaselineEqualsTargetStatistically(t *testing.T) {
	// With no liquid, baseline and target differ only by per-packet noise:
	// the mean amplitude at a subcarrier should be close.
	sc := Default()
	sc.Liquid = nil
	sc.Packets = 50
	s, err := Session(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := s.Baseline.AmplitudeSeries(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	at, err := s.Target.AmplitudeSeries(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	var mb, mt float64
	for i := range ab {
		mb += ab[i]
		mt += at[i]
	}
	mb /= float64(len(ab))
	mt /= float64(len(at))
	if ratio := mt / mb; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("empty-container target/baseline amplitude ratio %v, want ≈1", ratio)
	}
}

func TestSessionWithLiquidAttenuates(t *testing.T) {
	db := material.PaperDatabase()
	soy, err := db.Get(material.Soy)
	if err != nil {
		t.Fatal(err)
	}
	sc := Default()
	sc.Env = propagation.Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	sc.Liquid = &soy
	sc.Packets = 30
	s, err := Session(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	var mb, mt float64
	for i := 0; i < s.Baseline.Len(); i++ {
		ab, err := s.Baseline.Packets[i].CSI.Amplitude(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		at, err := s.Target.Packets[i].CSI.Amplitude(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		mb += ab
		mt += at
	}
	if mt >= mb {
		t.Errorf("soy sauce should attenuate: target %v vs baseline %v", mt, mb)
	}
}

// Property: any scenario built from valid ranges simulates successfully and
// produces finite, non-degenerate CSI.
func TestSessionPropertyValidScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	envs := []propagation.Environment{propagation.EnvHall, propagation.EnvLab, propagation.EnvLibrary}
	db := material.PaperDatabase()
	names := db.Names()
	for trial := 0; trial < 15; trial++ {
		sc := Default()
		sc.Env = envs[rng.Intn(len(envs))]
		sc.LinkDistance = 1 + rng.Float64()*2.5
		sc.Packets = 3 + rng.Intn(30)
		sc.Diameter = 0.04 + rng.Float64()*0.12
		sc.LateralOffset = rng.Float64() * 0.03
		sc.RoomSeed = rng.Int63n(1000)
		m, err := db.Get(names[rng.Intn(len(names))])
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
		s, err := Session(sc, rng.Int63n(1_000_000))
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, sc, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid session: %v", trial, err)
		}
		for _, cap := range []*csi.Capture{&s.Baseline, &s.Target} {
			for i := range cap.Packets {
				for ant := range cap.Packets[i].CSI.Values {
					for sub, v := range cap.Packets[i].CSI.Values[ant] {
						re, im := real(v), imag(v)
						if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
							t.Fatalf("trial %d: non-finite CSI at packet %d ant %d sub %d", trial, i, ant, sub)
						}
					}
				}
			}
		}
	}
}
