package core

import (
	"fmt"
	"math"

	"repro/internal/csi"
	"repro/internal/svm"
)

// Minimum-viability floor for degraded-mode identification: below these,
// IdentifyRobust refuses rather than classify garbage. Two live antennas
// are the physical floor (the whole pipeline is built on inter-antenna
// differences); two subcarriers keep the frequency-diversity averaging of
// Eq. 7 meaningful; four packets give the denoiser and circular mean
// something to average.
const (
	MinLiveAntennas    = 2
	MinLiveSubcarriers = 2
	MinPackets         = 4
)

// deadFraction is the fraction of packets an antenna (or subcarrier) must
// be silent in before it is declared dead. Transient per-packet dropouts
// below this are left to the denoiser's sample dropping.
const deadFraction = 0.5

// CaptureHealth summarises what is physically usable in a capture.
type CaptureHealth struct {
	// Packets is the capture length.
	Packets int
	// DeadAntennas lists antennas silent (zero amplitude on every
	// subcarrier) in more than half the packets — dropped RF chains.
	DeadAntennas []int
	// DeadSubcarriers lists subcarriers silent across all live antennas in
	// more than half the packets — notched or unreported bins.
	DeadSubcarriers []int
}

// Healthy reports whether nothing is dead.
func (h CaptureHealth) Healthy() bool {
	return len(h.DeadAntennas) == 0 && len(h.DeadSubcarriers) == 0
}

// DiagnoseCapture scans a capture for dead antennas and dead subcarriers.
func DiagnoseCapture(c *csi.Capture) CaptureHealth {
	h := CaptureHealth{Packets: c.Len()}
	if c.Len() == 0 {
		return h
	}
	numAnt := c.NumAntennas()
	antSilent := make([]int, numAnt)
	for i := range c.Packets {
		m := c.Packets[i].CSI
		for ant := 0; ant < numAnt && ant < m.NumAntennas(); ant++ {
			silent := true
			for _, v := range m.Values[ant] {
				if v != 0 {
					silent = false
					break
				}
			}
			if silent {
				antSilent[ant]++
			}
		}
	}
	dead := make([]bool, numAnt)
	for ant, n := range antSilent {
		if float64(n) > deadFraction*float64(c.Len()) {
			dead[ant] = true
			h.DeadAntennas = append(h.DeadAntennas, ant)
		}
	}
	subSilent := make([]int, csi.NumSubcarriers)
	for i := range c.Packets {
		m := c.Packets[i].CSI
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			silent := true
			for ant := 0; ant < numAnt && ant < m.NumAntennas(); ant++ {
				if dead[ant] {
					continue
				}
				if m.Values[ant][sub] != 0 {
					silent = false
					break
				}
			}
			if silent {
				subSilent[sub]++
			}
		}
	}
	for sub, n := range subSilent {
		if float64(n) > deadFraction*float64(c.Len()) {
			h.DeadSubcarriers = append(h.DeadSubcarriers, sub)
		}
	}
	return h
}

// Degradation reports how far a session sits from a healthy capture and
// what the pipeline fell back to.
type Degradation struct {
	// Degraded is true when anything below deviates from the healthy path.
	Degraded bool
	// DeadAntennas is the union of dead antennas across both captures.
	DeadAntennas []int
	// DeadSubcarriers is the union of dead subcarriers across both captures.
	DeadSubcarriers []int
	// PairsUsed are the antenna pairs features were measured on.
	PairsUsed []AntennaPair
	// PairsImputed are the configured pairs that touched a dead antenna;
	// their feature blocks were hot-deck imputed from the training sample
	// nearest in the measured dimensions, keeping the vector on the
	// training manifold (mean imputation would strand it between classes
	// where the RBF kernel sees nothing).
	PairsImputed []AntennaPair
	// SubcarriersUsed counts the calibrated subcarriers that survived.
	SubcarriersUsed int
	// SubcarriersTotal counts the calibrated subcarriers before exclusion.
	SubcarriersTotal int
	// PacketsReceived is the target capture length; PacketsExpected is what
	// the collection aimed for (0 when unknown — the caller fills it from
	// collection stats).
	PacketsReceived int
	PacketsExpected int
	// ConfidenceScale is the downgrade factor applied to the classifier's
	// confidence: the surviving fraction of pairs times the surviving
	// fraction of subcarriers.
	ConfidenceScale float64
}

// RobustResult is the degraded-mode identification outcome.
type RobustResult struct {
	// Material is the best-matching database material.
	Material string
	// Confidence is the classifier confidence after the degradation
	// downgrade, in [0, 1].
	Confidence float64
	// Degradation reports what the pipeline had to work around.
	Degradation Degradation
}

// ErrBelowViability wraps refusals: the session is too damaged to identify
// honestly (fewer than MinLiveAntennas live antennas, MinLiveSubcarriers
// live calibrated subcarriers, or MinPackets packets per capture).
var ErrBelowViability = fmt.Errorf("core: session below minimum viability")

// IdentifyRobust identifies a session that may be damaged: it detects dead
// antennas and dead subcarriers, restricts measurement to the surviving
// antenna pairs (Sec. III-F pair selection makes the feature per-pair, so
// dropping pairs is natural), hot-deck imputes the missing pair blocks from
// the nearest training sample in the measured dimensions, and returns the
// prediction together with a degradation report
// and a downgraded confidence — instead of an error — down to the
// documented minimum-viability floor.
func (id *Identifier) IdentifyRobust(s *csi.Session) (*RobustResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Baseline.Len() < MinPackets || s.Target.Len() < MinPackets {
		return nil, fmt.Errorf("%w: %d baseline / %d target packets, need ≥ %d",
			ErrBelowViability, s.Baseline.Len(), s.Target.Len(), MinPackets)
	}
	bh := DiagnoseCapture(&s.Baseline)
	th := DiagnoseCapture(&s.Target)
	deadAnts := unionInts(bh.DeadAntennas, th.DeadAntennas)
	deadSubs := unionInts(bh.DeadSubcarriers, th.DeadSubcarriers)

	numAnt := s.Baseline.NumAntennas()
	if numAnt-len(deadAnts) < MinLiveAntennas {
		return nil, fmt.Errorf("%w: %d of %d antennas dead", ErrBelowViability, len(deadAnts), numAnt)
	}
	cfg := id.cfg.Pipeline
	pairs := cfg.Pairs
	if len(pairs) == 0 {
		pairs = AllPairs(numAnt)
	}
	isDeadAnt := map[int]bool{}
	for _, a := range deadAnts {
		isDeadAnt[a] = true
	}
	var surviving, imputed []AntennaPair
	for _, p := range pairs {
		if isDeadAnt[p.A] || isDeadAnt[p.B] {
			imputed = append(imputed, p)
		} else {
			surviving = append(surviving, p)
		}
	}
	if len(surviving) == 0 {
		return nil, fmt.Errorf("%w: no antenna pair avoids a dead antenna", ErrBelowViability)
	}

	// Restrict the calibrated subcarrier set to live bins. An identifier
	// trained by TrainIdentifier always pins ForcedSubcarriers; fall back
	// to fresh selection (excluding dead bins) if the caller built one
	// without.
	good := cfg.ForcedSubcarriers
	if len(good) == 0 {
		fresh, err := SelectGoodSubcarriersSession(s, surviving[0], cfg.GoodSubcarriers)
		if err != nil {
			return nil, err
		}
		good = fresh
	}
	isDeadSub := map[int]bool{}
	for _, sub := range deadSubs {
		isDeadSub[sub] = true
	}
	var liveGood []int
	for _, sub := range good {
		if !isDeadSub[sub] {
			liveGood = append(liveGood, sub)
		}
	}
	if len(liveGood) < MinLiveSubcarriers {
		return nil, fmt.Errorf("%w: %d of %d calibrated subcarriers alive, need ≥ %d",
			ErrBelowViability, len(liveGood), len(good), MinLiveSubcarriers)
	}

	subCfg := cfg
	subCfg.Pairs = surviving
	subCfg.ForcedSubcarriers = liveGood
	feats, err := ExtractFeatures(s, subCfg)
	if err != nil {
		return nil, err
	}

	// Rebuild the classifier's full-width vector in the configured pair
	// order, marking which dimensions were actually measured.
	width := 4
	if cfg.OmegaOnlyFeatures {
		width = 1
	}
	blocks := map[AntennaPair][]float64{}
	for i, p := range surviving {
		blocks[p] = feats.Vector[i*width : (i+1)*width]
	}
	dims := len(pairs) * width
	if mean, _ := id.scaler.Params(); len(mean) != dims {
		return nil, fmt.Errorf("core: identifier expects %d feature dims, session yields %d",
			len(mean), dims)
	}
	liveDim := make([]bool, 0, dims)
	vector := make([]float64, 0, dims)
	for _, p := range pairs {
		if block, ok := blocks[p]; ok {
			vector = append(vector, block...)
			for range block {
				liveDim = append(liveDim, true)
			}
		} else {
			// Placeholder, overwritten after scaling.
			vector = append(vector, make([]float64, width)...)
			for j := 0; j < width; j++ {
				liveDim = append(liveDim, false)
			}
		}
	}
	for i, v := range vector {
		if liveDim[i] && (math.IsNaN(v) || math.IsInf(v, 0)) {
			return nil, fmt.Errorf("core: degraded feature vector has non-finite component %d", i)
		}
	}

	scaled := id.scaler.TransformOne(vector)
	if len(imputed) > 0 {
		// Hot-deck imputation in scaled space: fill the dead pairs' dims
		// from the training sample nearest in the measured dims. Mean
		// imputation fails here — the mean sits between the class clusters,
		// so with most dims imputed the point is far from every training
		// sample, the RBF kernel vanishes, and prediction degenerates to
		// the bias sign. Copying from the nearest neighbour keeps the
		// vector on the training manifold the kernel was fitted to.
		if nn := nearestByMask(id.trainX, scaled, liveDim); nn != nil {
			for j, live := range liveDim {
				if !live {
					scaled[j] = nn[j]
				}
			}
		} else {
			// No stored training set (hand-built identifier): fall back to
			// the scaled mean (zero), which at least stays finite.
			for j, live := range liveDim {
				if !live {
					scaled[j] = 0
				}
			}
		}
	}
	var label string
	confidence := 1.0
	if mc, ok := id.model.(*svm.Multiclass); ok {
		label, confidence = mc.PredictWithConfidence(scaled)
	} else {
		label = id.model.Predict(scaled)
	}

	deg := Degradation{
		DeadAntennas:     deadAnts,
		DeadSubcarriers:  deadSubs,
		PairsUsed:        surviving,
		PairsImputed:     imputed,
		SubcarriersUsed:  len(liveGood),
		SubcarriersTotal: len(good),
		PacketsReceived:  s.Target.Len(),
		ConfidenceScale:  1,
	}
	deg.Degraded = len(imputed) > 0 || len(liveGood) < len(good)
	if deg.Degraded {
		deg.ConfidenceScale = float64(len(surviving)) / float64(len(pairs)) *
			float64(len(liveGood)) / float64(len(good))
		confidence *= deg.ConfidenceScale
	}
	return &RobustResult{Material: label, Confidence: confidence, Degradation: deg}, nil
}

// nearestByMask returns the training vector nearest to x by squared
// Euclidean distance over the dims where mask is true, or nil when the
// training set is empty.
func nearestByMask(trainX [][]float64, x []float64, mask []bool) []float64 {
	var best []float64
	bestD := math.Inf(1)
	for _, t := range trainX {
		if len(t) != len(x) {
			continue
		}
		d := 0.0
		for j, live := range mask {
			if live {
				diff := x[j] - t[j]
				d += diff * diff
			}
		}
		if d < bestD {
			bestD, best = d, t
		}
	}
	return best
}

// unionInts merges two sorted-or-not int slices into a sorted set.
func unionInts(a, b []int) []int {
	set := map[int]struct{}{}
	for _, v := range a {
		set[v] = struct{}{}
	}
	for _, v := range b {
		set[v] = struct{}{}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	// Small sets: insertion sort keeps this dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
