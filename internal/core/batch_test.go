package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/raceflag"
)

// TestIdentifyDetailedBatchPBitIdentical pins the batched serving contract:
// IdentifyDetailedBatchP over any batch size and worker count returns
// exactly what per-session IdentifyDetailedP calls would, including when
// some jobs in the batch fail.
func TestIdentifyDetailedBatchPBitIdentical(t *testing.T) {
	id, sessions := guardIdentifier(t)
	want := make([]core.Detail, len(sessions))
	for i, s := range sessions {
		det, err := id.IdentifyDetailedP(core.NewPipeline(), s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = det
	}
	var bs core.BatchScratch
	for _, workers := range []int{1, 2, 4} {
		for size := 1; size <= len(sessions); size++ {
			batch := sessions[:size]
			pls := make([]*core.Pipeline, size)
			for i := range pls {
				pls[i] = core.NewPipeline()
			}
			dets, errs := id.IdentifyDetailedBatchP(&bs, pls, batch, workers)
			for i := range batch {
				if errs[i] != nil {
					t.Fatalf("workers=%d size=%d job %d: %v", workers, size, i, errs[i])
				}
				if dets[i] != want[i] {
					t.Fatalf("workers=%d size=%d job %d: batch %+v, sequential %+v", workers, size, i, dets[i], want[i])
				}
			}
		}
	}
	// A failing job must not poison its neighbours: slot 1 gets an invalid
	// session, slots 0 and 2 must classify exactly as before.
	mixed := []*csi.Session{sessions[0], {}, sessions[1]}
	pls := []*core.Pipeline{core.NewPipeline(), core.NewPipeline(), core.NewPipeline()}
	dets, errs := id.IdentifyDetailedBatchP(&bs, pls, mixed, 2)
	if errs[1] == nil {
		t.Fatal("invalid session in batch produced no error")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid neighbours errored: %v / %v", errs[0], errs[2])
	}
	if dets[0] != want[0] || dets[2] != want[1] {
		t.Fatalf("neighbours of failed job diverged: %+v / %+v", dets[0], dets[2])
	}
}

// TestIdentifyBatchPZeroAllocSteadyState extends the zero-allocation guard
// to the batch path: a warmed batch scratch plus warmed pipelines identify
// a full micro-batch without heap allocation (workers=1, the serial
// fast-path — the worker fan-out itself allocates goroutine plumbing, which
// the serve tier amortises per batch, not per request).
func TestIdentifyBatchPZeroAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	id, sessions := guardIdentifier(t)
	var bs core.BatchScratch
	pls := make([]*core.Pipeline, len(sessions))
	for i := range pls {
		pls[i] = core.NewPipeline()
	}
	for i := 0; i < 3; i++ { // warm every growable buffer
		_, errs := id.IdentifyDetailedBatchP(&bs, pls, sessions, 1)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		_, errs := id.IdentifyDetailedBatchP(&bs, pls, sessions, 1)
		if errs[0] != nil {
			t.Fatal(errs[0])
		}
	})
	if avg != 0 {
		t.Fatalf("warmed IdentifyDetailedBatchP allocates %.2f times per run, want 0", avg)
	}
}
