package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/classify"
	"repro/internal/dwt"
	"repro/internal/svm"
)

// identifierModel is the serialised form of a trained Identifier.
type identifierModel struct {
	Version  int           `json:"version"`
	Kind     string        `json:"kind"` // "svm" or "knn"
	Pipeline pipelineModel `json:"pipeline"`
	Scaler   scalerModel   `json:"scaler"`
	TrainX   [][]float64   `json:"train_x,omitempty"`
	NNScale  float64       `json:"nn_scale,omitempty"`
	// SVM holds the legacy v1 payload: the bare-JSON svm model embedded
	// directly. Read-only for backward compatibility.
	SVM json.RawMessage `json:"svm,omitempty"`
	// SVMBlob holds the v2 payload: the framed svm model format
	// (magic + version + CRC + training metadata), base64 inside JSON.
	SVMBlob []byte    `json:"svm_blob,omitempty"`
	KNN     *knnModel `json:"knn,omitempty"`
}

type pipelineModel struct {
	GoodSubcarriers   int         `json:"good_subcarriers"`
	ForcedSubcarriers []int       `json:"forced_subcarriers,omitempty"`
	Pairs             []pairModel `json:"pairs,omitempty"`
	Wavelet           string      `json:"wavelet"`
	DenoiseAmplitude  bool        `json:"denoise_amplitude"`
	OmegaOnlyFeatures bool        `json:"omega_only_features"`
	GammaMax          int         `json:"gamma_max"`
	RefAlpha          float64     `json:"ref_alpha"`
	RefDeltaBeta      float64     `json:"ref_delta_beta"`
}

type pairModel struct {
	A int `json:"a"`
	B int `json:"b"`
}

type scalerModel struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type knnModel struct {
	K      int         `json:"k"`
	X      [][]float64 `json:"x"`
	Labels []string    `json:"labels"`
}

// identifierModelVersion is bumped on breaking format changes. Version 2
// embeds the svm ensemble in its framed checksummed format; version 1
// (bare JSON) files remain readable.
const identifierModelVersion = 2

// legacyIdentifierVersion is the pre-frame format.
const legacyIdentifierVersion = 1

// Save serialises a trained identifier (pipeline configuration, feature
// scaler and classifier) as JSON, so a model trained once per room can be
// reused without retraining.
func (id *Identifier) Save(w io.Writer) error {
	p := id.cfg.Pipeline
	waveletName := "db2"
	if p.Wavelet != nil {
		waveletName = p.Wavelet.Name()
	}
	mean, std := id.scaler.Params()
	out := identifierModel{
		Version: identifierModelVersion,
		Pipeline: pipelineModel{
			GoodSubcarriers:   p.GoodSubcarriers,
			ForcedSubcarriers: p.ForcedSubcarriers,
			Wavelet:           waveletName,
			DenoiseAmplitude:  p.DenoiseAmplitude,
			OmegaOnlyFeatures: p.OmegaOnlyFeatures,
			GammaMax:          p.GammaMax,
			RefAlpha:          p.RefAlpha,
			RefDeltaBeta:      p.RefDeltaBeta,
		},
		Scaler:  scalerModel{Mean: mean, Std: std},
		TrainX:  id.trainX,
		NNScale: id.nnScale,
	}
	for _, pr := range p.Pairs {
		out.Pipeline.Pairs = append(out.Pipeline.Pairs, pairModel{A: pr.A, B: pr.B})
	}
	switch model := id.model.(type) {
	case *svm.Multiclass:
		out.Kind = "svm"
		var buf bytes.Buffer
		meta := svm.Meta{
			TrainedAt:   time.Now().UTC().Format(time.RFC3339),
			Samples:     len(id.trainX),
			Note:        "wimi identifier",
			FeatureMean: mean,
			FeatureStd:  std,
		}
		if err := model.SaveWithMeta(&buf, meta); err != nil {
			return fmt.Errorf("core: saving svm: %w", err)
		}
		out.SVMBlob = buf.Bytes()
	case *classify.KNN:
		out.Kind = "knn"
		ds := model.Data()
		out.KNN = &knnModel{K: model.K(), X: ds.X, Labels: ds.Labels}
	default:
		return fmt.Errorf("core: classifier type %T is not serialisable", id.model)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("core: encoding identifier: %w", err)
	}
	return nil
}

// LoadIdentifier reads a model written by Save.
func LoadIdentifier(r io.Reader) (*Identifier, error) {
	var in identifierModel
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding identifier: %w", err)
	}
	if in.Version != identifierModelVersion && in.Version != legacyIdentifierVersion {
		return nil, fmt.Errorf("core: unsupported identifier version %d", in.Version)
	}
	wavelet, err := dwt.ByName(in.Pipeline.Wavelet)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg := IdentifierConfig{
		Pipeline: Config{
			GoodSubcarriers:   in.Pipeline.GoodSubcarriers,
			ForcedSubcarriers: in.Pipeline.ForcedSubcarriers,
			Wavelet:           wavelet,
			DenoiseAmplitude:  in.Pipeline.DenoiseAmplitude,
			OmegaOnlyFeatures: in.Pipeline.OmegaOnlyFeatures,
			GammaMax:          in.Pipeline.GammaMax,
			RefAlpha:          in.Pipeline.RefAlpha,
			RefDeltaBeta:      in.Pipeline.RefDeltaBeta,
		},
	}
	for _, pr := range in.Pipeline.Pairs {
		cfg.Pipeline.Pairs = append(cfg.Pipeline.Pairs, AntennaPair{A: pr.A, B: pr.B})
	}
	if err := cfg.Pipeline.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded pipeline invalid: %w", err)
	}
	scaler, err := classify.NewScalerFromParams(in.Scaler.Mean, in.Scaler.Std)
	if err != nil {
		return nil, fmt.Errorf("core: loaded scaler invalid: %w", err)
	}
	id := &Identifier{cfg: cfg, scaler: scaler, trainX: in.TrainX, nnScale: in.NNScale}
	switch in.Kind {
	case "svm":
		cfg.Kind = ClassifierSVM
		blob := in.SVMBlob
		if len(blob) == 0 {
			blob = []byte(in.SVM) // legacy v1 embeds bare JSON
		}
		if len(blob) == 0 {
			return nil, fmt.Errorf("core: svm model missing payload")
		}
		model, err := svm.LoadMulticlass(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("core: loading svm: %w", err)
		}
		id.model = model
	case "knn":
		cfg.Kind = ClassifierKNN
		if in.KNN == nil {
			return nil, fmt.Errorf("core: knn model missing payload")
		}
		ds := &classify.Dataset{X: in.KNN.X, Labels: in.KNN.Labels}
		model, err := classify.NewKNN(in.KNN.K, ds)
		if err != nil {
			return nil, fmt.Errorf("core: loading knn: %w", err)
		}
		id.model = model
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %q", in.Kind)
	}
	id.cfg = cfg
	return id, nil
}
