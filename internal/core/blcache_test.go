package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/raceflag"
)

// TestBaselineCacheBitIdentical pins the cached-DSP contract: identification
// through a BaselineCache — cold, warm, and across invalidations when the
// cache is re-pointed at a different frozen baseline — returns exactly what
// the uncached path returns, for every probe session.
func TestBaselineCacheBitIdentical(t *testing.T) {
	id, sessions := guardIdentifier(t)
	want := make([]core.Detail, len(sessions))
	for i, s := range sessions {
		det, err := id.IdentifyDetailedP(core.NewPipeline(), s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = det
	}

	// One cache re-pointed across every session (each has its own baseline
	// slice, so every hop is an identity miss), twice over (second pass
	// exercises invalidation back to already-seen baselines), plus repeats
	// on the same session (warm hits).
	var bc core.BaselineCache
	pl := core.NewPipeline()
	for pass := 0; pass < 2; pass++ {
		for i, s := range sessions {
			for rep := 0; rep < 3; rep++ { // rep 0 cold, reps 1-2 warm
				got, err := id.IdentifyDetailedCachedP(pl, s, &bc)
				if err != nil {
					t.Fatal(err)
				}
				if got != want[i] {
					t.Fatalf("pass %d session %d rep %d: cached %+v != uncached %+v",
						pass, i, rep, got, want[i])
				}
			}
		}
	}

	// The cached batch path, caches sparse (some sessions cached, some not),
	// must match too.
	caches := make([]*core.BaselineCache, len(sessions))
	for i := range caches {
		if i%2 == 0 {
			caches[i] = &core.BaselineCache{}
		}
	}
	pls := make([]*core.Pipeline, len(sessions))
	for i := range pls {
		pls[i] = core.NewPipeline()
	}
	var bs core.BatchScratch
	for _, workers := range []int{1, 2} {
		for rep := 0; rep < 2; rep++ {
			dets, errs := id.IdentifyDetailedBatchCachedP(&bs, pls, sessions, caches, workers)
			for i := range sessions {
				if errs[i] != nil {
					t.Fatalf("workers=%d rep=%d job %d: %v", workers, rep, i, errs[i])
				}
				if dets[i] != want[i] {
					t.Fatalf("workers=%d rep=%d job %d: cached batch %+v != uncached %+v",
						workers, rep, i, dets[i], want[i])
				}
			}
		}
	}
}

// TestIdentifyBatchCachedPZeroAllocSteadyState extends the batch allocation
// guard to the cached hub path: warm per-session caches, warmed pipelines
// and scratch identify a full micro-batch with zero heap allocations.
// Wired into `make alloc-guard`.
func TestIdentifyBatchCachedPZeroAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	id, sessions := guardIdentifier(t)
	var bs core.BatchScratch
	pls := make([]*core.Pipeline, len(sessions))
	caches := make([]*core.BaselineCache, len(sessions))
	for i := range pls {
		pls[i] = core.NewPipeline()
		caches[i] = &core.BaselineCache{}
	}
	for i := 0; i < 3; i++ { // warm pipelines, scratch, and every cache
		_, errs := id.IdentifyDetailedBatchCachedP(&bs, pls, sessions, caches, 1)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		_, errs := id.IdentifyDetailedBatchCachedP(&bs, pls, sessions, caches, 1)
		if errs[0] != nil {
			t.Fatal(errs[0])
		}
	})
	if avg != 0 {
		t.Fatalf("warmed cached batch allocates %.2f times per run, want 0", avg)
	}
}
