package core_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/material"
)

func TestIdentifierSaveLoadSVM(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey, material.Oil}, 6)
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadIdentifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Both identifiers must agree on every training session.
	for i, s := range sessions {
		a, err := id.Identify(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Identify(s)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("session %d: original %q, loaded %q", i, a, b)
		}
	}
	_ = labels
}

func TestIdentifierSaveLoadKNN(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey}, 5)
	id, err := core.TrainIdentifier(sessions, labels,
		core.IdentifierConfig{Pipeline: core.DefaultConfig(), Kind: core.ClassifierKNN})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadIdentifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions {
		a, err := id.Identify(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Identify(s)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("session %d: original %q, loaded %q", i, a, b)
		}
	}
}

func TestLoadIdentifierRejectsGarbage(t *testing.T) {
	if _, err := core.LoadIdentifier(strings.NewReader("nope")); err == nil {
		t.Error("non-JSON should error")
	}
	if _, err := core.LoadIdentifier(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("wrong version should error")
	}
	if _, err := core.LoadIdentifier(strings.NewReader(
		`{"version":1,"kind":"oracle","pipeline":{"good_subcarriers":4,"wavelet":"db2","gamma_max":1,"ref_alpha":1,"ref_delta_beta":1},"scaler":{"mean":[0],"std":[1]}}`)); err == nil {
		t.Error("unknown classifier kind should error")
	}
	if _, err := core.LoadIdentifier(strings.NewReader(
		`{"version":1,"kind":"knn","pipeline":{"good_subcarriers":4,"wavelet":"db99","gamma_max":1,"ref_alpha":1,"ref_delta_beta":1},"scaler":{"mean":[0],"std":[1]}}`)); err == nil {
		t.Error("unknown wavelet should error")
	}
	if _, err := core.LoadIdentifier(strings.NewReader(
		`{"version":1,"kind":"knn","pipeline":{"good_subcarriers":4,"wavelet":"db2","gamma_max":1,"ref_alpha":1,"ref_delta_beta":1},"scaler":{"mean":[0],"std":[0]}}`)); err == nil {
		t.Error("zero scaler std should error")
	}
	if _, err := core.LoadIdentifier(strings.NewReader(
		`{"version":1,"kind":"knn","pipeline":{"good_subcarriers":4,"wavelet":"db2","gamma_max":1,"ref_alpha":1,"ref_delta_beta":1},"scaler":{"mean":[0],"std":[1]}}`)); err == nil {
		t.Error("knn without payload should error")
	}
}
