package core

import (
	"fmt"
	"math"

	"repro/internal/csi"
	"repro/internal/mathx"
)

// ExtractAbsoluteFeatures computes the TagScan-style material feature the
// paper argues CANNOT work on commodity Wi-Fi (Sec. III-D): the absolute
// per-antenna phase change Δφ = φ_tar − φ_free and amplitude change
// ΔA = A_tar/A_free of Eqs. 2-4, which on RFID hardware are stable but on
// Wi-Fi are corrupted by the per-packet CFO/SFO/PBD of Eq. 5.
//
// The returned vector holds, per antenna: the circular-mean absolute phase
// change (radians) and ln of the amplitude change, averaged over the same
// good subcarriers the WiMi pipeline would use. It exists as the baseline
// arm of the feature ablation — demonstrating WHY the differential
// (phase-difference / amplitude-ratio) design is necessary.
func ExtractAbsoluteFeatures(s *csi.Session, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var good []int
	if len(cfg.ForcedSubcarriers) > 0 {
		good = cfg.ForcedSubcarriers
	} else {
		var err error
		good, err = SelectGoodSubcarriersSession(s, AntennaPair{A: 0, B: 1}, cfg.GoodSubcarriers)
		if err != nil {
			return nil, err
		}
	}
	numAnt := s.Baseline.NumAntennas()
	out := make([]float64, 0, 2*numAnt)
	for ant := 0; ant < numAnt; ant++ {
		var dphis, damps []float64
		for _, sub := range good {
			pTar, err := meanAbsolutePhase(&s.Target, ant, sub)
			if err != nil {
				return nil, fmt.Errorf("core: absolute feature: %w", err)
			}
			pBase, err := meanAbsolutePhase(&s.Baseline, ant, sub)
			if err != nil {
				return nil, fmt.Errorf("core: absolute feature: %w", err)
			}
			dphis = append(dphis, mathx.AngleDiff(pTar, pBase))
			aTar, err := meanAmplitude(&s.Target, ant, sub, cfg)
			if err != nil {
				return nil, err
			}
			aBase, err := meanAmplitude(&s.Baseline, ant, sub, cfg)
			if err != nil {
				return nil, err
			}
			if aBase <= 0 || aTar <= 0 {
				return nil, fmt.Errorf("core: non-positive amplitude at antenna %d subcarrier %d", ant, sub)
			}
			damps = append(damps, math.Log(aTar/aBase))
		}
		dphi := mathx.CircularMean(dphis)
		if math.IsNaN(dphi) {
			dphi = 0
		}
		out = append(out, dphi, mathx.Mean(damps))
	}
	return out, nil
}

// meanAbsolutePhase is the circular mean of one antenna's raw phase over a
// capture — exactly what an RFID reader would average, applied to Wi-Fi.
func meanAbsolutePhase(c *csi.Capture, ant, sub int) (float64, error) {
	series, err := c.PhaseSeries(ant, sub)
	if err != nil {
		return 0, err
	}
	m := mathx.CircularMean(series)
	if math.IsNaN(m) {
		// Uniformly spread phases (the expected Wi-Fi pathology): report 0
		// rather than NaN so the classifier sees "no information" instead
		// of poisoning the dataset.
		return 0, nil
	}
	return m, nil
}

// meanAmplitude is one antenna's denoised mean amplitude at a subcarrier.
func meanAmplitude(c *csi.Capture, ant, sub int, cfg Config) (float64, error) {
	series, err := c.AmplitudeSeries(ant, sub)
	if err != nil {
		return 0, err
	}
	den, err := DenoiseAmplitudeSeries(series, cfg)
	if err != nil {
		return 0, err
	}
	return mathx.Median(den), nil
}
