package core

import (
	"fmt"
	"sort"

	"repro/internal/csi"
	"repro/internal/mathx"
)

// SubcarrierVariances computes the per-subcarrier variance of the
// inter-antenna phase difference across the packets of a capture — Eq. 7 of
// the paper. Circular variance is used so wrap-around at ±π does not
// inflate the estimate.
func SubcarrierVariances(c *csi.Capture, pair AntennaPair) ([]float64, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("core: empty capture")
	}
	out := make([]float64, csi.NumSubcarriers)
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		series, err := c.PhaseDiffSeries(pair.A, pair.B, sub)
		if err != nil {
			return nil, fmt.Errorf("core: subcarrier %d: %w", sub, err)
		}
		out[sub] = mathx.CircularVariance(series)
	}
	return out, nil
}

// SelectGoodSubcarriers returns the p subcarrier indices with the smallest
// phase-difference variance (ascending variance order) — the selection
// scheme of Sec. III-B / Fig. 6.
func SelectGoodSubcarriers(c *csi.Capture, pair AntennaPair, p int) ([]int, error) {
	if p < 1 || p > csi.NumSubcarriers {
		return nil, fmt.Errorf("core: P=%d outside [1,%d]", p, csi.NumSubcarriers)
	}
	variances, err := SubcarrierVariances(c, pair)
	if err != nil {
		return nil, err
	}
	order := mathx.ArgSort(variances)
	out := append([]int(nil), order[:p]...)
	sort.Ints(out)
	return out, nil
}

// SelectGoodSubcarriersSession selects the p subcarriers with the smallest
// summed phase-difference variance over BOTH captures of a session. Using
// the whole session keeps the selection consistent between the baseline and
// target data (and, in a fixed room, across repeated trials), which the
// feature differencing of Eq. 18 relies on.
func SelectGoodSubcarriersSession(s *csi.Session, pair AntennaPair, p int) ([]int, error) {
	if p < 1 || p > csi.NumSubcarriers {
		return nil, fmt.Errorf("core: P=%d outside [1,%d]", p, csi.NumSubcarriers)
	}
	vb, err := SubcarrierVariances(&s.Baseline, pair)
	if err != nil {
		return nil, fmt.Errorf("core: baseline variances: %w", err)
	}
	vt, err := SubcarrierVariances(&s.Target, pair)
	if err != nil {
		return nil, fmt.Errorf("core: target variances: %w", err)
	}
	combined := make([]float64, len(vb))
	for i := range combined {
		combined[i] = vb[i] + vt[i]
	}
	order := mathx.ArgSort(combined)
	out := append([]int(nil), order[:p]...)
	sort.Ints(out)
	return out, nil
}

// CalibrateSubcarriers selects the p lowest-variance subcarriers by
// aggregating phase-difference variance over MANY sessions of one room —
// the per-environment calibration the paper implies when it reports fixed
// picks ("subcarrier 5, 20, 23, 24 are selected"). A consensus set shared
// by every measurement removes the trial-to-trial feature jitter that
// per-session selection would introduce.
func CalibrateSubcarriers(sessions []*csi.Session, pair AntennaPair, p int) ([]int, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("core: no sessions to calibrate on")
	}
	if p < 1 || p > csi.NumSubcarriers {
		return nil, fmt.Errorf("core: P=%d outside [1,%d]", p, csi.NumSubcarriers)
	}
	total := make([]float64, csi.NumSubcarriers)
	for i, s := range sessions {
		for _, c := range []*csi.Capture{&s.Baseline, &s.Target} {
			v, err := SubcarrierVariances(c, pair)
			if err != nil {
				return nil, fmt.Errorf("core: session %d: %w", i, err)
			}
			for sub := range total {
				total[sub] += v[sub]
			}
		}
	}
	order := mathx.ArgSort(total)
	out := append([]int(nil), order[:p]...)
	sort.Ints(out)
	return out, nil
}

// CalibrationReport quantifies each stage of the phase-calibration cascade
// for one capture — the numbers behind Figs. 2 and 12: raw phase spread
// (expected ≈ full circle), inter-antenna phase-difference spread
// (expected ≈ 18°) and the spread at the best 'good' subcarrier
// (expected ≈ 5°).
type CalibrationReport struct {
	// RawSpreadDeg is the angular spread of the raw phase at a reference
	// subcarrier across packets.
	RawSpreadDeg float64
	// DiffSpreadDeg is the spread of the inter-antenna phase difference at
	// the same subcarrier.
	DiffSpreadDeg float64
	// GoodSpreadDeg is the spread of the phase difference at the selected
	// best subcarrier.
	GoodSpreadDeg float64
	// GoodSubcarriers are the selected subcarrier indices.
	GoodSubcarriers []int
}

// Calibrate runs the full phase-calibration cascade on a capture and
// reports the spread at each stage. refSub is the subcarrier used for the
// raw and difference stages (the paper plots one subcarrier; any index
// works).
func Calibrate(c *csi.Capture, pair AntennaPair, refSub, p int) (*CalibrationReport, error) {
	if refSub < 0 || refSub >= csi.NumSubcarriers {
		return nil, fmt.Errorf("core: reference subcarrier %d out of range", refSub)
	}
	raw, err := c.PhaseSeries(pair.A, refSub)
	if err != nil {
		return nil, fmt.Errorf("core: raw phase: %w", err)
	}
	diff, err := c.PhaseDiffSeries(pair.A, pair.B, refSub)
	if err != nil {
		return nil, fmt.Errorf("core: phase difference: %w", err)
	}
	good, err := SelectGoodSubcarriers(c, pair, p)
	if err != nil {
		return nil, err
	}
	// The best subcarrier is the lowest-variance one among the selected.
	variances, err := SubcarrierVariances(c, pair)
	if err != nil {
		return nil, err
	}
	best := good[0]
	for _, s := range good[1:] {
		if variances[s] < variances[best] {
			best = s
		}
	}
	bestSeries, err := c.PhaseDiffSeries(pair.A, pair.B, best)
	if err != nil {
		return nil, fmt.Errorf("core: best subcarrier series: %w", err)
	}
	return &CalibrationReport{
		RawSpreadDeg:    mathx.AngularSpreadDeg(raw),
		DiffSpreadDeg:   mathx.AngularSpreadDeg(diff),
		GoodSpreadDeg:   mathx.AngularSpreadDeg(bestSeries),
		GoodSubcarriers: good,
	}, nil
}
