package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/csi"
	"repro/internal/dwt"
	"repro/internal/filter"
	"repro/internal/mathx"
	"repro/internal/svm"
)

// Pipeline owns every piece of scratch one end-to-end identification needs —
// phase-difference and amplitude series, 3σ outlier buffers, the wavelet
// workspace, subcarrier-selection variance vectors, the feature backing, the
// scaled classifier input and the SVM vote buffers — so a warmed pipeline
// runs a whole session from CSI matrices to material verdict without a
// single heap allocation.
//
// A Pipeline is NOT safe for concurrent use: keep one per goroutine, or let
// the compatibility wrappers (Identify, ExtractFeatures, ...) borrow one
// from the shared pool per call. Results are bit-identical to the
// allocating path — the pipeline reuses memory, never reorders arithmetic.
//
// Slices returned by pipeline-backed calls (Features from extract, the
// scaled vector) alias pipeline scratch and are valid only until the next
// call on the same pipeline.
type Pipeline struct {
	dws  *dwt.Workspace
	dcfg dwt.DenoiseConfig

	// Per-series scratch of the denoising cascade (Sec. III-C).
	phase      []float64 // inter-antenna phase-difference series
	ampA, ampB []float64 // raw amplitude series of the pair
	clean      []float64 // 3σ-cleaned series (shared by both antennas)
	mask       []bool    // 3σ outlier mask
	denA, denB []float64 // wavelet-denoised series
	ratios     []float64 // per-packet amplitude ratios
	medBuf     []float64 // Median scratch

	// Denoised-amplitude memo, valid for one extractFeatures call: every
	// pair containing an antenna needs the same denoised (antenna,
	// subcarrier) series, so it is computed once per session instead of
	// once per pair. Entries are fixed-stride windows of two flat backings
	// (one per capture side), so a cold pipeline pays a handful of
	// allocations, not one per entry. Valid-flag layout
	// (side*numAnt+ant)*NumSubcarriers+sub with side 0 = target, 1 =
	// baseline.
	ampMemoOK      []bool
	ampMemoTgt     []float64
	ampMemoBase    []float64
	ampMemoAnt     int
	ampMemoTgtLen  int
	ampMemoBaseLen int

	// Per-pair feature scratch (Eqs. 18-21).
	thetas, psis []float64

	// Good-subcarrier selection scratch (Eq. 7).
	varBase, varTarget, combined []float64
	argIdx                       []int
	good                         []int
	pairBuf                      []AntennaPair

	// Output backing: the flat per-subcarrier Ω store all pairs slice into,
	// the Features value extract returns a pointer to, and the classifier
	// input buffers.
	omegaFlat  []float64
	feats      Features
	scaled     []float64
	svmScratch svm.PredictScratch
}

// NewPipeline returns an empty pipeline; buffers grow on first use and are
// retained across calls.
func NewPipeline() *Pipeline { return &Pipeline{dws: dwt.NewWorkspace()} }

// pipePool backs the allocation-compatible wrappers: each wrapped call
// borrows a private pipeline for its duration, so concurrent callers never
// share scratch.
var pipePool = sync.Pool{New: func() any { return NewPipeline() }}

// GetPipeline borrows a pipeline from the shared pool. Return it with
// PutPipeline once every value derived from it has been copied out.
func GetPipeline() *Pipeline { return pipePool.Get().(*Pipeline) }

// PutPipeline returns a pipeline to the shared pool. The caller must hold
// no references into its scratch (Features, scaled vectors) afterwards.
func PutPipeline(p *Pipeline) {
	if p != nil {
		pipePool.Put(p)
	}
}

// growFloats returns buf resized to n without zeroing, reallocating only
// when capacity is insufficient.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// denoiseAmplitude is DenoiseAmplitudeSeries against pipeline scratch: the
// cleaned/mask/wavelet buffers are reused and the result lands in dst
// (grown as needed and returned). dst must not alias series.
func (pl *Pipeline) denoiseAmplitude(dst, series []float64, cfg Config) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("core: empty amplitude series")
	}
	if !cfg.DenoiseAmplitude {
		dst = growFloats(dst, len(series))
		copy(dst, series)
		return dst, nil
	}
	pl.clean, pl.mask = filter.RejectOutliers3SigmaInto(pl.clean, pl.mask, series)
	w := cfg.Wavelet
	if w == nil {
		w = dwt.DB4
	}
	pl.dcfg = dwt.DenoiseConfig{Wavelet: w}
	out, err := pl.dws.DenoiseInto(dst, pl.clean, &pl.dcfg)
	if err != nil {
		return nil, fmt.Errorf("core: wavelet denoise: %w", err)
	}
	return out, nil
}

// resetAmpMemo sizes and invalidates the denoised-amplitude memo for one
// session. Backings are retained across calls and grow to the high-water
// mark.
func (pl *Pipeline) resetAmpMemo(numAnt, tgtLen, baseLen int) {
	n := 2 * numAnt * csi.NumSubcarriers
	if cap(pl.ampMemoOK) < n {
		pl.ampMemoOK = make([]bool, n)
	} else {
		pl.ampMemoOK = pl.ampMemoOK[:n]
		for i := range pl.ampMemoOK {
			pl.ampMemoOK[i] = false
		}
	}
	pl.ampMemoTgt = growFloats(pl.ampMemoTgt, numAnt*csi.NumSubcarriers*tgtLen)
	pl.ampMemoBase = growFloats(pl.ampMemoBase, numAnt*csi.NumSubcarriers*baseLen)
	pl.ampMemoAnt = numAnt
	pl.ampMemoTgtLen = tgtLen
	pl.ampMemoBaseLen = baseLen
}

// denoisedAmpSeries extracts and denoises one antenna's amplitude series at
// one subcarrier, memoised per (side, antenna, subcarrier) within the
// current extraction. Entries are disjoint fixed-stride windows of the
// side's flat backing, so the two sides of a ratio never alias. The
// returned slice is valid until the next extraction resets the memo.
func (pl *Pipeline) denoisedAmpSeries(c *csi.Capture, ant, sub, side int, cfg Config) ([]float64, error) {
	i := (side*pl.ampMemoAnt+ant)*csi.NumSubcarriers + sub
	e := ant*csi.NumSubcarriers + sub
	flat, n := pl.ampMemoTgt, pl.ampMemoTgtLen
	if side == 1 {
		flat, n = pl.ampMemoBase, pl.ampMemoBaseLen
	}
	buf := flat[e*n : (e+1)*n : (e+1)*n]
	if pl.ampMemoOK[i] {
		return buf, nil
	}
	var err error
	pl.ampA, err = c.AmplitudeSeriesInto(pl.ampA, ant, sub)
	if err != nil {
		return nil, fmt.Errorf("core: antenna %d: %w", ant, err)
	}
	out, err := pl.denoiseAmplitude(buf[:0], pl.ampA, cfg)
	if err != nil {
		return nil, err
	}
	copy(buf, out)
	pl.ampMemoOK[i] = true
	return buf, nil
}

// amplitudeRatio mirrors AmplitudeRatio on pipeline scratch. side selects
// the denoised-amplitude memo slot (0 target, 1 baseline); side -1 bypasses
// the memo for callers outside a session extraction (public wrappers).
func (pl *Pipeline) amplitudeRatio(c *csi.Capture, pair AntennaPair, sub int, cfg Config, side int) (float64, error) {
	var denA, denB []float64
	var err error
	if side < 0 {
		pl.ampA, err = c.AmplitudeSeriesInto(pl.ampA, pair.A, sub)
		if err != nil {
			return 0, fmt.Errorf("core: antenna %d: %w", pair.A, err)
		}
		pl.ampB, err = c.AmplitudeSeriesInto(pl.ampB, pair.B, sub)
		if err != nil {
			return 0, fmt.Errorf("core: antenna %d: %w", pair.B, err)
		}
		pl.denA, err = pl.denoiseAmplitude(pl.denA, pl.ampA, cfg)
		if err != nil {
			return 0, err
		}
		pl.denB, err = pl.denoiseAmplitude(pl.denB, pl.ampB, cfg)
		if err != nil {
			return 0, err
		}
		denA, denB = pl.denA, pl.denB
	} else {
		denA, err = pl.denoisedAmpSeries(c, pair.A, sub, side, cfg)
		if err != nil {
			return 0, err
		}
		denB, err = pl.denoisedAmpSeries(c, pair.B, sub, side, cfg)
		if err != nil {
			return 0, err
		}
	}
	pl.ratios = pl.ratios[:0]
	for i := range denA {
		if denB[i] <= 0 {
			continue // a denoised zero: drop the sample rather than divide
		}
		pl.ratios = append(pl.ratios, denA[i]/denB[i])
	}
	if len(pl.ratios) == 0 {
		return 0, fmt.Errorf("core: no usable amplitude samples at subcarrier %d", sub)
	}
	if !cfg.DenoiseAmplitude {
		return mathx.Mean(pl.ratios), nil
	}
	var med float64
	med, pl.medBuf = mathx.MedianBuf(pl.ratios, pl.medBuf)
	return med, nil
}

// meanPhaseDiff mirrors MeanPhaseDiff on pipeline scratch.
func (pl *Pipeline) meanPhaseDiff(c *csi.Capture, pair AntennaPair, sub int) (float64, error) {
	var err error
	pl.phase, err = c.PhaseDiffSeriesInto(pl.phase, pair.A, pair.B, sub)
	if err != nil {
		return 0, err
	}
	m := mathx.CircularMean(pl.phase)
	if m != m { // NaN: balanced phasors
		return 0, fmt.Errorf("core: phase difference has no defined mean at subcarrier %d", sub)
	}
	return m, nil
}

// subcarrierVariancesInto mirrors SubcarrierVariances into a caller buffer.
func (pl *Pipeline) subcarrierVariancesInto(dst []float64, c *csi.Capture, pair AntennaPair) ([]float64, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("core: empty capture")
	}
	dst = growFloats(dst, csi.NumSubcarriers)
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		var err error
		pl.phase, err = c.PhaseDiffSeriesInto(pl.phase, pair.A, pair.B, sub)
		if err != nil {
			return nil, fmt.Errorf("core: subcarrier %d: %w", sub, err)
		}
		dst[sub] = mathx.CircularVariance(pl.phase)
	}
	return dst, nil
}

// selectGoodSubcarriersSession mirrors SelectGoodSubcarriersSession; the
// returned slice is pipeline scratch (pl.good). The baseline half of the
// variance vector reads through bc when a cache is attached.
func (pl *Pipeline) selectGoodSubcarriersSession(s *csi.Session, pair AntennaPair, p int, bc *BaselineCache) ([]int, error) {
	if p < 1 || p > csi.NumSubcarriers {
		return nil, fmt.Errorf("core: P=%d outside [1,%d]", p, csi.NumSubcarriers)
	}
	var err error
	if bc != nil && bc.hasVar && bc.varPair == pair {
		pl.varBase = growFloats(pl.varBase, csi.NumSubcarriers)
		copy(pl.varBase, bc.varBase)
	} else {
		pl.varBase, err = pl.subcarrierVariancesInto(pl.varBase, &s.Baseline, pair)
		if err != nil {
			return nil, fmt.Errorf("core: baseline variances: %w", err)
		}
		if bc != nil {
			bc.varBase = growFloats(bc.varBase, csi.NumSubcarriers)
			copy(bc.varBase, pl.varBase)
			bc.varPair, bc.hasVar = pair, true
		}
	}
	pl.varTarget, err = pl.subcarrierVariancesInto(pl.varTarget, &s.Target, pair)
	if err != nil {
		return nil, fmt.Errorf("core: target variances: %w", err)
	}
	pl.combined = growFloats(pl.combined, len(pl.varBase))
	for i := range pl.combined {
		pl.combined[i] = pl.varBase[i] + pl.varTarget[i]
	}
	pl.argIdx = mathx.ArgSortBuf(pl.combined, pl.argIdx)
	pl.good = append(pl.good[:0], pl.argIdx[:p]...)
	sort.Ints(pl.good)
	return pl.good, nil
}

// extractPairFeature computes Eqs. 18-21 for one antenna pair. omegaDst is
// the (zero-length, pre-capped) window of pl.omegaFlat the pair's
// per-subcarrier Ω values append into. The baseline-side DSP reads through
// bc when a cache is attached.
func (pl *Pipeline) extractPairFeature(s *csi.Session, pair AntennaPair, good []int, cfg Config, omegaDst []float64, bc *BaselineCache) (PairFeature, error) {
	pf := PairFeature{Pair: pair}
	pl.thetas = pl.thetas[:0]
	pl.psis = pl.psis[:0]
	for _, sub := range good {
		// Eq. 18: ΔΘ = (φ̃tar,A − φ̃tar,B) − (φ̃free,A − φ̃free,B).
		tgt, err := pl.meanPhaseDiff(&s.Target, pair, sub)
		if err != nil {
			return pf, err
		}
		base, err := pl.baselineMeanPhaseDiff(s, pair, sub, bc)
		if err != nil {
			return pf, err
		}
		theta := mathx.AngleDiff(tgt, base)
		// Eq. 19: ΔΨ = (Atar,A/Atar,B) · (Afree,B/Afree,A).
		rTgt, err := pl.amplitudeRatio(&s.Target, pair, sub, cfg, 0)
		if err != nil {
			return pf, err
		}
		rBase, err := pl.baselineAmplitudeRatio(s, pair, sub, cfg, bc)
		if err != nil {
			return pf, err
		}
		if rBase == 0 {
			return pf, fmt.Errorf("core: zero baseline amplitude ratio at subcarrier %d", sub)
		}
		psi := rTgt / rBase
		if psi <= 0 {
			return pf, fmt.Errorf("core: non-positive ΔΨ %v at subcarrier %d", psi, sub)
		}
		pl.thetas = append(pl.thetas, theta)
		pl.psis = append(pl.psis, psi)
		omegaDst = append(omegaDst, omegaFrom(theta, psi, cfg))
	}
	pf.PerSubcarrierOmega = omegaDst
	pf.DeltaTheta = mathx.CircularMean(pl.thetas)
	if math.IsNaN(pf.DeltaTheta) {
		pf.DeltaTheta = 0
	}
	pf.DeltaPsi = mathx.Mean(pl.psis)
	pf.Gamma = estimateGamma(pf.DeltaTheta, pf.DeltaPsi, cfg)
	pf.Omega = omegaFrom(pf.DeltaTheta, pf.DeltaPsi, cfg)
	return pf, nil
}

// extractFeatures runs the full WiMi pipeline on a session against pipeline
// scratch. The returned Features (and every slice it holds) aliases the
// pipeline and is valid only until its next use; ExtractFeatures wraps this
// with a deep copy for callers that keep the result.
func (pl *Pipeline) extractFeatures(s *csi.Session, cfg Config) (*Features, error) {
	return pl.extractFeaturesCached(s, cfg, nil)
}

// extractFeaturesCached is extractFeatures with an optional per-appearance
// baseline-feature cache: the baseline side of Eqs. 7/18/19 reads through
// bc, so a warm cache pays DSP only for the target window. Results are
// bit-identical to the uncached path (every cached value is a pure function
// of the keyed baseline).
func (pl *Pipeline) extractFeaturesCached(s *csi.Session, cfg Config, bc *BaselineCache) (*Features, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if bc != nil {
		bc.sync(s, cfg)
	}
	pairs := cfg.Pairs
	numAnt := s.Baseline.NumAntennas()
	if len(pairs) == 0 {
		pl.pairBuf = pl.pairBuf[:0]
		for a := 0; a < numAnt; a++ {
			for b := a + 1; b < numAnt; b++ {
				pl.pairBuf = append(pl.pairBuf, AntennaPair{A: a, B: b})
			}
		}
		pairs = pl.pairBuf
	}
	for _, p := range pairs {
		if p.A >= numAnt || p.B >= numAnt {
			return nil, fmt.Errorf("core: pair %v exceeds %d antennas", p, numAnt)
		}
	}
	pl.resetAmpMemo(numAnt, s.Target.Len(), s.Baseline.Len())
	// Good subcarriers are selected over the whole session with the first
	// pair, so the baseline and target sides of Eq. 18 use the same
	// subcarriers.
	var good []int
	if len(cfg.ForcedSubcarriers) > 0 {
		for _, sub := range cfg.ForcedSubcarriers {
			if sub < 0 || sub >= csi.NumSubcarriers {
				return nil, fmt.Errorf("core: forced subcarrier %d out of range", sub)
			}
		}
		pl.good = append(pl.good[:0], cfg.ForcedSubcarriers...)
		good = pl.good
	} else {
		var err error
		good, err = pl.selectGoodSubcarriersSession(s, pairs[0], cfg.GoodSubcarriers, bc)
		if err != nil {
			return nil, err
		}
	}
	out := &pl.feats
	out.GoodSubcarriers = good
	out.Pairs = out.Pairs[:0]
	out.Vector = out.Vector[:0]
	// Pre-size the flat Ω backing before slicing pair windows out of it:
	// growing it mid-loop would move earlier pairs' windows.
	if cap(pl.omegaFlat) < len(pairs)*len(good) {
		pl.omegaFlat = make([]float64, len(pairs)*len(good))
	}
	for i, pair := range pairs {
		window := pl.omegaFlat[i*len(good) : i*len(good) : (i+1)*len(good)]
		pf, err := pl.extractPairFeature(s, pair, good, cfg, window, bc)
		if err != nil {
			return nil, fmt.Errorf("core: pair %v: %w", pair, err)
		}
		out.Pairs = append(out.Pairs, pf)
		if cfg.OmegaOnlyFeatures {
			out.Vector = append(out.Vector, pf.Omega)
			continue
		}
		num := -math.Log(pf.DeltaPsi)
		den := pf.DeltaTheta + 2*math.Pi*float64(pf.Gamma)
		out.Vector = append(out.Vector, pf.Omega, math.Atan2(num, den), den, num)
	}
	return out, nil
}

// clone deep-copies a pipeline-backed Features so it outlives the pipeline.
func (f *Features) clone() *Features {
	out := &Features{
		GoodSubcarriers: append([]int(nil), f.GoodSubcarriers...),
		Pairs:           append([]PairFeature(nil), f.Pairs...),
		Vector:          append([]float64(nil), f.Vector...),
	}
	for i := range out.Pairs {
		out.Pairs[i].PerSubcarrierOmega = append([]float64(nil), f.Pairs[i].PerSubcarrierOmega...)
	}
	return out
}

// classifyScaled standardises a pipeline-backed feature vector and runs the
// classifier with pipeline scratch, returning label and vote confidence
// (1 for backends without a vote notion).
func (id *Identifier) classifyScaled(pl *Pipeline, vector []float64) (string, float64) {
	pl.scaled = id.scaler.TransformOneInto(pl.scaled, vector)
	if mc, ok := id.model.(*svm.Multiclass); ok {
		return mc.PredictWithConfidenceScratch(pl.scaled, &pl.svmScratch)
	}
	return id.model.Predict(pl.scaled), 1
}

// IdentifyP is Identify against caller-owned pipeline scratch: a warmed
// pipeline classifies with zero steady-state allocation. Results are
// bit-identical to Identify.
func (id *Identifier) IdentifyP(pl *Pipeline, s *csi.Session) (string, error) {
	feats, err := pl.extractFeatures(s, id.cfg.Pipeline)
	if err != nil {
		return "", err
	}
	label, _ := id.classifyScaled(pl, feats.Vector)
	return label, nil
}

// IdentifyWithConfidenceP is IdentifyWithConfidence against caller-owned
// pipeline scratch.
func (id *Identifier) IdentifyWithConfidenceP(pl *Pipeline, s *csi.Session) (string, float64, error) {
	feats, err := pl.extractFeatures(s, id.cfg.Pipeline)
	if err != nil {
		return "", 0, err
	}
	label, conf := id.classifyScaled(pl, feats.Vector)
	return label, conf, nil
}

// IdentifyDetailedP is IdentifyDetailed against caller-owned pipeline
// scratch, returning the Detail by value so the serving hot path allocates
// nothing per request.
func (id *Identifier) IdentifyDetailedP(pl *Pipeline, s *csi.Session) (Detail, error) {
	return id.IdentifyDetailedCachedP(pl, s, nil)
}

// IdentifyDetailedCachedP is IdentifyDetailedP with an optional
// per-appearance BaselineCache (nil behaves exactly like IdentifyDetailedP;
// non-nil skips the baseline-side DSP on a warm cache). Bit-identical
// either way.
func (id *Identifier) IdentifyDetailedCachedP(pl *Pipeline, s *csi.Session, bc *BaselineCache) (Detail, error) {
	feats, err := pl.extractFeaturesCached(s, id.cfg.Pipeline, bc)
	if err != nil {
		return Detail{}, err
	}
	det := Detail{Confidence: 1}
	var omegaSum float64
	for _, pf := range feats.Pairs {
		omegaSum += pf.Omega
	}
	if n := len(feats.Pairs); n > 0 {
		det.Omega = omegaSum / float64(n)
	}
	det.Material, det.Confidence = id.classifyScaled(pl, feats.Vector)
	return det, nil
}

// NoveltyScoreP is NoveltyScore against caller-owned pipeline scratch.
func (id *Identifier) NoveltyScoreP(pl *Pipeline, s *csi.Session) (float64, error) {
	feats, err := pl.extractFeatures(s, id.cfg.Pipeline)
	if err != nil {
		return 0, err
	}
	if len(id.trainX) == 0 || id.nnScale <= 0 {
		return 0, fmt.Errorf("core: identifier has no novelty calibration")
	}
	pl.scaled = id.scaler.TransformOneInto(pl.scaled, feats.Vector)
	return nearestDistance(pl.scaled, id.trainX, -1) / id.nnScale, nil
}
