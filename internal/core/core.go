// Package core implements the WiMi pipeline — the paper's contribution:
//
//  1. CSI phase calibration via inter-antenna phase difference (Sec. III-B,
//     Eqs. 5-6), exploiting that CFO/SFO/PBD are identical across antennas
//     on one board.
//  2. 'Good' subcarrier selection by phase-difference variance across
//     packets (Eq. 7), exploiting frequency diversity against multipath.
//  3. CSI amplitude denoising: 3σ outlier rejection, wavelet-correlation
//     impulse removal (Eqs. 8-13) and the stable inter-antenna amplitude
//     ratio (Sec. III-C).
//  4. The size-independent material feature Ω̄ = −ln ΔΨ / (ΔΘ + 2γπ)
//     (Sec. III-E, Eqs. 18-21) and antenna-pair selection (Sec. III-F).
//  5. Identification against a material database with an SVM (or kNN)
//     classifier.
package core

import (
	"fmt"

	"repro/internal/dwt"
)

// AntennaPair names an ordered pair of receive antennas used for phase
// difference and amplitude ratio.
type AntennaPair struct {
	A, B int
}

// String renders the pair like the paper ("antenna 1,2" is {0,1} here,
// zero-based).
func (p AntennaPair) String() string { return fmt.Sprintf("%d&%d", p.A+1, p.B+1) }

// Config parameterises the pipeline. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// GoodSubcarriers is P, the number of lowest-variance subcarriers kept
	// by the selection scheme (the paper illustrates P = 4).
	GoodSubcarriers int
	// ForcedSubcarriers, when non-empty, bypasses variance-based selection
	// and uses exactly these subcarrier indices (used by the Fig. 13
	// ablation: random vs good subcarriers).
	ForcedSubcarriers []int
	// Pairs are the antenna pairs to extract features from. Empty selects
	// every pair available in the capture.
	Pairs []AntennaPair
	// Wavelet for the correlation denoiser; nil selects DB4.
	Wavelet *dwt.Wavelet
	// DenoiseAmplitude toggles the outlier + impulse removal step (the
	// Fig. 14 ablation turns it off).
	DenoiseAmplitude bool
	// OmegaOnlyFeatures restricts the classifier feature vector to the
	// paper's literal scalar Ω̄ per antenna pair (Eq. 21). The default
	// (false) augments it with the bounded angular form and the raw
	// ΔΘ/−ln ΔΨ components, which is strictly more informative; the
	// restricted mode exists for the Fig. 13 study and the feature-set
	// ablation.
	OmegaOnlyFeatures bool
	// GammaMax bounds the integer γ search of Eq. 20/21.
	GammaMax int
	// RefAlpha and RefDeltaBeta are the coarse reference propagation
	// constants used to estimate γ from the amplitude ratio, per the
	// paper: "γ can be accurately estimated with the coarse CSI amplitude
	// readings". They are EFFECTIVE measurement-scale constants, not raw
	// material constants: indoor multipath mixing inflates the measured
	// −ln ΔΨ relative to the plane-wave theory, so RefAlpha must be
	// calibrated on measured data (the default suits the simulated
	// hardware at the paper's 2 m lab setup).
	RefAlpha, RefDeltaBeta float64
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		// The paper illustrates P = 4; with the simulated hardware the
		// identification accuracy keeps improving up to P ≈ 12 (see the
		// P-sweep ablation bench), so that is the default.
		GoodSubcarriers: 12,
		// 20-packet captures only admit one DB4 decomposition level; DB2's
		// shorter support gives the correlation denoiser two levels and
		// measurably better end-to-end accuracy.
		Wavelet:          dwt.DB2,
		DenoiseAmplitude: true,
		GammaMax:         4,
		RefAlpha:         800, // effective Np/m at measurement scale
		RefDeltaBeta:     850, // rad/m, water-like β_tar − β_free
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.GoodSubcarriers < 1 && len(c.ForcedSubcarriers) == 0:
		return fmt.Errorf("core: need at least one good subcarrier")
	case c.GammaMax < 0:
		return fmt.Errorf("core: negative GammaMax %d", c.GammaMax)
	case c.RefAlpha <= 0 || c.RefDeltaBeta <= 0:
		return fmt.Errorf("core: reference constants must be positive (alpha=%v, dbeta=%v)",
			c.RefAlpha, c.RefDeltaBeta)
	}
	for _, p := range c.Pairs {
		if p.A == p.B || p.A < 0 || p.B < 0 {
			return fmt.Errorf("core: invalid antenna pair %v", p)
		}
	}
	return nil
}
