package core

import (
	"math"
	"testing"

	"repro/internal/csi"
	"repro/internal/dwt"
)

func TestAntennaPairString(t *testing.T) {
	if got := (AntennaPair{A: 0, B: 1}).String(); got != "1&2" {
		t.Errorf("String = %q, want 1&2", got)
	}
	if got := (AntennaPair{A: 1, B: 2}).String(); got != "2&3" {
		t.Errorf("String = %q, want 2&3", got)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.GoodSubcarriers = 0
	if err := bad.Validate(); err == nil {
		t.Error("P=0 without forced subcarriers should error")
	}
	// Forced subcarriers substitute for P.
	bad.ForcedSubcarriers = []int{3, 4}
	if err := bad.Validate(); err != nil {
		t.Errorf("forced subcarriers should satisfy validation: %v", err)
	}
	bad = DefaultConfig()
	bad.GammaMax = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative GammaMax should error")
	}
	bad = DefaultConfig()
	bad.RefAlpha = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero RefAlpha should error")
	}
	bad = DefaultConfig()
	bad.Pairs = []AntennaPair{{A: 1, B: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("degenerate pair should error")
	}
}

func TestAllPairs(t *testing.T) {
	pairs := AllPairs(3)
	want := []AntennaPair{{0, 1}, {0, 2}, {1, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("AllPairs(3) = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], want[i])
		}
	}
	if got := AllPairs(1); len(got) != 0 {
		t.Errorf("AllPairs(1) = %v, want empty", got)
	}
	if got := AllPairs(4); len(got) != 6 {
		t.Errorf("AllPairs(4) has %d pairs, want 6", len(got))
	}
}

func TestEstimateGammaZeroForSmallSignals(t *testing.T) {
	cfg := DefaultConfig()
	// Small phase and amplitude changes: no extra cycles.
	if g := estimateGamma(0.4, 0.95, cfg); g != 0 {
		t.Errorf("gamma = %d, want 0", g)
	}
	if g := estimateGamma(-0.4, 1.05, cfg); g != 0 {
		t.Errorf("gamma = %d, want 0", g)
	}
}

func TestEstimateGammaRecoverWrappedCycle(t *testing.T) {
	cfg := DefaultConfig()
	// Construct a consistent (theta, psi) for a true unwrapped phase of
	// -2π + theta: amplitude implies D̂ = -ln(psi)/RefAlpha and the
	// unwrapped phase -D̂·RefDeltaBeta.
	trueUnwrapped := -5.5 // radians, between -2π and -π
	dHat := -trueUnwrapped / cfg.RefDeltaBeta
	psi := math.Exp(-dHat * cfg.RefAlpha)
	theta := trueUnwrapped + 2*math.Pi // wrapped into (0, π)
	if g := estimateGamma(theta, psi, cfg); g != -1 {
		t.Errorf("gamma = %d, want -1", g)
	}
}

func TestEstimateGammaBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GammaMax = 2
	// Absurd amplitude implying dozens of cycles must clamp.
	if g := estimateGamma(0, 1e-30, cfg); g != -2 && g != 2 {
		if g > 2 || g < -2 {
			t.Errorf("gamma = %d outside ±2", g)
		}
	}
	cfg.GammaMax = 0
	if g := estimateGamma(3, 0.001, cfg); g != 0 {
		t.Errorf("GammaMax=0 should force gamma 0, got %d", g)
	}
}

func TestOmegaFromBasic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GammaMax = 0
	// -ln(0.9)/0.5 ≈ 0.2107.
	got := omegaFrom(0.5, 0.9, cfg)
	want := -math.Log(0.9) / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("omegaFrom = %v, want %v", got, want)
	}
}

func TestOmegaFromClamps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GammaMax = 0
	if got := omegaFrom(1e-12, 0.5, cfg); got != omegaClamp {
		t.Errorf("near-zero denominator should clamp to %v, got %v", omegaClamp, got)
	}
	if got := omegaFrom(0, 1, cfg); got != 0 {
		t.Errorf("0/0 should be 0, got %v", got)
	}
	if got := omegaFrom(0, 0.5, cfg); got != omegaClamp {
		t.Errorf("x/0 should clamp, got %v", got)
	}
}

func TestDenoiseAmplitudeSeriesPassthroughWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DenoiseAmplitude = false
	in := []float64{1, 2, 100, 2, 1}
	out, err := DenoiseAmplitudeSeries(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Error("disabled denoising should pass through")
		}
	}
	out[0] = -1
	if in[0] == -1 {
		t.Error("passthrough must copy")
	}
}

func TestDenoiseAmplitudeSeriesRemovesOutlier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Wavelet = dwt.DB2
	in := make([]float64, 40)
	for i := range in {
		in[i] = 10
	}
	in[7] = 500 // gross outlier
	out, err := DenoiseAmplitudeSeries(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[7]-10) > 3 {
		t.Errorf("outlier survived: %v", out[7])
	}
}

func TestDenoiseAmplitudeSeriesEmpty(t *testing.T) {
	if _, err := DenoiseAmplitudeSeries(nil, DefaultConfig()); err == nil {
		t.Error("empty series should error")
	}
}

func TestSubcarrierVariancesEmptyCapture(t *testing.T) {
	var c csi.Capture
	if _, err := SubcarrierVariances(&c, AntennaPair{0, 1}); err == nil {
		t.Error("empty capture should error")
	}
}

func TestSelectGoodSubcarriersValidation(t *testing.T) {
	var c csi.Capture
	m, _ := csi.NewMatrix(2)
	c.Packets = append(c.Packets, csi.Packet{CSI: m})
	if _, err := SelectGoodSubcarriers(&c, AntennaPair{0, 1}, 0); err == nil {
		t.Error("P=0 should error")
	}
	if _, err := SelectGoodSubcarriers(&c, AntennaPair{0, 1}, 99); err == nil {
		t.Error("P too large should error")
	}
}
