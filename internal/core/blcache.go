package core

import (
	"repro/internal/csi"
	"repro/internal/dwt"
)

// BaselineCache memoises the baseline-side DSP products of one frozen
// baseline capture: the per-(pair,subcarrier) mean phase difference and
// denoised amplitude ratio of Eqs. 18-19, and the baseline half of the
// Eq. 7 subcarrier-variance vector. Within one appearance a sliding-window
// monitor re-identifies against the *identical* baseline every stride, so
// with a warm cache re-identification pays DSP only for the target window.
//
// Identity, not content, keys the cache: the address and length of the
// frozen baseline slice (the segmenter allocates a fresh private copy per
// appearance, and the cache's own pointer pins the array, so an address can
// never be recycled under it) plus the config knobs the cached values
// depend on — resolved wavelet, amplitude-denoise toggle, antenna count. A
// new appearance or a model hot-swap that changes any of these misses and
// resets; every cached value is a pure function of (baseline, key), so
// results are bit-identical to the uncached path.
//
// A BaselineCache is not safe for concurrent use. Keep one per stream (the
// hub does), not per pooled pipeline — pipelines rotate across streams and
// would thrash the key.
type BaselineCache struct {
	keyPkt  *csi.Packet
	keyLen  int
	wavelet *dwt.Wavelet
	denoise bool
	numAnt  int

	// Dense per-(pair,sub) tables, indexed (A*numAnt+B)*NumSubcarriers+sub.
	phase []float64
	ratio []float64
	has   []uint8

	// Baseline half of the Eq. 7 variance vector for one pair (extraction
	// only ever selects with pairs[0]).
	varPair AntennaPair
	varBase []float64
	hasVar  bool
}

const (
	blHasPhase = 1 << iota
	blHasRatio
)

// sync points the cache at s's baseline, resetting every entry when the
// identity key changed and keeping them all when it did not.
func (bc *BaselineCache) sync(s *csi.Session, cfg Config) {
	first := &s.Baseline.Packets[0]
	w := cfg.Wavelet
	if w == nil {
		w = dwt.DB4
	}
	numAnt := s.Baseline.NumAntennas()
	if bc.keyPkt == first && bc.keyLen == len(s.Baseline.Packets) &&
		bc.wavelet == w && bc.denoise == cfg.DenoiseAmplitude && bc.numAnt == numAnt {
		return
	}
	bc.keyPkt, bc.keyLen = first, len(s.Baseline.Packets)
	bc.wavelet, bc.denoise, bc.numAnt = w, cfg.DenoiseAmplitude, numAnt
	n := numAnt * numAnt * csi.NumSubcarriers
	if cap(bc.phase) < n {
		bc.phase = make([]float64, n)
		bc.ratio = make([]float64, n)
		bc.has = make([]uint8, n)
	} else {
		bc.phase = bc.phase[:n]
		bc.ratio = bc.ratio[:n]
		bc.has = bc.has[:n]
		for i := range bc.has {
			bc.has[i] = 0
		}
	}
	bc.hasVar = false
}

func (bc *BaselineCache) slot(pair AntennaPair, sub int) int {
	return (pair.A*bc.numAnt+pair.B)*csi.NumSubcarriers + sub
}

func (bc *BaselineCache) getPhase(pair AntennaPair, sub int) (float64, bool) {
	i := bc.slot(pair, sub)
	return bc.phase[i], bc.has[i]&blHasPhase != 0
}

func (bc *BaselineCache) putPhase(pair AntennaPair, sub int, v float64) {
	i := bc.slot(pair, sub)
	bc.phase[i] = v
	bc.has[i] |= blHasPhase
}

func (bc *BaselineCache) getRatio(pair AntennaPair, sub int) (float64, bool) {
	i := bc.slot(pair, sub)
	return bc.ratio[i], bc.has[i]&blHasRatio != 0
}

func (bc *BaselineCache) putRatio(pair AntennaPair, sub int, v float64) {
	i := bc.slot(pair, sub)
	bc.ratio[i] = v
	bc.has[i] |= blHasRatio
}

// baselineMeanPhaseDiff is meanPhaseDiff over the session baseline, read
// through the cache when one is attached. Errors are never cached: a
// failing baseline recomputes (and fails identically) on every attempt.
func (pl *Pipeline) baselineMeanPhaseDiff(s *csi.Session, pair AntennaPair, sub int, bc *BaselineCache) (float64, error) {
	if bc != nil {
		if v, ok := bc.getPhase(pair, sub); ok {
			return v, nil
		}
	}
	v, err := pl.meanPhaseDiff(&s.Baseline, pair, sub)
	if err == nil && bc != nil {
		bc.putPhase(pair, sub, v)
	}
	return v, err
}

// baselineAmplitudeRatio is amplitudeRatio over the session baseline,
// read through the cache when one is attached.
func (pl *Pipeline) baselineAmplitudeRatio(s *csi.Session, pair AntennaPair, sub int, cfg Config, bc *BaselineCache) (float64, error) {
	if bc != nil {
		if v, ok := bc.getRatio(pair, sub); ok {
			return v, nil
		}
	}
	v, err := pl.amplitudeRatio(&s.Baseline, pair, sub, cfg, 1)
	if err == nil && bc != nil {
		bc.putRatio(pair, sub, v)
	}
	return v, err
}
