package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
)

func TestExtractAbsoluteFeaturesShape(t *testing.T) {
	sessions, _ := liquidSessions(t, []string{material.Milk}, 1)
	vec, err := core.ExtractAbsoluteFeatures(sessions[0], core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 antennas × (Δφ, ln ΔA).
	if len(vec) != 6 {
		t.Fatalf("vector dims = %d, want 6", len(vec))
	}
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("vec[%d] = %v", i, v)
		}
	}
}

func TestExtractAbsoluteFeaturesUnstableAcrossTrials(t *testing.T) {
	// The whole point of Sec. III-D: absolute phase changes are corrupted
	// by per-packet CFO, so across trials they spread over a large range
	// while WiMi's differential features stay tight.
	sessions, _ := liquidSessions(t, []string{material.Milk}, 8)
	cfg := core.DefaultConfig()
	cfg.ForcedSubcarriers = []int{0, 1, 2, 3}
	var absSpread, diffSpread float64
	var absVals, diffVals []float64
	for _, s := range sessions {
		abs, err := core.ExtractAbsoluteFeatures(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		absVals = append(absVals, abs[0]) // antenna 1 absolute Δφ
		feats, err := core.ExtractFeatures(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		diffVals = append(diffVals, feats.Pairs[0].DeltaTheta)
	}
	absSpread = spread(absVals)
	diffSpread = spread(diffVals)
	if absSpread < 3*diffSpread {
		t.Errorf("absolute Δφ spread %v not ≫ differential ΔΘ spread %v", absSpread, diffSpread)
	}
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

func TestExtractAbsoluteFeaturesValidation(t *testing.T) {
	if _, err := core.ExtractAbsoluteFeatures(&csi.Session{}, core.DefaultConfig()); err == nil {
		t.Error("invalid session should error")
	}
	sessions, _ := liquidSessions(t, []string{material.Milk}, 1)
	bad := core.DefaultConfig()
	bad.GoodSubcarriers = 0
	if _, err := core.ExtractAbsoluteFeatures(sessions[0], bad); err == nil {
		t.Error("invalid config should error")
	}
}

func TestExtractAbsoluteFeaturesSelectsSubcarriers(t *testing.T) {
	// Without forced subcarriers the session-level selection path runs.
	db := material.PaperDatabase()
	milk, err := db.Get(material.Milk)
	if err != nil {
		t.Fatal(err)
	}
	sc := simulate.Default()
	sc.Liquid = &milk
	s, err := simulate.Session(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ExtractAbsoluteFeatures(s, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}
