package core

import (
	"fmt"
	"math"

	"repro/internal/csi"
	"repro/internal/mathx"
)

// PairFeature is the material evidence extracted from one antenna pair.
type PairFeature struct {
	Pair AntennaPair
	// DeltaTheta is ΔΘ of Eq. 18: the target-vs-baseline change of the
	// inter-antenna phase difference, averaged over good subcarriers
	// (radians, wrapped).
	DeltaTheta float64
	// DeltaPsi is ΔΨ of Eq. 19: the target-vs-baseline change of the
	// inter-antenna amplitude ratio.
	DeltaPsi float64
	// Gamma is the integer phase-cycle count of Eq. 20, estimated from the
	// coarse amplitude reading.
	Gamma int
	// Omega is the material feature Ω̄ of Eq. 21.
	Omega float64
	// PerSubcarrierOmega holds Ω̄ computed at each good subcarrier
	// individually (same order as GoodSubcarriers of the Features struct).
	PerSubcarrierOmega []float64
}

// Features is the pipeline's full output for one measurement session.
type Features struct {
	// GoodSubcarriers are the selected subcarrier indices.
	GoodSubcarriers []int
	// Pairs holds the per-antenna-pair features.
	Pairs []PairFeature
	// Vector is the flattened feature vector for the classifier. Per
	// antenna pair it holds four size-independent components:
	// Ω̄ (Eq. 21), the bounded angular form atan2(−ln ΔΨ, ΔΘ+2γπ) — the
	// same physical ratio but stable when both parts are near zero (e.g.
	// oil) — and the two parts ΔΘ+2γπ and −ln ΔΨ themselves.
	Vector []float64
}

// clampOmega bounds the feature against blow-ups when ΔΘ ≈ 0 (e.g. a ray
// missing a very small container): the physical range of Ω for liquids is
// well inside ±2.
const omegaClamp = 5.0

// ExtractFeatures runs the full WiMi pipeline on a session: phase
// calibration, good-subcarrier selection, amplitude denoising, and the
// Ω̄ computation of Eqs. 18-21, per antenna pair.
//
// The work runs on a pooled Pipeline and the result is deep-copied out, so
// the returned Features is caller-owned; loops that can hold a Pipeline
// should use (*Pipeline).extractFeatures via the IdentifyP family instead.
func ExtractFeatures(s *csi.Session, cfg Config) (*Features, error) {
	pl := GetPipeline()
	defer PutPipeline(pl)
	feats, err := pl.extractFeatures(s, cfg)
	if err != nil {
		return nil, err
	}
	return feats.clone(), nil
}

// omegaFrom evaluates Eq. 21, Ω̄ = −ln ΔΨ / (ΔΘ + 2γπ), with the γ of
// Eq. 20 estimated from the coarse amplitude reading, clamped to the
// physically meaningful range.
func omegaFrom(theta, psi float64, cfg Config) float64 {
	gamma := estimateGamma(theta, psi, cfg)
	den := theta + 2*math.Pi*float64(gamma)
	num := -math.Log(psi)
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Copysign(omegaClamp, num)
	}
	return mathx.Clamp(num/den, -omegaClamp, omegaClamp)
}

// estimateGamma implements the paper's γ estimation: the amplitude ratio
// gives a coarse path difference D̂ = −ln ΔΨ / α_ref (Eq. 20, amplitude
// side); the phase side then demands ΔΘ + 2γπ ≈ −D̂·Δβ_ref, so γ is the
// nearest integer. Note the sign: with the physical e^{−jβd} convention a
// positive path difference shows up as a NEGATIVE measured phase change.
func estimateGamma(theta, psi float64, cfg Config) int {
	if cfg.GammaMax == 0 {
		return 0
	}
	dHat := -math.Log(psi) / cfg.RefAlpha
	want := -dHat * cfg.RefDeltaBeta
	gamma := int(math.Round((want - theta) / (2 * math.Pi)))
	if gamma > cfg.GammaMax {
		gamma = cfg.GammaMax
	}
	if gamma < -cfg.GammaMax {
		gamma = -cfg.GammaMax
	}
	return gamma
}

// AllPairs enumerates the p(p−1)/2 antenna pairs of a p-antenna receiver
// (Sec. III-F).
func AllPairs(numAnt int) []AntennaPair {
	var out []AntennaPair
	for a := 0; a < numAnt; a++ {
		for b := a + 1; b < numAnt; b++ {
			out = append(out, AntennaPair{A: a, B: b})
		}
	}
	return out
}

// PairStability measures the variance of phase difference and amplitude
// ratio for one pair over a capture, averaged over good subcarriers — the
// quantities of Fig. 10 used to pick the best antenna combination.
type PairStability struct {
	Pair          AntennaPair
	PhaseVariance float64
	RatioVariance float64
}

// RankPairs computes stability for every pair and returns them ordered
// best (most stable) first, combining both variances after normalising
// each to its maximum across pairs.
func RankPairs(c *csi.Capture, good []int, cfg Config) ([]PairStability, error) {
	pairs := cfg.Pairs
	if len(pairs) == 0 {
		pairs = AllPairs(c.NumAntennas())
	}
	if len(good) == 0 {
		return nil, fmt.Errorf("core: no subcarriers to rank pairs over")
	}
	stats := make([]PairStability, 0, len(pairs))
	for _, pair := range pairs {
		var pv, rv float64
		for _, sub := range good {
			pd, err := c.PhaseDiffSeries(pair.A, pair.B, sub)
			if err != nil {
				return nil, err
			}
			pv += mathx.CircularVariance(pd)
			rs, err := c.AmplitudeRatioSeries(pair.A, pair.B, sub)
			if err != nil {
				return nil, err
			}
			rv += mathx.Variance(rs) / (mathx.Mean(rs)*mathx.Mean(rs) + 1e-12)
		}
		stats = append(stats, PairStability{
			Pair:          pair,
			PhaseVariance: pv / float64(len(good)),
			RatioVariance: rv / float64(len(good)),
		})
	}
	// Normalise and sort by the combined score.
	var maxP, maxR float64
	for _, s := range stats {
		if s.PhaseVariance > maxP {
			maxP = s.PhaseVariance
		}
		if s.RatioVariance > maxR {
			maxR = s.RatioVariance
		}
	}
	score := func(s PairStability) float64 {
		out := 0.0
		if maxP > 0 {
			out += s.PhaseVariance / maxP
		}
		if maxR > 0 {
			out += s.RatioVariance / maxR
		}
		return out
	}
	for i := 1; i < len(stats); i++ {
		for j := i; j > 0 && score(stats[j]) < score(stats[j-1]); j-- {
			stats[j], stats[j-1] = stats[j-1], stats[j]
		}
	}
	return stats, nil
}
