package core_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/hardware"
	"repro/internal/material"
	"repro/internal/mathx"
	"repro/internal/propagation"
	"repro/internal/simulate"
)

// cleanScenario returns a low-noise scenario where the pipeline's estimate
// should track ground truth closely.
func cleanScenario(t *testing.T, liquidName string) simulate.Scenario {
	t.Helper()
	sc := simulate.Default()
	sc.Env = propagation.Environment{Name: "anechoic", NumScatterers: 0, RoomHalf: 1}
	sc.Hardware = hardware.Profile{
		PhaseNoiseSigma: 1e-5, SFOSlopeSigma: 0.35, CommonGainSigmaDB: 1e-6,
		SNRdB: 70, ImpulseProb: 0, OutlierProb: 0,
	}
	sc.PlacementJitter = 1e-9
	if liquidName != "" {
		m, err := material.PaperDatabase().Get(liquidName)
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
	}
	return sc
}

func TestExtractFeaturesRecoversOmegaCleanLimit(t *testing.T) {
	// In the anechoic, low-noise limit the measured Ω̄ must match the
	// material's ground-truth Ω for every antenna pair — the end-to-end
	// correctness check of Eqs. 14-21.
	for _, name := range []string{material.PureWater, material.Milk, material.Honey, material.Liquor} {
		sc := cleanScenario(t, name)
		session, err := simulate.Session(sc, 11)
		if err != nil {
			t.Fatal(err)
		}
		feats, err := core.ExtractFeatures(session, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		truth := sc.Liquid.Omega(sc.Carrier)
		for _, pf := range feats.Pairs {
			if math.Abs(pf.Omega-truth) > 0.02 {
				t.Errorf("%s pair %v: Ω̂ = %v, truth %v", name, pf.Pair, pf.Omega, truth)
			}
			if pf.Gamma != 0 {
				t.Errorf("%s pair %v: γ = %d, want 0 at this geometry", name, pf.Pair, pf.Gamma)
			}
		}
	}
}

func TestExtractFeaturesSizeIndependence(t *testing.T) {
	// The headline property (Sec. III-E): Ω̄ must not change when only the
	// container size changes.
	var omegas []float64
	for _, diam := range []float64{0.143, 0.11, 0.089} {
		sc := cleanScenario(t, material.PureWater)
		sc.Diameter = diam
		session, err := simulate.Session(sc, 13)
		if err != nil {
			t.Fatal(err)
		}
		feats, err := core.ExtractFeatures(session, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		omegas = append(omegas, feats.Pairs[0].Omega)
	}
	for i := 1; i < len(omegas); i++ {
		if math.Abs(omegas[i]-omegas[0]) > 0.03 {
			t.Errorf("Ω̄ varies with container size: %v", omegas)
		}
	}
}

func TestExtractFeaturesPathScaleInvariance(t *testing.T) {
	// Ω is a ratio of attenuation to phase change; the effective path scale
	// must cancel (the property that justifies the PathScale substitution).
	var omegas []float64
	for _, scale := range []float64{0.03, 0.05, 0.08} {
		sc := cleanScenario(t, material.Milk)
		sc.PathScale = scale
		session, err := simulate.Session(sc, 17)
		if err != nil {
			t.Fatal(err)
		}
		feats, err := core.ExtractFeatures(session, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		omegas = append(omegas, feats.Pairs[0].Omega)
	}
	for i := 1; i < len(omegas); i++ {
		if math.Abs(omegas[i]-omegas[0]) > 0.02 {
			t.Errorf("Ω̄ varies with path scale: %v", omegas)
		}
	}
}

func TestExtractFeaturesDistinguishesMaterialsCleanly(t *testing.T) {
	measure := func(name string) float64 {
		sc := cleanScenario(t, name)
		session, err := simulate.Session(sc, 19)
		if err != nil {
			t.Fatal(err)
		}
		feats, err := core.ExtractFeatures(session, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return feats.Pairs[0].Omega
	}
	water := measure(material.PureWater)
	oil := measure(material.Oil)
	honey := measure(material.Honey)
	if !(oil > water && water > honey) {
		t.Errorf("Ω ordering broken: oil %v, water %v, honey %v", oil, water, honey)
	}
}

func TestExtractFeaturesVectorShape(t *testing.T) {
	sc := cleanScenario(t, material.PureWater)
	session, err := simulate.Session(sc, 23)
	if err != nil {
		t.Fatal(err)
	}
	feats, err := core.ExtractFeatures(session, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 antennas → 3 pairs × 4 components.
	if len(feats.Pairs) != 3 {
		t.Errorf("pairs = %d, want 3", len(feats.Pairs))
	}
	if len(feats.Vector) != 12 {
		t.Errorf("vector dims = %d, want 12", len(feats.Vector))
	}
	if len(feats.GoodSubcarriers) != core.DefaultConfig().GoodSubcarriers {
		t.Errorf("good subcarriers = %d", len(feats.GoodSubcarriers))
	}
	for i, v := range feats.Vector {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("vector[%d] = %v", i, v)
		}
	}
}

func TestExtractFeaturesForcedSubcarriers(t *testing.T) {
	sc := cleanScenario(t, material.PureWater)
	session, err := simulate.Session(sc, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ForcedSubcarriers = []int{5, 20, 23, 24} // the paper's Fig. 6 picks
	feats, err := core.ExtractFeatures(session, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats.GoodSubcarriers) != 4 {
		t.Fatalf("good = %v", feats.GoodSubcarriers)
	}
	for i, want := range []int{5, 20, 23, 24} {
		if feats.GoodSubcarriers[i] != want {
			t.Errorf("forced subcarrier %d = %d, want %d", i, feats.GoodSubcarriers[i], want)
		}
	}
	cfg.ForcedSubcarriers = []int{99}
	if _, err := core.ExtractFeatures(session, cfg); err == nil {
		t.Error("out-of-range forced subcarrier should error")
	}
}

func TestExtractFeaturesInvalidSession(t *testing.T) {
	if _, err := core.ExtractFeatures(&csi.Session{}, core.DefaultConfig()); err == nil {
		t.Error("empty session should error")
	}
}

func TestExtractFeaturesBadPair(t *testing.T) {
	sc := cleanScenario(t, material.PureWater)
	session, err := simulate.Session(sc, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Pairs = []core.AntennaPair{{A: 0, B: 7}}
	if _, err := core.ExtractFeatures(session, cfg); err == nil {
		t.Error("pair beyond antenna count should error")
	}
}

func TestCalibrationCascade(t *testing.T) {
	// Fig. 2/12: raw spread wide, phase-difference spread ~18°, good
	// subcarriers a few degrees — the ordering must hold with realistic
	// hardware in the lab room.
	sc := simulate.Default()
	sc.Packets = 100
	session, err := simulate.Session(sc, 37)
	if err != nil {
		t.Fatal(err)
	}
	// Reference the cascade against a typical subcarrier: the one with the
	// median phase-difference variance (a fixed index could accidentally be
	// the room's cleanest subcarrier and invert the comparison).
	variances, err := core.SubcarrierVariances(&session.Baseline, core.AntennaPair{A: 0, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := mathx.ArgSort(variances)[csi.NumSubcarriers/2]
	rep, err := core.Calibrate(&session.Baseline, core.AntennaPair{A: 0, B: 1}, ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RawSpreadDeg < 180 {
		t.Errorf("raw spread %v°, want wide", rep.RawSpreadDeg)
	}
	if rep.DiffSpreadDeg >= rep.RawSpreadDeg {
		t.Errorf("phase difference spread %v° not below raw %v°", rep.DiffSpreadDeg, rep.RawSpreadDeg)
	}
	if rep.GoodSpreadDeg > rep.DiffSpreadDeg {
		t.Errorf("good-subcarrier spread %v° not below difference %v°", rep.GoodSpreadDeg, rep.DiffSpreadDeg)
	}
	if len(rep.GoodSubcarriers) != 4 {
		t.Errorf("good subcarriers = %v", rep.GoodSubcarriers)
	}
}

func TestCalibrateValidation(t *testing.T) {
	sc := cleanScenario(t, "")
	session, err := simulate.Session(sc, 41)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Calibrate(&session.Baseline, core.AntennaPair{0, 1}, -1, 4); err == nil {
		t.Error("bad reference subcarrier should error")
	}
}

func TestRankPairsOrdersByStability(t *testing.T) {
	sc := simulate.Default()
	sc.Packets = 60
	session, err := simulate.Session(sc, 43)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.RankPairs(&session.Baseline, []int{5, 10, 15, 20}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	for _, s := range stats {
		if s.PhaseVariance < 0 || s.RatioVariance < 0 {
			t.Errorf("negative variance in %+v", s)
		}
	}
	if _, err := core.RankPairs(&session.Baseline, nil, core.DefaultConfig()); err == nil {
		t.Error("no subcarriers should error")
	}
}

func TestSelectGoodSubcarriersSessionDeterministic(t *testing.T) {
	sc := simulate.Default()
	sc.Packets = 50
	pick := func() []int {
		session, err := simulate.Session(sc, 100)
		if err != nil {
			t.Fatal(err)
		}
		good, err := core.SelectGoodSubcarriersSession(session, core.AntennaPair{0, 1}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return good
	}
	a, b := pick(), pick()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSelectGoodSubcarriersCalibrationConsistency(t *testing.T) {
	// The experiment harness calibrates the subcarrier set once per room
	// from a long capture; repeating that calibration with fresh trial
	// randomness must keep the selection mostly stable. The library (the
	// highest-multipath room, where variance ranking has the most signal)
	// is the environment this matters for.
	// Exact top-P sets can differ between calibrations (many subcarriers
	// have near-tied variance), but the broad good/bad split must agree: a
	// fresh calibration's picks should rank in the better half of the first
	// calibration's ordering.
	sc := simulate.Default()
	sc.Env = propagation.EnvLibrary
	sc.Packets = 400
	variance := func(seed int64) []float64 {
		session, err := simulate.Session(sc, seed)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := core.SubcarrierVariances(&session.Baseline, core.AntennaPair{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		vt, err := core.SubcarrierVariances(&session.Target, core.AntennaPair{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(vb))
		for i := range out {
			out[i] = vb[i] + vt[i]
		}
		return out
	}
	vFirst := variance(500)
	rank := make(map[int]int, csi.NumSubcarriers)
	for pos, sub := range mathx.ArgSort(vFirst) {
		rank[sub] = pos
	}
	session, err := simulate.Session(sc, 501)
	if err != nil {
		t.Fatal(err)
	}
	good, err := core.SelectGoodSubcarriersSession(session, core.AntennaPair{0, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	inBetterHalf := 0
	for _, sub := range good {
		if rank[sub] < csi.NumSubcarriers/2 {
			inBetterHalf++
		}
	}
	if inBetterHalf < 5 {
		t.Errorf("only %d/8 fresh picks in the first calibration's better half (good=%v)", inBetterHalf, good)
	}
}

func TestGoodSubcarriersBeatExcludedOnVariance(t *testing.T) {
	// Selection wiring: the chosen subcarriers must have a lower mean
	// combined variance than the excluded ones.
	sc := simulate.Default()
	sc.Env = propagation.EnvLibrary
	sc.Packets = 100
	session, err := simulate.Session(sc, 900)
	if err != nil {
		t.Fatal(err)
	}
	pair := core.AntennaPair{A: 0, B: 1}
	good, err := core.SelectGoodSubcarriersSession(session, pair, 8)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := core.SubcarrierVariances(&session.Baseline, pair)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := core.SubcarrierVariances(&session.Target, pair)
	if err != nil {
		t.Fatal(err)
	}
	isGood := map[int]bool{}
	for _, s := range good {
		isGood[s] = true
	}
	var gSum, bSum float64
	var gN, bN int
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		v := vb[sub] + vt[sub]
		if isGood[sub] {
			gSum += v
			gN++
		} else {
			bSum += v
			bN++
		}
	}
	if gSum/float64(gN) >= bSum/float64(bN) {
		t.Errorf("selected subcarriers not lower-variance: %v vs %v", gSum/float64(gN), bSum/float64(bN))
	}
}

func TestMeanPhaseDiffStability(t *testing.T) {
	// The circular mean over a capture must be far more stable than single
	// packets (Eq. 6's averaging claim).
	sc := simulate.Default()
	session, err := simulate.Session(sc, 47)
	if err != nil {
		t.Fatal(err)
	}
	series, err := session.Baseline.PhaseDiffSeries(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := core.MeanPhaseDiff(&session.Baseline, core.AntennaPair{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mathx.AngleDiff(mean, mathx.CircularMean(series))) > 1e-9 {
		t.Error("MeanPhaseDiff should be the circular mean of the series")
	}
}

// --- Degraded-mode pipeline (fault tolerance) ---

// zeroAntennaInPlace kills one antenna's RF chain across a capture.
func zeroAntennaInPlace(c *csi.Capture, ant int) {
	for i := range c.Packets {
		m := c.Packets[i].CSI.Clone()
		for sub := range m.Values[ant] {
			m.Values[ant][sub] = 0
		}
		c.Packets[i].CSI = m
	}
}

// zeroSubcarrierInPlace notches one subcarrier across a capture.
func zeroSubcarrierInPlace(c *csi.Capture, sub int) {
	for i := range c.Packets {
		m := c.Packets[i].CSI.Clone()
		for ant := range m.Values {
			m.Values[ant][sub] = 0
		}
		c.Packets[i].CSI = m
	}
}

func TestDiagnoseCapture(t *testing.T) {
	sc := simulate.Default()
	session, err := simulate.Session(sc, 61)
	if err != nil {
		t.Fatal(err)
	}
	if h := core.DiagnoseCapture(&session.Target); !h.Healthy() {
		t.Fatalf("clean capture diagnosed unhealthy: %+v", h)
	}
	zeroAntennaInPlace(&session.Target, 1)
	zeroSubcarrierInPlace(&session.Target, 7)
	h := core.DiagnoseCapture(&session.Target)
	if len(h.DeadAntennas) != 1 || h.DeadAntennas[0] != 1 {
		t.Errorf("dead antennas = %v, want [1]", h.DeadAntennas)
	}
	if len(h.DeadSubcarriers) != 1 || h.DeadSubcarriers[0] != 7 {
		t.Errorf("dead subcarriers = %v, want [7]", h.DeadSubcarriers)
	}
}

// trainSmallIdentifier fits an identifier on a few easy liquids.
func trainSmallIdentifier(t *testing.T, liquids []string, trials int) *core.Identifier {
	t.Helper()
	var sessions []*csi.Session
	var labels []string
	for li, name := range liquids {
		sc := simulate.Default()
		m, err := material.PaperDatabase().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
		set, err := simulate.TrialSet(sc, trials, int64(1000+li*100))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIdentifyRobustDegradedInvariance(t *testing.T) {
	// The degraded-mode invariance check: with one antenna dead across the
	// target capture, the easy liquids must still identify correctly, with
	// a flagged degradation report and finite features throughout.
	id := trainSmallIdentifier(t, []string{material.PureWater, material.Milk}, 4)
	for _, name := range []string{material.PureWater, material.Milk} {
		sc := simulate.Default()
		m, err := material.PaperDatabase().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
		session, err := simulate.Session(sc, 77)
		if err != nil {
			t.Fatal(err)
		}
		zeroAntennaInPlace(&session.Target, 2)
		res, err := id.IdentifyRobust(session)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Material != name {
			t.Errorf("degraded %s identified as %s", name, res.Material)
		}
		d := res.Degradation
		if !d.Degraded {
			t.Errorf("%s: degradation not flagged: %+v", name, d)
		}
		if len(d.DeadAntennas) != 1 || d.DeadAntennas[0] != 2 {
			t.Errorf("%s: dead antennas = %v, want [2]", name, d.DeadAntennas)
		}
		if len(d.PairsUsed) != 1 || (d.PairsUsed[0] != core.AntennaPair{A: 0, B: 1}) {
			t.Errorf("%s: pairs used = %v, want [{0 1}]", name, d.PairsUsed)
		}
		if len(d.PairsImputed) != 2 {
			t.Errorf("%s: imputed pairs = %v, want 2", name, d.PairsImputed)
		}
		if d.ConfidenceScale <= 0 || d.ConfidenceScale >= 1 {
			t.Errorf("%s: confidence scale = %v, want in (0,1)", name, d.ConfidenceScale)
		}
		if res.Confidence <= 0 || res.Confidence > 1 || math.IsNaN(res.Confidence) {
			t.Errorf("%s: confidence = %v", name, res.Confidence)
		}
	}
}

func TestIdentifyRobustCleanSessionNotDegraded(t *testing.T) {
	id := trainSmallIdentifier(t, []string{material.PureWater, material.Milk}, 3)
	sc := simulate.Default()
	session, err := simulate.Session(sc, 83)
	if err != nil {
		t.Fatal(err)
	}
	res, err := id.IdentifyRobust(session)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation.Degraded {
		t.Errorf("clean session flagged degraded: %+v", res.Degradation)
	}
	if res.Degradation.ConfidenceScale != 1 {
		t.Errorf("clean confidence scale = %v", res.Degradation.ConfidenceScale)
	}
	want, err := id.Identify(session)
	if err != nil {
		t.Fatal(err)
	}
	if res.Material != want {
		t.Errorf("robust path %s differs from plain Identify %s on a clean session", res.Material, want)
	}
}

func TestIdentifyRobustBelowViabilityFloor(t *testing.T) {
	id := trainSmallIdentifier(t, []string{material.PureWater, material.Milk}, 3)
	sc := simulate.Default()
	session, err := simulate.Session(sc, 89)
	if err != nil {
		t.Fatal(err)
	}
	// Two of three antennas dead: below the floor.
	zeroAntennaInPlace(&session.Target, 1)
	zeroAntennaInPlace(&session.Target, 2)
	if _, err := id.IdentifyRobust(session); !errors.Is(err, core.ErrBelowViability) {
		t.Errorf("two dead antennas: err = %v, want ErrBelowViability", err)
	}
	// Too few packets: below the floor.
	short, err := simulate.Session(sc, 91)
	if err != nil {
		t.Fatal(err)
	}
	short.Target.Packets = short.Target.Packets[:2]
	if _, err := id.IdentifyRobust(short); !errors.Is(err, core.ErrBelowViability) {
		t.Errorf("2-packet capture: err = %v, want ErrBelowViability", err)
	}
}

func TestIdentifyRobustDeadCalibratedSubcarriers(t *testing.T) {
	// Killing some calibrated subcarriers must degrade, not break; killing
	// almost all of them must refuse.
	id := trainSmallIdentifier(t, []string{material.PureWater, material.Milk}, 3)
	sc := simulate.Default()
	session, err := simulate.Session(sc, 97)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := id.IdentifyRobust(session)
	if err != nil {
		t.Fatal(err)
	}
	good := clean.Degradation.SubcarriersTotal
	if good < 3 {
		t.Fatalf("calibrated subcarrier set too small to test: %d", good)
	}
	// Identify the calibrated set by probing the identifier's config via a
	// fresh extraction-free route: kill every subcarrier except two of the
	// calibrated ones by brute force — notch bins until only 2 usable.
	res := clean
	killed := 0
	for sub := 0; sub < csi.NumSubcarriers && res.Degradation.SubcarriersUsed > 2; sub++ {
		zeroSubcarrierInPlace(&session.Target, sub)
		killed++
		res, err = id.IdentifyRobust(session)
		if err != nil {
			t.Fatalf("after notching %d bins: %v", killed, err)
		}
	}
	if res.Degradation.SubcarriersUsed != 2 || !res.Degradation.Degraded {
		t.Fatalf("degradation = %+v, want 2 live subcarriers flagged", res.Degradation)
	}
	// One more calibrated kill drops below the floor.
	for sub := 0; sub < csi.NumSubcarriers; sub++ {
		zeroSubcarrierInPlace(&session.Target, sub)
	}
	if _, err := id.IdentifyRobust(session); !errors.Is(err, core.ErrBelowViability) {
		t.Errorf("all subcarriers dead: err = %v, want ErrBelowViability", err)
	}
}
