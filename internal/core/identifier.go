package core

import (
	"fmt"
	"math"

	"repro/internal/classify"
	"repro/internal/csi"
	"repro/internal/mathx"
	"repro/internal/svm"
)

// ClassifierKind selects the classification backend.
type ClassifierKind int

// Supported classifier backends.
const (
	// ClassifierSVM is the paper's choice (Sec. III-E).
	ClassifierSVM ClassifierKind = iota + 1
	// ClassifierKNN is the ablation baseline.
	ClassifierKNN
)

// IdentifierConfig parameterises training.
type IdentifierConfig struct {
	// Pipeline is the feature-extraction configuration.
	Pipeline Config
	// Kind selects the backend; zero selects the SVM.
	Kind ClassifierKind
	// SVM configures SMO training (zero value = defaults).
	SVM svm.Config
	// RBFGamma sets the RBF kernel width; zero selects 1 (features are
	// standardised, so 1 is a sensible default).
	RBFGamma float64
	// AutoTune, when set with the SVM backend, grid-searches (C, γ) with
	// 4-fold cross-validation over the training features before the final
	// fit, overriding RBFGamma and SVM.C.
	AutoTune bool
	// KNNNeighbors sets k for the kNN backend; zero selects 3.
	KNNNeighbors int
}

func (c IdentifierConfig) withDefaults() IdentifierConfig {
	if c.Kind == 0 {
		c.Kind = ClassifierSVM
	}
	if c.RBFGamma == 0 {
		c.RBFGamma = 1
	}
	if c.KNNNeighbors == 0 {
		c.KNNNeighbors = 3
	}
	return c
}

// Identifier is a trained material identifier: the "material database"
// (feature statistics captured in the trained classifier) plus the
// classifier itself.
type Identifier struct {
	cfg    IdentifierConfig
	scaler *classify.Scaler
	model  classify.Classifier
	// trainX holds the scaled training features and nnScale the median
	// leave-one-out nearest-neighbour distance among them — the calibration
	// for distance-based novelty scores (open-set rejection).
	trainX  [][]float64
	nnScale float64
}

// TrainIdentifier extracts features from every labelled session and fits
// the classifier. Sessions must all have the same antenna configuration.
func TrainIdentifier(sessions []*csi.Session, labels []string, cfg IdentifierConfig) (*Identifier, error) {
	if len(sessions) == 0 || len(sessions) != len(labels) {
		return nil, fmt.Errorf("core: need matching non-empty sessions (%d) and labels (%d)",
			len(sessions), len(labels))
	}
	cfg = cfg.withDefaults()
	// Room calibration: unless the caller pinned a subcarrier set, derive a
	// consensus set from ALL training sessions and fix it, so training and
	// later identification use identical subcarriers.
	if len(cfg.Pipeline.ForcedSubcarriers) == 0 {
		pairs := cfg.Pipeline.Pairs
		if len(pairs) == 0 {
			pairs = AllPairs(sessions[0].Baseline.NumAntennas())
		}
		if len(pairs) == 0 {
			return nil, fmt.Errorf("core: no antenna pairs available")
		}
		good, err := CalibrateSubcarriers(sessions, pairs[0], cfg.Pipeline.GoodSubcarriers)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating subcarriers: %w", err)
		}
		cfg.Pipeline.ForcedSubcarriers = good
	}
	ds := &classify.Dataset{}
	for i, s := range sessions {
		feats, err := ExtractFeatures(s, cfg.Pipeline)
		if err != nil {
			return nil, fmt.Errorf("core: session %d (%s): %w", i, labels[i], err)
		}
		ds.Append(feats.Vector, labels[i])
	}
	return TrainIdentifierOnFeatures(ds, cfg)
}

// TrainIdentifierOnFeatures fits the classifier on pre-extracted feature
// vectors — the entry point experiments use after batch feature extraction.
func TrainIdentifierOnFeatures(ds *classify.Dataset, cfg IdentifierConfig) (*Identifier, error) {
	cfg = cfg.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("core: training data: %w", err)
	}
	scaler, err := classify.FitScaler(ds.X)
	if err != nil {
		return nil, fmt.Errorf("core: fitting scaler: %w", err)
	}
	scaled := &classify.Dataset{X: scaler.Transform(ds.X), Labels: ds.Labels}
	id := &Identifier{cfg: cfg, scaler: scaler, trainX: scaled.X}
	id.nnScale = looNNMedian(scaled.X)
	switch cfg.Kind {
	case ClassifierSVM:
		gamma := cfg.RBFGamma
		svmCfg := cfg.SVM
		if cfg.AutoTune {
			tuned, err := svm.TuneRBF(scaled.X, scaled.Labels, svm.DefaultGrid(), 4, svmCfg.Seed+1, svmCfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("core: tuning SVM: %w", err)
			}
			gamma = tuned.Best.Gamma
			svmCfg.C = tuned.Best.C
		}
		model, err := svm.TrainMulticlass(scaled.X, scaled.Labels,
			svm.RBFKernel{Gamma: gamma}, svmCfg)
		if err != nil {
			return nil, fmt.Errorf("core: training SVM: %w", err)
		}
		id.model = model
	case ClassifierKNN:
		model, err := classify.NewKNN(cfg.KNNNeighbors, scaled)
		if err != nil {
			return nil, fmt.Errorf("core: training kNN: %w", err)
		}
		id.model = model
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %d", cfg.Kind)
	}
	return id, nil
}

// Identify runs the pipeline on a session and returns the predicted
// material name. It borrows scratch from the shared pipeline pool; loops
// should hold their own Pipeline and call IdentifyP.
func (id *Identifier) Identify(s *csi.Session) (string, error) {
	pl := GetPipeline()
	defer PutPipeline(pl)
	return id.IdentifyP(pl, s)
}

// IdentifyFeatures classifies a pre-extracted feature vector.
func (id *Identifier) IdentifyFeatures(vector []float64) string {
	return id.model.Predict(id.scaler.TransformOne(vector))
}

// IdentifyWithConfidence returns the best-matching database material and a
// confidence in [0, 1]. Confidence comes from the SVM's pairwise vote share
// (kNN backends report 1: vote-share confidence is undefined there).
func (id *Identifier) IdentifyWithConfidence(s *csi.Session) (label string, confidence float64, err error) {
	pl := GetPipeline()
	defer PutPipeline(pl)
	return id.IdentifyWithConfidenceP(pl, s)
}

// Detail is one full identification outcome — the answer an online client
// of the identifier needs in a single pass over the session.
type Detail struct {
	// Material is the best-matching database material.
	Material string
	// Confidence is the classifier's pairwise vote share in [0, 1]
	// (1 for backends without a vote notion).
	Confidence float64
	// Omega is the measured material feature Ω̄ (Eq. 21), averaged over
	// the antenna pairs that produced features.
	Omega float64
}

// IdentifyDetailed runs the pipeline once and returns the prediction,
// confidence and the measured Ω̄ together, so serving paths do not extract
// features twice.
func (id *Identifier) IdentifyDetailed(s *csi.Session) (*Detail, error) {
	pl := GetPipeline()
	defer PutPipeline(pl)
	det, err := id.IdentifyDetailedP(pl, s)
	if err != nil {
		return nil, err
	}
	return &det, nil
}

// NoveltyScore measures how far a session's features sit from everything
// the identifier was trained on: the nearest-neighbour distance in scaled
// feature space, divided by the median leave-one-out nearest-neighbour
// distance of the training set. Scores near 1 mean "as close as training
// points are to each other"; large scores mean the liquid is not in the
// database. Thresholding (e.g. at 3) yields open-set rejection — the
// refusal to guess the paper's checkpoint scenario needs.
func (id *Identifier) NoveltyScore(s *csi.Session) (float64, error) {
	pl := GetPipeline()
	defer PutPipeline(pl)
	return id.NoveltyScoreP(pl, s)
}

// nearestDistance returns the Euclidean distance from x to the closest row
// of set, ignoring row `skip` (pass -1 to use all rows).
func nearestDistance(x []float64, set [][]float64, skip int) float64 {
	best := math.Inf(1)
	for i, row := range set {
		if i == skip {
			continue
		}
		var d float64
		n := len(row)
		if len(x) < n {
			n = len(x)
		}
		for j := 0; j < n; j++ {
			diff := row[j] - x[j]
			d += diff * diff
		}
		if d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}

// looNNMedian is the median leave-one-out nearest-neighbour distance of the
// rows — the natural length scale of the training cloud.
func looNNMedian(x [][]float64) float64 {
	if len(x) < 2 {
		return 0
	}
	dists := make([]float64, len(x))
	for i := range x {
		dists[i] = nearestDistance(x[i], x, i)
	}
	return mathx.Median(dists)
}
