package core

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/dwt"
	"repro/internal/filter"
	"repro/internal/mathx"
)

// DenoiseAmplitudeSeries applies the paper's two-step amplitude cleaning to
// one per-packet amplitude series (Sec. III-C): 3σ outlier rejection
// followed by the wavelet-correlation impulse filter. When cfg disables
// denoising the raw series is returned (copied), which is the "w/o noise
// removed" arm of Fig. 14.
func DenoiseAmplitudeSeries(series []float64, cfg Config) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("core: empty amplitude series")
	}
	if !cfg.DenoiseAmplitude {
		return append([]float64(nil), series...), nil
	}
	cleaned, _ := filter.RejectOutliers3Sigma(series)
	w := cfg.Wavelet
	if w == nil {
		w = dwt.DB4
	}
	out, err := dwt.CorrelationDenoise(cleaned, &dwt.DenoiseConfig{Wavelet: w})
	if err != nil {
		return nil, fmt.Errorf("core: wavelet denoise: %w", err)
	}
	return out, nil
}

// AmplitudeRatio extracts the denoised mean inter-antenna amplitude ratio
// at one subcarrier over a capture: both antennas' series are cleaned
// independently, divided per packet, and averaged. This is the stable
// amplitude quantity of Fig. 8.
func AmplitudeRatio(c *csi.Capture, pair AntennaPair, sub int, cfg Config) (float64, error) {
	sa, err := c.AmplitudeSeries(pair.A, sub)
	if err != nil {
		return 0, fmt.Errorf("core: antenna %d: %w", pair.A, err)
	}
	sb, err := c.AmplitudeSeries(pair.B, sub)
	if err != nil {
		return 0, fmt.Errorf("core: antenna %d: %w", pair.B, err)
	}
	da, err := DenoiseAmplitudeSeries(sa, cfg)
	if err != nil {
		return 0, err
	}
	db, err := DenoiseAmplitudeSeries(sb, cfg)
	if err != nil {
		return 0, err
	}
	ratios := make([]float64, 0, len(da))
	for i := range da {
		if db[i] <= 0 {
			continue // a denoised zero: drop the sample rather than divide
		}
		ratios = append(ratios, da[i]/db[i])
	}
	if len(ratios) == 0 {
		return 0, fmt.Errorf("core: no usable amplitude samples at subcarrier %d", sub)
	}
	if !cfg.DenoiseAmplitude {
		// The raw arm of the Fig. 14 ablation: plain averaging, exactly
		// what using the unprocessed readings means.
		return mathx.Mean(ratios), nil
	}
	// Median, not mean: any impulse surviving the wavelet filter lands in
	// only a packet or two of the capture and the median ignores it.
	return mathx.Median(ratios), nil
}

// MeanPhaseDiff extracts the circular-mean inter-antenna phase difference
// at one subcarrier over a capture — the ΔZ averaging of Eq. 6 ("removed by
// averaging it over a time window").
func MeanPhaseDiff(c *csi.Capture, pair AntennaPair, sub int) (float64, error) {
	series, err := c.PhaseDiffSeries(pair.A, pair.B, sub)
	if err != nil {
		return 0, err
	}
	m := mathx.CircularMean(series)
	if m != m { // NaN: balanced phasors
		return 0, fmt.Errorf("core: phase difference has no defined mean at subcarrier %d", sub)
	}
	return m, nil
}
