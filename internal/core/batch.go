package core

import (
	"repro/internal/csi"
	"repro/internal/parallel"
	"repro/internal/svm"
)

// BatchScratch owns the buffers one batched identification needs — the
// gathered query block handed to the classifier, the per-job details and
// errors, and the SVM batch scratch — so a warmed caller identifies whole
// micro-batches with zero steady-state heap allocations. Not safe for
// concurrent use; keep one per batch dispatcher.
type BatchScratch struct {
	queries [][]float64
	idx     []int
	dets    []Detail
	errs    []error
	svmB    svm.BatchScratch
}

func (bs *BatchScratch) grow(n int) {
	if cap(bs.queries) < n {
		bs.queries = make([][]float64, n)
	}
	if cap(bs.idx) < n {
		bs.idx = make([]int, n)
	}
	if cap(bs.dets) < n {
		bs.dets = make([]Detail, n)
	}
	if cap(bs.errs) < n {
		bs.errs = make([]error, n)
	}
	bs.queries = bs.queries[:n]
	bs.idx = bs.idx[:n]
	bs.dets = bs.dets[:n]
	bs.errs = bs.errs[:n]
}

// IdentifyDetailedBatchP identifies a whole micro-batch: the DSP front-end
// (denoise, phase, feature extraction, scaling) runs per-capture on up to
// `workers` workers, each capture against its own pipeline, then the
// classifier stage synchronizes and predicts every successfully-extracted
// capture in one blocked svm.PredictBatch call. Per-job results are
// bit-identical to calling IdentifyDetailedP(pls[i], sessions[i]) in a
// loop: the DSP stage is per-capture either way and the batched classifier
// is pinned bit-identical to the sequential one.
//
// sessions[i] is processed against pls[i]; the two slices must have equal
// length (a mismatch panics — it is a caller bug, not load-dependent). The
// returned slices are scratch-owned, parallel to sessions (dets[i] is only
// meaningful when errs[i] is nil), and valid until the next call with the
// same scratch.
func (id *Identifier) IdentifyDetailedBatchP(bs *BatchScratch, pls []*Pipeline, sessions []*csi.Session, workers int) ([]Detail, []error) {
	return id.IdentifyDetailedBatchCachedP(bs, pls, sessions, nil, workers)
}

// IdentifyDetailedBatchCachedP is IdentifyDetailedBatchP with optional
// per-session BaselineCaches: caches may be nil (all uncached) or parallel
// to sessions with nil entries for sessions without one. caches[i] is only
// touched by job i, so per-stream caches are safe under the fan-out.
// Bit-identical to the uncached batch.
func (id *Identifier) IdentifyDetailedBatchCachedP(bs *BatchScratch, pls []*Pipeline, sessions []*csi.Session, caches []*BaselineCache, workers int) ([]Detail, []error) {
	if len(pls) != len(sessions) {
		panic("core: IdentifyDetailedBatchP needs one pipeline per session")
	}
	if caches != nil && len(caches) != len(sessions) {
		panic("core: IdentifyDetailedBatchCachedP needs one cache slot per session")
	}
	n := len(sessions)
	bs.grow(n)
	if n == 0 {
		return bs.dets, bs.errs
	}
	// Stage 1: per-capture DSP fan-out. Every job writes only its own
	// slots; errors are per-job results, not batch failures. The serial
	// path loops directly — the fan-out closure would be the batch's only
	// steady-state allocation — and multi-worker runs amortise it per
	// batch, not per request.
	if parallel.DefaultWorkers(workers) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			id.batchExtract(bs, pls, sessions, caches, i)
		}
	} else {
		_ = parallel.ForEach(n, workers, func(i int) error {
			id.batchExtract(bs, pls, sessions, caches, i)
			return nil
		})
	}
	// Stage 2: synchronize and classify the survivors in one blocked call.
	// Each pipeline's scaled vector is private to its job, so gathering
	// them into the query block is alias-safe.
	w := 0
	for i := 0; i < n; i++ {
		if bs.errs[i] != nil {
			continue
		}
		bs.queries[w] = pls[i].scaled
		bs.idx[w] = i
		w++
	}
	if w == 0 {
		return bs.dets, bs.errs
	}
	if mc, ok := id.model.(*svm.Multiclass); ok {
		labels, confs := mc.PredictBatch(bs.queries[:w], &bs.svmB)
		for j := 0; j < w; j++ {
			bs.dets[bs.idx[j]].Material = labels[j]
			bs.dets[bs.idx[j]].Confidence = confs[j]
		}
	} else {
		for j := 0; j < w; j++ {
			bs.dets[bs.idx[j]].Material = id.model.Predict(bs.queries[j])
			bs.dets[bs.idx[j]].Confidence = 1
		}
	}
	return bs.dets, bs.errs
}

// batchExtract runs the per-capture half of a batched identification for
// job i: DSP feature extraction, the Ω̄ summary and classifier-input
// scaling, leaving the scaled query in pls[i].scaled and the outcome in
// bs.dets[i]/bs.errs[i].
func (id *Identifier) batchExtract(bs *BatchScratch, pls []*Pipeline, sessions []*csi.Session, caches []*BaselineCache, i int) {
	pl := pls[i]
	var bc *BaselineCache
	if caches != nil {
		bc = caches[i]
	}
	bs.dets[i] = Detail{Confidence: 1}
	feats, err := pl.extractFeaturesCached(sessions[i], id.cfg.Pipeline, bc)
	if err != nil {
		bs.errs[i] = err
		return
	}
	bs.errs[i] = nil
	var omegaSum float64
	for _, pf := range feats.Pairs {
		omegaSum += pf.Omega
	}
	if np := len(feats.Pairs); np > 0 {
		bs.dets[i].Omega = omegaSum / float64(np)
	}
	pl.scaled = id.scaler.TransformOneInto(pl.scaled, feats.Vector)
}
