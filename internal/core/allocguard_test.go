package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/raceflag"
)

// guardIdentifier trains a small identifier plus probe sessions for the
// allocation and reuse guards.
func guardIdentifier(t *testing.T) (*core.Identifier, []*csi.Session) {
	t.Helper()
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey, material.Oil}, 3)
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return id, sessions
}

// TestPipelineReuseBitIdentical pins the pooled-path contract: one pipeline
// reused across many sessions yields exactly the results of a fresh
// pipeline per call and of the pool-backed wrappers.
func TestPipelineReuseBitIdentical(t *testing.T) {
	id, sessions := guardIdentifier(t)
	shared := core.NewPipeline()
	// Round-trip the shared pipeline through every session, then through the
	// first ones again: stale scratch from session N must never leak into
	// session N+1.
	probes := append(append([]*csi.Session(nil), sessions...), sessions[0], sessions[1])
	for i, s := range probes {
		want, err := id.IdentifyDetailedP(core.NewPipeline(), s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := id.IdentifyDetailedP(shared, s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("probe %d: shared pipeline detail %+v != fresh %+v", i, got, want)
		}
		wrapped, err := id.IdentifyDetailed(s)
		if err != nil {
			t.Fatal(err)
		}
		if *wrapped != want {
			t.Fatalf("probe %d: wrapper detail %+v != fresh %+v", i, *wrapped, want)
		}
		wantNov, err := id.NoveltyScoreP(core.NewPipeline(), s)
		if err != nil {
			t.Fatal(err)
		}
		gotNov, err := id.NoveltyScoreP(shared, s)
		if err != nil {
			t.Fatal(err)
		}
		if gotNov != wantNov {
			t.Fatalf("probe %d: shared novelty %v != fresh %v", i, gotNov, wantNov)
		}
	}
}

// TestIdentifyPZeroAllocSteadyState guards the tentpole: a warmed pipeline
// runs a full identification — phase sanitisation, wavelet denoise, Ω̄
// extraction, scaling, SVM vote — without heap allocation.
func TestIdentifyPZeroAllocSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	id, sessions := guardIdentifier(t)
	pl := core.NewPipeline()
	s := sessions[0]
	for i := 0; i < 3; i++ { // warm every growable buffer
		if _, err := id.IdentifyDetailedP(pl, s); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := id.IdentifyDetailedP(pl, s); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warmed IdentifyDetailedP allocates %.2f times per run, want 0", avg)
	}
}
